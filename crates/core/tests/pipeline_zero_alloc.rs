//! The depth-k frame pipeline's steady state must not touch the heap.
//!
//! Mirrors `crates/ocean/tests/zero_alloc_step.rs` one layer up: with
//! recycled buffers, each steady-state frame of the in-situ chain —
//! solver step, [`CatalystAdaptor::adapt_into`] into a recycled snapshot,
//! [`SampleTables::rebuild`], serial row shading into a reused image and
//! [`PngEncoder::encode_into`] into a reused output buffer — performs zero
//! allocations. The eddy-analysis stages (segmentation, feature
//! extraction) build per-frame component lists by design and are outside
//! this audit; the pipeline pays for them once per frame regardless of
//! depth. This file holds exactly one test (its own process) so no sibling
//! test can allocate concurrently and pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ivis_core::adaptor::CatalystAdaptor;
use ivis_ocean::grid::Grid;
use ivis_ocean::shallow_water::{ShallowWaterModel, SwParams};
use ivis_ocean::vortex::seed_random_eddies;
use ivis_viz::png::{encoded_png_size, PngEncoder};
use ivis_viz::raster::SampleTables;
use ivis_viz::render::{FieldRenderer, RangeMode};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_frame_chain_is_allocation_free() {
    // One thread: parallel fan-outs take the shim's allocation-free
    // sequential path, so the count below audits the pipeline itself.
    rayon::set_num_threads(1);
    let (width, height) = (96, 64);
    let grid = Grid::channel(96, 64, 60_000.0);
    let params = SwParams::eddy_channel(&grid);
    let mut model = ShallowWaterModel::new(grid, params);
    seed_random_eddies(&mut model, 4, 11);
    let mut adaptor = CatalystAdaptor::new();
    // Fixed range: resolving a σ-based range computes field statistics,
    // which is analysis, not rendering — out of scope like segmentation.
    let renderer = FieldRenderer {
        width,
        height,
        colormap: ivis_viz::color::Colormap::OkuboWeiss,
        range: RangeMode::Fixed(-1e-10, 1e-10),
    };
    let mut enc = PngEncoder::new();
    let mut png = Vec::with_capacity(encoded_png_size(width, height) as usize);

    // Warm-up frame: allocates the snapshot, tables, image and scanline
    // scratch that steady-state frames then recycle.
    model.run(8);
    let mut snap = adaptor.adapt(&model);
    let mut tables = SampleTables::new(&snap.okubo_weiss, width, height);
    let mut img = ivis_viz::raster::ImageBuffer::new(width, height);
    let (lo, hi) = renderer.resolve_range(&snap.okubo_weiss);
    for (y, row) in img.pixels_mut().chunks_mut(width).enumerate() {
        tables.shade_row(y, renderer.colormap, lo, hi, row);
    }
    enc.encode_into(&img, &mut png);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        model.run(8);
        adaptor.adapt_into(&model, &mut snap);
        tables.rebuild(&snap.okubo_weiss);
        let (lo, hi) = renderer.resolve_range(&snap.okubo_weiss);
        for (y, row) in img.pixels_mut().chunks_mut(width).enumerate() {
            tables.shade_row(y, renderer.colormap, lo, hi, row);
        }
        enc.encode_into(&img, &mut png);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state frame chain allocated {} times over 10 frames",
        after - before
    );
    // The chain actually did something.
    assert_eq!(model.steps(), 88);
    assert_eq!(adaptor.adaptations(), 11);
    assert_eq!(png.len(), encoded_png_size(width, height) as usize);
    rayon::set_num_threads(0);
}
