//! Trace contract of the staged in-transit transport.
//!
//! The synchronous seed executor emitted no trace at all; the staged
//! transport instruments the run with `Component::Transport` spans
//! (hand-offs, compression), queue-depth gauges and stall counters. These
//! tests freeze that schema with a golden file and pin the clean/faulted
//! equivalence: an empty fault plan must leave the trace bit-identical to
//! the clean wrapper's, because both entry points share one executor.

use ivis_core::campaign::Campaign;
use ivis_core::intransit::{reported_kind, InTransitConfig};
use ivis_core::{CompressionConfig, PipelineConfig, PipelineKind, TransportConfig};
use ivis_fault::FaultScenario;
use ivis_obs::{to_jsonl, Recorder};

fn traced_campaign() -> (Campaign, Recorder) {
    let mut campaign = Campaign::paper();
    let rec = Recorder::in_memory();
    campaign.config.recorder = rec.clone();
    (campaign, rec)
}

fn pc_72h() -> PipelineConfig {
    let mut pc = PipelineConfig::paper(PipelineKind::InSitu, 72.0);
    pc.kind = reported_kind();
    pc
}

fn staged_config() -> InTransitConfig {
    InTransitConfig {
        staging_nodes: 25,
        transport: TransportConfig::pipelined(2).with_compression(CompressionConfig::zfp_like()),
        ..InTransitConfig::caddy_default()
    }
}

/// Golden-file pin of the staged in-transit JSONL schema at the 72 h rate
/// (depth 2, zfp-class compression, 25 staging nodes): the meta line, the
/// root span with its transport attributes, the first sample's compress/
/// hand-off/write spans, and every metric line must match byte-for-byte.
/// Regenerate with `UPDATE_GOLDEN=1 cargo test -p ivis-core --test
/// intransit_trace`.
#[test]
fn staged_intransit_jsonl_schema_is_frozen() {
    let (campaign, rec) = traced_campaign();
    let (_, stats) = campaign.run_intransit_with_stats(&pc_72h(), &staged_config());
    assert_eq!(stats.depth, 2);
    let text = rec.with_buffer(to_jsonl).unwrap();
    let lines: Vec<&str> = text.lines().collect();

    // Structural checks: every sample leaves a compress span, a hand-off
    // span and a pfs_write span under the root.
    let spans = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"span\""))
        .count();
    let metrics = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"metric\""))
        .count();
    assert_eq!(
        spans,
        1 + 60 * 3,
        "root + 60×(compress, handoff, pfs_write)"
    );
    let handoffs = lines
        .iter()
        .filter(|l| l.contains("\"name\":\"handoff\""))
        .count();
    assert_eq!(handoffs, 60);
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"transport.queue_depth\"")),
        "queue-depth gauge present"
    );

    // Byte-exact head (meta, root, first sample) and metric-line prefixes.
    let head: String = lines[..5].iter().map(|l| format!("{l}\n")).collect();
    let tail: String = lines[lines.len() - metrics..]
        .iter()
        .map(|l| {
            let cut = l.find("\"samples\":").expect("metric line has samples");
            format!("{}\n", &l[..cut + "\"samples\":".len()])
        })
        .collect();
    let got = format!("{head}---\n{tail}");
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/intransit_staged_trace.jsonl"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &got).unwrap();
    }
    let want = std::fs::read_to_string(golden_path).expect("golden file present");
    assert_eq!(
        got, want,
        "staged in-transit JSONL drifted from the golden file; if \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// One executor, two entry points: with an empty fault plan the fault-
/// aware run's trace is byte-identical to the clean wrapper's, at the
/// asynchronous depth too (the determinism contract the storage path
/// already enforces, extended to the transport).
#[test]
fn empty_plan_trace_is_bit_identical_to_clean_staged_trace() {
    let trace = |faulted: bool| {
        let (campaign, rec) = traced_campaign();
        let pc = pc_72h();
        let it = staged_config();
        if faulted {
            campaign
                .run_intransit_faulted(&pc, &it, &FaultScenario::none())
                .expect("empty scenario cannot fail");
        } else {
            campaign.run_intransit(&pc, &it);
        }
        rec.with_buffer(to_jsonl).expect("recorder is on")
    };
    assert_eq!(trace(false), trace(true));
}
