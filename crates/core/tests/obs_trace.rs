//! Integration tests for the observability pathway: tracing both pipeline
//! backends, per-phase energy attribution (conservation against the
//! metered totals), the ASCII timeline, and the frozen JSONL schema.

use ivis_cluster::{IoWaitPolicy, JobPhase};
use ivis_core::campaign::Campaign;
use ivis_core::native::{run_native_insitu_with, run_native_postproc_with, NativeConfig};
use ivis_core::{PipelineConfig, PipelineKind};
use ivis_obs::{render_fig4, render_timeline, to_jsonl, Recorder};
use proptest::prelude::*;

fn traced_campaign() -> (Campaign, Recorder) {
    let mut campaign = Campaign::paper();
    let rec = Recorder::in_memory();
    campaign.config.recorder = rec.clone();
    (campaign, rec)
}

/// Attributed per-phase joules must sum to `PipelineMetrics::energy_total`
/// within 1e-6 relative, for every one of the paper's six configurations.
#[test]
fn attribution_conserves_energy_across_paper_matrix() {
    for pc in PipelineConfig::paper_matrix() {
        let (campaign, rec) = traced_campaign();
        let m = campaign.run(&pc);
        let att = campaign.attribution(&m).expect("recorder is on");
        let attributed = att.attributed_total().joules();
        let metered = m.energy_total().joules();
        let rel = (attributed - metered).abs() / metered;
        assert!(
            rel < 1e-6,
            "{} every {} h: attributed {attributed} J vs metered {metered} J (rel {rel})",
            pc.kind.label(),
            pc.rate.every_hours
        );
        // The traced timeline is the machine's timeline: same decomposition.
        let tl = rec.with_buffer(|b| b.phase_timeline()).unwrap();
        let (t_sim, t_io, t_viz) = tl.decompose();
        assert_eq!(t_sim, m.t_sim);
        assert_eq!(t_io, m.t_io);
        assert_eq!(t_viz, m.t_viz);
    }
}

/// §VIII in trace form: under busy-wait the write phase draws compute
/// power at near its simulate level; deep idle drops it sharply.
#[test]
fn attribution_exposes_busy_wait_io_power() {
    let pc = PipelineConfig::paper(PipelineKind::PostProcessing, 8.0);
    let run_with = |policy: IoWaitPolicy| {
        let (mut campaign, _rec) = traced_campaign();
        campaign.config.io_policy = policy;
        let m = campaign.run(&pc);
        let att = campaign.attribution(&m).unwrap();
        let write = *att.get(JobPhase::WriteOutput).expect("writes happened");
        let sim = *att.get(JobPhase::Simulate).expect("sim happened");
        (
            write.compute.joules() / write.seconds,
            sim.compute.joules() / sim.seconds,
            write.seconds,
        )
    };
    let (busy_w, busy_sim_w, busy_secs) = run_with(IoWaitPolicy::BusyWait);
    let (deep_w, _, deep_secs) = run_with(IoWaitPolicy::DeepIdle);
    // Same I/O time either way; very different energy attribution.
    assert!((busy_secs - deep_secs).abs() < 1e-6);
    // Busy-wait: writes draw compute power at the simulate level — the
    // reason measured power stays flat in Fig. 4.
    assert!(
        (busy_w - busy_sim_w).abs() / busy_sim_w < 0.05,
        "busy-wait write power {busy_w:.0} W should sit at the simulate \
         level {busy_sim_w:.0} W"
    );
    assert!(
        deep_w < busy_w * 0.7,
        "deep-idle write power {deep_w:.0} W should be well under busy-wait {busy_w:.0} W"
    );
}

/// The ASCII timeline shows the in-situ Simulate/Write/Visualize cycle.
#[test]
fn ascii_timeline_renders_phase_sequence() {
    let (campaign, rec) = traced_campaign();
    let m = campaign.run(&PipelineConfig::paper(PipelineKind::InSitu, 8.0));
    let tl = rec.with_buffer(|b| b.phase_timeline()).unwrap();
    let txt = render_timeline(&tl, 72);
    let lines: Vec<&str> = txt.lines().collect();
    assert!(lines[0].contains("makespan"));
    assert!(lines.iter().any(|l| l.starts_with("simulate")));
    assert!(lines.iter().any(|l| l.starts_with("write")));
    assert!(lines.iter().any(|l| l.starts_with("visualize")));
    let strip = lines.last().unwrap();
    assert!(strip.starts_with("phase"));
    assert!(strip.contains('S') && strip.contains('V'));
    // The Fig. 4 analogue adds the two power rows.
    let fig4 = render_fig4(&tl, &m.compute_profile, &m.storage_profile, 72);
    assert!(fig4.contains("compute_w"));
    assert!(fig4.contains("storage_w"));
}

/// The native backend's traces reconstruct its wall-clock phase report.
#[test]
fn native_backend_traces_match_report() {
    let cfg = NativeConfig::tiny();
    let rec = Recorder::in_memory();
    let report = run_native_insitu_with(&cfg, &rec);
    let tl = rec.with_buffer(|b| b.phase_timeline()).unwrap();
    let (t_sim, _t_io, t_viz) = tl.decompose();
    assert!((t_sim.as_secs_f64() - report.wall_sim.as_secs_f64()).abs() < 1e-3);
    assert!((t_viz.as_secs_f64() - report.wall_viz.as_secs_f64()).abs() < 1e-3);
    let frames = rec
        .with_buffer(|b| b.metrics.get("native.frames").unwrap().last_value())
        .unwrap();
    assert_eq!(frames as u64, report.frames);

    // Post-processing additionally traces write and read phases.
    let rec2 = Recorder::in_memory();
    let report2 = run_native_postproc_with(&cfg, &rec2);
    let tl2 = rec2.with_buffer(|b| b.phase_timeline()).unwrap();
    assert!(!tl2.time_in(JobPhase::WriteOutput).is_zero());
    assert!(!tl2.time_in(JobPhase::ReadInput).is_zero());
    let raw = rec2
        .with_buffer(|b| b.metrics.get("native.raw_bytes").unwrap().last_value())
        .unwrap();
    assert_eq!(raw as u64, report2.raw_bytes);
}

/// Golden-file pin of the JSONL schema for the paper's in-situ 72 h
/// configuration: the meta line, the first spans, the first event, and
/// every metric line must match byte-for-byte. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test -p ivis-core --test obs_trace`.
#[test]
fn jsonl_schema_is_frozen_for_insitu_72h() {
    let (campaign, rec) = traced_campaign();
    campaign.run(&PipelineConfig::paper(PipelineKind::InSitu, 72.0));
    let text = rec.with_buffer(to_jsonl).unwrap();
    let lines: Vec<&str> = text.lines().collect();

    // Structural checks over the whole export.
    assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    let spans = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"span\""))
        .count();
    let events = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"event\""))
        .count();
    let metrics = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"metric\""))
        .count();
    assert_eq!(lines.len(), 1 + spans + events + metrics);
    // 60 outputs: root + 60×(sim, viz, write, pfs_write); the 72 h rate
    // divides the campaign evenly, so there is no trailing sim span.
    assert_eq!(spans, 1 + 60 * 4);
    assert_eq!(events, 60);
    assert_eq!(metrics, 5);

    // Byte-exact head (meta, root span, first cycle) and tail (metrics).
    let head: String = lines[..6].iter().map(|l| format!("{l}\n")).collect();
    let tail: String = lines[lines.len() - metrics..]
        .iter()
        .map(|l| {
            let cut = l.find("\"samples\":").expect("metric line has samples");
            format!("{}\n", &l[..cut + "\"samples\":".len()])
        })
        .collect();
    let got = format!("{head}---\n{tail}");
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/insitu_72h_trace.jsonl"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &got).unwrap();
    }
    let want = std::fs::read_to_string(golden_path).expect("golden file present");
    assert_eq!(
        got, want,
        "JSONL schema drifted from the golden file; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation is not a property of the paper constants: it holds for
    /// arbitrary campaign knobs, rates, noise and both pipeline kinds.
    #[test]
    fn attribution_conserves_energy_for_arbitrary_campaigns(
        viz_secs in 0.2f64..5.0,
        image_mb in 0.5f64..20.0,
        rate_hours in 6.0f64..96.0,
        seed in 0u64..1_000,
        postproc in proptest::prelude::any::<bool>(),
        deep_idle in proptest::prelude::any::<bool>(),
    ) {
        let mut campaign = Campaign::paper_noisy(seed);
        let rec = Recorder::in_memory();
        campaign.config.recorder = rec.clone();
        campaign.config.viz_seconds_per_output = viz_secs;
        campaign.config.image_bytes_per_output = (image_mb * 1e6) as u64;
        if deep_idle {
            campaign.config.io_policy = IoWaitPolicy::DeepIdle;
        }
        let kind = if postproc {
            PipelineKind::PostProcessing
        } else {
            PipelineKind::InSitu
        };
        let m = campaign.run(&PipelineConfig::paper(kind, rate_hours));
        let att = campaign.attribution(&m).expect("recorder is on");
        let metered = m.energy_total().joules();
        let rel = (att.attributed_total().joules() - metered).abs() / metered;
        prop_assert!(rel < 1e-6, "relative residual {rel}");
    }
}
