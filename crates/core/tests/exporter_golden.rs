//! Golden pins of the interop exporters: the Chrome trace-event JSON
//! (Perfetto) view and the Prometheus text-exposition snapshot of a
//! traced paper run.
//!
//! The traced configuration matches `obs_trace.rs` (in-situ at the 72 h
//! archival rate), extended with the sampled power telemetry published
//! as gauges — so the pinned artifacts exercise spans, instants, counter
//! tracks and the power W(t) signal in one export. Byte-exact pins keep
//! the exporters deterministic; regenerate intentionally with
//! `UPDATE_GOLDEN=1 cargo test -p ivis-core --test exporter_golden`.

use ivis_core::campaign::Campaign;
use ivis_core::{PipelineConfig, PipelineKind};
use ivis_obs::telemetry::paper_cadence;
use ivis_obs::{to_chrome_trace, to_prometheus, Recorder};

fn traced_insitu_72h() -> (String, String) {
    let mut campaign = Campaign::paper();
    let rec = Recorder::in_memory();
    campaign.config.recorder = rec.clone();
    let pc = PipelineConfig::paper(PipelineKind::InSitu, 72.0);
    let metrics = campaign.run(&pc);
    let tel = campaign.telemetry(&metrics, paper_cadence());
    tel.record_gauges(&rec);
    let chrome = rec.with_buffer(to_chrome_trace).expect("recorder is on");
    let prom = rec
        .with_buffer(|b| to_prometheus(&b.metrics))
        .expect("recorder is on");
    (chrome, prom)
}

fn check_golden(got: &str, file: &str) {
    let path = format!("{}/tests/golden/{file}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, got).unwrap();
    }
    let want = std::fs::read_to_string(&path).expect("golden file present");
    assert_eq!(
        got, want,
        "{file} drifted from the golden file; if intentional, regenerate \
         with UPDATE_GOLDEN=1"
    );
}

#[test]
fn chrome_trace_export_is_frozen() {
    let (chrome, _) = traced_insitu_72h();
    // Structural sanity before the byte-exact pin.
    assert!(chrome.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
    assert!(chrome.ends_with("\n]}\n"));
    for thread in ["campaign", "compute", "storage"] {
        assert!(
            chrome.contains(&format!(
                "\"name\":\"thread_name\",\"args\":{{\"name\":\"{thread}\"}}"
            )),
            "thread metadata for {thread}"
        );
    }
    assert_eq!(
        chrome.matches("\"ph\":\"X\"").count(),
        241,
        "1 + 60×4 spans"
    );
    assert_eq!(
        chrome.matches("\"ph\":\"i\"").count(),
        60,
        "60 output events"
    );
    assert!(chrome.contains("\"name\":\"power.compute_w\""));
    check_golden(&chrome, "insitu_72h_chrome.json");
}

#[test]
fn prometheus_snapshot_is_frozen() {
    let (_, prom) = traced_insitu_72h();
    assert!(prom.contains("# TYPE pfs_bytes_written_total counter"));
    assert!(prom.contains("# TYPE cluster_power_w gauge"));
    assert!(prom.contains("# TYPE power_compute_w gauge"));
    assert!(prom.contains("# TYPE power_storage_w gauge"));
    check_golden(&prom, "insitu_72h_prometheus.txt");
}
