//! The native (laptop-scale) backend: actually run everything.
//!
//! Where [`crate::campaign`] *models* the paper-scale run on a simulated
//! cluster, this backend really executes the coupled pipeline at a reduced
//! resolution: the shallow-water solver steps, the adaptor copies, the
//! renderer rasterizes PNGs, ncdf files are encoded and decoded, and eddies
//! are tracked — with real wall-clock timing per phase. The examples and the
//! cognitive-fidelity tests (do both pipelines see the *same* eddies?) run
//! on this backend.
//!
//! ## Pipelined execution
//!
//! [`run_native_insitu`] overlaps the solver with visualization the way
//! in-transit systems stage analysis: a producer thread advances the model
//! and adapts snapshots while the consumer renders, encodes and tracks
//! earlier frames, hand-off over a bounded channel of depth *k*
//! ([`default_pipeline_depth`], overridable per call via
//! [`run_native_insitu_depth`] or globally with the `ZSIM_PIPELINE_DEPTH`
//! environment variable). The consumer drains up to `k` queued snapshots
//! at a time and renders + encodes them **frame-parallel** on the worker
//! pool — each frame's segmentation, rasterization and PNG encode is an
//! independent pure function of its deep-copied [`VizSnapshot`] — then
//! commits the results strictly in frame order: eddy-tracker observations,
//! Cinema index entries and phase timings are appended by a single thread
//! in ascending frame order no matter which worker rendered what.
//!
//! Because chunk placement never changes *what* is computed, all outputs
//! (PNG bytes, Cinema index, eddy tracks, trace structure) are
//! **bit-identical** to [`run_native_insitu_sequential`] at every depth
//! and thread count; the strictly-serialized loop is kept as the golden
//! baseline. Phase wall times are measured on each thread and replayed
//! through the same wall tracer in sequential order after the join, so
//! recorded traces have the same span/event/counter sequence either way.
//! Workers keep per-thread scratch (sample tables, image buffer, PNG
//! encoder) in thread-local storage, so steady-state rendering allocates
//! only each frame's own output PNG.

use std::cell::RefCell;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use ivis_cluster::JobPhase;
use ivis_eddy::census::{frame_census, FrameCensus};
use ivis_eddy::features::{extract_features, EddyFeature};
use ivis_eddy::segment::segment_eddies;
use ivis_eddy::tracking::{EddyTracker, Track};
use ivis_fault::{FaultScenario, FaultSession, FaultStats};
use ivis_obs::{AttrValue, Component, Recorder, SpanId};
use ivis_ocean::grid::Grid;
use ivis_ocean::shallow_water::{ShallowWaterModel, SwParams};
use ivis_ocean::vortex::seed_random_eddies;
use ivis_ocean::Field2D;
use ivis_sim::SimTime;
use ivis_storage::ncdf::{NcFile, VarData};
use ivis_viz::png::{encoded_png_size, PngEncoder};
use ivis_viz::raster::{ImageBuffer, SampleTables};
use ivis_viz::render::FieldRenderer;
use ivis_viz::CinemaDatabase;
use rayon::prelude::*;

use crate::adaptor::{CatalystAdaptor, VizSnapshot};
use crate::resilience::PipelineError;

/// Configuration of a native run.
#[derive(Debug, Clone)]
pub struct NativeConfig {
    /// Grid columns.
    pub nx: usize,
    /// Grid rows.
    pub ny: usize,
    /// Cell size, meters.
    pub cell_m: f64,
    /// Timesteps to run.
    pub steps: u64,
    /// Steps between outputs.
    pub output_every: u64,
    /// Random eddies to seed.
    pub num_eddies: usize,
    /// RNG seed for eddy placement.
    pub seed: u64,
    /// Output image width.
    pub image_width: usize,
    /// Output image height.
    pub image_height: usize,
    /// Draw annotations (colorbar, timestep label, velocity arrows) on each
    /// frame, like a presentation-ready ParaView view.
    pub annotate: bool,
}

impl NativeConfig {
    /// A seconds-scale demo configuration.
    pub fn small() -> Self {
        NativeConfig {
            nx: 96,
            ny: 64,
            cell_m: 60_000.0,
            steps: 96,
            output_every: 16,
            num_eddies: 6,
            seed: 42,
            image_width: 192,
            image_height: 128,
            annotate: false,
        }
    }

    /// A sub-second configuration for tests.
    pub fn tiny() -> Self {
        NativeConfig {
            nx: 32,
            ny: 24,
            cell_m: 60_000.0,
            steps: 24,
            output_every: 8,
            num_eddies: 3,
            seed: 7,
            image_width: 64,
            image_height: 48,
            annotate: false,
        }
    }

    pub(crate) fn build_model(&self) -> ShallowWaterModel {
        let grid = Grid::channel(self.nx, self.ny, self.cell_m);
        let params = SwParams::eddy_channel(&grid);
        let mut m = ShallowWaterModel::new(grid, params);
        seed_random_eddies(&mut m, self.num_eddies, self.seed);
        m
    }
}

/// What a native run produced and how long each phase really took.
#[derive(Debug, Clone)]
pub struct NativeReport {
    /// Frames (outputs) produced.
    pub frames: u64,
    /// Wall time in the solver.
    pub wall_sim: Duration,
    /// Wall time adapting + rendering + tracking.
    pub wall_viz: Duration,
    /// Wall time encoding/decoding/storing output.
    pub wall_io: Duration,
    /// End-to-end wall time of the whole run. For the sequential paths
    /// this is ≈ [`NativeReport::wall_total`]; for the pipelined in-situ
    /// path it is smaller, because solver and visualization overlap.
    pub wall_end_to_end: Duration,
    /// Raw (ncdf) bytes produced — zero for in-situ.
    pub raw_bytes: u64,
    /// Image database bytes.
    pub image_bytes: u64,
    /// The Cinema image database.
    pub cinema: CinemaDatabase,
    /// Finished eddy tracks.
    pub tracks: Vec<Track>,
    /// Census of the final frame.
    pub final_census: FrameCensus,
}

impl NativeReport {
    /// Total wall time.
    pub fn wall_total(&self) -> Duration {
        self.wall_sim + self.wall_viz + self.wall_io
    }

    /// Storage reduction of in-situ relative to a post-processing run
    /// (percent) given this report is the in-situ one.
    pub fn storage_reduction_vs(&self, post: &NativeReport) -> f64 {
        let post_total = (post.raw_bytes + post.image_bytes) as f64;
        let own_total = (self.raw_bytes + self.image_bytes) as f64;
        (post_total - own_total) / post_total * 100.0
    }
}

/// Maps the native backend's wall-clock measurements onto a gap-free
/// virtual [`SimTime`] axis (t = accumulated measured wall time), so the
/// same trace schema, Gantt renderer and timeline tooling work on real
/// runs. Phase spans are recorded after the fact, once their duration is
/// known.
pub(crate) struct WallTracer<'a> {
    rec: &'a Recorder,
    elapsed: Duration,
}

impl<'a> WallTracer<'a> {
    pub(crate) fn new(rec: &'a Recorder) -> Self {
        WallTracer {
            rec,
            elapsed: Duration::ZERO,
        }
    }

    pub(crate) fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.elapsed.as_secs_f64())
    }

    /// Record that `phase` just ran for `took` of wall time.
    pub(crate) fn phase(&mut self, phase: JobPhase, took: Duration) {
        let start = self.now();
        self.elapsed += took;
        if self.rec.is_on() {
            let id = self.rec.phase_span(start, phase, Component::Native);
            self.rec.close(self.now(), id);
        }
    }
}

pub(crate) fn tracker_for(grid: &Grid) -> EddyTracker {
    let (lx, _) = grid.extent();
    // Gate: eddies drift slowly; half a basin-width per frame is plenty.
    EddyTracker::new(6.0 * grid.dx, 2, lx)
}

/// Draw the presentation-ready overlays (velocity arrows, colorbar, time
/// label) on a rendered frame — shared by the serial and frame-parallel
/// paths so their annotated pixels are identical.
fn annotate_frame(
    renderer: &FieldRenderer,
    img: &mut ImageBuffer,
    snap: &VizSnapshot,
    lo: f64,
    hi: f64,
) {
    use ivis_viz::annotate::{draw_colorbar, draw_text, GLYPH_H};
    use ivis_viz::color::Rgb;
    use ivis_viz::glyphs::overlay_velocity_arrows;
    overlay_velocity_arrows(img, &snap.uc, &snap.vc, 24, Rgb::new(40, 40, 40));
    let bar_w = (img.width() / 3).max(40).min(img.width().saturating_sub(8));
    let bar_y = img.height().saturating_sub(GLYPH_H + 10);
    draw_colorbar(img, 4, bar_y, bar_w, 6, renderer.colormap, lo, hi);
    let label = format!("T = {:.0} H", snap.sim_hours);
    draw_text(img, 4, 2, &label, Rgb::BLACK);
}

fn visualize_frame(
    renderer: &FieldRenderer,
    cinema: &mut CinemaDatabase,
    tracker: &mut EddyTracker,
    grid: &Grid,
    snap: &VizSnapshot,
    frame: u64,
    annotate: bool,
) -> FrameCensus {
    let w = &snap.okubo_weiss;
    let seg = segment_eddies(w, 0.2, 3);
    let feats = extract_features(grid, w, &seg);
    tracker.observe(frame, &feats);
    let mut img = renderer.render(w);
    if annotate {
        let (lo, hi) = renderer.resolve_range(w);
        annotate_frame(renderer, &mut img, snap, lo, hi);
    }
    cinema.add_image(snap.timestep, snap.sim_hours, &img);
    frame_census(&feats)
}

/// Everything a frame worker produced for one snapshot. Commit order (and
/// therefore tracker state and the Cinema index) is imposed by the
/// consumer, not by which worker finished first.
struct RenderedFrame {
    feats: Vec<EddyFeature>,
    census: FrameCensus,
    png: Vec<u8>,
    /// Wall time this worker spent on the frame (segmentation through
    /// encode), attributed to the visualize phase at commit.
    d_worker: Duration,
}

/// Per-thread rendering scratch, reused across frames: the sample tables
/// (rebuilt in place when the frame shape repeats), the RGB image buffer
/// and the PNG encoder's scanline scratch. With these, a steady-state
/// frame allocates only its own output PNG.
struct FrameScratch {
    tables: Option<SampleTables>,
    img: Option<ImageBuffer>,
    enc: PngEncoder,
}

thread_local! {
    static FRAME_SCRATCH: RefCell<FrameScratch> = RefCell::new(FrameScratch {
        tables: None,
        img: None,
        enc: PngEncoder::new(),
    });
}

/// Segment, extract, rasterize, annotate and PNG-encode one snapshot — a
/// pure function of the snapshot, safe to run on any worker. Pixels and
/// bytes are bit-identical to the serial [`visualize_frame`] path: the
/// rebuilt tables equal freshly built ones, rows are shaded with the same
/// [`SampleTables::shade_row`], and the encoder is deterministic.
fn render_frame(
    renderer: &FieldRenderer,
    grid: &Grid,
    snap: &VizSnapshot,
    annotate: bool,
) -> RenderedFrame {
    let t0 = Instant::now();
    let w = &snap.okubo_weiss;
    let seg = segment_eddies(w, 0.2, 3);
    let feats = extract_features(grid, w, &seg);
    let census = frame_census(&feats);
    let (lo, hi) = renderer.resolve_range(w);
    let png = FRAME_SCRATCH.with(|cell| {
        let FrameScratch { tables, img, enc } = &mut *cell.borrow_mut();
        let tables = match tables {
            Some(t) if t.matches(w, renderer.width, renderer.height) => {
                t.rebuild(w);
                t
            }
            slot => slot.insert(SampleTables::new(w, renderer.width, renderer.height)),
        };
        let img = match img {
            Some(i) if i.width() == renderer.width && i.height() == renderer.height => i,
            slot => slot.insert(ImageBuffer::new(renderer.width, renderer.height)),
        };
        for (y, row) in img.pixels_mut().chunks_mut(renderer.width).enumerate() {
            tables.shade_row(y, renderer.colormap, lo, hi, row);
        }
        if annotate {
            annotate_frame(renderer, img, snap, lo, hi);
        }
        let mut png =
            Vec::with_capacity(encoded_png_size(renderer.width, renderer.height) as usize);
        enc.encode_into(img, &mut png);
        png
    });
    RenderedFrame {
        feats,
        census,
        png,
        d_worker: t0.elapsed(),
    }
}

/// The pipeline depth [`run_native_insitu`] uses: the `ZSIM_PIPELINE_DEPTH`
/// environment variable if set (≥ 1), else `min(4, available_parallelism)`
/// — deeper than the host can render in parallel only buys memory traffic.
pub fn default_pipeline_depth() -> usize {
    if let Some(d) = std::env::var("ZSIM_PIPELINE_DEPTH")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return d.max(1);
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(4)
}

/// Open the native backend's root span with the run's shape.
pub(crate) fn open_native_root(rec: &Recorder, cfg: &NativeConfig, kind: &'static str) -> SpanId {
    let root = rec.span(SimTime::ZERO, "native", Component::Native);
    rec.set_attr(root, "kind", AttrValue::Str(kind));
    rec.set_attr(root, "nx", AttrValue::U64(cfg.nx as u64));
    rec.set_attr(root, "ny", AttrValue::U64(cfg.ny as u64));
    rec.set_attr(root, "steps", AttrValue::U64(cfg.steps));
    root
}

/// Record one rendered frame: event plus frame/eddy counters.
pub(crate) fn note_frame(rec: &Recorder, t: SimTime, frame: u64, census: &FrameCensus) {
    if !rec.is_on() {
        return;
    }
    rec.event(
        t,
        "frame_rendered",
        Component::Viz,
        &[
            ("frame", AttrValue::U64(frame)),
            ("eddies", AttrValue::U64(census.count as u64)),
        ],
    );
    rec.counter_add(t, "native.frames", 1.0);
}

/// Run the in-situ pipeline natively: simulate, adapt, render and track;
/// only images are "written". Solver and visualization run **pipelined**
/// with up to [`default_pipeline_depth`] frames in flight, rendered and
/// encoded frame-parallel on the worker pool (see the module docs);
/// outputs are bit-identical to [`run_native_insitu_sequential`].
pub fn run_native_insitu(cfg: &NativeConfig) -> NativeReport {
    run_native_insitu_with(cfg, &Recorder::off())
}

/// [`run_native_insitu`] with a trace recorder: per-phase wall times are
/// measured on their own threads, then replayed as spans on a virtual
/// sim-time axis in the same order the sequential path records them.
pub fn run_native_insitu_with(cfg: &NativeConfig, rec: &Recorder) -> NativeReport {
    run_native_insitu_depth_with(cfg, default_pipeline_depth(), rec)
}

/// [`run_native_insitu`] at an explicit pipeline depth: the producer may
/// run up to `depth` output chunks ahead, and up to `depth` frames render
/// and encode concurrently. Outputs are bit-identical to
/// [`run_native_insitu_sequential`] at **every** depth and thread count.
pub fn run_native_insitu_depth(cfg: &NativeConfig, depth: usize) -> NativeReport {
    run_native_insitu_depth_with(cfg, depth, &Recorder::off())
}

/// [`run_native_insitu_depth`] with a trace recorder.
pub fn run_native_insitu_depth_with(
    cfg: &NativeConfig,
    depth: usize,
    rec: &Recorder,
) -> NativeReport {
    let depth = depth.max(1);
    let t_run = Instant::now();
    let mut model = cfg.build_model();
    let grid = model.grid().clone();
    let renderer = FieldRenderer::okubo_weiss(cfg.image_width, cfg.image_height);
    let mut cinema = CinemaDatabase::new("insitu-eddies");
    let mut tracker = tracker_for(&grid);
    let root = open_native_root(rec, cfg, "insitu");
    let mut frames = 0u64;
    let mut census = frame_census(&[]);
    // Per-frame (simulate, adapt+visualize) durations and the frame's
    // census, kept so the trace can be replayed sequentially after the
    // join.
    let mut timings: Vec<(Duration, Duration, FrameCensus)> = Vec::new();
    // Depth-k hand-off: the producer may run at most `depth` chunks ahead
    // of the oldest uncommitted frame.
    let (tx, rx) = mpsc::sync_channel::<(Duration, Duration, VizSnapshot)>(depth);
    // Committed snapshots flow back to the producer for recycling, so
    // steady-state adaptation reuses buffers instead of allocating.
    let (ret_tx, ret_rx) = mpsc::channel::<VizSnapshot>();
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut adaptor = CatalystAdaptor::new();
            let mut step = 0u64;
            while step < cfg.steps {
                let chunk = cfg.output_every.min(cfg.steps - step);
                let t0 = Instant::now();
                model.run(chunk);
                let d_sim = t0.elapsed();
                step += chunk;
                let t1 = Instant::now();
                let snap = match ret_rx.try_recv() {
                    Ok(mut recycled) => {
                        adaptor.adapt_into(&model, &mut recycled);
                        recycled
                    }
                    Err(_) => adaptor.adapt(&model),
                };
                let d_adapt = t1.elapsed();
                if tx.send((d_sim, d_adapt, snap)).is_err() {
                    return; // consumer gone (it panicked); just stop
                }
            }
        });
        // Consumer: drain up to `depth` queued snapshots, render + encode
        // them frame-parallel, then commit strictly in frame order so
        // tracker state and Cinema entries match the sequential path.
        let mut batch: Vec<(Duration, Duration, VizSnapshot)> = Vec::with_capacity(depth);
        // Loop ends when the producer is done and the queue drained.
        while let Ok(first) = rx.recv() {
            batch.push(first);
            while batch.len() < depth {
                match rx.try_recv() {
                    Ok(more) => batch.push(more),
                    Err(_) => break,
                }
            }
            let annotate = cfg.annotate;
            let rendered: Vec<RenderedFrame> = batch
                .par_iter()
                .map(|(_, _, snap)| render_frame(&renderer, &grid, snap, annotate))
                .collect();
            for ((d_sim, d_adapt, snap), rf) in batch.drain(..).zip(rendered) {
                let t_commit = Instant::now();
                tracker.observe(frames, &rf.feats);
                cinema.add_encoded(snap.timestep, snap.sim_hours, rf.png);
                census = rf.census;
                let d_commit = t_commit.elapsed();
                timings.push((d_sim, d_adapt + rf.d_worker + d_commit, census.clone()));
                frames += 1;
                let _ = ret_tx.send(snap); // producer may already be done
            }
        }
    });
    let wall_end_to_end = t_run.elapsed();
    // Replay the measured phases through the tracer in the interleaved
    // order the sequential path would have recorded them.
    let mut wtr = WallTracer::new(rec);
    let mut wall_sim = Duration::ZERO;
    let mut wall_viz = Duration::ZERO;
    for (frame, (d_sim, d_viz, c)) in timings.iter().enumerate() {
        wall_sim += *d_sim;
        wtr.phase(JobPhase::Simulate, *d_sim);
        wall_viz += *d_viz;
        wtr.phase(JobPhase::Visualize, *d_viz);
        note_frame(rec, wtr.now(), frame as u64, c);
    }
    let image_bytes = cinema.total_bytes();
    if rec.is_on() {
        rec.counter_add(wtr.now(), "native.image_bytes", image_bytes as f64);
    }
    rec.close(wtr.now(), root);
    NativeReport {
        frames,
        wall_sim,
        wall_viz,
        wall_io: Duration::ZERO, // image bytes counted; kept in memory here
        wall_end_to_end,
        raw_bytes: 0,
        image_bytes,
        cinema,
        tracks: tracker.finish(),
        final_census: census,
    }
}

/// The original strictly-serialized in-situ loop, kept as the golden
/// baseline the pipelined path is tested (and benchmarked) against.
pub fn run_native_insitu_sequential(cfg: &NativeConfig) -> NativeReport {
    run_native_insitu_sequential_with(cfg, &Recorder::off())
}

/// [`run_native_insitu_sequential`] with a trace recorder.
pub fn run_native_insitu_sequential_with(cfg: &NativeConfig, rec: &Recorder) -> NativeReport {
    let t_run = Instant::now();
    let mut model = cfg.build_model();
    let mut adaptor = CatalystAdaptor::new();
    let renderer = FieldRenderer::okubo_weiss(cfg.image_width, cfg.image_height);
    let mut cinema = CinemaDatabase::new("insitu-eddies");
    let mut tracker = tracker_for(model.grid());
    let root = open_native_root(rec, cfg, "insitu");
    let mut wtr = WallTracer::new(rec);
    let mut wall_sim = Duration::ZERO;
    let mut wall_viz = Duration::ZERO;
    let mut frames = 0u64;
    let mut census = frame_census(&[]);
    let mut step = 0u64;
    while step < cfg.steps {
        let chunk = cfg.output_every.min(cfg.steps - step);
        let t0 = Instant::now();
        model.run(chunk);
        let d_sim = t0.elapsed();
        wall_sim += d_sim;
        wtr.phase(JobPhase::Simulate, d_sim);
        step += chunk;
        let t1 = Instant::now();
        let snap = adaptor.adapt(&model);
        census = visualize_frame(
            &renderer,
            &mut cinema,
            &mut tracker,
            model.grid(),
            &snap,
            frames,
            cfg.annotate,
        );
        let d_viz = t1.elapsed();
        wall_viz += d_viz;
        wtr.phase(JobPhase::Visualize, d_viz);
        note_frame(rec, wtr.now(), frames, &census);
        frames += 1;
    }
    let image_bytes = cinema.total_bytes();
    if rec.is_on() {
        rec.counter_add(wtr.now(), "native.image_bytes", image_bytes as f64);
    }
    rec.close(wtr.now(), root);
    NativeReport {
        frames,
        wall_sim,
        wall_viz,
        wall_io: Duration::ZERO, // image bytes counted; kept in memory here
        wall_end_to_end: t_run.elapsed(),
        raw_bytes: 0,
        image_bytes,
        cinema,
        tracks: tracker.finish(),
        final_census: census,
    }
}

/// What a fault-aware native run produced.
#[derive(Debug, Clone)]
pub struct NativeFaultReport {
    /// The usual report. `frames`, the Cinema database and the tracks
    /// cover only the frames actually written — the Cinema index always
    /// matches the images present, however many frames were shed.
    pub report: NativeReport,
    /// What the fault layer did.
    pub stats: FaultStats,
}

/// Run the native in-situ pipeline under a fault scenario.
///
/// The native backend has no parallel filesystem, so only two fault kinds
/// apply: `TransientIo` windows make the per-frame image store step fail
/// probabilistically (retried without wall cost — the store is in-memory —
/// and shed once the retry budget is exhausted), and the degradation state
/// machine sheds frames outright at elevated levels. Brownouts, MDS stalls
/// and disk pressure are storage-model faults and have no native analogue;
/// compute stragglers don't apply to a single host. Fault windows are
/// matched against *simulated* time (`snap.sim_hours`), so a plan is
/// meaningful regardless of host speed, and the run never panics or hangs:
/// every frame is either written or counted as shed.
///
/// With [`FaultScenario::none`] the outputs (Cinema index, PNG bytes, eddy
/// tracks) are bit-identical to [`run_native_insitu_sequential`].
pub fn run_native_insitu_faulted(
    cfg: &NativeConfig,
    scenario: &FaultScenario,
) -> NativeFaultReport {
    run_native_insitu_faulted_with(cfg, scenario, &Recorder::off())
}

/// [`run_native_insitu_faulted`] with a trace recorder.
pub fn run_native_insitu_faulted_with(
    cfg: &NativeConfig,
    scenario: &FaultScenario,
    rec: &Recorder,
) -> NativeFaultReport {
    let t_run = Instant::now();
    let mut session = FaultSession::new(scenario);
    let mut model = cfg.build_model();
    let mut adaptor = CatalystAdaptor::new();
    let renderer = FieldRenderer::okubo_weiss(cfg.image_width, cfg.image_height);
    let mut cinema = CinemaDatabase::new("insitu-eddies");
    let mut tracker = tracker_for(model.grid());
    let root = open_native_root(rec, cfg, "insitu");
    let mut wtr = WallTracer::new(rec);
    let mut wall_sim = Duration::ZERO;
    let mut wall_viz = Duration::ZERO;
    let mut written = 0u64;
    let mut frame = 0u64;
    let mut census = frame_census(&[]);
    let mut step = 0u64;
    while step < cfg.steps {
        let chunk = cfg.output_every.min(cfg.steps - step);
        let t0 = Instant::now();
        model.run(chunk);
        let d_sim = t0.elapsed();
        wall_sim += d_sim;
        wtr.phase(JobPhase::Simulate, d_sim);
        step += chunk;
        let t1 = Instant::now();
        let snap = adaptor.adapt(&model);
        // Fault windows are scheduled in simulated time.
        let sim_t = SimTime::from_secs_f64(snap.sim_hours * 3600.0);
        if session.should_shed(frame) {
            session.stats.outputs_shed += 1;
            rec.event(
                wtr.now(),
                "output_shed",
                Component::Fault,
                &[
                    ("index", AttrValue::U64(frame)),
                    ("reason", AttrValue::Str("degraded")),
                ],
            );
            rec.counter_add(wtr.now(), "fault.sheds", 1.0);
            frame += 1;
            continue;
        }
        // The image store step may fail transiently. Retries are free in
        // wall time (the store is in-memory); exhaustion sheds the frame
        // rather than aborting the solver.
        let mut failed = 0u32;
        let stored = loop {
            if !session.roll_io_failure(sim_t) {
                break true;
            }
            rec.counter_add(wtr.now(), "fault.injected_failures", 1.0);
            failed += 1;
            let _ = session.pressure();
            if failed >= session.retry.max_attempts {
                break false;
            }
            // Draw the jitter so the retry schedule matches the campaign
            // backend's RNG discipline; no wall time passes here.
            let _backoff = session.backoff_for(failed);
            rec.counter_add(wtr.now(), "fault.retries", 1.0);
        };
        if stored {
            census = visualize_frame(
                &renderer,
                &mut cinema,
                &mut tracker,
                model.grid(),
                &snap,
                frame,
                cfg.annotate,
            );
            let d_viz = t1.elapsed();
            wall_viz += d_viz;
            wtr.phase(JobPhase::Visualize, d_viz);
            note_frame(rec, wtr.now(), frame, &census);
            session.stats.outputs_written += 1;
            let _ = session.clean();
            written += 1;
        } else {
            session.stats.outputs_shed += 1;
            rec.event(
                wtr.now(),
                "output_shed",
                Component::Fault,
                &[
                    ("index", AttrValue::U64(frame)),
                    ("reason", AttrValue::Str("retries-exhausted")),
                ],
            );
            rec.counter_add(wtr.now(), "fault.sheds", 1.0);
        }
        frame += 1;
    }
    let image_bytes = cinema.total_bytes();
    if rec.is_on() {
        rec.counter_add(wtr.now(), "native.image_bytes", image_bytes as f64);
    }
    rec.close(wtr.now(), root);
    NativeFaultReport {
        report: NativeReport {
            frames: written,
            wall_sim,
            wall_viz,
            wall_io: Duration::ZERO,
            wall_end_to_end: t_run.elapsed(),
            raw_bytes: 0,
            image_bytes,
            cinema,
            tracks: tracker.finish(),
            final_census: census,
        },
        stats: session.into_stats(),
    }
}

/// Encode a snapshot as an ncdf-lite file (the post-processing raw output):
/// the Okubo-Weiss field plus everything the renderer needs to reproduce the
/// in-situ frames exactly (SSH, centered velocities).
fn encode_raw(snap: &VizSnapshot) -> Vec<u8> {
    let w = &snap.okubo_weiss;
    let mut f = NcFile::new();
    let dy = f.add_dim("y", w.ny() as u64);
    let dx = f.add_dim("x", w.nx() as u64);
    f.add_attr("timestep", snap.timestep.to_string());
    f.add_attr("sim_hours", format!("{}", snap.sim_hours));
    for (name, field) in [
        ("W", w),
        ("ssh", &snap.ssh),
        ("uc", &snap.uc),
        ("vc", &snap.vc),
    ] {
        f.add_var(name, vec![dy, dx], VarData::F64(field.data().to_vec()))
            .expect("shape is consistent");
    }
    f.encode().to_vec()
}

/// Decode a raw file back into a [`VizSnapshot`]. Every way the bytes
/// can disappoint — truncation, a missing variable or attribute, a
/// wrong dtype, a shape that doesn't match the declared dims — comes
/// back as a typed [`PipelineError::CorruptFrame`] instead of a panic,
/// so one bad file fails one frame, not the whole campaign.
fn decode_raw(frame: u64, bytes: &[u8]) -> Result<VizSnapshot, PipelineError> {
    let corrupt = |detail: String| PipelineError::CorruptFrame { frame, detail };
    let f = NcFile::decode(bytes).map_err(|e| corrupt(format!("decode failed: {e}")))?;
    let ny = f
        .dims
        .first()
        .ok_or_else(|| corrupt("missing y dimension".into()))?
        .1 as usize;
    let nx = f
        .dims
        .get(1)
        .ok_or_else(|| corrupt("missing x dimension".into()))?
        .1 as usize;
    let to_field = |name: &str| -> Result<Field2D, PipelineError> {
        let var = f
            .var(name)
            .ok_or_else(|| corrupt(format!("variable {name:?} missing")))?;
        let data = match &var.data {
            VarData::F64(xs) => xs,
            other => {
                return Err(corrupt(format!(
                    "variable {name:?}: expected f64 data, got {other:?}"
                )))
            }
        };
        if data.len() != nx * ny {
            return Err(corrupt(format!(
                "variable {name:?}: {} values for a {nx}×{ny} grid",
                data.len()
            )));
        }
        let mut field = Field2D::zeros(nx, ny);
        field.data_mut().copy_from_slice(data);
        Ok(field)
    };
    let attr = |name: &str| -> Result<&str, PipelineError> {
        f.attr(name)
            .ok_or_else(|| corrupt(format!("attribute {name:?} missing")))
    };
    Ok(VizSnapshot {
        timestep: attr("timestep")?
            .parse()
            .map_err(|e| corrupt(format!("attribute \"timestep\" unparsable: {e}")))?,
        sim_hours: attr("sim_hours")?
            .parse()
            .map_err(|e| corrupt(format!("attribute \"sim_hours\" unparsable: {e}")))?,
        ssh: to_field("ssh")?,
        uc: to_field("uc")?,
        vc: to_field("vc")?,
        okubo_weiss: to_field("W")?,
    })
}

/// Run the post-processing pipeline natively: simulate and write raw ncdf
/// every sample; afterwards read everything back, render and track.
pub fn run_native_postproc(cfg: &NativeConfig) -> NativeReport {
    run_native_postproc_with(cfg, &Recorder::off())
}

/// [`run_native_postproc`] with a trace recorder. Raw-file encodes are
/// traced as write phases and the stage-2 decodes as read phases, so the
/// exported timeline shows the paper's two-stage structure.
///
/// The raw store is produced and consumed inside this call, so decode
/// failures are impossible by construction; the fallible surface for
/// callers holding their own bytes is [`try_run_native_postproc`].
pub fn run_native_postproc_with(cfg: &NativeConfig, rec: &Recorder) -> NativeReport {
    try_run_native_postproc_with(cfg, rec).expect("self-produced raw files always decode")
}

/// [`run_native_postproc`], surfacing stage-2 decode failures as typed
/// [`PipelineError::CorruptFrame`] errors instead of panicking.
pub fn try_run_native_postproc(cfg: &NativeConfig) -> Result<NativeReport, PipelineError> {
    try_run_native_postproc_with(cfg, &Recorder::off())
}

/// [`try_run_native_postproc`] with a trace recorder.
pub fn try_run_native_postproc_with(
    cfg: &NativeConfig,
    rec: &Recorder,
) -> Result<NativeReport, PipelineError> {
    let t_run = Instant::now();
    let mut model = cfg.build_model();
    let mut adaptor = CatalystAdaptor::new();
    let root = open_native_root(rec, cfg, "postproc");
    let mut wtr = WallTracer::new(rec);
    let mut wall_sim = Duration::ZERO;
    let mut wall_io = Duration::ZERO;
    let mut store: Vec<Vec<u8>> = Vec::new();
    let mut step = 0u64;
    // Stage 1: simulate + write raw.
    while step < cfg.steps {
        let chunk = cfg.output_every.min(cfg.steps - step);
        let t0 = Instant::now();
        model.run(chunk);
        let d_sim = t0.elapsed();
        wall_sim += d_sim;
        wtr.phase(JobPhase::Simulate, d_sim);
        step += chunk;
        let t1 = Instant::now();
        let snap = adaptor.adapt(&model);
        store.push(encode_raw(&snap));
        let d_io = t1.elapsed();
        wall_io += d_io;
        wtr.phase(JobPhase::WriteOutput, d_io);
        if rec.is_on() {
            let bytes = store.last().map_or(0, |b| b.len() as u64);
            rec.counter_add(wtr.now(), "native.raw_bytes", bytes as f64);
        }
    }
    let raw_bytes: u64 = store.iter().map(|b| b.len() as u64).sum();
    // Stage 2: read back, render, track.
    let renderer = FieldRenderer::okubo_weiss(cfg.image_width, cfg.image_height);
    let mut cinema = CinemaDatabase::new("postproc-eddies");
    let mut tracker = tracker_for(model.grid());
    let mut wall_viz = Duration::ZERO;
    let mut census = frame_census(&[]);
    for (frame, bytes) in store.iter().enumerate() {
        let t0 = Instant::now();
        let snap = decode_raw(frame as u64, bytes)?;
        let d_read = t0.elapsed();
        wall_io += d_read;
        wtr.phase(JobPhase::ReadInput, d_read);
        let t1 = Instant::now();
        census = visualize_frame(
            &renderer,
            &mut cinema,
            &mut tracker,
            model.grid(),
            &snap,
            frame as u64,
            cfg.annotate,
        );
        let d_viz = t1.elapsed();
        wall_viz += d_viz;
        wtr.phase(JobPhase::Visualize, d_viz);
        note_frame(rec, wtr.now(), frame as u64, &census);
    }
    let image_bytes = cinema.total_bytes();
    if rec.is_on() {
        rec.counter_add(wtr.now(), "native.image_bytes", image_bytes as f64);
    }
    rec.close(wtr.now(), root);
    Ok(NativeReport {
        frames: store.len() as u64,
        wall_sim,
        wall_viz,
        wall_io,
        wall_end_to_end: t_run.elapsed(),
        raw_bytes,
        image_bytes,
        cinema,
        tracks: tracker.finish(),
        final_census: census,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_pipelines_produce_identical_images() {
        // The cognitive-fidelity claim: in-situ loses nothing relative to
        // post-processing (f64 roundtrips exactly through ncdf-lite).
        let cfg = NativeConfig::tiny();
        let a = run_native_insitu(&cfg);
        let b = run_native_postproc(&cfg);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.cinema.len(), b.cinema.len());
        for (ea, eb) in a.cinema.entries().iter().zip(b.cinema.entries()) {
            assert_eq!(ea.timestep, eb.timestep);
            assert_eq!(ea.data, eb.data, "frame {} differs", ea.timestep);
        }
    }

    #[test]
    fn both_pipelines_track_the_same_eddies() {
        let cfg = NativeConfig::tiny();
        let a = run_native_insitu(&cfg);
        let b = run_native_postproc(&cfg);
        assert_eq!(a.tracks.len(), b.tracks.len());
        assert_eq!(a.final_census, b.final_census);
    }

    #[test]
    fn insitu_writes_orders_of_magnitude_less() {
        let cfg = NativeConfig::tiny();
        let a = run_native_insitu(&cfg);
        let b = run_native_postproc(&cfg);
        assert_eq!(a.raw_bytes, 0);
        assert!(b.raw_bytes > 0);
        // Raw field data dwarfs what post-processing adds in images.
        let reduction = a.storage_reduction_vs(&b);
        assert!(reduction > 0.0, "reduction = {reduction}%");
    }

    #[test]
    fn frames_and_eddies_exist() {
        let cfg = NativeConfig::tiny();
        let r = run_native_insitu(&cfg);
        assert_eq!(r.frames, 3); // 24 steps / every 8
        assert!(r.final_census.count > 0, "seeded eddies should be detected");
        assert!(!r.tracks.is_empty());
        assert!(r.image_bytes > 0);
    }

    #[test]
    fn wall_times_are_measured() {
        let cfg = NativeConfig::tiny();
        let r = run_native_postproc(&cfg);
        assert!(r.wall_sim > Duration::ZERO);
        assert!(r.wall_viz > Duration::ZERO);
        assert!(r.wall_io > Duration::ZERO);
        assert_eq!(r.wall_total(), r.wall_sim + r.wall_viz + r.wall_io);
    }

    #[test]
    fn raw_roundtrip_is_exact() {
        let field = |k: f64| Field2D::from_fn(8, 6, move |i, j| (i as f64 * k).sin() + j as f64);
        let snap = VizSnapshot {
            timestep: 123,
            sim_hours: 61.5,
            ssh: field(0.3),
            uc: field(0.5),
            vc: field(0.7),
            okubo_weiss: field(0.9),
        };
        let bytes = encode_raw(&snap);
        let back = decode_raw(0, &bytes).expect("round-trip decodes");
        assert_eq!(back.okubo_weiss.data(), snap.okubo_weiss.data());
        assert_eq!(back.ssh.data(), snap.ssh.data());
        assert_eq!(back.uc.data(), snap.uc.data());
        assert_eq!(back.vc.data(), snap.vc.data());
        assert_eq!(back.timestep, 123);
        assert_eq!(back.sim_hours, 61.5);
    }

    #[test]
    fn corrupt_raw_bytes_fail_typed_not_panic() {
        let field = |k: f64| Field2D::from_fn(8, 6, move |i, j| (i as f64 * k).sin() + j as f64);
        let snap = VizSnapshot {
            timestep: 7,
            sim_hours: 3.5,
            ssh: field(0.3),
            uc: field(0.5),
            vc: field(0.7),
            okubo_weiss: field(0.9),
        };
        let good = encode_raw(&snap);
        // Truncation at every prefix length must yield a typed error,
        // never a panic (and never a bogus success).
        for cut in [0, 1, 4, good.len() / 2, good.len() - 1] {
            let err = decode_raw(3, &good[..cut]).expect_err("truncated bytes must fail");
            match &err {
                PipelineError::CorruptFrame { frame, detail } => {
                    assert_eq!(*frame, 3);
                    assert!(!detail.is_empty());
                }
                other => panic!("expected CorruptFrame, got {other}"),
            }
            assert!(err.to_string().contains("corrupt frame 3"), "{err}");
        }
        // Garbage bytes too.
        assert!(decode_raw(0, b"not an ncdf file at all").is_err());
        // A structurally valid file missing the expected variables.
        let mut stripped = NcFile::new();
        stripped.add_dim("y", 6);
        stripped.add_dim("x", 8);
        stripped.add_attr("timestep", "7".to_string());
        stripped.add_attr("sim_hours", "3.5".to_string());
        let err = decode_raw(1, &stripped.encode()).expect_err("missing vars must fail");
        assert!(err.to_string().contains("\"ssh\""), "{err}");
    }

    #[test]
    fn try_postproc_matches_infallible_path() {
        let cfg = NativeConfig::tiny();
        let a = try_run_native_postproc(&cfg).expect("healthy run decodes");
        let b = run_native_postproc(&cfg);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.cinema.index_json(), b.cinema.index_json());
        assert_eq!(a.tracks, b.tracks);
    }

    #[test]
    fn pipelined_matches_sequential_exactly() {
        let cfg = NativeConfig::tiny();
        let a = run_native_insitu(&cfg);
        let b = run_native_insitu_sequential(&cfg);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.cinema.index_json(), b.cinema.index_json());
        for (ea, eb) in a.cinema.entries().iter().zip(b.cinema.entries()) {
            assert_eq!(ea.data, eb.data, "frame {} differs", ea.timestep);
        }
        assert_eq!(a.tracks, b.tracks);
        assert_eq!(a.final_census, b.final_census);
    }

    #[test]
    fn depth_k_matches_sequential_exactly() {
        // Annotate so the worker's overlay path is exercised too.
        let mut cfg = NativeConfig::tiny();
        cfg.annotate = true;
        let golden = run_native_insitu_sequential(&cfg);
        for depth in [1, 2, 4] {
            let r = run_native_insitu_depth(&cfg, depth);
            assert_eq!(r.frames, golden.frames, "depth {depth}");
            assert_eq!(
                r.cinema.index_json(),
                golden.cinema.index_json(),
                "depth {depth}"
            );
            for (ea, eb) in r.cinema.entries().iter().zip(golden.cinema.entries()) {
                assert_eq!(ea.data, eb.data, "depth {depth} frame {}", ea.timestep);
            }
            assert_eq!(r.tracks, golden.tracks, "depth {depth}");
            assert_eq!(r.final_census, golden.final_census, "depth {depth}");
        }
    }

    #[test]
    fn default_depth_is_at_least_one() {
        assert!(default_pipeline_depth() >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = NativeConfig::tiny();
        let a = run_native_insitu(&cfg);
        let b = run_native_insitu(&cfg);
        assert_eq!(a.image_bytes, b.image_bytes);
        assert_eq!(a.tracks.len(), b.tracks.len());
    }

    #[test]
    fn faulted_empty_scenario_matches_sequential_exactly() {
        let cfg = NativeConfig::tiny();
        let clean = run_native_insitu_sequential(&cfg);
        let faulted = run_native_insitu_faulted(&cfg, &FaultScenario::none());
        let r = &faulted.report;
        assert_eq!(clean.frames, r.frames);
        assert_eq!(clean.cinema.index_json(), r.cinema.index_json());
        for (ea, eb) in clean.cinema.entries().iter().zip(r.cinema.entries()) {
            assert_eq!(ea.data, eb.data, "frame {} differs", ea.timestep);
        }
        assert_eq!(clean.tracks, r.tracks);
        assert_eq!(clean.final_census, r.final_census);
        assert_eq!(faulted.stats.outputs_written, clean.frames);
        assert_eq!(faulted.stats.outputs_shed, 0);
        assert_eq!(faulted.stats.injected_io_failures, 0);
    }

    #[test]
    fn total_outage_sheds_every_frame_without_panicking() {
        use ivis_fault::{FaultKind, FaultPlan, FaultWindow, RetryPolicy};
        let cfg = NativeConfig::tiny();
        let plan = FaultPlan::new(1).inject(
            FaultWindow::of_secs(0, u64::MAX / 2_000_000),
            FaultKind::TransientIo { fail_prob: 1.0 },
        );
        let mut scenario = FaultScenario::with_plan(plan);
        scenario.retry = RetryPolicy::no_retries();
        let faulted = run_native_insitu_faulted(&cfg, &scenario);
        assert_eq!(faulted.report.frames, 0);
        assert_eq!(faulted.report.cinema.len(), 0, "index matches zero images");
        assert!(faulted.report.tracks.is_empty());
        assert_eq!(faulted.stats.outputs_shed, 3);
        assert_eq!(faulted.stats.outputs_total(), 3);
    }

    #[test]
    fn partial_faults_keep_cinema_index_consistent() {
        use ivis_fault::{FaultKind, FaultPlan, FaultWindow};
        let cfg = NativeConfig::tiny();
        let plan = FaultPlan::new(9).inject(
            FaultWindow::of_secs(0, u64::MAX / 2_000_000),
            FaultKind::TransientIo { fail_prob: 0.5 },
        );
        let scenario = FaultScenario::with_plan(plan);
        let a = run_native_insitu_faulted(&cfg, &scenario);
        // The index always matches the images actually written...
        assert_eq!(a.report.cinema.len() as u64, a.report.frames);
        assert_eq!(a.report.frames, a.stats.outputs_written);
        assert_eq!(a.stats.outputs_total(), 3, "every frame accounted for");
        // ...and the whole degraded run replays deterministically.
        let b = run_native_insitu_faulted(&cfg, &scenario);
        assert_eq!(a.report.cinema.index_json(), b.report.cinema.index_json());
        assert_eq!(a.stats, b.stats);
    }
}
