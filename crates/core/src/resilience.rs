//! Fault-aware pipeline execution: retries, timeouts and graceful
//! degradation for the measured-cluster backend.
//!
//! The clean executors in [`campaign`](crate::campaign) model the paper's
//! healthy machine. This module runs the *same* pipelines under an
//! [`ivis_fault::FaultPlan`] — OSS bandwidth brownouts, MDS stalls,
//! transient I/O failures, full-disk pressure and compute stragglers —
//! and gives them the machinery to survive:
//!
//! * a [`RetryPolicy`](ivis_fault::RetryPolicy): bounded exponential
//!   backoff with deterministic jitter and a per-op latency SLO;
//! * a [`DegradationPolicy`](ivis_fault::DegradationPolicy): under
//!   sustained pressure the pipeline sheds load by dropping to a lower
//!   effective visualization rate (and skipping the matching raw dumps),
//!   exactly the Eq. 6/7 rate lever the paper models;
//! * typed errors ([`PipelineError`]) when retries are exhausted or the
//!   storage model rejects an operation terminally.
//!
//! Every retry, SLO violation, shed and degradation-level change is
//! recorded as [`Component::Fault`] events and `fault.*` counters on the
//! campaign's [`Recorder`], and the compute energy burned inside backoff
//! windows is reported separately ([`FaultedRun::retry_energy`]) so a
//! degraded run's energy bill can be decomposed.
//!
//! **Determinism contract**: with an empty plan the faulted executors are
//! bit-identical to the clean ones — the fault RNG is never consulted, the
//! storage hooks stay at their nominal values, and every arithmetic path
//! multiplies by exactly `1.0`. With a seeded plan the run (metrics, trace
//! and stats) replays bit-for-bit at any host thread count; the CI fault
//! matrix enforces both properties.

use ivis_cluster::JobPhase;
use ivis_fault::{FaultScenario, FaultSession, FaultStats};
use ivis_obs::{AttrValue, Component, Recorder};
use ivis_power::units::Joules;
use ivis_sim::{SimDuration, SimRng, SimTime};
use ivis_storage::{ParallelFileSystem, PfsError};

use crate::campaign::{note_write, Campaign, PhaseTracer};
use crate::config::{PipelineConfig, PipelineKind};
use crate::intransit::InTransitConfig;
use crate::metrics::PipelineMetrics;

/// A pipeline run failed in a way the resilience machinery could not
/// absorb. The variants carry enough context (sim-time, path, underlying
/// storage error) to diagnose the run post-mortem.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The storage model rejected an operation terminally (no retry
    /// applies: out of space with nothing reserved, bad path, ...).
    Storage {
        /// Sim-time the operation was submitted.
        at: SimTime,
        /// Path of the failed operation.
        path: String,
        /// The underlying storage error.
        source: PfsError,
    },
    /// A transient failure persisted through every allowed attempt.
    RetriesExhausted {
        /// Sim-time of the final failed attempt.
        at: SimTime,
        /// Path of the failed operation.
        path: String,
        /// Attempts made (equals the policy's `max_attempts`).
        attempts: u32,
        /// The last failure observed.
        source: PfsError,
    },
    /// A stored frame failed to decode on read-back (truncated bytes,
    /// missing variable or attribute, wrong dtype). Carried typed so a
    /// corrupt file fails one frame, not the whole campaign via panic.
    CorruptFrame {
        /// Output index of the frame that failed to decode.
        frame: u64,
        /// What the decoder rejected.
        detail: String,
    },
}

impl PipelineError {
    pub(crate) fn storage(at: SimTime, path: &str, source: PfsError) -> Self {
        PipelineError::Storage {
            at,
            path: path.to_string(),
            source,
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Storage { at, path, source } => {
                write!(f, "storage error at t={at} on {path}: {source}")
            }
            PipelineError::RetriesExhausted {
                at,
                path,
                attempts,
                source,
            } => write!(
                f,
                "retries exhausted after {attempts} attempts at t={at} on {path}: {source}"
            ),
            PipelineError::CorruptFrame { frame, detail } => {
                write!(f, "corrupt frame {frame}: {detail}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Storage { source, .. }
            | PipelineError::RetriesExhausted { source, .. } => Some(source),
            PipelineError::CorruptFrame { .. } => None,
        }
    }
}

/// Everything a fault-aware run produces: the usual metrics artifact, the
/// fault layer's counters, and the compute energy burned inside retry
/// backoff windows (attributed via the compute power profile, tiling the
/// run exactly like the per-phase attribution does).
#[derive(Debug, Clone)]
pub struct FaultedRun {
    /// The metrics artifact, same shape as a clean run's.
    pub metrics: PipelineMetrics,
    /// What the fault layer did.
    pub stats: FaultStats,
    /// Compute energy spent waiting out retry backoffs.
    pub retry_energy: Joules,
}

impl FaultedRun {
    pub(crate) fn finish(metrics: PipelineMetrics, session: FaultSession) -> Self {
        let retry_energy = metrics
            .compute_profile
            .energy_over(session.backoff_windows());
        FaultedRun {
            metrics,
            stats: session.into_stats(),
            retry_energy,
        }
    }

    /// A stable one-line rendering of the run's observable outcome —
    /// every duration in exact microseconds and every energy as raw f64
    /// bits — used by the CI fault matrix to assert bit-identical replays
    /// across seeds, thread counts and processes.
    pub fn digest(&self) -> String {
        let m = &self.metrics;
        format!(
            "exec_us={} t_sim_us={} t_io_us={} t_viz_us={} bytes={} outputs={} e_compute={:#x} e_storage={:#x} e_retry={:#x} | {}",
            m.execution_time.as_micros(),
            m.t_sim.as_micros(),
            m.t_io.as_micros(),
            m.t_viz.as_micros(),
            m.storage_bytes,
            m.num_outputs,
            m.compute_profile.energy().joules().to_bits(),
            m.storage_profile.energy().joules().to_bits(),
            self.retry_energy.joules().to_bits(),
            self.stats.digest(),
        )
    }
}

/// How one resilient write ended (when it didn't error out).
pub(crate) enum WriteOutcome {
    /// Durable at the carried completion time.
    Written(SimTime),
    /// Shed under disk pressure; the clock did not advance past `at`.
    SpaceShed(SimTime),
}

/// One storage write request as the resilient path sees it.
pub(crate) struct WriteOp<'a> {
    pub(crate) path: &'a str,
    pub(crate) bytes: u64,
    /// Output index, for events.
    pub(crate) index: u64,
    /// Whether this write is one of the run's per-sample outputs (counted
    /// in `outputs_written` / `space_sheds`); the post-processing image
    /// tarball, for instance, is not.
    pub(crate) counts: bool,
}

/// Record a degradation-level transition if one happened.
fn note_level(rec: &Recorder, t: SimTime, change: Option<u8>) {
    if let Some(level) = change {
        rec.event(
            t,
            "degradation_level",
            Component::Fault,
            &[("level", AttrValue::U64(level as u64))],
        );
        rec.gauge_set(t, "fault.degradation_level", level as f64);
    }
}

/// Record a storage fault-state transition.
fn note_fault_state(rec: &Recorder, t: SimTime, s: ivis_fault::StorageState) {
    if !rec.is_on() {
        return;
    }
    rec.event(t, "fault_state", Component::Fault, &[]);
    rec.gauge_set(t, "fault.oss_scale", s.oss_scale);
    rec.gauge_set(t, "fault.mds_surcharge_s", s.mds_surcharge.as_secs_f64());
    rec.gauge_set(t, "fault.reserved_bytes", s.reserved_bytes as f64);
    rec.gauge_set(t, "fault.io_fail_prob", s.io_fail_prob);
}

/// Record a degradation shed of output `index` and count it.
pub(crate) fn note_degraded_shed(
    rec: &Recorder,
    session: &mut FaultSession,
    t: SimTime,
    index: u64,
) {
    session.stats.outputs_shed += 1;
    rec.event(
        t,
        "output_shed",
        Component::Fault,
        &[
            ("index", AttrValue::U64(index)),
            ("reason", AttrValue::Str("degraded")),
        ],
    );
    rec.counter_add(t, "fault.sheds", 1.0);
}

/// Write one output through the retry/timeout/shed machinery.
///
/// The loop: sync the storage hooks to the plan, roll the transient-
/// failure die, attempt the write. Success feeds the degradation state
/// machine (clean if on-SLO and first-try, pressure otherwise); a
/// transient failure backs off (deterministic jitter) and retries up to
/// the policy's budget; `NoSpace` under an active disk-pressure fault
/// sheds the output gracefully; anything else is a terminal
/// [`PipelineError`].
pub(crate) fn resilient_write(
    rec: &Recorder,
    session: &mut FaultSession,
    pfs: &mut ParallelFileSystem,
    mut now: SimTime,
    op: &WriteOp<'_>,
) -> Result<WriteOutcome, PipelineError> {
    let mut failed = 0u32;
    loop {
        if let Some(state) = session.sync_storage(now, pfs) {
            note_fault_state(rec, now, state);
        }
        if session.roll_io_failure(now) {
            pfs.arm_transient_failures(1);
            rec.counter_add(now, "fault.injected_failures", 1.0);
        }
        let wid = rec.span(now, "pfs_write", Component::Storage);
        rec.set_attr(wid, "bytes", AttrValue::U64(op.bytes));
        let submitted = now;
        match pfs.write(now, op.path, op.bytes) {
            Ok(done) => {
                rec.close(done, wid);
                note_write(rec, pfs, submitted, done, op.index, op.bytes);
                if op.counts {
                    session.stats.outputs_written += 1;
                }
                let on_slo = match session.retry.op_slo {
                    Some(slo) => done - submitted <= slo,
                    None => true,
                };
                if !on_slo {
                    session.stats.slo_violations += 1;
                    rec.event(
                        done,
                        "io_slo_violation",
                        Component::Fault,
                        &[
                            ("index", AttrValue::U64(op.index)),
                            (
                                "write_seconds",
                                AttrValue::F64((done - submitted).as_secs_f64()),
                            ),
                        ],
                    );
                    rec.counter_add(done, "fault.slo_violations", 1.0);
                }
                if on_slo && failed == 0 {
                    note_level(rec, done, session.clean());
                } else {
                    note_level(rec, done, session.pressure());
                }
                return Ok(WriteOutcome::Written(done));
            }
            Err(source @ PfsError::Io { .. }) => {
                rec.set_attr(wid, "error", AttrValue::Str("transient-io"));
                rec.close(now, wid);
                failed += 1;
                note_level(rec, now, session.pressure());
                if failed >= session.retry.max_attempts {
                    return Err(PipelineError::RetriesExhausted {
                        at: now,
                        path: op.path.to_string(),
                        attempts: failed,
                        source,
                    });
                }
                let backoff = session.backoff_for(failed);
                rec.event(
                    now,
                    "io_retry",
                    Component::Fault,
                    &[
                        ("index", AttrValue::U64(op.index)),
                        ("attempt", AttrValue::U64((failed + 1) as u64)),
                        ("backoff_seconds", AttrValue::F64(backoff.as_secs_f64())),
                    ],
                );
                rec.counter_add(now, "fault.retries", 1.0);
                rec.histogram_record(now, "fault.retry_backoff_seconds", backoff.as_secs_f64());
                session.note_backoff(now, now + backoff);
                now += backoff;
            }
            Err(source @ PfsError::NoSpace { .. }) => {
                rec.set_attr(wid, "error", AttrValue::Str("no-space"));
                rec.close(now, wid);
                if pfs.reserved_bytes() > 0 {
                    // An active disk-pressure fault withheld the space:
                    // shed the output gracefully instead of aborting.
                    if op.counts {
                        session.stats.space_sheds += 1;
                    }
                    rec.event(
                        now,
                        "output_shed",
                        Component::Fault,
                        &[
                            ("index", AttrValue::U64(op.index)),
                            ("reason", AttrValue::Str("no-space")),
                        ],
                    );
                    rec.counter_add(now, "fault.sheds", 1.0);
                    note_level(rec, now, session.pressure());
                    return Ok(WriteOutcome::SpaceShed(now));
                }
                return Err(PipelineError::storage(now, op.path, source));
            }
            Err(source) => {
                rec.close(now, wid);
                return Err(PipelineError::storage(now, op.path, source));
            }
        }
    }
}

impl Campaign {
    /// Execute one pipeline configuration under a fault scenario.
    ///
    /// With [`FaultScenario::none`] the result's metrics and trace are
    /// bit-identical to [`Campaign::run`]; with a seeded plan the run
    /// degrades gracefully (retries, sheds) or fails with a typed
    /// [`PipelineError`] — never a panic.
    pub fn run_faulted(
        &self,
        pc: &PipelineConfig,
        scenario: &FaultScenario,
    ) -> Result<FaultedRun, PipelineError> {
        let mut session = FaultSession::new(scenario);
        let metrics = match pc.kind {
            PipelineKind::InSitu => self.run_insitu_faulted(pc, &mut session)?,
            PipelineKind::PostProcessing => self.run_postproc_faulted(pc, &mut session)?,
        };
        Ok(FaultedRun::finish(metrics, session))
    }

    /// The in-transit pipeline under a fault scenario; see
    /// [`run_faulted`](Self::run_faulted) for the contract.
    pub fn run_intransit_faulted(
        &self,
        pc: &PipelineConfig,
        it: &InTransitConfig,
        scenario: &FaultScenario,
    ) -> Result<FaultedRun, PipelineError> {
        let mut session = FaultSession::new(scenario);
        let metrics = self.intransit_faulted_inner(pc, it, &mut session)?;
        Ok(FaultedRun::finish(metrics, session))
    }

    /// Fault-aware mirror of the clean in-situ executor.
    fn run_insitu_faulted(
        &self,
        pc: &PipelineConfig,
        session: &mut FaultSession,
    ) -> Result<PipelineMetrics, PipelineError> {
        let mut rng = SimRng::new(self.config.seed);
        let mut machine = self.machine();
        let mut pfs = ParallelFileSystem::caddy_lustre();
        let rec = &self.config.recorder;
        let spec = &pc.spec;
        let n_out = spec.num_outputs(pc.rate);
        let spp = spec.steps_per_output(pc.rate);
        let step_secs = self.cost.step_seconds(spec);
        let mut now = SimTime::ZERO;
        let root = self.open_root(pc, now);
        let mut tracer = PhaseTracer::new(rec);
        let mut written = 0u64;
        for k in 0..n_out {
            tracer.begin(&mut machine, now, JobPhase::Simulate);
            let slow = session.compute_slowdown(now);
            now += SimDuration::from_secs_f64(step_secs * spp as f64 * self.noise(&mut rng) * slow);
            if session.should_shed(k) {
                // Degraded: skip the render and the write for this sample.
                note_degraded_shed(rec, session, now, k);
                continue;
            }
            tracer.begin(&mut machine, now, JobPhase::Visualize);
            now += SimDuration::from_secs_f64(
                self.config.viz_seconds_per_output * self.noise(&mut rng),
            );
            tracer.begin(&mut machine, now, JobPhase::WriteOutput);
            let path = format!("/insitu/cinema/ts_{k:06}.png");
            let op = WriteOp {
                path: &path,
                bytes: self.config.image_bytes_per_output,
                index: k,
                counts: true,
            };
            match resilient_write(rec, session, &mut pfs, now, &op)? {
                WriteOutcome::Written(done) => {
                    now = done;
                    written += 1;
                }
                WriteOutcome::SpaceShed(at) => now = at,
            }
        }
        let trailing = spec.total_steps().saturating_sub(n_out * spp);
        if trailing > 0 {
            tracer.begin(&mut machine, now, JobPhase::Simulate);
            let slow = session.compute_slowdown(now);
            now += SimDuration::from_secs_f64(
                step_secs * trailing as f64 * self.noise(&mut rng) * slow,
            );
        }
        tracer.finish(&mut machine, now);
        rec.close(now, root);
        Ok(self.harvest(pc, machine, &pfs, now, written))
    }

    /// Fault-aware mirror of the clean post-processing executor. Degraded
    /// samples skip their raw dump, and the read-back/render stage scales
    /// with the outputs actually written.
    fn run_postproc_faulted(
        &self,
        pc: &PipelineConfig,
        session: &mut FaultSession,
    ) -> Result<PipelineMetrics, PipelineError> {
        let mut rng = SimRng::new(self.config.seed ^ 0x5151);
        let mut machine = self.machine();
        let mut pfs = ParallelFileSystem::caddy_lustre();
        let rec = &self.config.recorder;
        let spec = &pc.spec;
        let n_out = spec.num_outputs(pc.rate);
        let spp = spec.steps_per_output(pc.rate);
        let step_secs = self.cost.step_seconds(spec);
        let raw = spec.raw_output_bytes();
        let mut now = SimTime::ZERO;
        let root = self.open_root(pc, now);
        let mut tracer = PhaseTracer::new(rec);
        let mut written = 0u64;
        for k in 0..n_out {
            tracer.begin(&mut machine, now, JobPhase::Simulate);
            let slow = session.compute_slowdown(now);
            now += SimDuration::from_secs_f64(step_secs * spp as f64 * self.noise(&mut rng) * slow);
            if session.should_shed(k) {
                note_degraded_shed(rec, session, now, k);
                continue;
            }
            tracer.begin(&mut machine, now, JobPhase::WriteOutput);
            let path = format!("/postproc/raw/out_{k:06}.nc");
            let op = WriteOp {
                path: &path,
                bytes: raw,
                index: k,
                counts: true,
            };
            match resilient_write(rec, session, &mut pfs, now, &op)? {
                WriteOutcome::Written(done) => {
                    now = done;
                    written += 1;
                }
                WriteOutcome::SpaceShed(at) => now = at,
            }
        }
        let trailing = spec.total_steps().saturating_sub(n_out * spp);
        if trailing > 0 {
            tracer.begin(&mut machine, now, JobPhase::Simulate);
            let slow = session.compute_slowdown(now);
            now += SimDuration::from_secs_f64(
                step_secs * trailing as f64 * self.noise(&mut rng) * slow,
            );
        }
        // Stage 2 reads back and renders only what actually landed.
        tracer.begin(&mut machine, now, JobPhase::Visualize);
        let render = self.config.viz_seconds_per_output * written as f64 * self.noise(&mut rng);
        let read = (raw * written) as f64 / self.config.seq_read_bandwidth_bps;
        tracer.attr("render_seconds", AttrValue::F64(render));
        tracer.attr("read_seconds", AttrValue::F64(read));
        now += SimDuration::from_secs_f64(render.max(read));
        tracer.begin(&mut machine, now, JobPhase::WriteOutput);
        let images: u64 = self.config.image_bytes_per_output * written;
        let op = WriteOp {
            path: "/postproc/images.tar",
            bytes: images,
            index: written,
            counts: false,
        };
        match resilient_write(rec, session, &mut pfs, now, &op)? {
            WriteOutcome::Written(done) | WriteOutcome::SpaceShed(done) => now = done,
        }
        tracer.finish(&mut machine, now);
        rec.close(now, root);
        Ok(self.harvest(pc, machine, &pfs, now, written))
    }

    /// Fault-aware mirror of the clean in-transit executor: the staged
    /// transport ([`crate::transport`]) runs with the live session, so
    /// degradation sheds, retry backoff, compute stragglers and
    /// `LinkBrownout` derating all compose with the depth-`k` queue.
    fn intransit_faulted_inner(
        &self,
        pc: &PipelineConfig,
        it: &InTransitConfig,
        session: &mut FaultSession,
    ) -> Result<PipelineMetrics, PipelineError> {
        self.intransit_staged(pc, it, session).map(|(m, _)| m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivis_fault::{DegradationPolicy, FaultKind, FaultPlan, FaultWindow, RetryPolicy};
    use ivis_obs::to_jsonl;

    fn insitu_8h() -> PipelineConfig {
        PipelineConfig::paper(PipelineKind::InSitu, 8.0)
    }

    #[test]
    fn empty_scenario_is_bit_identical_across_paper_matrix() {
        let campaign = Campaign::paper();
        for pc in PipelineConfig::paper_matrix() {
            let clean = campaign.run(&pc);
            let faulted = campaign
                .run_faulted(&pc, &FaultScenario::none())
                .expect("empty scenario cannot fail");
            let m = &faulted.metrics;
            assert_eq!(clean.execution_time, m.execution_time);
            assert_eq!(clean.t_sim, m.t_sim);
            assert_eq!(clean.t_io, m.t_io);
            assert_eq!(clean.t_viz, m.t_viz);
            assert_eq!(clean.storage_bytes, m.storage_bytes);
            assert_eq!(clean.num_outputs, m.num_outputs);
            assert_eq!(
                clean.compute_profile.energy().joules().to_bits(),
                m.compute_profile.energy().joules().to_bits()
            );
            assert_eq!(
                clean.storage_profile.energy().joules().to_bits(),
                m.storage_profile.energy().joules().to_bits()
            );
            let expected = FaultStats {
                outputs_written: clean.num_outputs,
                ..FaultStats::default()
            };
            assert_eq!(faulted.stats, expected);
            assert_eq!(faulted.retry_energy, Joules::ZERO);
        }
    }

    #[test]
    fn empty_scenario_trace_is_bit_identical() {
        let trace = |faulted: bool| {
            let mut campaign = Campaign::paper_noisy(11);
            let rec = Recorder::in_memory();
            campaign.config.recorder = rec.clone();
            let pc = insitu_8h();
            if faulted {
                campaign
                    .run_faulted(&pc, &FaultScenario::none())
                    .expect("empty scenario cannot fail");
            } else {
                campaign.run(&pc);
            }
            rec.with_buffer(to_jsonl).expect("recorder is on")
        };
        assert_eq!(trace(false), trace(true));
    }

    #[test]
    fn brownout_lengthens_io_but_not_compute() {
        let campaign = Campaign::paper();
        let pc = insitu_8h();
        let clean = campaign.run(&pc);
        // Halve the OSS bandwidth for the whole run.
        let plan = FaultPlan::new(1).inject(
            FaultWindow::of_secs(0, 100_000),
            FaultKind::OssBrownout { scale: 0.5 },
        );
        let hurt = campaign
            .run_faulted(&pc, &FaultScenario::with_plan(plan))
            .expect("brownout alone never kills a run");
        let m = &hurt.metrics;
        assert!(
            m.t_io > clean.t_io,
            "halved bandwidth must lengthen I/O: {} vs {}",
            m.t_io.as_secs_f64(),
            clean.t_io.as_secs_f64()
        );
        assert_eq!(m.t_sim, clean.t_sim, "compute untouched");
        assert_eq!(m.num_outputs, clean.num_outputs, "nothing shed");
        assert_eq!(hurt.stats.outputs_written, clean.num_outputs);
    }

    #[test]
    fn transient_window_retries_through_and_completes() {
        let campaign = Campaign::paper();
        let pc = insitu_8h();
        // Every write fails while the window is open; the backoff schedule
        // walks the retries out of the 10 s window.
        let plan = FaultPlan::new(3).inject(
            FaultWindow::of_secs(0, 10),
            FaultKind::TransientIo { fail_prob: 1.0 },
        );
        let run = campaign
            .run_faulted(&pc, &FaultScenario::with_plan(plan))
            .expect("retries must carry the run past a 10 s outage");
        assert!(run.stats.injected_io_failures >= 1);
        assert_eq!(run.stats.retries, run.stats.injected_io_failures);
        assert!(run.stats.backoff > SimDuration::ZERO);
        assert!(run.retry_energy.joules() > 0.0, "backoff burns energy");
        assert_eq!(run.stats.outputs_total(), 540);
        let clean = campaign.run(&pc);
        assert!(run.metrics.execution_time > clean.execution_time);
    }

    #[test]
    fn persistent_outage_fails_with_typed_error_not_panic() {
        let campaign = Campaign::paper();
        let pc = insitu_8h();
        let plan = FaultPlan::new(4).inject(
            FaultWindow::of_secs(0, 1_000_000),
            FaultKind::TransientIo { fail_prob: 1.0 },
        );
        let mut scenario = FaultScenario::with_plan(plan);
        scenario.retry = RetryPolicy::no_retries();
        let err = campaign.run_faulted(&pc, &scenario).unwrap_err();
        match err {
            PipelineError::RetriesExhausted {
                attempts, ref path, ..
            } => {
                assert_eq!(attempts, 1);
                assert!(path.contains("/insitu/cinema/"));
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        assert!(err.to_string().contains("retries exhausted"));
    }

    #[test]
    fn sustained_pressure_degrades_and_recovers() {
        let campaign = Campaign::paper();
        let pc = insitu_8h();
        // A long mid-run transient storm: enough consecutive failures to
        // escalate, then a clean tail to recover.
        let plan = FaultPlan::new(5).inject(
            FaultWindow::of_secs(50, 300),
            FaultKind::TransientIo { fail_prob: 0.9 },
        );
        let mut scenario = FaultScenario::with_plan(plan);
        scenario.degradation = DegradationPolicy {
            pressure_trigger: 2,
            clean_recover: 4,
            max_level: 3,
        };
        // Enough backoff budget (2+4+...+60·5 ≈ 360 s, jitter floor ×0.75)
        // to walk any retry chain out of the 250 s storm.
        scenario.retry.max_attempts = 10;
        let run = campaign
            .run_faulted(&pc, &scenario)
            .expect("degrades, not dies");
        assert!(run.stats.escalations >= 1, "storm must escalate");
        assert!(run.stats.outputs_shed >= 1, "degraded level sheds samples");
        assert!(
            run.stats.recoveries >= 1,
            "clean tail must recover: {:?}",
            run.stats
        );
        assert_eq!(run.stats.final_level, 0, "fully recovered by the end");
        assert_eq!(run.stats.outputs_total(), 540, "every sample accounted for");
        assert_eq!(run.metrics.num_outputs, run.stats.outputs_written);
    }

    #[test]
    fn disk_pressure_sheds_raw_dumps_gracefully() {
        let campaign = Campaign::paper();
        let pc = PipelineConfig::paper(PipelineKind::PostProcessing, 8.0);
        let clean = campaign.run(&pc);
        // Reserve all but 100 MB of the rack: every 426 MB raw dump sheds.
        let capacity = 7_700_000_000_000u64;
        let plan = FaultPlan::new(6).inject(
            FaultWindow::of_secs(0, 1_000_000),
            FaultKind::DiskPressure {
                reserve_bytes: capacity - 100_000_000,
            },
        );
        let run = campaign
            .run_faulted(&pc, &FaultScenario::with_plan(plan))
            .expect("full disk degrades, not dies");
        assert!(run.stats.space_sheds >= 1);
        assert_eq!(run.stats.outputs_total(), 540);
        assert!(
            run.metrics.storage_bytes < clean.storage_bytes / 100,
            "shed run stores almost nothing: {} vs {}",
            run.metrics.storage_bytes,
            clean.storage_bytes
        );
        assert_eq!(run.metrics.num_outputs, run.stats.outputs_written);
    }

    #[test]
    fn straggler_gates_the_bulk_synchronous_step() {
        let campaign = Campaign::paper();
        let pc = insitu_8h();
        let clean = campaign.run(&pc);
        let plan = FaultPlan::new(7).inject(
            FaultWindow::of_secs(0, 1_000_000),
            FaultKind::ComputeStraggler { slowdown: 2.0 },
        );
        let run = campaign
            .run_faulted(&pc, &FaultScenario::with_plan(plan))
            .expect("stragglers only slow the run");
        let slowed = run.metrics.t_sim.as_secs_f64();
        let base = clean.t_sim.as_secs_f64();
        // Per-chunk microsecond rounding leaves sub-millisecond residue
        // over the 540 chunks.
        assert!(
            (slowed - 2.0 * base).abs() < 0.01,
            "BSP slowdown doubles t_sim: {slowed} vs {base}"
        );
    }

    #[test]
    fn intransit_empty_scenario_matches_clean_run() {
        let campaign = Campaign::paper();
        let mut pc = insitu_8h();
        pc.kind = crate::intransit::reported_kind();
        let it = InTransitConfig::caddy_default();
        let clean = campaign.run_intransit(&pc, &it);
        let faulted = campaign
            .run_intransit_faulted(&pc, &it, &FaultScenario::none())
            .expect("empty scenario cannot fail");
        assert_eq!(clean.execution_time, faulted.metrics.execution_time);
        assert_eq!(clean.t_sim, faulted.metrics.t_sim);
        assert_eq!(
            clean.compute_profile.energy().joules().to_bits(),
            faulted.metrics.compute_profile.energy().joules().to_bits()
        );
        let expected = FaultStats {
            outputs_written: clean.num_outputs,
            ..FaultStats::default()
        };
        assert_eq!(faulted.stats, expected);
    }

    #[test]
    fn faulted_run_digest_is_replay_stable() {
        let campaign = Campaign::paper();
        let pc = insitu_8h();
        let plan = FaultPlan::random(42, SimDuration::from_secs(1300));
        let scenario = FaultScenario::with_plan(plan);
        let a = campaign.run_faulted(&pc, &scenario).map(|r| r.digest());
        let b = campaign.run_faulted(&pc, &scenario).map(|r| r.digest());
        assert_eq!(a.ok(), b.ok());
    }
}
