//! The staged compute→staging transport of the in-transit pipeline.
//!
//! The original in-transit executor models *synchronous* staging: one
//! sample in flight, the compute partition blocked through the whole
//! hand-off. Real in-transit deployments (DataSpaces, ADIOS staging)
//! instead keep a bounded queue of samples in flight and ship them
//! asynchronously, optionally compressed. This module grows the hand-off
//! into that transport while keeping the synchronous behavior as the
//! exactly-reproducible `depth = 1` corner:
//!
//! * [`TransportConfig`] — queue depth and optional [`CompressionConfig`];
//!   the default ([`TransportConfig::synchronous`]) reproduces the
//!   synchronous reference executor **bit-identically** (metrics, machine
//!   timeline, RNG draw order and storage schedule) — a golden test pins
//!   this.
//! * depth `k > 1` — the compute partition submits a sample and moves on;
//!   it blocks (busy-wait, accounted as `WriteOutput` I/O time) only when
//!   `k` samples are already in flight. Concurrent transfers contend on a
//!   [`SharedLink`] (FIFO), so link serialization is priced, not ignored.
//! * compression — the raw field shrinks by `ratio` on the wire; the
//!   compress cost is charged to the *compute* partition and the
//!   decompress cost to the *staging* partition, each scaled by the
//!   partition's node count.
//!
//! Instrumentation: every hand-off is a [`Component::Transport`] span with
//! queueing attributes; queue depth is a gauge, stalls and shipped bytes
//! are counters — all zero-cost when the recorder is off.

use std::collections::VecDeque;

use ivis_cluster::{JobPhase, SharedLink};
use ivis_fault::FaultSession;
use ivis_obs::{AttrValue, Component};
use ivis_ocean::cost::SimulationCostModel;
use ivis_sim::{SimDuration, SimRng, SimTime};
use ivis_storage::ParallelFileSystem;

use crate::campaign::Campaign;
use crate::config::PipelineConfig;
use crate::intransit::InTransitConfig;
use crate::metrics::PipelineMetrics;
use crate::resilience::{
    note_degraded_shed, resilient_write, PipelineError, WriteOp, WriteOutcome,
};

/// Per-staging-node share of a payload fanned out over `staging_nodes`
/// links, rounded **up**: the hand-off completes when the most-loaded link
/// finishes, so truncating division (`total / staging`) under-prices the
/// transfer whenever the payload does not divide evenly.
///
/// # Panics
/// Panics if `staging_nodes` is zero.
pub fn per_node_payload(total_bytes: u64, staging_nodes: u64) -> u64 {
    assert!(staging_nodes > 0, "staging fan-out needs at least one node");
    total_bytes.div_ceil(staging_nodes)
}

/// Wire compression model for the hand-off.
///
/// Rates are per-node throughputs over the *raw* (uncompressed) bytes;
/// each partition processes its share of the field in parallel, so the
/// charged time is `raw / (rate × partition_nodes)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionConfig {
    /// Compression ratio (raw / wire bytes), ≥ 1.
    pub ratio: f64,
    /// Per-node compress throughput in raw bytes per second.
    pub compress_node_bps: f64,
    /// Per-node decompress throughput in raw bytes per second.
    pub decompress_node_bps: f64,
}

impl CompressionConfig {
    /// A fixed-rate floating-point compressor in the zfp/fpzip class:
    /// 4:1 on smooth ocean fields, ~1.6 GB/s in and ~2.4 GB/s out per
    /// node core-parallel.
    pub fn zfp_like() -> Self {
        CompressionConfig {
            ratio: 4.0,
            compress_node_bps: 1.6e9,
            decompress_node_bps: 2.4e9,
        }
    }

    /// Bytes actually placed on the wire for a `raw`-byte field.
    pub fn wire_bytes(&self, raw: u64) -> u64 {
        (raw as f64 / self.ratio).ceil() as u64
    }

    fn validate(&self) {
        assert!(
            self.ratio.is_finite() && self.ratio >= 1.0,
            "compression ratio must be finite and >= 1, got {}",
            self.ratio
        );
        assert!(
            self.compress_node_bps.is_finite() && self.compress_node_bps > 0.0,
            "compress throughput must be finite and positive, got {}",
            self.compress_node_bps
        );
        assert!(
            self.decompress_node_bps.is_finite() && self.decompress_node_bps > 0.0,
            "decompress throughput must be finite and positive, got {}",
            self.decompress_node_bps
        );
    }
}

/// How the compute→staging hand-off is staged.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportConfig {
    /// Maximum samples in flight (queued or being rendered) before the
    /// compute partition blocks. Depth 1 is the synchronous hand-off.
    pub depth: usize,
    /// Optional wire compression; `None` ships the raw field.
    pub compression: Option<CompressionConfig>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig::synchronous()
    }
}

impl TransportConfig {
    /// The synchronous hand-off: depth 1, no compression. Reproduces the
    /// reference executor bit-identically.
    pub fn synchronous() -> Self {
        TransportConfig {
            depth: 1,
            compression: None,
        }
    }

    /// An asynchronous transport with a bounded in-flight queue.
    ///
    /// # Panics
    /// Panics if `depth` is zero.
    pub fn pipelined(depth: usize) -> Self {
        assert!(depth >= 1, "transport depth must be at least 1");
        TransportConfig {
            depth,
            compression: None,
        }
    }

    /// Enable wire compression (builder style).
    pub fn with_compression(mut self, compression: CompressionConfig) -> Self {
        compression.validate();
        self.compression = Some(compression);
        self
    }

    /// Whether this is the synchronous depth-1 hand-off.
    pub fn is_synchronous(&self) -> bool {
        self.depth == 1
    }

    pub(crate) fn validate(&self) {
        assert!(self.depth >= 1, "transport depth must be at least 1");
        if let Some(c) = &self.compression {
            c.validate();
        }
    }
}

/// What the transport did over one run, for the staging-sweep model and
/// the bench gate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransportStats {
    /// Configured queue depth.
    pub depth: usize,
    /// Samples actually submitted to the transport (sheds excluded).
    pub samples_shipped: u64,
    /// Total bytes placed on the wire (post-compression, all links).
    pub bytes_shipped: u64,
    /// High-water mark of samples in flight; never exceeds `depth`.
    pub max_in_flight: usize,
    /// Compute time blocked on a full queue (busy-wait, billed as I/O).
    pub stall_time: SimDuration,
    /// Time transfers spent queued behind earlier traffic on the link.
    pub link_queued: SimDuration,
    /// Total link-busy time across all transfers.
    pub link_busy: SimDuration,
    /// Compute-partition time spent compressing.
    pub compress_time: SimDuration,
    /// Staging-partition time spent decompressing.
    pub decompress_time: SimDuration,
}

impl Campaign {
    /// The staged in-transit executor shared by the clean and fault-aware
    /// entry points.
    ///
    /// With [`TransportConfig::synchronous`] and an empty fault plan this
    /// reproduces the synchronous reference executor bit-identically:
    /// same RNG draw order, same machine phase timeline, same storage
    /// submission times. Asynchronous depths overlap the hand-off with
    /// the next simulation chunk and block only on a full queue; an
    /// active `LinkBrownout` derates the shared link's bandwidth while
    /// its window is open.
    pub(crate) fn intransit_staged(
        &self,
        pc: &PipelineConfig,
        it: &InTransitConfig,
        session: &mut FaultSession,
    ) -> Result<(PipelineMetrics, TransportStats), PipelineError> {
        it.transport.validate();
        let mut rng = SimRng::new(self.config.seed ^ 0x17A7);
        let mut machine = self.machine();
        let mut pfs = ParallelFileSystem::caddy_lustre();
        let rec = &self.config.recorder;
        let spec = &pc.spec;
        let n_out = spec.num_outputs(pc.rate);
        let spp = spec.steps_per_output(pc.rate);
        let total_nodes = machine.topology().num_nodes();
        assert!(
            it.staging_nodes > 0 && it.staging_nodes < total_nodes,
            "staging partition must be a proper subset of the machine"
        );
        let staging = it.staging_nodes;
        let cores_per_node = machine.topology().cores_per_node();
        let mut cost: SimulationCostModel = self.cost.clone();
        cost.cores = ((total_nodes - staging) * cores_per_node) as u64;
        let step_secs = cost.step_seconds(spec);
        let staging_viz_secs =
            self.config.viz_seconds_per_output * total_nodes as f64 / staging as f64;

        // Wire payload and codec costs. Compression shrinks the field on
        // the wire; compute pays the compress, staging the decompress.
        let raw = spec.raw_output_bytes();
        let (wire_total, compress_t, decompress_t) = match &it.transport.compression {
            Some(c) => (
                c.wire_bytes(raw),
                SimDuration::from_secs_f64(
                    raw as f64 / (c.compress_node_bps * (total_nodes - staging) as f64),
                ),
                SimDuration::from_secs_f64(raw as f64 / (c.decompress_node_bps * staging as f64)),
            ),
            None => (raw, SimDuration::ZERO, SimDuration::ZERO),
        };
        let per_node = per_node_payload(wire_total, staging as u64);
        let depth = it.transport.depth;
        let mut link = SharedLink::new(it.interconnect.clone());

        let root = self.open_root(pc, SimTime::ZERO);
        rec.set_attr(root, "staging_nodes", AttrValue::U64(staging as u64));
        rec.set_attr(root, "transport_depth", AttrValue::U64(depth as u64));
        if let Some(c) = &it.transport.compression {
            rec.set_attr(root, "compression_ratio", AttrValue::F64(c.ratio));
        }

        let mut now = SimTime::ZERO; // compute-partition clock
        let mut staging_busy_until = SimTime::ZERO; // last queued completion
        let mut inflight: VecDeque<SimTime> = VecDeque::with_capacity(depth);
        let mut stats = TransportStats {
            depth,
            ..TransportStats::default()
        };
        let mut written = 0u64;
        for k in 0..n_out {
            // Simulate the chunk; staging works off its backlog alongside.
            let slow = session.compute_slowdown(now);
            let chunk =
                SimDuration::from_secs_f64(step_secs * spp as f64 * self.noise(&mut rng) * slow);
            if staging_busy_until > now {
                machine.begin_split_phase(now, staging, JobPhase::Simulate, JobPhase::Visualize);
                if staging_busy_until < now + chunk {
                    // Staging drains its queue mid-chunk.
                    machine.begin_split_phase(
                        staging_busy_until,
                        staging,
                        JobPhase::Simulate,
                        JobPhase::Idle,
                    );
                }
            } else {
                machine.begin_split_phase(now, staging, JobPhase::Simulate, JobPhase::Idle);
            }
            now += chunk;
            if session.should_shed(k) {
                // Degraded: no hand-off, no render, no image for this sample.
                note_degraded_shed(rec, session, now, k);
                continue;
            }
            // Compress on the compute partition before shipping.
            if !compress_t.is_zero() {
                let staging_phase = if staging_busy_until > now {
                    JobPhase::Visualize
                } else {
                    JobPhase::Idle
                };
                machine.begin_split_phase(now, staging, JobPhase::Visualize, staging_phase);
                let cid = rec.span(now, "compress", Component::Transport);
                rec.set_attr(cid, "index", AttrValue::U64(k));
                now += compress_t;
                rec.close(now, cid);
                stats.compress_time += compress_t;
            }
            // Backpressure: at most `depth` samples in flight. Completed
            // samples leave the queue silently; a full queue blocks the
            // compute partition (busy-wait, billed as WriteOutput) until
            // the oldest sample retires — at depth 1 this is exactly the
            // synchronous "wait for staging_free" of the reference.
            while inflight.front().is_some_and(|&d| d <= now) {
                inflight.pop_front();
            }
            if inflight.len() >= depth {
                let free = inflight[0];
                machine.begin_split_phase(now, staging, JobPhase::WriteOutput, JobPhase::Visualize);
                stats.stall_time += free.duration_since(now);
                rec.event(
                    now,
                    "transport_stall",
                    Component::Transport,
                    &[
                        ("index", AttrValue::U64(k)),
                        (
                            "wait_seconds",
                            AttrValue::F64(free.duration_since(now).as_secs_f64()),
                        ),
                    ],
                );
                rec.counter_add(now, "transport.stalls", 1.0);
                rec.histogram_record(
                    now,
                    "transport.stall_seconds",
                    free.duration_since(now).as_secs_f64(),
                );
                now = free;
                while inflight.front().is_some_and(|&d| d <= now) {
                    inflight.pop_front();
                }
            }
            // Ship over the shared link. Synchronous depth blocks through
            // the transfer; deeper queues overlap it with the next chunk.
            link.set_bandwidth_scale(session.link_scale(now));
            let submit = now;
            if depth == 1 {
                machine.begin_split_phase(
                    now,
                    staging,
                    JobPhase::WriteOutput,
                    JobPhase::WriteOutput,
                );
            }
            let xfer = link.transfer(submit, per_node);
            if depth == 1 {
                now = xfer.done;
            }
            let hid = rec.span(submit, "handoff", Component::Transport);
            rec.set_attr(hid, "index", AttrValue::U64(k));
            rec.set_attr(hid, "wire_bytes", AttrValue::U64(per_node));
            rec.set_attr(
                hid,
                "queued_seconds",
                AttrValue::F64(xfer.queued(submit).as_secs_f64()),
            );
            rec.close(xfer.done, hid);
            // Staging serves FIFO: decompress + render behind whatever is
            // still queued, then the image write retires the sample.
            let render = SimDuration::from_secs_f64(staging_viz_secs * self.noise(&mut rng));
            let service_start = xfer.done.max(staging_busy_until);
            let render_done = service_start + decompress_t + render;
            stats.decompress_time += decompress_t;
            let path = format!("/intransit/cinema/ts_{k:06}.png");
            let op = WriteOp {
                path: &path,
                bytes: self.config.image_bytes_per_output,
                index: k,
                counts: true,
            };
            let completion = match resilient_write(rec, session, &mut pfs, render_done, &op)? {
                WriteOutcome::Written(done) => {
                    written += 1;
                    done
                }
                WriteOutcome::SpaceShed(at) => at,
            };
            staging_busy_until = completion;
            inflight.push_back(completion);
            stats.samples_shipped += 1;
            stats.bytes_shipped += per_node * staging as u64;
            if inflight.len() > stats.max_in_flight {
                stats.max_in_flight = inflight.len();
            }
            rec.gauge_set(submit, "transport.queue_depth", inflight.len() as f64);
            rec.histogram_record(submit, "transport.queue_depth_dist", inflight.len() as f64);
            rec.counter_add(
                submit,
                "transport.bytes_shipped",
                (per_node * staging as u64) as f64,
            );
        }
        // Trailing simulation steps, then wait out the staging tail.
        let trailing = spec.total_steps().saturating_sub(n_out * spp);
        if trailing > 0 {
            machine.begin_split_phase(now, staging, JobPhase::Simulate, JobPhase::Idle);
            let slow = session.compute_slowdown(now);
            now += SimDuration::from_secs_f64(
                step_secs * trailing as f64 * self.noise(&mut rng) * slow,
            );
        }
        if staging_busy_until > now {
            machine.begin_split_phase(now, staging, JobPhase::Idle, JobPhase::Visualize);
            now = staging_busy_until;
        }
        machine.finish(now);
        rec.close(now, root);
        stats.link_queued = link.queued_time();
        stats.link_busy = link.busy_time();
        Ok((self.harvest(pc, machine, &pfs, now, written), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineKind;
    use crate::intransit::reported_kind;

    fn it_config(staging: usize, transport: TransportConfig) -> InTransitConfig {
        InTransitConfig {
            staging_nodes: staging,
            transport,
            ..InTransitConfig::caddy_default()
        }
    }

    fn run(
        staging: usize,
        hours: f64,
        transport: TransportConfig,
    ) -> (PipelineMetrics, TransportStats) {
        let campaign = Campaign::paper();
        let mut pc = PipelineConfig::paper(PipelineKind::InSitu, hours);
        pc.kind = reported_kind();
        campaign
            .try_run_intransit_with_stats(&pc, &it_config(staging, transport))
            .expect("clean staged run cannot fail")
    }

    #[test]
    fn per_node_payload_rounds_up() {
        assert_eq!(per_node_payload(100, 10), 10);
        assert_eq!(per_node_payload(101, 10), 11);
        assert_eq!(per_node_payload(9, 10), 1);
        assert_eq!(per_node_payload(0, 10), 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn per_node_payload_rejects_zero_fanout() {
        let _ = per_node_payload(100, 0);
    }

    #[test]
    fn deeper_queue_never_slower_and_strictly_faster_when_staging_bound() {
        // 10 staging nodes at the 8 h rate are render-bound: at depth 1
        // staging idles through every synchronous transfer, so depth 4
        // strictly shortens the makespan by overlapping them.
        let (d1, s1) = run(10, 8.0, TransportConfig::synchronous());
        let (d4, s4) = run(10, 8.0, TransportConfig::pipelined(4));
        assert!(
            d4.execution_time < d1.execution_time,
            "depth 4 must beat depth 1 when staging-bound: {} vs {}",
            d4.execution_time.as_secs_f64(),
            d1.execution_time.as_secs_f64()
        );
        assert_eq!(s1.max_in_flight, 1);
        assert!(s4.max_in_flight <= 4);
        assert_eq!(s1.samples_shipped, s4.samples_shipped);
        assert_eq!(s1.bytes_shipped, s4.bytes_shipped);
        assert_eq!(d1.num_outputs, d4.num_outputs);
    }

    #[test]
    fn compression_shrinks_wire_bytes_and_charges_codec_time() {
        let (_, raw) = run(10, 24.0, TransportConfig::synchronous());
        let (_, zfp) = run(
            10,
            24.0,
            TransportConfig::synchronous().with_compression(CompressionConfig::zfp_like()),
        );
        assert!(
            zfp.bytes_shipped * 3 < raw.bytes_shipped,
            "4:1 compression ships ~a quarter of the bytes: {} vs {}",
            zfp.bytes_shipped,
            raw.bytes_shipped
        );
        assert!(zfp.compress_time > SimDuration::ZERO);
        assert!(zfp.decompress_time > SimDuration::ZERO);
        assert_eq!(raw.compress_time, SimDuration::ZERO);
    }

    #[test]
    fn link_accounting_is_conserved() {
        let (_, s) = run(25, 24.0, TransportConfig::pipelined(2));
        // Every shipped sample holds the link once; busy time is the sum
        // of per-transfer service times, strictly positive.
        assert!(s.link_busy > SimDuration::ZERO);
        assert_eq!(s.depth, 2);
        assert!(s.max_in_flight >= 1);
    }

    #[test]
    fn wire_bytes_rounds_up() {
        let c = CompressionConfig {
            ratio: 3.0,
            compress_node_bps: 1e9,
            decompress_node_bps: 1e9,
        };
        assert_eq!(c.wire_bytes(10), 4); // ceil(10/3)
        assert_eq!(c.wire_bytes(0), 0);
    }

    #[test]
    #[should_panic(expected = "transport depth")]
    fn zero_depth_rejected() {
        let _ = TransportConfig::pipelined(0);
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn sub_unity_ratio_rejected() {
        let _ = TransportConfig::synchronous().with_compression(CompressionConfig {
            ratio: 0.5,
            compress_node_bps: 1e9,
            decompress_node_bps: 1e9,
        });
    }
}
