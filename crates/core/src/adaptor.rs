//! The Catalyst-style adaptor.
//!
//! ParaView Catalyst couples a simulation to in-situ visualization through
//! *adaptors* that "seamlessly copy simulation data structures to ParaView
//! data structures" (paper §IV-B) — incurring extra memory traffic but
//! avoiding the trip to storage. [`CatalystAdaptor`] does the same here: it
//! interpolates the solver's staggered velocities to cell centers, derives
//! the Okubo-Weiss field, and hands a self-contained [`VizSnapshot`] to the
//! rendering side, while accounting for the bytes it copied.

use ivis_ocean::okubo_weiss::{okubo_weiss, okubo_weiss_into};
use ivis_ocean::{Field2D, ShallowWaterModel};

/// A visualization-ready snapshot, decoupled from the solver's internal
/// (staggered) representation.
#[derive(Debug, Clone)]
pub struct VizSnapshot {
    /// Solver step at capture.
    pub timestep: u64,
    /// Simulated time at capture, hours.
    pub sim_hours: f64,
    /// Surface elevation at cell centers.
    pub ssh: Field2D,
    /// Zonal velocity at cell centers.
    pub uc: Field2D,
    /// Meridional velocity at cell centers.
    pub vc: Field2D,
    /// The Okubo-Weiss field.
    pub okubo_weiss: Field2D,
}

/// The adaptor, with copy-traffic accounting.
#[derive(Debug, Clone, Default)]
pub struct CatalystAdaptor {
    bytes_copied: u64,
    adaptations: u64,
}

impl CatalystAdaptor {
    /// A fresh adaptor.
    pub fn new() -> Self {
        CatalystAdaptor::default()
    }

    /// Capture a snapshot of the model. This performs the C-grid →
    /// cell-center interpolation, computes Okubo-Weiss, and deep-copies the
    /// fields the visualization needs.
    pub fn adapt(&mut self, model: &ShallowWaterModel) -> VizSnapshot {
        let (uc, vc) = model.centered_velocities();
        let w = okubo_weiss(model.grid(), &uc, &vc);
        let ssh = model.state().h.clone();
        // Copied payload: centered velocities, W and SSH.
        self.bytes_copied += 8 * (uc.len() + vc.len() + w.len() + ssh.len()) as u64;
        self.adaptations += 1;
        VizSnapshot {
            timestep: model.steps(),
            sim_hours: model.time() / 3_600.0,
            ssh,
            uc,
            vc,
            okubo_weiss: w,
        }
    }

    /// [`CatalystAdaptor::adapt`] into a recycled snapshot — same values,
    /// same byte accounting, but the four fields are written in place, so
    /// pipelines that return snapshots to the producer adapt without
    /// allocating.
    ///
    /// # Panics
    /// Panics if the snapshot's fields do not match the model's grid shape.
    pub fn adapt_into(&mut self, model: &ShallowWaterModel, snap: &mut VizSnapshot) {
        model.centered_velocities_into(&mut snap.uc, &mut snap.vc);
        okubo_weiss_into(model.grid(), &snap.uc, &snap.vc, &mut snap.okubo_weiss);
        snap.ssh.data_mut().copy_from_slice(model.state().h.data());
        self.bytes_copied +=
            8 * (snap.uc.len() + snap.vc.len() + snap.okubo_weiss.len() + snap.ssh.len()) as u64;
        self.adaptations += 1;
        snap.timestep = model.steps();
        snap.sim_hours = model.time() / 3_600.0;
    }

    /// Total bytes copied across all adaptations — the in-situ overhead the
    /// paper notes ("this incurs additional memory operations").
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Number of snapshots taken.
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivis_ocean::grid::Grid;
    use ivis_ocean::shallow_water::SwParams;
    use ivis_ocean::vortex::{seed_vortex, Vortex};

    fn model_with_eddy() -> ShallowWaterModel {
        let grid = Grid::channel(32, 24, 60_000.0);
        let params = SwParams::eddy_channel(&grid);
        let mut m = ShallowWaterModel::new(grid, params);
        let (lx, ly) = m.grid().extent();
        seed_vortex(
            &mut m,
            &Vortex {
                x: lx / 2.0,
                y: ly / 2.0,
                radius: 150_000.0,
                amplitude: 1.0,
            },
        );
        m
    }

    #[test]
    fn snapshot_carries_derived_fields() {
        let mut m = model_with_eddy();
        m.run(4);
        let mut adaptor = CatalystAdaptor::new();
        let snap = adaptor.adapt(&m);
        assert_eq!(snap.timestep, 4);
        assert!(snap.sim_hours > 0.0);
        assert_eq!(snap.okubo_weiss.nx(), m.grid().nx);
        // Eddy core: the W field must have negative values.
        assert!(snap.okubo_weiss.min() < 0.0);
        assert_eq!(snap.ssh.data(), m.state().h.data());
    }

    #[test]
    fn copy_accounting_accumulates() {
        let m = model_with_eddy();
        let mut adaptor = CatalystAdaptor::new();
        let n = m.grid().num_cells() as u64;
        adaptor.adapt(&m);
        assert_eq!(adaptor.adaptations(), 1);
        assert_eq!(adaptor.bytes_copied(), 8 * 4 * n);
        adaptor.adapt(&m);
        assert_eq!(adaptor.adaptations(), 2);
        assert_eq!(adaptor.bytes_copied(), 2 * 8 * 4 * n);
    }

    #[test]
    fn adapt_into_matches_adapt_exactly() {
        let mut m = model_with_eddy();
        m.run(4);
        let mut fresh_adaptor = CatalystAdaptor::new();
        let fresh = fresh_adaptor.adapt(&m);

        // Recycle a snapshot taken at a different model state: adapt_into
        // must fully overwrite it and land bit-identical to adapt().
        let mut stale_model = model_with_eddy();
        stale_model.run(1);
        let mut adaptor = CatalystAdaptor::new();
        let mut snap = adaptor.adapt(&stale_model);
        adaptor.adapt_into(&m, &mut snap);

        assert_eq!(snap.timestep, fresh.timestep);
        assert_eq!(snap.sim_hours, fresh.sim_hours);
        assert_eq!(snap.ssh.data(), fresh.ssh.data());
        assert_eq!(snap.uc.data(), fresh.uc.data());
        assert_eq!(snap.vc.data(), fresh.vc.data());
        assert_eq!(snap.okubo_weiss.data(), fresh.okubo_weiss.data());
        // Same accounting as two adapt() calls.
        let n = m.grid().num_cells() as u64;
        assert_eq!(adaptor.adaptations(), 2);
        assert_eq!(adaptor.bytes_copied(), 2 * 8 * 4 * n);
    }

    #[test]
    fn snapshot_is_independent_of_model() {
        // Mutating the model after adapt must not change the snapshot.
        let mut m = model_with_eddy();
        let mut adaptor = CatalystAdaptor::new();
        let snap = adaptor.adapt(&m);
        let before = snap.ssh.data().to_vec();
        m.run(10);
        assert_eq!(snap.ssh.data(), &before[..]);
    }
}
