//! The measured quantities of one pipeline run — the rows behind the
//! paper's Figs. 3, 5, 6 and 7.

use ivis_power::profile::PowerProfile;
use ivis_power::units::{Joules, Watts};
use ivis_sim::SimDuration;

use crate::config::{PipelineConfig, PipelineKind};

/// Everything the instrumented run produces.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    /// Pipeline flavor.
    pub kind: PipelineKind,
    /// Sampling interval in simulated hours.
    pub rate_hours: f64,
    /// Total execution time (Fig. 3).
    pub execution_time: SimDuration,
    /// Time in the simulation phase (the model's t_sim).
    pub t_sim: SimDuration,
    /// Time in I/O phases (the model's t_i/o).
    pub t_io: SimDuration,
    /// Time in visualization phases (the model's t_viz).
    pub t_viz: SimDuration,
    /// Bytes committed to the filesystem (Fig. 7).
    pub storage_bytes: u64,
    /// Output products written.
    pub num_outputs: u64,
    /// Compute-cluster power profile, from the cage meters (Fig. 4).
    pub compute_profile: PowerProfile,
    /// Storage-rack power profile, from the rack meter (Fig. 4).
    pub storage_profile: PowerProfile,
}

impl PipelineMetrics {
    /// Average compute power over the run (from the metered profile).
    pub fn avg_power_compute(&self) -> Watts {
        self.compute_profile.average_power()
    }

    /// Average storage power over the run.
    pub fn avg_power_storage(&self) -> Watts {
        self.storage_profile.average_power()
    }

    /// Average total power (Fig. 5: compute + storage).
    pub fn avg_power_total(&self) -> Watts {
        self.avg_power_compute() + self.avg_power_storage()
    }

    /// Total energy (Fig. 6): compute + storage, from the metered profiles.
    pub fn energy_total(&self) -> Joules {
        self.compute_profile.energy() + self.storage_profile.energy()
    }

    /// Storage footprint in GB (decimal, as the paper plots).
    pub fn storage_gb(&self) -> f64 {
        self.storage_bytes as f64 / 1e9
    }

    /// A replay-stability witness: every duration in exact microseconds,
    /// every metered energy as raw `f64` bits. Two runs with equal
    /// digests are bit-identical in everything the paper reports — this
    /// is what the differential DES harness (`tests/des_identity.rs`)
    /// compares between the reference loops and the event-queue engine.
    pub fn digest(&self) -> String {
        format!(
            "kind={} rate_mh={} exec_us={} t_sim_us={} t_io_us={} t_viz_us={} bytes={} outputs={} e_compute={:#x} e_storage={:#x}",
            self.kind.label(),
            // Exact millihours, so 0.5-hour rates stay integral.
            (self.rate_hours * 1000.0).round() as i64,
            self.execution_time.as_micros(),
            self.t_sim.as_micros(),
            self.t_io.as_micros(),
            self.t_viz.as_micros(),
            self.storage_bytes,
            self.num_outputs,
            self.compute_profile.energy().joules().to_bits(),
            self.storage_profile.energy().joules().to_bits(),
        )
    }

    /// A one-line report row.
    pub fn row(&self) -> String {
        format!(
            "{:<16} every {:>3} h | t={:>8.1} s (sim {:>7.1} io {:>7.1} viz {:>6.1}) | P={:>8.2} kW | E={:>8.2} MJ | S={:>9.3} GB",
            self.kind.label(),
            self.rate_hours,
            self.execution_time.as_secs_f64(),
            self.t_sim.as_secs_f64(),
            self.t_io.as_secs_f64(),
            self.t_viz.as_secs_f64(),
            self.avg_power_total().kilowatts(),
            self.energy_total().megajoules(),
            self.storage_gb(),
        )
    }
}

/// Percentage saving of `a` relative to `b`: `(b − a) / b × 100`.
///
/// A zero (or non-finite) baseline has no meaningful percentage — return
/// 0 % rather than the `inf`/`NaN` that would otherwise leak into every
/// downstream comparison row.
fn saving_pct(a: f64, b: f64) -> f64 {
    if b == 0.0 || !b.is_finite() || !a.is_finite() {
        return 0.0;
    }
    (b - a) / b * 100.0
}

/// In-situ vs post-processing comparison at one sampling rate — the
/// "51 % faster, 50 % less energy, 99.5 % less disk" numbers.
#[derive(Debug, Clone)]
pub struct PipelineComparison {
    /// Sampling interval, simulated hours.
    pub rate_hours: f64,
    /// Execution-time saving of in-situ over post-processing, percent.
    pub time_saving_pct: f64,
    /// Energy saving, percent.
    pub energy_saving_pct: f64,
    /// Storage reduction, percent.
    pub storage_reduction_pct: f64,
    /// Average-power difference (in-situ − post), watts.
    pub power_delta: Watts,
}

/// Compare an in-situ run against a post-processing run at the same rate.
///
/// # Panics
/// Panics if the runs' kinds or rates do not line up.
pub fn compare(insitu: &PipelineMetrics, post: &PipelineMetrics) -> PipelineComparison {
    assert_eq!(
        insitu.kind,
        PipelineKind::InSitu,
        "first arg must be in-situ"
    );
    assert_eq!(
        post.kind,
        PipelineKind::PostProcessing,
        "second arg must be post-processing"
    );
    assert!(
        (insitu.rate_hours - post.rate_hours).abs() < 1e-9,
        "sampling rates differ"
    );
    PipelineComparison {
        rate_hours: insitu.rate_hours,
        time_saving_pct: saving_pct(
            insitu.execution_time.as_secs_f64(),
            post.execution_time.as_secs_f64(),
        ),
        energy_saving_pct: saving_pct(insitu.energy_total().joules(), post.energy_total().joules()),
        storage_reduction_pct: saving_pct(insitu.storage_bytes as f64, post.storage_bytes as f64),
        power_delta: insitu.avg_power_total() - post.avg_power_total(),
    }
}

/// Derive the paper's model inputs from a run: `(t_sim_secs, s_io_gb,
/// n_viz)` — one calibration row of Eq. 5.
pub fn model_point(m: &PipelineMetrics) -> (f64, f64, f64) {
    (
        m.execution_time.as_secs_f64(),
        m.storage_gb(),
        m.num_outputs as f64,
    )
}

/// Reference to a [`PipelineConfig`] paired with its measured metrics.
#[derive(Debug, Clone)]
pub struct MeasuredRun {
    /// What was run.
    pub config: PipelineConfig,
    /// What was measured.
    pub metrics: PipelineMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivis_power::meter::MeterSample;
    use ivis_sim::SimTime;

    fn profile(watts: f64, secs: u64) -> PowerProfile {
        PowerProfile::from_meter_samples(
            SimTime::ZERO,
            vec![MeterSample {
                at: SimTime::from_secs(secs),
                avg: Watts(watts),
            }],
        )
    }

    fn metrics(kind: PipelineKind, t: u64, bytes: u64, p: f64) -> PipelineMetrics {
        PipelineMetrics {
            kind,
            rate_hours: 8.0,
            execution_time: SimDuration::from_secs(t),
            t_sim: SimDuration::from_secs(t / 2),
            t_io: SimDuration::from_secs(t / 4),
            t_viz: SimDuration::from_secs(t / 4),
            storage_bytes: bytes,
            num_outputs: 540,
            compute_profile: profile(p, t),
            storage_profile: profile(2273.0, t),
        }
    }

    #[test]
    fn derived_metrics() {
        let m = metrics(PipelineKind::InSitu, 1000, 600_000_000, 44_000.0);
        assert_eq!(m.avg_power_compute(), Watts(44_000.0));
        assert_eq!(m.avg_power_total(), Watts(46_273.0));
        assert!((m.energy_total().joules() - 46_273_000.0).abs() < 1.0);
        assert!((m.storage_gb() - 0.6).abs() < 1e-12);
        assert!(m.row().contains("in-situ"));
    }

    #[test]
    fn comparison_reproduces_headline_shape() {
        let insitu = metrics(PipelineKind::InSitu, 1261, 600_000_000, 44_000.0);
        let post = metrics(
            PipelineKind::PostProcessing,
            2573,
            230_000_000_000,
            44_000.0,
        );
        let c = compare(&insitu, &post);
        assert!(
            (c.time_saving_pct - 51.0).abs() < 1.0,
            "{}",
            c.time_saving_pct
        );
        assert!((c.energy_saving_pct - 51.0).abs() < 1.0);
        assert!(c.storage_reduction_pct > 99.5);
        assert!(c.power_delta.watts().abs() < 1.0);
    }

    #[test]
    fn saving_pct_guards_degenerate_baselines() {
        assert_eq!(saving_pct(50.0, 100.0), 50.0);
        assert_eq!(saving_pct(150.0, 100.0), -50.0);
        // Zero baseline: no sensible percentage, not inf/NaN.
        assert_eq!(saving_pct(10.0, 0.0), 0.0);
        assert_eq!(saving_pct(0.0, 0.0), 0.0);
        assert_eq!(saving_pct(10.0, f64::NAN), 0.0);
        assert_eq!(saving_pct(f64::INFINITY, 100.0), 0.0);
        // A zero-storage comparison flows through compare() finitely.
        let insitu = metrics(PipelineKind::InSitu, 100, 0, 1000.0);
        let mut post = metrics(PipelineKind::PostProcessing, 200, 0, 1000.0);
        post.rate_hours = 8.0;
        let c = compare(&insitu, &post);
        assert_eq!(c.storage_reduction_pct, 0.0);
        assert!(c.time_saving_pct.is_finite());
    }

    #[test]
    fn model_point_extraction() {
        let m = metrics(PipelineKind::InSitu, 676, 100_000_000, 44_000.0);
        let (t, s, n) = model_point(&m);
        assert_eq!(t, 676.0);
        assert!((s - 0.1).abs() < 1e-12);
        assert_eq!(n, 540.0);
    }

    #[test]
    #[should_panic(expected = "first arg must be in-situ")]
    fn compare_order_enforced() {
        let a = metrics(PipelineKind::PostProcessing, 1, 1, 1.0);
        let b = metrics(PipelineKind::PostProcessing, 1, 1, 1.0);
        let _ = compare(&a, &b);
    }
}
