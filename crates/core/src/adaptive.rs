//! The adaptive native executor: rate as a *dynamic output*.
//!
//! The fixed native pipelines ([`crate::native`]) sample every
//! `output_every` steps no matter what the ocean is doing. This executor
//! instead runs the [`ivis_trigger`] loop: every `analysis_interval`
//! steps it scores a spherical grid of candidate viewpoints by Shannon
//! image entropy and Okubo-Weiss census mass, keeps the max-entropy
//! camera, and lets a hysteresis controller widen or tighten the
//! emission interval between configured bounds — so a campaign densely
//! samples eddy births and mergers and coasts through quiet stretches.
//!
//! Two paths share every per-analysis computation:
//!
//! * [`run_native_adaptive_sequential`] — the strictly-serialized golden
//!   baseline: solve, analyze, decide, maybe emit, repeat.
//! * [`run_native_adaptive`] — the pipelined path: a producer thread
//!   advances the solver and adapts snapshots behind a bounded channel
//!   (the PR 8 depth-*k* hand-off) while the consumer analyzes earlier
//!   snapshots, with the candidate evaluations themselves fanned out on
//!   the worker pool inside [`ivis_trigger::score_viewpoints`].
//!
//! The trigger state is inherently sequential (each decision depends on
//! the previous census), but everything *per snapshot* — segmentation,
//! candidate windows, evaluation renders, entropy, the full-resolution
//! render of the winning camera — is a pure function of the snapshot, so
//! the pipelined consumer computes it all speculatively and the
//! sequential controller only flips the emit bit at commit time. All
//! outputs (PNG bytes, Cinema index, decisions, tracks, digest) are
//! **bit-identical** between both paths at every thread count.

use std::time::{Duration, Instant};

use ivis_cluster::JobPhase;
use ivis_eddy::census::{frame_census, FrameCensus};
use ivis_eddy::features::{extract_features, EddyFeature};
use ivis_eddy::segment::segment_eddies;
use ivis_eddy::tracking::Track;
use ivis_obs::Recorder;
use ivis_ocean::grid::Grid;
use ivis_trigger::{
    extract_window, score_viewpoints, select_best, AdaptiveTrigger, TriggerConfig, TriggerDecision,
    ViewpointGrid, ViewpointScore,
};
use ivis_viz::png::encode_png;
use ivis_viz::render::FieldRenderer;
use ivis_viz::CinemaDatabase;

use crate::adaptor::{CatalystAdaptor, VizSnapshot};
use crate::native::{note_frame, open_native_root, tracker_for, NativeConfig, WallTracer};

/// What an adaptive campaign produced.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// Analyses performed (one per `analysis_interval` chunk).
    pub analyses: u64,
    /// Frames actually emitted (≤ `analyses`).
    pub frames: u64,
    /// Simulation steps the campaign covered.
    pub total_steps: u64,
    /// Every trigger decision, in analysis order.
    pub decisions: Vec<TriggerDecision>,
    /// The Cinema database of emitted frames.
    pub cinema: CinemaDatabase,
    /// Finished eddy tracks over the *emitted* frames.
    pub tracks: Vec<Track>,
    /// Census at the last analysis.
    pub final_census: FrameCensus,
    /// Image database bytes.
    pub image_bytes: u64,
    /// Wall time in the solver.
    pub wall_sim: Duration,
    /// Wall time analyzing + rendering + tracking.
    pub wall_viz: Duration,
    /// End-to-end wall time (smaller than `wall_sim + wall_viz` on the
    /// pipelined path, where the phases overlap).
    pub wall_end_to_end: Duration,
}

impl AdaptiveReport {
    /// The *measured* effective sampling interval, in steps per emitted
    /// frame — the dynamic output Eq. 6/7 consume via
    /// `ivis_model`'s adaptive extension.
    pub fn effective_interval_steps(&self) -> f64 {
        if self.frames == 0 {
            return self.total_steps as f64;
        }
        self.total_steps as f64 / self.frames as f64
    }

    /// Fraction of analyses that emitted a frame.
    pub fn emit_fraction(&self) -> f64 {
        if self.analyses == 0 {
            return 0.0;
        }
        self.frames as f64 / self.analyses as f64
    }

    /// Order-sensitive FNV-1a witness of everything observable: every
    /// decision (step, emit, interval, activity bits, winning candidate
    /// and its entropy bits), the Cinema index, every PNG byte, the
    /// track count and the final census. Two runs are interchangeable
    /// iff their digests match; the identity tests compare this across
    /// thread counts and against the sequential baseline.
    pub fn digest(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for d in &self.decisions {
            eat(&d.step.to_le_bytes());
            eat(&[d.emit as u8]);
            eat(&d.interval_steps.to_le_bytes());
            eat(&d.activity.to_bits().to_le_bytes());
            eat(&(d.best_viewpoint as u64).to_le_bytes());
            eat(&d.best_entropy_bits.to_bits().to_le_bytes());
        }
        eat(self.cinema.index_json().as_bytes());
        for e in self.cinema.entries() {
            eat(&e.data);
        }
        eat(&(self.tracks.len() as u64).to_le_bytes());
        eat(&(self.final_census.count as u64).to_le_bytes());
        eat(&self.final_census.total_area_m2.to_bits().to_le_bytes());
        format!("{:016x}", h)
    }
}

/// Everything one analysis step computes that is a pure function of the
/// snapshot — safe to run speculatively on any worker.
struct AnalyzedFrame {
    feats: Vec<EddyFeature>,
    census: FrameCensus,
    scores: Vec<ViewpointScore>,
    /// Full-resolution PNG of the winning candidate's window.
    png: Vec<u8>,
    d_worker: Duration,
}

/// Segment, score every candidate, pick the winner and render it at full
/// resolution. The candidate evaluations fan out on the worker pool
/// inside [`score_viewpoints`]; the result is order-collected, so the
/// output is bit-identical at any thread count.
fn analyze_snapshot(
    renderer: &FieldRenderer,
    grid: &Grid,
    vgrid: &ViewpointGrid,
    tc: &TriggerConfig,
    snap: &VizSnapshot,
) -> AnalyzedFrame {
    let t0 = Instant::now();
    let w = &snap.okubo_weiss;
    let seg = segment_eddies(w, 0.2, 3);
    let feats = extract_features(grid, w, &seg);
    let census = frame_census(&feats);
    let (lx, ly) = grid.extent();
    let scores = score_viewpoints(vgrid, w, &feats, lx, ly, tc);
    let best = select_best(&scores);
    let win = vgrid.views()[best].window(tc.zoom);
    // The winner re-renders at full output resolution from a same-shape
    // resample of its window; for the polar overview this reproduces the
    // fixed pipeline's whole-field frame exactly.
    let sub = extract_window(w, &win, w.nx(), w.ny());
    let png = encode_png(&renderer.render(&sub));
    AnalyzedFrame {
        feats,
        census,
        scores,
        png,
        d_worker: t0.elapsed(),
    }
}

/// Run the adaptive in-situ pipeline natively with solver/analysis
/// pipelining (bounded depth-`k` hand-off, PR 8 style). Outputs are
/// bit-identical to [`run_native_adaptive_sequential`] at every thread
/// count and depth.
pub fn run_native_adaptive(cfg: &NativeConfig, tc: &TriggerConfig) -> AdaptiveReport {
    run_native_adaptive_with(cfg, tc, &Recorder::off())
}

/// [`run_native_adaptive`] with a trace recorder: phase wall times are
/// measured on their own threads and replayed on the virtual sim-time
/// axis in sequential order after the join, so the recorded trace has
/// the same span/event structure as the sequential path's.
pub fn run_native_adaptive_with(
    cfg: &NativeConfig,
    tc: &TriggerConfig,
    rec: &Recorder,
) -> AdaptiveReport {
    tc.validate();
    let depth = crate::native::default_pipeline_depth();
    let t_run = Instant::now();
    let mut model = cfg.build_model();
    let grid = model.grid().clone();
    let renderer = FieldRenderer::okubo_weiss(cfg.image_width, cfg.image_height);
    let vgrid = ViewpointGrid::spherical(tc.candidates);
    let mut trigger = AdaptiveTrigger::new(tc.clone());
    let mut cinema = CinemaDatabase::new("adaptive-eddies");
    let mut tracker = tracker_for(&grid);
    let root = open_native_root(rec, cfg, "adaptive");
    let mut frames = 0u64;
    let mut decisions: Vec<TriggerDecision> = Vec::new();
    let mut census = frame_census(&[]);
    let mut timings: Vec<(Duration, Duration, Option<FrameCensus>)> = Vec::new();
    let (tx, rx) = std::sync::mpsc::sync_channel::<(Duration, Duration, VizSnapshot)>(depth);
    let (ret_tx, ret_rx) = std::sync::mpsc::channel::<VizSnapshot>();
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut adaptor = CatalystAdaptor::new();
            let mut step = 0u64;
            while step < cfg.steps {
                let chunk = tc.analysis_interval.min(cfg.steps - step);
                let t0 = Instant::now();
                model.run(chunk);
                let d_sim = t0.elapsed();
                step += chunk;
                let t1 = Instant::now();
                let snap = match ret_rx.try_recv() {
                    Ok(mut recycled) => {
                        adaptor.adapt_into(&model, &mut recycled);
                        recycled
                    }
                    Err(_) => adaptor.adapt(&model),
                };
                let d_adapt = t1.elapsed();
                if tx.send((d_sim, d_adapt, snap)).is_err() {
                    return; // consumer gone (it panicked); just stop
                }
            }
        });
        // Consumer: per-snapshot analysis is speculative and pure (the
        // candidate fan-out runs on the worker pool); only the trigger
        // decision and the commit are sequential.
        while let Ok((d_sim, d_adapt, snap)) = rx.recv() {
            let af = analyze_snapshot(&renderer, &grid, &vgrid, tc, &snap);
            let t_commit = Instant::now();
            let decision = trigger.analyze(snap.timestep, &af.census, &af.scores);
            census = af.census;
            let emitted = if decision.emit {
                tracker.observe(frames, &af.feats);
                cinema.add_encoded(snap.timestep, snap.sim_hours, af.png);
                frames += 1;
                Some(census.clone())
            } else {
                None
            };
            decisions.push(decision);
            let d_commit = t_commit.elapsed();
            timings.push((d_sim, d_adapt + af.d_worker + d_commit, emitted));
            let _ = ret_tx.send(snap); // producer may already be done
        }
    });
    let wall_end_to_end = t_run.elapsed();
    let mut wtr = WallTracer::new(rec);
    let mut wall_sim = Duration::ZERO;
    let mut wall_viz = Duration::ZERO;
    let mut frame_no = 0u64;
    for (d_sim, d_viz, emitted) in &timings {
        wall_sim += *d_sim;
        wtr.phase(JobPhase::Simulate, *d_sim);
        wall_viz += *d_viz;
        wtr.phase(JobPhase::Visualize, *d_viz);
        if let Some(c) = emitted {
            note_frame(rec, wtr.now(), frame_no, c);
            frame_no += 1;
        }
    }
    let image_bytes = cinema.total_bytes();
    if rec.is_on() {
        rec.counter_add(wtr.now(), "native.image_bytes", image_bytes as f64);
    }
    rec.close(wtr.now(), root);
    AdaptiveReport {
        analyses: timings.len() as u64,
        frames,
        total_steps: cfg.steps,
        decisions,
        cinema,
        tracks: tracker.finish(),
        final_census: census,
        image_bytes,
        wall_sim,
        wall_viz,
        wall_end_to_end,
    }
}

/// The strictly-serialized adaptive loop, kept as the golden baseline
/// the pipelined path is tested against: solve a chunk, analyze, decide,
/// maybe emit — one analysis fully commits before the next solver chunk
/// begins.
pub fn run_native_adaptive_sequential(cfg: &NativeConfig, tc: &TriggerConfig) -> AdaptiveReport {
    run_native_adaptive_sequential_with(cfg, tc, &Recorder::off())
}

/// [`run_native_adaptive_sequential`] with a trace recorder.
pub fn run_native_adaptive_sequential_with(
    cfg: &NativeConfig,
    tc: &TriggerConfig,
    rec: &Recorder,
) -> AdaptiveReport {
    tc.validate();
    let t_run = Instant::now();
    let mut model = cfg.build_model();
    let grid = model.grid().clone();
    let mut adaptor = CatalystAdaptor::new();
    let renderer = FieldRenderer::okubo_weiss(cfg.image_width, cfg.image_height);
    let vgrid = ViewpointGrid::spherical(tc.candidates);
    let mut trigger = AdaptiveTrigger::new(tc.clone());
    let mut cinema = CinemaDatabase::new("adaptive-eddies");
    let mut tracker = tracker_for(&grid);
    let root = open_native_root(rec, cfg, "adaptive");
    let mut wtr = WallTracer::new(rec);
    let mut wall_sim = Duration::ZERO;
    let mut wall_viz = Duration::ZERO;
    let mut frames = 0u64;
    let mut analyses = 0u64;
    let mut decisions: Vec<TriggerDecision> = Vec::new();
    let mut census = frame_census(&[]);
    let mut step = 0u64;
    while step < cfg.steps {
        let chunk = tc.analysis_interval.min(cfg.steps - step);
        let t0 = Instant::now();
        model.run(chunk);
        let d_sim = t0.elapsed();
        wall_sim += d_sim;
        wtr.phase(JobPhase::Simulate, d_sim);
        step += chunk;
        let t1 = Instant::now();
        let snap = adaptor.adapt(&model);
        let af = analyze_snapshot(&renderer, &grid, &vgrid, tc, &snap);
        let decision = trigger.analyze(snap.timestep, &af.census, &af.scores);
        census = af.census;
        let emitted = decision.emit;
        if emitted {
            tracker.observe(frames, &af.feats);
            cinema.add_encoded(snap.timestep, snap.sim_hours, af.png);
        }
        decisions.push(decision);
        analyses += 1;
        let d_viz = t1.elapsed();
        wall_viz += d_viz;
        wtr.phase(JobPhase::Visualize, d_viz);
        if emitted {
            note_frame(rec, wtr.now(), frames, &census);
            frames += 1;
        }
    }
    let image_bytes = cinema.total_bytes();
    if rec.is_on() {
        rec.counter_add(wtr.now(), "native.image_bytes", image_bytes as f64);
    }
    rec.close(wtr.now(), root);
    AdaptiveReport {
        analyses,
        frames,
        total_steps: cfg.steps,
        decisions,
        cinema,
        tracks: tracker.finish(),
        final_census: census,
        image_bytes,
        wall_sim,
        wall_viz,
        wall_end_to_end: t_run.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trigger() -> TriggerConfig {
        TriggerConfig::new(8, 5)
    }

    #[test]
    fn pipelined_matches_sequential_exactly() {
        let cfg = NativeConfig::tiny();
        let tc = tiny_trigger();
        let a = run_native_adaptive(&cfg, &tc);
        let b = run_native_adaptive_sequential(&cfg, &tc);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.cinema.index_json(), b.cinema.index_json());
        assert_eq!(a.tracks, b.tracks);
    }

    #[test]
    fn every_analysis_is_accounted_for() {
        let cfg = NativeConfig::tiny();
        let r = run_native_adaptive(&cfg, &tiny_trigger());
        // 24 steps analyzed every 8 → 3 analyses.
        assert_eq!(r.analyses, 3);
        assert_eq!(r.decisions.len(), 3);
        assert!(r.frames >= 1, "first analysis always emits");
        assert!(r.frames <= r.analyses);
        assert_eq!(r.cinema.len() as u64, r.frames);
        assert!(r.image_bytes > 0);
    }

    #[test]
    fn single_candidate_emits_whole_field_views() {
        // candidates = 1 degenerates to the fixed pipeline's overview
        // camera: with the trigger pinned to the fixed cadence, the
        // emitted PNGs equal the fixed in-situ pipeline's frames.
        let cfg = NativeConfig::tiny();
        let mut tc = TriggerConfig::new(cfg.output_every, 1);
        tc.min_interval = cfg.output_every;
        tc.max_interval = cfg.output_every;
        let adaptive = run_native_adaptive(&cfg, &tc);
        let fixed = crate::native::run_native_insitu_sequential(&cfg);
        assert_eq!(adaptive.frames, fixed.frames);
        for (ea, eb) in adaptive.cinema.entries().iter().zip(fixed.cinema.entries()) {
            assert_eq!(ea.timestep, eb.timestep);
            assert_eq!(ea.data, eb.data, "frame {} differs", ea.timestep);
        }
    }

    #[test]
    fn effective_interval_stays_within_band() {
        let cfg = NativeConfig::small();
        let tc = TriggerConfig::new(16, 5);
        let r = run_native_adaptive(&cfg, &tc);
        let mut last: Option<u64> = None;
        for d in r.decisions.iter().filter(|d| d.emit) {
            if let Some(prev) = last {
                let gap = d.step - prev;
                assert!(gap >= tc.min_interval, "gap {gap} under min");
                // An emission can only happen at an analysis point, so the
                // widest spacing is max_interval rounded up to the next one.
                assert!(
                    gap <= tc.max_interval + tc.analysis_interval,
                    "gap {gap} over max"
                );
            }
            last = Some(d.step);
        }
        assert!(r.effective_interval_steps() >= tc.min_interval as f64);
    }

    #[test]
    fn digest_is_replay_stable() {
        let cfg = NativeConfig::tiny();
        let tc = tiny_trigger();
        assert_eq!(
            run_native_adaptive(&cfg, &tc).digest(),
            run_native_adaptive(&cfg, &tc).digest()
        );
    }
}
