//! The one telemetry hook every executor shares.
//!
//! Each executor — clean in-situ/post-hoc ([`Campaign::run`]), staged
//! in-transit ([`Campaign::run_intransit`]), the faulted variants and the
//! native backend — already harvests its power pathway into
//! [`PipelineMetrics`] profiles (or, for the native backend, phase spans
//! in the [`TraceBuffer`]). [`Campaign::telemetry`] turns that harvest
//! into a [`RunTelemetry`]: one sampled W(t) [`PowerTimeline`] per
//! metered component at the requested cadence (the paper's per-minute
//! PDU view at [`paper_cadence`], or down to 1 s for debugging), plus
//! helpers to publish the signals as power gauges so the Prometheus
//! snapshot carries them.
//!
//! [`Campaign::run`]: crate::campaign::Campaign::run
//! [`Campaign::run_intransit`]: crate::campaign::Campaign::run_intransit
//! [`paper_cadence`]: ivis_obs::telemetry::paper_cadence

use ivis_cluster::IoWaitPolicy;
use ivis_obs::telemetry::PowerTimeline;
use ivis_obs::{Recorder, TraceBuffer};
use ivis_power::node::NodePowerModel;
use ivis_power::profile::PowerProfile;
use ivis_sim::SimDuration;

use crate::campaign::Campaign;
use crate::metrics::PipelineMetrics;

/// Sampled per-component power timelines for one pipeline run.
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// The Appro-cage view of the compute cluster, resampled.
    pub compute: PowerTimeline,
    /// The Raritan-PDU view of the storage rack, resampled.
    pub storage: PowerTimeline,
}

impl RunTelemetry {
    /// Reconstruct both component timelines from a run's harvested
    /// profiles at `cadence`.
    ///
    /// # Panics
    /// Panics if `cadence` is zero.
    pub fn from_metrics(metrics: &PipelineMetrics, cadence: SimDuration) -> Self {
        RunTelemetry {
            compute: PowerTimeline::from_profile("compute", &metrics.compute_profile, cadence),
            storage: PowerTimeline::from_profile("storage", &metrics.storage_profile, cadence),
        }
    }

    /// The summed compute + storage signal — the total the paper plots in
    /// Fig. 4. Both timelines share a window and cadence, so the sum is
    /// pointwise.
    pub fn total_profile(&self) -> PowerProfile {
        self.compute.as_profile().sum(&self.storage.as_profile())
    }

    /// Publish both timelines into `rec` as the gauges
    /// `power.compute_w` / `power.storage_w` (no-op when the recorder is
    /// off), so exported snapshots carry the sampled power signal.
    pub fn record_gauges(&self, rec: &Recorder) {
        for (at, w) in self.compute.gauge_samples() {
            rec.gauge_set(at, "power.compute_w", w.watts());
        }
        for (at, w) in self.storage.gauge_samples() {
            rec.gauge_set(at, "power.storage_w", w.watts());
        }
    }
}

impl Campaign {
    /// Time-resolved power telemetry for a finished run: per-component
    /// W(t) timelines sampled at `cadence` from the same harvested
    /// profiles the energy accounting uses — so the timelines' integrals
    /// match `energy_between` attribution exactly, whichever executor
    /// produced `metrics`.
    ///
    /// # Panics
    /// Panics if `cadence` is zero.
    pub fn telemetry(&self, metrics: &PipelineMetrics, cadence: SimDuration) -> RunTelemetry {
        RunTelemetry::from_metrics(metrics, cadence)
    }
}

/// Reconstruct a single-node power timeline for a native-backend run
/// from its recorded phase spans: the trace's phase timeline joined with
/// the calibrated Caddy node model under `policy`, sampled at `cadence`.
/// Returns an empty timeline if the buffer recorded no phase spans.
///
/// # Panics
/// Panics if `cadence` is zero.
pub fn native_power_timeline(
    buf: &TraceBuffer,
    policy: IoWaitPolicy,
    cadence: SimDuration,
) -> PowerTimeline {
    let node = NodePowerModel::caddy();
    PowerTimeline::from_phases(
        "native-node",
        &buf.phase_timeline(),
        move |phase| node.power(phase.load(policy)),
        cadence,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{run_native_insitu_with, NativeConfig};
    use crate::{PipelineConfig, PipelineKind};
    use ivis_fault::{FaultPlan, FaultScenario};
    use ivis_obs::telemetry::paper_cadence;
    use ivis_sim::SimTime;

    /// The tentpole invariant, end-to-end: for every paper configuration
    /// and several cadences, the sampled timelines integrate to exactly
    /// the energy the run metered.
    #[test]
    fn timeline_integrals_match_metered_energy_for_all_configs() {
        let campaign = Campaign::paper();
        for pc in PipelineConfig::paper_matrix() {
            let metrics = campaign.run(&pc);
            for cadence in [
                SimDuration::from_secs(1),
                SimDuration::from_secs(7),
                paper_cadence(),
            ] {
                let tel = campaign.telemetry(&metrics, cadence);
                let got = tel.compute.energy().joules() + tel.storage.energy().joules();
                let want = metrics.energy_total().joules();
                assert!(
                    (got - want).abs() < 1e-6 * (1.0 + want),
                    "{:?}@{}h cadence {:?}: {} vs {}",
                    pc.kind,
                    pc.rate.every_hours,
                    cadence,
                    got,
                    want
                );
            }
        }
    }

    #[test]
    fn faulted_runs_emit_timelines_through_the_same_hook() {
        let campaign = Campaign::paper();
        let pc = PipelineConfig::paper(PipelineKind::InSitu, 8.0);
        let plan = FaultPlan::random(7, SimDuration::from_secs(1_300));
        let run = campaign
            .run_faulted(&pc, &FaultScenario::with_plan(plan))
            .expect("random plans degrade runs, they do not kill them");
        let tel = campaign.telemetry(&run.metrics, paper_cadence());
        let got = tel.compute.energy().joules() + tel.storage.energy().joules();
        let want = run.metrics.energy_total().joules();
        assert!((got - want).abs() < 1e-6 * (1.0 + want));
        // The total profile is the pointwise sum of the components.
        let total = tel.total_profile();
        assert!(
            (total.energy().joules() - got).abs() < 1e-6,
            "total profile disagrees with component sum"
        );
    }

    #[test]
    fn power_gauges_land_in_the_recorder() {
        let mut campaign = Campaign::paper();
        let rec = Recorder::in_memory();
        campaign.config.recorder = rec.clone();
        let pc = PipelineConfig::paper(PipelineKind::InSitu, 72.0);
        let metrics = campaign.run(&pc);
        let tel = campaign.telemetry(&metrics, paper_cadence());
        tel.record_gauges(&rec);
        rec.with_buffer(|buf| {
            let g = buf.metrics.get("power.compute_w").expect("gauge recorded");
            // The gauge's time-weighted mean over the run window equals
            // the timeline's mean power.
            let mean = g.mean_over(tel.compute.start(), tel.compute.end(), 0.0);
            assert!((mean - tel.compute.stats().mean.watts()).abs() < 1e-6);
            assert!(buf.metrics.get("power.storage_w").is_some());
        })
        .expect("recorder is on");
        // Off-recorder: publishing is a no-op, not a panic.
        tel.record_gauges(&Recorder::off());
    }

    #[test]
    fn native_runs_reconstruct_node_power_from_phase_spans() {
        let rec = Recorder::in_memory();
        let report = run_native_insitu_with(&NativeConfig::tiny(), &rec);
        assert!(report.frames > 0);
        let tl = rec
            .with_buffer(|buf| {
                native_power_timeline(buf, IoWaitPolicy::BusyWait, SimDuration::from_secs(1))
            })
            .expect("recorder is on");
        assert!(!tl.is_empty(), "native run recorded phase spans");
        let node = NodePowerModel::caddy();
        let stats = tl.stats();
        // The node never draws less than idle nor more than the loaded
        // calibration point.
        assert!(stats.peak <= node.loaded());
        assert!(stats.mean >= node.idle());
        assert_eq!(tl.start(), SimTime::ZERO);
    }
}
