//! Pipeline configuration.

use ivis_ocean::{ProblemSpec, SamplingRate};

/// Which visualization pipeline to run (the paper's Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineKind {
    /// Render in place, write only images (Fig. 1b).
    InSitu,
    /// Write raw data, render afterwards (Fig. 1a).
    PostProcessing,
}

impl PipelineKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PipelineKind::InSitu => "in-situ",
            PipelineKind::PostProcessing => "post-processing",
        }
    }
}

/// A fully specified pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Pipeline flavor.
    pub kind: PipelineKind,
    /// The simulation problem.
    pub spec: ProblemSpec,
    /// Output sampling rate.
    pub rate: SamplingRate,
}

impl PipelineConfig {
    /// One of the paper's six measured configurations.
    pub fn paper(kind: PipelineKind, every_hours: f64) -> Self {
        PipelineConfig {
            kind,
            spec: ProblemSpec::paper_60km(),
            rate: SamplingRate::every_hours(every_hours),
        }
    }

    /// All six measured configurations (2 pipelines × 3 rates), in the
    /// paper's presentation order.
    pub fn paper_matrix() -> Vec<PipelineConfig> {
        let mut v = Vec::with_capacity(6);
        for kind in [PipelineKind::InSitu, PipelineKind::PostProcessing] {
            for h in [8.0, 24.0, 72.0] {
                v.push(PipelineConfig::paper(kind, h));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matrix_has_six_configs() {
        let m = PipelineConfig::paper_matrix();
        assert_eq!(m.len(), 6);
        assert_eq!(
            m.iter().filter(|c| c.kind == PipelineKind::InSitu).count(),
            3
        );
        let rates: Vec<f64> = m.iter().map(|c| c.rate.every_hours).collect();
        assert_eq!(&rates[..3], &[8.0, 24.0, 72.0]);
    }

    #[test]
    fn labels() {
        assert_eq!(PipelineKind::InSitu.label(), "in-situ");
        assert_eq!(PipelineKind::PostProcessing.label(), "post-processing");
    }

    #[test]
    fn paper_config_uses_paper_spec() {
        let c = PipelineConfig::paper(PipelineKind::InSitu, 8.0);
        assert_eq!(c.spec.total_steps(), 8640);
        assert_eq!(c.spec.num_outputs(c.rate), 540);
    }
}
