//! The measured-cluster backend: run a pipeline on the simulated *Caddy*
//! machine with all meters attached.
//!
//! A campaign run walks the machine through the pipeline's phase sequence,
//! obtains I/O completion times from the Lustre model, and harvests the
//! cage/rack meters into [`PipelineMetrics`] — the same artifact the paper's
//! measurement campaign produced for each of its six configurations.
//!
//! ### Modeling notes (see DESIGN.md)
//!
//! * **I/O wait**: compute nodes busy-wait in PIO/MPI collectives during
//!   writes ([`IoWaitPolicy::BusyWait`]), which is why measured power stays
//!   flat. The deep-idle alternative exists for the §VIII ablation.
//! * **Post-processing read-back**: the paper's model charges `α·S_io` once
//!   (for the write); its measured visualization phase is consistent with
//!   rendering overlapping a faster sequential read path. We model the
//!   post-viz phase as `max(β·N, S/seq_read_bw)` with a 1 GB/s sequential
//!   read rate, which keeps rendering the bottleneck at the paper's
//!   configurations.

use ivis_cluster::topology::ClusterTopology;
use ivis_cluster::{IoWaitPolicy, JobPhase, Machine};
use ivis_obs::{attribute, AttrValue, Component, EnergyAttribution, Recorder, SpanId};
use ivis_ocean::cost::SimulationCostModel;
use ivis_power::node::NodePowerModel;
use ivis_sim::{SimDuration, SimRng, SimTime};
use ivis_storage::ParallelFileSystem;

use crate::config::{PipelineConfig, PipelineKind};
use crate::metrics::PipelineMetrics;
use crate::resilience::PipelineError;

/// Knobs of the measurement campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// What compute nodes do while blocked on storage.
    pub io_policy: IoWaitPolicy,
    /// Seconds to render one output's image set on the full machine
    /// (the paper's β = 1.2 s).
    pub viz_seconds_per_output: f64,
    /// Bytes of the image set written per output (the paper's Fig. 7:
    /// 0.6 GB over 540 outputs ⇒ ≈1.11 MB each).
    pub image_bytes_per_output: u64,
    /// Sequential read bandwidth available to the post-processing
    /// visualization phase, bytes/s.
    pub seq_read_bandwidth_bps: f64,
    /// Relative std-dev of phase-duration measurement noise (0 = exact).
    pub noise_rel: f64,
    /// Relative std-dev of cage power measurement noise (0 = exact).
    pub power_noise_rel: f64,
    /// RNG seed for the noise streams.
    pub seed: u64,
    /// Trace recorder handle. Defaults to [`Recorder::off`], which keeps
    /// every instrumentation hook a no-op; swap in
    /// [`Recorder::in_memory`] (keeping a clone) to capture spans, events
    /// and metrics for the run.
    pub recorder: Recorder,
}

impl CampaignConfig {
    /// The paper's constants, no noise.
    pub fn paper() -> Self {
        CampaignConfig {
            io_policy: IoWaitPolicy::BusyWait,
            viz_seconds_per_output: 1.2,
            image_bytes_per_output: 1_111_111,
            seq_read_bandwidth_bps: 1.0e9,
            noise_rel: 0.0,
            power_noise_rel: 0.0,
            seed: 0x1915_2017,
            recorder: Recorder::off(),
        }
    }

    /// The paper's constants with mild measurement noise — what a real
    /// campaign looks like.
    pub fn paper_noisy(seed: u64) -> Self {
        CampaignConfig {
            noise_rel: 0.003,
            power_noise_rel: 0.005,
            seed,
            ..CampaignConfig::paper()
        }
    }
}

/// Keeps the recorder's phase spans and the machine's phase timeline in
/// lock-step: each `begin` closes the previous phase span and opens the
/// next one at the same instant `Machine::begin_phase` switches loads, so
/// the trace tiles the run exactly and per-phase energy attribution is
/// conservative.
pub(crate) struct PhaseTracer<'a> {
    rec: &'a Recorder,
    open: SpanId,
}

impl<'a> PhaseTracer<'a> {
    pub(crate) fn new(rec: &'a Recorder) -> Self {
        PhaseTracer {
            rec,
            open: SpanId::NONE,
        }
    }

    pub(crate) fn begin(&mut self, machine: &mut Machine, t: SimTime, phase: JobPhase) {
        self.rec.close(t, self.open);
        machine.begin_phase(t, phase);
        self.open = self.rec.phase_span(t, phase, Component::Compute);
        if self.rec.is_on() {
            self.rec
                .gauge_set(t, "cluster.power_w", machine.power_now().watts());
        }
    }

    /// Attach an attribute to the currently open phase span.
    pub(crate) fn attr(&self, key: &'static str, value: AttrValue) {
        self.rec.set_attr(self.open, key, value);
    }

    pub(crate) fn finish(self, machine: &mut Machine, t: SimTime) {
        self.rec.close(t, self.open);
        machine.finish(t);
    }
}

/// Record the storage-side trace of one completed output write: the
/// `output_written` event, cumulative byte/output counters, and the PFS
/// backlog gauges sampled at both submission and completion (for
/// synchronous writes the backlog drains to zero at `done`; with a burst
/// buffer it stays positive while Lustre catches up).
pub(crate) fn note_write(
    rec: &Recorder,
    pfs: &ParallelFileSystem,
    submitted: SimTime,
    done: SimTime,
    index: u64,
    bytes: u64,
) {
    if !rec.is_on() {
        return;
    }
    rec.event(
        done,
        "output_written",
        Component::Storage,
        &[
            ("index", AttrValue::U64(index)),
            ("bytes", AttrValue::U64(bytes)),
            (
                "write_seconds",
                AttrValue::F64((done - submitted).as_secs_f64()),
            ),
        ],
    );
    rec.counter_add(done, "pfs.bytes_written", bytes as f64);
    rec.counter_add(done, "pfs.outputs_written", 1.0);
    for t in [submitted, done] {
        rec.gauge_set(t, "pfs.queued_write_seconds", pfs.queued_write_seconds(t));
        rec.gauge_set(t, "pfs.bandwidth_utilization", pfs.bandwidth_utilization(t));
    }
}

/// The campaign runner.
///
/// ```
/// use ivis_core::campaign::Campaign;
/// use ivis_core::{PipelineConfig, PipelineKind};
///
/// let campaign = Campaign::paper();
/// let m = campaign.run(&PipelineConfig::paper(PipelineKind::InSitu, 72.0));
/// // The paper measured 676 s for this configuration.
/// assert!((m.execution_time.as_secs_f64() - 676.0).abs() < 20.0);
/// assert!(m.storage_gb() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign knobs.
    pub config: CampaignConfig,
    /// Per-step simulation cost model.
    pub cost: SimulationCostModel,
    /// Machine topology (defaults to *Caddy*'s 15 cages × 10 nodes).
    pub topology: ClusterTopology,
}

impl Campaign {
    /// The paper's campaign: *Caddy* cost model, paper constants.
    pub fn paper() -> Self {
        Campaign {
            config: CampaignConfig::paper(),
            cost: SimulationCostModel::caddy(),
            topology: ClusterTopology::caddy(),
        }
    }

    /// As measured in the real world: with noise.
    pub fn paper_noisy(seed: u64) -> Self {
        Campaign {
            config: CampaignConfig::paper_noisy(seed),
            cost: SimulationCostModel::caddy(),
            topology: ClusterTopology::caddy(),
        }
    }

    /// A campaign on a machine scaled to `cages` ten-node cages of Caddy
    /// nodes (same per-node power model, same per-core speed, same storage
    /// rack). `cages = 15` reproduces the paper's machine; other values
    /// project the methodology onto smaller or larger systems — the paper's
    /// claim that "the methodology itself is generic".
    pub fn scaled_caddy(cages: usize) -> Self {
        assert!(cages > 0, "need at least one cage");
        let topology = ClusterTopology {
            num_cages: cages,
            ..ClusterTopology::caddy()
        };
        let mut cost = SimulationCostModel::caddy();
        cost.cores = topology.num_cores() as u64;
        let mut config = CampaignConfig::paper();
        // Rendering strong-scales with the machine: β was measured on 150
        // nodes.
        config.viz_seconds_per_output *= 150.0 / topology.num_nodes() as f64;
        Campaign {
            config,
            cost,
            topology,
        }
    }

    /// A campaign on a Caddy-style machine scaled to exactly `nodes`
    /// nodes via [`ClusterTopology::caddy_scaled`] (node-granular where
    /// [`Campaign::scaled_caddy`] is cage-granular, so 10k-node and
    /// non-divisible what-ifs are expressible). Per-node power model,
    /// per-core speed and the storage rack are unchanged; rendering
    /// strong-scales exactly as in `scaled_caddy`. `caddy_scaled(150)`
    /// reproduces [`Campaign::paper`] bit-for-bit.
    pub fn caddy_scaled(nodes: usize) -> Self {
        let topology = ClusterTopology::caddy_scaled(nodes);
        let mut cost = SimulationCostModel::caddy();
        cost.cores = topology.num_cores() as u64;
        let mut config = CampaignConfig::paper();
        // β was measured on 150 nodes; at nodes = 150 the factor is
        // exactly 1.0, keeping the seed campaign bit-identical.
        config.viz_seconds_per_output *= 150.0 / topology.num_nodes() as f64;
        Campaign {
            config,
            cost,
            topology,
        }
    }

    /// Execute one pipeline configuration and return its metrics.
    ///
    /// Panics if the storage model rejects an operation (the paper
    /// configurations always fit); [`try_run`](Self::try_run) returns the
    /// failure as a typed error instead.
    pub fn run(&self, pc: &PipelineConfig) -> PipelineMetrics {
        self.try_run(pc)
            .unwrap_or_else(|e| panic!("pipeline run failed: {e}"))
    }

    /// Execute one pipeline configuration, threading storage failures out
    /// as [`PipelineError`] values instead of unwrapping mid-run.
    pub fn try_run(&self, pc: &PipelineConfig) -> Result<PipelineMetrics, PipelineError> {
        match pc.kind {
            PipelineKind::InSitu => self.run_insitu(pc),
            PipelineKind::PostProcessing => self.run_postproc(pc),
        }
    }

    /// Run the full paper matrix (2 pipelines × 3 rates).
    pub fn run_paper_matrix(&self) -> Vec<PipelineMetrics> {
        PipelineConfig::paper_matrix()
            .iter()
            .map(|c| self.run(c))
            .collect()
    }

    /// Open the root `campaign` span carrying the run's identity
    /// (pipeline kind, output rate, I/O wait policy).
    pub(crate) fn open_root(&self, pc: &PipelineConfig, t: SimTime) -> SpanId {
        let rec = &self.config.recorder;
        let root = rec.span(t, "campaign", Component::Campaign);
        rec.set_attr(root, "kind", AttrValue::Str(pc.kind.label()));
        rec.set_attr(root, "rate_hours", AttrValue::F64(pc.rate.every_hours));
        rec.set_attr(
            root,
            "io_policy",
            AttrValue::Str(match self.config.io_policy {
                IoWaitPolicy::BusyWait => "busy-wait",
                IoWaitPolicy::DeepIdle => "deep-idle",
            }),
        );
        root
    }

    /// Per-phase energy report for a traced run: joins the recorder's
    /// phase timeline against `metrics`' power profiles. Returns `None`
    /// when the recorder is off. Use a fresh recorder per run — the
    /// buffer accumulates, and timelines from two runs don't concatenate.
    pub fn attribution(&self, metrics: &PipelineMetrics) -> Option<EnergyAttribution> {
        self.config.recorder.with_buffer(|buf| {
            attribute(
                &buf.phase_timeline(),
                &metrics.compute_profile,
                &metrics.storage_profile,
            )
        })
    }

    pub(crate) fn noise(&self, rng: &mut SimRng) -> f64 {
        if self.config.noise_rel > 0.0 {
            rng.noise_factor(self.config.noise_rel)
        } else {
            1.0
        }
    }

    pub(crate) fn machine(&self) -> Machine {
        let m = Machine::new(
            self.topology.clone(),
            NodePowerModel::caddy(),
            self.config.io_policy,
        );
        if self.config.power_noise_rel > 0.0 {
            m.with_power_noise(self.config.seed ^ 0x9E37, self.config.power_noise_rel)
        } else {
            m
        }
    }

    pub(crate) fn harvest(
        &self,
        pc: &PipelineConfig,
        machine: Machine,
        pfs: &ParallelFileSystem,
        end: SimTime,
        num_outputs: u64,
    ) -> PipelineMetrics {
        let (t_sim, t_io, t_viz) = machine.timeline().decompose();
        let compute_profile = machine.cluster_meter().profile(SimTime::ZERO, end);
        let storage_profile = pfs.rack_meter().profile(SimTime::ZERO, end);
        PipelineMetrics {
            kind: pc.kind,
            rate_hours: pc.rate.every_hours,
            execution_time: end - SimTime::ZERO,
            t_sim,
            t_io,
            t_viz,
            storage_bytes: pfs.used_bytes(),
            num_outputs,
            compute_profile,
            storage_profile,
        }
    }

    /// Post-processing with an NVRAM burst buffer absorbing the raw writes
    /// (the deep-memory-hierarchy design from the paper's related work).
    /// Writes unblock at NVRAM speed and drain to Lustre in the background,
    /// overlapping the simulation; the visualization stage still waits for
    /// all data to be durable on the parallel filesystem before reading it
    /// back.
    pub fn run_postproc_burst_buffer(
        &self,
        pc: &PipelineConfig,
        bb: ivis_storage::burst_buffer::BurstBufferConfig,
    ) -> PipelineMetrics {
        self.try_run_postproc_burst_buffer(pc, bb)
            .unwrap_or_else(|e| panic!("pipeline run failed: {e}"))
    }

    /// [`run_postproc_burst_buffer`](Self::run_postproc_burst_buffer) with
    /// storage failures returned as typed errors.
    pub fn try_run_postproc_burst_buffer(
        &self,
        pc: &PipelineConfig,
        bb: ivis_storage::burst_buffer::BurstBufferConfig,
    ) -> Result<PipelineMetrics, PipelineError> {
        use ivis_storage::burst_buffer::BurstBuffer;
        let mut rng = SimRng::new(self.config.seed ^ 0xBB);
        let mut machine = self.machine();
        let mut pfs = ParallelFileSystem::caddy_lustre();
        let mut buf = BurstBuffer::new(bb);
        let rec = &self.config.recorder;
        let spec = &pc.spec;
        let n_out = spec.num_outputs(pc.rate);
        let spp = spec.steps_per_output(pc.rate);
        let step_secs = self.cost.step_seconds(spec);
        let raw = spec.raw_output_bytes();
        let mut now = SimTime::ZERO;
        let root = self.open_root(pc, now);
        let mut tracer = PhaseTracer::new(rec);
        for k in 0..n_out {
            tracer.begin(&mut machine, now, JobPhase::Simulate);
            now += SimDuration::from_secs_f64(step_secs * spp as f64 * self.noise(&mut rng));
            tracer.begin(&mut machine, now, JobPhase::WriteOutput);
            let path = format!("/postproc-bb/raw/out_{k:06}.nc");
            let wid = rec.span(now, "bb_write", Component::Storage);
            rec.set_attr(wid, "bytes", AttrValue::U64(raw));
            let submitted = now;
            now = buf
                .write(&mut pfs, now, &path, raw)
                .map_err(|source| PipelineError::storage(now, &path, source))?;
            rec.close(now, wid);
            note_write(rec, &pfs, submitted, now, k, raw);
        }
        let trailing = spec.total_steps().saturating_sub(n_out * spp);
        if trailing > 0 {
            tracer.begin(&mut machine, now, JobPhase::Simulate);
            now += SimDuration::from_secs_f64(step_secs * trailing as f64 * self.noise(&mut rng));
        }
        // The renderer reads from the parallel filesystem: wait for drains.
        let drained = buf.drained_at(now);
        if drained > now {
            tracer.begin(&mut machine, now, JobPhase::WriteOutput);
            tracer.attr("drain_wait", AttrValue::Str("burst-buffer"));
            now = drained;
        }
        tracer.begin(&mut machine, now, JobPhase::Visualize);
        let render = self.config.viz_seconds_per_output * n_out as f64 * self.noise(&mut rng);
        let read = (raw * n_out) as f64 / self.config.seq_read_bandwidth_bps;
        tracer.attr("render_seconds", AttrValue::F64(render));
        tracer.attr("read_seconds", AttrValue::F64(read));
        now += SimDuration::from_secs_f64(render.max(read));
        tracer.begin(&mut machine, now, JobPhase::WriteOutput);
        let images: u64 = self.config.image_bytes_per_output * n_out;
        let submitted = now;
        now = pfs
            .write(now, "/postproc-bb/images.tar", images)
            .map_err(|source| PipelineError::storage(now, "/postproc-bb/images.tar", source))?;
        note_write(rec, &pfs, submitted, now, n_out, images);
        tracer.finish(&mut machine, now);
        rec.close(now, root);
        Ok(self.harvest(pc, machine, &pfs, now, n_out))
    }

    fn run_insitu(&self, pc: &PipelineConfig) -> Result<PipelineMetrics, PipelineError> {
        let mut rng = SimRng::new(self.config.seed);
        let mut machine = self.machine();
        let mut pfs = ParallelFileSystem::caddy_lustre();
        let rec = &self.config.recorder;
        let spec = &pc.spec;
        let n_out = spec.num_outputs(pc.rate);
        let spp = spec.steps_per_output(pc.rate);
        let step_secs = self.cost.step_seconds(spec);
        let mut now = SimTime::ZERO;
        let root = self.open_root(pc, now);
        let mut tracer = PhaseTracer::new(rec);
        for k in 0..n_out {
            tracer.begin(&mut machine, now, JobPhase::Simulate);
            now += SimDuration::from_secs_f64(step_secs * spp as f64 * self.noise(&mut rng));
            // Catalyst render of this sample.
            tracer.begin(&mut machine, now, JobPhase::Visualize);
            now += SimDuration::from_secs_f64(
                self.config.viz_seconds_per_output * self.noise(&mut rng),
            );
            // Write the image set for this sample.
            tracer.begin(&mut machine, now, JobPhase::WriteOutput);
            let path = format!("/insitu/cinema/ts_{k:06}.png");
            let wid = rec.span(now, "pfs_write", Component::Storage);
            rec.set_attr(
                wid,
                "bytes",
                AttrValue::U64(self.config.image_bytes_per_output),
            );
            let submitted = now;
            now = pfs
                .write(now, &path, self.config.image_bytes_per_output)
                .map_err(|source| PipelineError::storage(now, &path, source))?;
            rec.close(now, wid);
            note_write(
                rec,
                &pfs,
                submitted,
                now,
                k,
                self.config.image_bytes_per_output,
            );
        }
        // Any trailing steps after the last output.
        let trailing = spec.total_steps().saturating_sub(n_out * spp);
        if trailing > 0 {
            tracer.begin(&mut machine, now, JobPhase::Simulate);
            now += SimDuration::from_secs_f64(step_secs * trailing as f64 * self.noise(&mut rng));
        }
        tracer.finish(&mut machine, now);
        rec.close(now, root);
        Ok(self.harvest(pc, machine, &pfs, now, n_out))
    }

    fn run_postproc(&self, pc: &PipelineConfig) -> Result<PipelineMetrics, PipelineError> {
        let mut rng = SimRng::new(self.config.seed ^ 0x5151);
        let mut machine = self.machine();
        let mut pfs = ParallelFileSystem::caddy_lustre();
        let rec = &self.config.recorder;
        let spec = &pc.spec;
        let n_out = spec.num_outputs(pc.rate);
        let spp = spec.steps_per_output(pc.rate);
        let step_secs = self.cost.step_seconds(spec);
        let raw = spec.raw_output_bytes();
        let mut now = SimTime::ZERO;
        let root = self.open_root(pc, now);
        let mut tracer = PhaseTracer::new(rec);
        // Stage 1: simulate, write raw netCDF every sample.
        for k in 0..n_out {
            tracer.begin(&mut machine, now, JobPhase::Simulate);
            now += SimDuration::from_secs_f64(step_secs * spp as f64 * self.noise(&mut rng));
            tracer.begin(&mut machine, now, JobPhase::WriteOutput);
            let path = format!("/postproc/raw/out_{k:06}.nc");
            let wid = rec.span(now, "pfs_write", Component::Storage);
            rec.set_attr(wid, "bytes", AttrValue::U64(raw));
            let submitted = now;
            now = pfs
                .write(now, &path, raw)
                .map_err(|source| PipelineError::storage(now, &path, source))?;
            rec.close(now, wid);
            note_write(rec, &pfs, submitted, now, k, raw);
        }
        let trailing = spec.total_steps().saturating_sub(n_out * spp);
        if trailing > 0 {
            tracer.begin(&mut machine, now, JobPhase::Simulate);
            now += SimDuration::from_secs_f64(step_secs * trailing as f64 * self.noise(&mut rng));
        }
        // Stage 2: read back and render every sample. Rendering overlaps the
        // sequential read; the slower of the two bounds the phase.
        tracer.begin(&mut machine, now, JobPhase::Visualize);
        let render = self.config.viz_seconds_per_output * n_out as f64 * self.noise(&mut rng);
        let read = (raw * n_out) as f64 / self.config.seq_read_bandwidth_bps;
        tracer.attr("render_seconds", AttrValue::F64(render));
        tracer.attr("read_seconds", AttrValue::F64(read));
        now += SimDuration::from_secs_f64(render.max(read));
        // The rendering stage saves its images too.
        tracer.begin(&mut machine, now, JobPhase::WriteOutput);
        let images: u64 = self.config.image_bytes_per_output * n_out;
        let submitted = now;
        now = pfs
            .write(now, "/postproc/images.tar", images)
            .map_err(|source| PipelineError::storage(now, "/postproc/images.tar", source))?;
        note_write(rec, &pfs, submitted, now, n_out, images);
        tracer.finish(&mut machine, now);
        rec.close(now, root);
        Ok(self.harvest(pc, machine, &pfs, now, n_out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::compare;

    fn run(kind: PipelineKind, hours: f64) -> PipelineMetrics {
        Campaign::paper().run(&PipelineConfig::paper(kind, hours))
    }

    #[test]
    fn insitu_8h_matches_paper_execution_time() {
        let m = run(PipelineKind::InSitu, 8.0);
        // Paper: 1261 s measured; model 603 + 0.6·6.3 + 540·1.2 ≈ 1255.
        let t = m.execution_time.as_secs_f64();
        assert!((1230.0..1290.0).contains(&t), "t = {t}");
        assert_eq!(m.num_outputs, 540);
    }

    #[test]
    fn insitu_72h_matches_paper_execution_time() {
        let m = run(PipelineKind::InSitu, 72.0);
        // Paper: 676 s.
        let t = m.execution_time.as_secs_f64();
        assert!((660.0..695.0).contains(&t), "t = {t}");
    }

    #[test]
    fn post_24h_matches_paper_execution_time() {
        let m = run(PipelineKind::PostProcessing, 24.0);
        // Paper: 1322 s (with S read off the chart as 80 GB; our exact S is
        // 76.7 GB, predicting ≈1305 s).
        let t = m.execution_time.as_secs_f64();
        assert!((1270.0..1345.0).contains(&t), "t = {t}");
    }

    #[test]
    fn fig3_time_savings_shape() {
        // Paper: 51 % / 38 % / 19 % faster at 8 / 24 / 72 h.
        for (hours, expected) in [(8.0, 51.0), (24.0, 38.0), (72.0, 19.0)] {
            let c = compare(
                &run(PipelineKind::InSitu, hours),
                &run(PipelineKind::PostProcessing, hours),
            );
            assert!(
                (c.time_saving_pct - expected).abs() < 4.0,
                "at {hours} h: got {:.1} %, paper {expected} %",
                c.time_saving_pct
            );
        }
    }

    #[test]
    fn fig5_power_is_flat_across_pipelines() {
        let insitu = run(PipelineKind::InSitu, 8.0);
        let post = run(PipelineKind::PostProcessing, 8.0);
        let pi = insitu.avg_power_total().kilowatts();
        let pp = post.avg_power_total().kilowatts();
        assert!(
            (pi - pp).abs() < 2.5,
            "power should be ~equal: in-situ {pi:.2} kW vs post {pp:.2} kW"
        );
        // Both near the loaded level, not the idle level.
        assert!(pi > 40.0 && pp > 40.0);
    }

    #[test]
    fn fig6_energy_savings_track_time() {
        let c = compare(
            &run(PipelineKind::InSitu, 8.0),
            &run(PipelineKind::PostProcessing, 8.0),
        );
        assert!(
            (c.energy_saving_pct - 50.0).abs() < 6.0,
            "energy saving {:.1} %",
            c.energy_saving_pct
        );
    }

    #[test]
    fn fig7_storage_shape() {
        let insitu = run(PipelineKind::InSitu, 8.0);
        let post = run(PipelineKind::PostProcessing, 8.0);
        assert!(
            (post.storage_gb() - 230.0).abs() < 5.0,
            "post 8h storage = {} GB",
            post.storage_gb()
        );
        assert!(insitu.storage_gb() < 1.0, "in-situ under 1 GB");
        let c = compare(&insitu, &post);
        assert!(c.storage_reduction_pct > 99.5);
    }

    #[test]
    fn phase_decomposition_sums_to_total() {
        let m = run(PipelineKind::PostProcessing, 24.0);
        let parts = m.t_sim.as_secs_f64() + m.t_io.as_secs_f64() + m.t_viz.as_secs_f64();
        assert!(
            (parts - m.execution_time.as_secs_f64()).abs() < 1e-6,
            "phases {parts} vs total {}",
            m.execution_time.as_secs_f64()
        );
        // t_sim must match the cost model.
        assert!((m.t_sim.as_secs_f64() - 603.0).abs() < 1.0);
    }

    #[test]
    fn deep_idle_policy_reduces_post_power() {
        let busy = Campaign::paper();
        let mut deep = Campaign::paper();
        deep.config.io_policy = IoWaitPolicy::DeepIdle;
        let pc = PipelineConfig::paper(PipelineKind::PostProcessing, 8.0);
        let p_busy = busy.run(&pc).avg_power_total();
        let p_deep = deep.run(&pc).avg_power_total();
        assert!(
            p_deep.watts() < p_busy.watts() - 3_000.0,
            "deep idle should shave kW off the I/O phases: {p_deep} vs {p_busy}"
        );
    }

    #[test]
    fn noisy_campaign_is_deterministic_per_seed() {
        let a = Campaign::paper_noisy(7).run(&PipelineConfig::paper(PipelineKind::InSitu, 24.0));
        let b = Campaign::paper_noisy(7).run(&PipelineConfig::paper(PipelineKind::InSitu, 24.0));
        assert_eq!(a.execution_time, b.execution_time);
        let c = Campaign::paper_noisy(8).run(&PipelineConfig::paper(PipelineKind::InSitu, 24.0));
        assert_ne!(a.execution_time, c.execution_time);
    }

    #[test]
    fn noisy_campaign_stays_close_to_exact() {
        let exact = run(PipelineKind::InSitu, 8.0);
        let noisy = Campaign::paper_noisy(3).run(&PipelineConfig::paper(PipelineKind::InSitu, 8.0));
        let rel = (noisy.execution_time.as_secs_f64() - exact.execution_time.as_secs_f64()).abs()
            / exact.execution_time.as_secs_f64();
        assert!(rel < 0.02, "noise should be mild: rel={rel}");
    }

    #[test]
    fn scaled_machines_preserve_the_insitu_advantage() {
        // The paper's exascale motivation: the bigger the machine, the more
        // power idles behind the fixed-bandwidth storage during I/O, so the
        // in-situ energy saving *grows* with machine size.
        let mut savings = Vec::new();
        for cages in [5usize, 15, 45] {
            let campaign = Campaign::scaled_caddy(cages);
            let insitu = campaign.run(&PipelineConfig::paper(PipelineKind::InSitu, 8.0));
            let post = campaign.run(&PipelineConfig::paper(PipelineKind::PostProcessing, 8.0));
            let c = compare(&insitu, &post);
            savings.push(c.energy_saving_pct);
            // Storage footprint is machine-independent.
            assert!((post.storage_gb() - 230.6).abs() < 1.0);
        }
        assert!(
            savings[0] < savings[1] && savings[1] < savings[2],
            "energy saving should grow with machine size: {savings:?}"
        );
    }

    #[test]
    fn caddy_scaled_150_reproduces_the_seed_machine_exactly() {
        // Node-granular scaling audit: at the seed's 150 nodes the scaled
        // constructor must be the paper campaign bit-for-bit (digest, not
        // tolerance), for both pipeline families.
        let scaled = Campaign::caddy_scaled(150);
        assert_eq!(scaled.topology, ClusterTopology::caddy());
        assert_eq!(scaled.config.viz_seconds_per_output.to_bits(), {
            let paper = Campaign::paper();
            paper.config.viz_seconds_per_output.to_bits()
        });
        for pc in PipelineConfig::paper_matrix() {
            let a = Campaign::paper().run(&pc);
            let b = scaled.run(&pc);
            assert_eq!(
                a.digest(),
                b.digest(),
                "{:?} @ {} h",
                pc.kind,
                pc.rate.every_hours
            );
        }
    }

    #[test]
    fn caddy_scaled_never_truncates_node_counts() {
        // Non-divisible node counts must come out exact — the floor-division
        // failure mode would silently drop nodes (157 → 150, say).
        for nodes in [1usize, 7, 149, 150, 157, 1_001, 10_000] {
            let t = ClusterTopology::caddy_scaled(nodes);
            assert_eq!(t.num_nodes(), nodes, "scaled topology truncated");
            assert_eq!(t.num_cores(), nodes * 16);
            let c = Campaign::caddy_scaled(nodes);
            assert_eq!(c.topology.num_nodes(), nodes);
            assert_eq!(c.cost.cores, (nodes * 16) as u64);
        }
        // Prime counts fall back to one-node cages rather than losing nodes.
        assert_eq!(ClusterTopology::caddy_scaled(157).nodes_per_cage, 1);
        assert_eq!(ClusterTopology::caddy_scaled(10_000).nodes_per_cage, 10);
    }

    #[test]
    fn scaled_caddy_15_matches_paper_campaign() {
        let a = Campaign::paper().run(&PipelineConfig::paper(PipelineKind::InSitu, 8.0));
        let b = Campaign::scaled_caddy(15).run(&PipelineConfig::paper(PipelineKind::InSitu, 8.0));
        assert!((a.execution_time.as_secs_f64() - b.execution_time.as_secs_f64()).abs() < 1e-6);
        assert!((a.avg_power_total().watts() - b.avg_power_total().watts()).abs() < 1.0);
    }

    #[test]
    fn burst_buffer_overlaps_writes_with_simulation() {
        use ivis_storage::burst_buffer::BurstBufferConfig;
        let campaign = Campaign::paper();
        let pc = PipelineConfig::paper(PipelineKind::PostProcessing, 8.0);
        let plain = campaign.run(&pc);
        let buffered = campaign.run_postproc_burst_buffer(&pc, BurstBufferConfig::two_tb_nvram());
        // The buffer overlaps the 1449 s of raw writes with the 603 s of
        // simulation: buffered post-processing is faster...
        assert!(
            buffered.execution_time.as_secs_f64() < plain.execution_time.as_secs_f64() - 300.0,
            "buffered {} vs plain {}",
            buffered.execution_time.as_secs_f64(),
            plain.execution_time.as_secs_f64()
        );
        // ...but still slower than in-situ (the drain is on the critical
        // path before visualization), and the footprint is unchanged.
        let insitu = campaign.run(&PipelineConfig::paper(PipelineKind::InSitu, 8.0));
        assert!(
            buffered.execution_time.as_secs_f64() > insitu.execution_time.as_secs_f64() + 300.0
        );
        assert_eq!(buffered.storage_bytes, plain.storage_bytes);
    }

    #[test]
    fn paper_matrix_runs_all_six() {
        let all = Campaign::paper().run_paper_matrix();
        assert_eq!(all.len(), 6);
        assert!(all.iter().all(|m| m.execution_time.as_secs_f64() > 600.0));
    }

    #[test]
    fn storage_power_profile_is_nearly_flat() {
        let m = run(PipelineKind::PostProcessing, 8.0);
        let peak = m.storage_profile.peak().watts();
        let floor = m.storage_profile.floor().watts();
        assert!(peak <= 2302.0 + 1e-9);
        assert!(floor >= 2273.0 - 1e-9);
        assert!(peak - floor < 30.0, "rack dynamic range stays tiny");
    }
}
