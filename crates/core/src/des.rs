//! The pipeline executors re-expressed on the indexed discrete-event
//! engine ([`ivis_sim::DesEngine`]).
//!
//! The reference executors in [`campaign`](crate::campaign),
//! [`resilience`](crate::resilience) and [`transport`](crate::transport)
//! are imperative loops: one `now` cursor walks the run, calling the
//! machine/storage/recorder side effects in program order. This module
//! re-expresses each family as a chain of arena-allocated events on
//! [`DesEngine`] — the exascale-facing engine whose queue is the
//! hierarchical timer wheel instead of a `BinaryHeap` of boxed closures.
//!
//! **Determinism contract.** Each DES executor is **bit-identical** to
//! its reference loop: same RNG draw order, same machine phase timeline,
//! same storage submission schedule, same recorder trace byte-for-byte,
//! at any host thread count. The construction makes this hold by design:
//!
//! * exactly **one event is pending at a time** — the chain
//!   `Simulate(k) → Render(k) → Write(k) → Simulate(k+1) → …` fires in
//!   `(time, seq)` order, which coincides with the reference loop's
//!   program order;
//! * every handler performs the *same side-effect sequence with the same
//!   timestamps* as the corresponding loop segment (the timestamps come
//!   from the same arithmetic on the same RNG stream);
//! * storage completions, backoff schedules and staging-queue drains are
//!   *analytic lookahead* — computed inside the event that submits them,
//!   exactly as the loops do, never re-ordered by the queue.
//!
//! The in-transit family keeps the whole loop-body tail (compress →
//! backpressure → hand-off → render → image write) in one `Chunk(k)`
//! event: the reference interleaves side effects whose *timestamps* are
//! not monotone within one iteration (the image write of sample `k`
//! lands after the simulation of `k+1` starts), so splitting it across
//! time-ordered events would reorder the trace. One event per iteration
//! preserves program order and the byte-identical artifact.
//!
//! `tests/des_identity.rs` holds every family to this contract across
//! the paper matrix, fault seeds and staging sweeps, at `ZSIM_THREADS`
//! 1/2/8; the clean goldens stay pinned by the existing reference tests.
//!
//! Each family also carries a component-DAG description
//! ([`family_dag`]): solver, adaptor, render, encode, transport, storage
//! and fault nodes wired in the order the event chain visits them — the
//! schedulable topology the engine executes.

use std::collections::VecDeque;

use ivis_cluster::{JobPhase, SharedLink};
use ivis_fault::{FaultScenario, FaultSession};
use ivis_obs::{AttrValue, Component};
use ivis_ocean::cost::SimulationCostModel;
use ivis_sim::{ComponentKind, Dag, DesEngine, SimDuration, SimRng, SimTime};
use ivis_storage::ParallelFileSystem;

use crate::campaign::{note_write, Campaign, PhaseTracer};
use crate::config::{PipelineConfig, PipelineKind};
use crate::intransit::InTransitConfig;
use crate::metrics::PipelineMetrics;
use crate::resilience::{
    note_degraded_shed, resilient_write, FaultedRun, PipelineError, WriteOp, WriteOutcome,
};
use crate::transport::{per_node_payload, TransportStats};

/// The executor families the DES engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesFamily {
    /// In-situ: render on the compute partition, write only images.
    InSitu,
    /// Post-hoc: dump raw fields, read back and render afterwards.
    PostProcessing,
    /// In-transit: ship fields to a staging partition over the staged
    /// transport, render there.
    InTransit,
}

/// The component DAG a family's event chain executes, with a
/// [`ComponentKind::Fault`] injector wired in when `faulted`.
///
/// The graph is the schedulable topology: `topo_order` visits components
/// in exactly the order the executor's event chain fires them for one
/// sample.
pub fn family_dag(family: DesFamily, faulted: bool) -> Dag {
    let mut dag = Dag::new();
    let solver = dag.add(ComponentKind::Solver, "pop-solver");
    let mut storage_nodes = Vec::new();
    let mut transport_node = None;
    match family {
        DesFamily::InSitu => {
            let adaptor = dag.add(ComponentKind::Adaptor, "catalyst-adaptor");
            let render = dag.add(ComponentKind::Render, "catalyst-render");
            let encode = dag.add(ComponentKind::Encode, "png-encode");
            let storage = dag.add(ComponentKind::Storage, "image-db");
            for (a, b) in [(solver, adaptor), (adaptor, render), (render, encode)] {
                dag.connect(a, b).expect("static dag is well-formed");
            }
            dag.connect(encode, storage)
                .expect("static dag is well-formed");
            storage_nodes.push(storage);
        }
        DesFamily::PostProcessing => {
            let encode_raw = dag.add(ComponentKind::Encode, "netcdf-encode");
            let raw = dag.add(ComponentKind::Storage, "raw-dump");
            let render = dag.add(ComponentKind::Render, "posthoc-render");
            let encode_img = dag.add(ComponentKind::Encode, "png-encode");
            let images = dag.add(ComponentKind::Storage, "image-archive");
            for (a, b) in [
                (solver, encode_raw),
                (encode_raw, raw),
                (raw, render),
                (render, encode_img),
                (encode_img, images),
            ] {
                dag.connect(a, b).expect("static dag is well-formed");
            }
            storage_nodes.push(raw);
            storage_nodes.push(images);
        }
        DesFamily::InTransit => {
            let adaptor = dag.add(ComponentKind::Adaptor, "staging-adaptor");
            let transport = dag.add(ComponentKind::Transport, "staged-handoff");
            let render = dag.add(ComponentKind::Render, "staging-render");
            let encode = dag.add(ComponentKind::Encode, "png-encode");
            let storage = dag.add(ComponentKind::Storage, "image-db");
            for (a, b) in [
                (solver, adaptor),
                (adaptor, transport),
                (transport, render),
                (render, encode),
                (encode, storage),
            ] {
                dag.connect(a, b).expect("static dag is well-formed");
            }
            storage_nodes.push(storage);
            transport_node = Some(transport);
        }
    }
    if faulted {
        let fault = dag.add(ComponentKind::Fault, "fault-injector");
        // Stragglers gate the solver, retries/sheds wrap every storage
        // write, and link brownouts derate the transport.
        dag.connect(fault, solver)
            .expect("static dag is well-formed");
        for s in storage_nodes {
            dag.connect(fault, s).expect("static dag is well-formed");
        }
        if let Some(t) = transport_node {
            dag.connect(fault, t).expect("static dag is well-formed");
        }
    }
    dag
}

/// Event chain of the in-situ family (clean and faulted).
enum InsituEvent {
    /// Simulate chunk `k` (phase begins at the event time).
    Simulate(u64),
    /// Catalyst render of sample `k`.
    Render(u64),
    /// Image write of sample `k` through the resilient path.
    Write(u64),
    /// Trailing simulation steps after the last output.
    Trailing,
    /// Terminal: record the makespan.
    Finish,
}

/// Event chain of the post-hoc family (clean and faulted).
enum PostprocEvent {
    /// Simulate chunk `k`.
    Simulate(u64),
    /// Raw netCDF dump of sample `k` through the resilient path.
    RawWrite(u64),
    /// Trailing simulation steps.
    Trailing,
    /// Stage 2: read back and render everything that landed.
    ReadRender,
    /// Stage 2: write the image tarball.
    ImagesWrite,
    /// Terminal: record the makespan.
    Finish,
}

/// Event chain of the in-transit family: one event per sample (the
/// loop-body side effects are not time-monotone within an iteration, so
/// the whole body stays in program order inside one event), plus the
/// trailing/drain tail.
enum TransitEvent {
    /// Full loop body for sample `k`: simulate, compress, backpressure,
    /// hand-off, render, image write.
    Chunk(u64),
    /// Trailing steps, staging drain, machine finish.
    Tail,
}

impl Campaign {
    /// Execute one pipeline configuration on the discrete-event engine.
    ///
    /// Bit-identical to [`Campaign::run`] — metrics digest, recorder
    /// trace and exporter artifacts all match byte-for-byte.
    ///
    /// # Panics
    /// Panics if the storage model rejects an operation;
    /// [`try_run_des`](Self::try_run_des) returns the error instead.
    pub fn run_des(&self, pc: &PipelineConfig) -> PipelineMetrics {
        self.try_run_des(pc)
            .unwrap_or_else(|e| panic!("pipeline run failed: {e}"))
    }

    /// Fallible [`run_des`](Self::run_des).
    pub fn try_run_des(&self, pc: &PipelineConfig) -> Result<PipelineMetrics, PipelineError> {
        self.try_run_des_with_events(pc).map(|(m, _)| m)
    }

    /// [`try_run_des`](Self::try_run_des), also returning the number of
    /// engine events executed — the unit the `des_bench` throughput gate
    /// is denominated in.
    pub fn try_run_des_with_events(
        &self,
        pc: &PipelineConfig,
    ) -> Result<(PipelineMetrics, u64), PipelineError> {
        // An inert session keeps every fault hook at its nominal value;
        // the existing reference tests pin that a none-session run is
        // bit-identical to the clean executor, so one DES executor per
        // family covers both.
        let scenario = FaultScenario::none();
        let mut session = FaultSession::new(&scenario);
        match pc.kind {
            PipelineKind::InSitu => self.insitu_des(pc, &mut session),
            PipelineKind::PostProcessing => self.postproc_des(pc, &mut session, false),
        }
    }

    /// Execute one pipeline configuration under a fault scenario on the
    /// discrete-event engine. Bit-identical to
    /// [`Campaign::run_faulted`] — digest, trace and stats.
    pub fn run_faulted_des(
        &self,
        pc: &PipelineConfig,
        scenario: &FaultScenario,
    ) -> Result<FaultedRun, PipelineError> {
        let mut session = FaultSession::new(scenario);
        let (metrics, _) = match pc.kind {
            PipelineKind::InSitu => self.insitu_des(pc, &mut session)?,
            PipelineKind::PostProcessing => self.postproc_des(pc, &mut session, true)?,
        };
        Ok(FaultedRun::finish(metrics, session))
    }

    /// The staged in-transit executor on the discrete-event engine.
    /// Bit-identical to
    /// [`Campaign::try_run_intransit_with_stats`](Self::try_run_intransit_with_stats).
    pub fn try_run_intransit_des_with_stats(
        &self,
        pc: &PipelineConfig,
        it: &InTransitConfig,
    ) -> Result<(PipelineMetrics, TransportStats), PipelineError> {
        let scenario = FaultScenario::none();
        let mut session = FaultSession::new(&scenario);
        self.intransit_des(pc, it, &mut session)
            .map(|(m, s, _)| (m, s))
    }

    /// Metrics-only [`try_run_intransit_des_with_stats`](Self::try_run_intransit_des_with_stats).
    pub fn try_run_intransit_des(
        &self,
        pc: &PipelineConfig,
        it: &InTransitConfig,
    ) -> Result<PipelineMetrics, PipelineError> {
        self.try_run_intransit_des_with_stats(pc, it)
            .map(|(m, _)| m)
    }

    /// The in-transit pipeline under a fault scenario on the
    /// discrete-event engine; bit-identical to
    /// [`Campaign::run_intransit_faulted`].
    pub fn run_intransit_faulted_des(
        &self,
        pc: &PipelineConfig,
        it: &InTransitConfig,
        scenario: &FaultScenario,
    ) -> Result<FaultedRun, PipelineError> {
        let mut session = FaultSession::new(scenario);
        let metrics = self
            .intransit_des(pc, it, &mut session)
            .map(|(m, _, _)| m)?;
        Ok(FaultedRun::finish(metrics, session))
    }

    /// In-situ event chain; mirrors `run_insitu_faulted` side effect for
    /// side effect.
    fn insitu_des(
        &self,
        pc: &PipelineConfig,
        session: &mut FaultSession,
    ) -> Result<(PipelineMetrics, u64), PipelineError> {
        let mut rng = SimRng::new(self.config.seed);
        let mut machine = self.machine();
        let mut pfs = ParallelFileSystem::caddy_lustre();
        let rec = &self.config.recorder;
        let spec = &pc.spec;
        let n_out = spec.num_outputs(pc.rate);
        let spp = spec.steps_per_output(pc.rate);
        let step_secs = self.cost.step_seconds(spec);
        let trailing = spec.total_steps().saturating_sub(n_out * spp);
        let root = self.open_root(pc, SimTime::ZERO);
        let mut tracer = PhaseTracer::new(rec);
        let mut written = 0u64;
        let mut end = SimTime::ZERO;
        let mut error: Option<PipelineError> = None;

        let next_sim = |k: u64| {
            if k + 1 < n_out {
                InsituEvent::Simulate(k + 1)
            } else {
                InsituEvent::Trailing
            }
        };
        let mut engine: DesEngine<InsituEvent> = DesEngine::with_capacity(1);
        engine.schedule_at(
            SimTime::ZERO,
            if n_out > 0 {
                InsituEvent::Simulate(0)
            } else {
                InsituEvent::Trailing
            },
        );
        let mut handler = |eng: &mut DesEngine<InsituEvent>, t: SimTime, ev: InsituEvent| match ev {
            InsituEvent::Simulate(k) => {
                tracer.begin(&mut machine, t, JobPhase::Simulate);
                let slow = session.compute_slowdown(t);
                let done = t + SimDuration::from_secs_f64(
                    step_secs * spp as f64 * self.noise(&mut rng) * slow,
                );
                if session.should_shed(k) {
                    // Degraded: skip the render and the write for this sample.
                    note_degraded_shed(rec, session, done, k);
                    eng.schedule_at(done, next_sim(k));
                } else {
                    eng.schedule_at(done, InsituEvent::Render(k));
                }
            }
            InsituEvent::Render(k) => {
                tracer.begin(&mut machine, t, JobPhase::Visualize);
                let done = t + SimDuration::from_secs_f64(
                    self.config.viz_seconds_per_output * self.noise(&mut rng),
                );
                eng.schedule_at(done, InsituEvent::Write(k));
            }
            InsituEvent::Write(k) => {
                tracer.begin(&mut machine, t, JobPhase::WriteOutput);
                let path = format!("/insitu/cinema/ts_{k:06}.png");
                let op = WriteOp {
                    path: &path,
                    bytes: self.config.image_bytes_per_output,
                    index: k,
                    counts: true,
                };
                match resilient_write(rec, session, &mut pfs, t, &op) {
                    Ok(WriteOutcome::Written(done)) => {
                        written += 1;
                        eng.schedule_at(done, next_sim(k));
                    }
                    Ok(WriteOutcome::SpaceShed(at)) => {
                        eng.schedule_at(at, next_sim(k));
                    }
                    // Terminal: schedule nothing, the queue drains.
                    Err(e) => error = Some(e),
                }
            }
            InsituEvent::Trailing => {
                let mut now = t;
                if trailing > 0 {
                    tracer.begin(&mut machine, now, JobPhase::Simulate);
                    let slow = session.compute_slowdown(now);
                    now += SimDuration::from_secs_f64(
                        step_secs * trailing as f64 * self.noise(&mut rng) * slow,
                    );
                }
                eng.schedule_at(now, InsituEvent::Finish);
            }
            InsituEvent::Finish => end = t,
        };
        engine.run(&mut handler);
        let _ = handler;
        if let Some(e) = error {
            return Err(e);
        }
        tracer.finish(&mut machine, end);
        rec.close(end, root);
        Ok((
            self.harvest(pc, machine, &pfs, end, written),
            engine.events_executed(),
        ))
    }

    /// Post-hoc event chain; mirrors `run_postproc_faulted` when
    /// `resilient_tail`, `run_postproc` otherwise. The two references
    /// differ in exactly one observable: the clean loop commits the
    /// image tarball with a bare `pfs.write` while the faulted loop
    /// routes it through `resilient_write` (which opens a `pfs_write`
    /// span), so trace bit-identity needs both tails.
    fn postproc_des(
        &self,
        pc: &PipelineConfig,
        session: &mut FaultSession,
        resilient_tail: bool,
    ) -> Result<(PipelineMetrics, u64), PipelineError> {
        let mut rng = SimRng::new(self.config.seed ^ 0x5151);
        let mut machine = self.machine();
        let mut pfs = ParallelFileSystem::caddy_lustre();
        let rec = &self.config.recorder;
        let spec = &pc.spec;
        let n_out = spec.num_outputs(pc.rate);
        let spp = spec.steps_per_output(pc.rate);
        let step_secs = self.cost.step_seconds(spec);
        let raw = spec.raw_output_bytes();
        let trailing = spec.total_steps().saturating_sub(n_out * spp);
        let root = self.open_root(pc, SimTime::ZERO);
        let mut tracer = PhaseTracer::new(rec);
        let mut written = 0u64;
        let mut end = SimTime::ZERO;
        let mut error: Option<PipelineError> = None;

        let next_sim = |k: u64| {
            if k + 1 < n_out {
                PostprocEvent::Simulate(k + 1)
            } else {
                PostprocEvent::Trailing
            }
        };
        let mut engine: DesEngine<PostprocEvent> = DesEngine::with_capacity(1);
        engine.schedule_at(
            SimTime::ZERO,
            if n_out > 0 {
                PostprocEvent::Simulate(0)
            } else {
                PostprocEvent::Trailing
            },
        );
        let mut handler =
            |eng: &mut DesEngine<PostprocEvent>, t: SimTime, ev: PostprocEvent| match ev {
                PostprocEvent::Simulate(k) => {
                    tracer.begin(&mut machine, t, JobPhase::Simulate);
                    let slow = session.compute_slowdown(t);
                    let done = t + SimDuration::from_secs_f64(
                        step_secs * spp as f64 * self.noise(&mut rng) * slow,
                    );
                    if session.should_shed(k) {
                        note_degraded_shed(rec, session, done, k);
                        eng.schedule_at(done, next_sim(k));
                    } else {
                        eng.schedule_at(done, PostprocEvent::RawWrite(k));
                    }
                }
                PostprocEvent::RawWrite(k) => {
                    tracer.begin(&mut machine, t, JobPhase::WriteOutput);
                    let path = format!("/postproc/raw/out_{k:06}.nc");
                    let op = WriteOp {
                        path: &path,
                        bytes: raw,
                        index: k,
                        counts: true,
                    };
                    match resilient_write(rec, session, &mut pfs, t, &op) {
                        Ok(WriteOutcome::Written(done)) => {
                            written += 1;
                            eng.schedule_at(done, next_sim(k));
                        }
                        Ok(WriteOutcome::SpaceShed(at)) => {
                            eng.schedule_at(at, next_sim(k));
                        }
                        Err(e) => error = Some(e),
                    }
                }
                PostprocEvent::Trailing => {
                    let mut now = t;
                    if trailing > 0 {
                        tracer.begin(&mut machine, now, JobPhase::Simulate);
                        let slow = session.compute_slowdown(now);
                        now += SimDuration::from_secs_f64(
                            step_secs * trailing as f64 * self.noise(&mut rng) * slow,
                        );
                    }
                    eng.schedule_at(now, PostprocEvent::ReadRender);
                }
                PostprocEvent::ReadRender => {
                    // Stage 2 reads back and renders only what landed.
                    tracer.begin(&mut machine, t, JobPhase::Visualize);
                    let render =
                        self.config.viz_seconds_per_output * written as f64 * self.noise(&mut rng);
                    let read = (raw * written) as f64 / self.config.seq_read_bandwidth_bps;
                    tracer.attr("render_seconds", AttrValue::F64(render));
                    tracer.attr("read_seconds", AttrValue::F64(read));
                    eng.schedule_at(
                        t + SimDuration::from_secs_f64(render.max(read)),
                        PostprocEvent::ImagesWrite,
                    );
                }
                PostprocEvent::ImagesWrite => {
                    tracer.begin(&mut machine, t, JobPhase::WriteOutput);
                    let images: u64 = self.config.image_bytes_per_output * written;
                    if resilient_tail {
                        let op = WriteOp {
                            path: "/postproc/images.tar",
                            bytes: images,
                            index: written,
                            counts: false,
                        };
                        match resilient_write(rec, session, &mut pfs, t, &op) {
                            Ok(WriteOutcome::Written(done)) | Ok(WriteOutcome::SpaceShed(done)) => {
                                eng.schedule_at(done, PostprocEvent::Finish);
                            }
                            Err(e) => error = Some(e),
                        }
                    } else {
                        match pfs.write(t, "/postproc/images.tar", images) {
                            Ok(done) => {
                                note_write(rec, &pfs, t, done, written, images);
                                eng.schedule_at(done, PostprocEvent::Finish);
                            }
                            Err(source) => {
                                error =
                                    Some(PipelineError::storage(t, "/postproc/images.tar", source));
                            }
                        }
                    }
                }
                PostprocEvent::Finish => end = t,
            };
        engine.run(&mut handler);
        let _ = handler;
        if let Some(e) = error {
            return Err(e);
        }
        tracer.finish(&mut machine, end);
        rec.close(end, root);
        Ok((
            self.harvest(pc, machine, &pfs, end, written),
            engine.events_executed(),
        ))
    }

    /// In-transit event chain; mirrors `intransit_staged` with the whole
    /// loop body of sample `k` inside `Chunk(k)`.
    fn intransit_des(
        &self,
        pc: &PipelineConfig,
        it: &InTransitConfig,
        session: &mut FaultSession,
    ) -> Result<(PipelineMetrics, TransportStats, u64), PipelineError> {
        it.transport.validate();
        let mut rng = SimRng::new(self.config.seed ^ 0x17A7);
        let mut machine = self.machine();
        let mut pfs = ParallelFileSystem::caddy_lustre();
        let rec = &self.config.recorder;
        let spec = &pc.spec;
        let n_out = spec.num_outputs(pc.rate);
        let spp = spec.steps_per_output(pc.rate);
        let total_nodes = machine.topology().num_nodes();
        assert!(
            it.staging_nodes > 0 && it.staging_nodes < total_nodes,
            "staging partition must be a proper subset of the machine"
        );
        let staging = it.staging_nodes;
        let cores_per_node = machine.topology().cores_per_node();
        let mut cost: SimulationCostModel = self.cost.clone();
        cost.cores = ((total_nodes - staging) * cores_per_node) as u64;
        let step_secs = cost.step_seconds(spec);
        let staging_viz_secs =
            self.config.viz_seconds_per_output * total_nodes as f64 / staging as f64;
        let raw = spec.raw_output_bytes();
        let (wire_total, compress_t, decompress_t) = match &it.transport.compression {
            Some(c) => (
                c.wire_bytes(raw),
                SimDuration::from_secs_f64(
                    raw as f64 / (c.compress_node_bps * (total_nodes - staging) as f64),
                ),
                SimDuration::from_secs_f64(raw as f64 / (c.decompress_node_bps * staging as f64)),
            ),
            None => (raw, SimDuration::ZERO, SimDuration::ZERO),
        };
        let per_node = per_node_payload(wire_total, staging as u64);
        let depth = it.transport.depth;
        let mut link = SharedLink::new(it.interconnect.clone());
        let trailing = spec.total_steps().saturating_sub(n_out * spp);

        let root = self.open_root(pc, SimTime::ZERO);
        rec.set_attr(root, "staging_nodes", AttrValue::U64(staging as u64));
        rec.set_attr(root, "transport_depth", AttrValue::U64(depth as u64));
        if let Some(c) = &it.transport.compression {
            rec.set_attr(root, "compression_ratio", AttrValue::F64(c.ratio));
        }

        let mut staging_busy_until = SimTime::ZERO;
        let mut inflight: VecDeque<SimTime> = VecDeque::with_capacity(depth);
        let mut stats = TransportStats {
            depth,
            ..TransportStats::default()
        };
        let mut written = 0u64;
        let mut end = SimTime::ZERO;
        let mut error: Option<PipelineError> = None;

        let next_chunk = |k: u64| {
            if k + 1 < n_out {
                TransitEvent::Chunk(k + 1)
            } else {
                TransitEvent::Tail
            }
        };
        let mut engine: DesEngine<TransitEvent> = DesEngine::with_capacity(1);
        engine.schedule_at(
            SimTime::ZERO,
            if n_out > 0 {
                TransitEvent::Chunk(0)
            } else {
                TransitEvent::Tail
            },
        );
        let mut handler = |eng: &mut DesEngine<TransitEvent>, t: SimTime, ev: TransitEvent| match ev
        {
            TransitEvent::Chunk(k) => {
                let mut now = t; // compute-partition clock
                                 // Simulate the chunk; staging works off its backlog alongside.
                let slow = session.compute_slowdown(now);
                let chunk = SimDuration::from_secs_f64(
                    step_secs * spp as f64 * self.noise(&mut rng) * slow,
                );
                if staging_busy_until > now {
                    machine.begin_split_phase(
                        now,
                        staging,
                        JobPhase::Simulate,
                        JobPhase::Visualize,
                    );
                    if staging_busy_until < now + chunk {
                        // Staging drains its queue mid-chunk.
                        machine.begin_split_phase(
                            staging_busy_until,
                            staging,
                            JobPhase::Simulate,
                            JobPhase::Idle,
                        );
                    }
                } else {
                    machine.begin_split_phase(now, staging, JobPhase::Simulate, JobPhase::Idle);
                }
                now += chunk;
                if session.should_shed(k) {
                    // Degraded: no hand-off, no render, no image for this sample.
                    note_degraded_shed(rec, session, now, k);
                    eng.schedule_at(now, next_chunk(k));
                    return;
                }
                // Compress on the compute partition before shipping.
                if !compress_t.is_zero() {
                    let staging_phase = if staging_busy_until > now {
                        JobPhase::Visualize
                    } else {
                        JobPhase::Idle
                    };
                    machine.begin_split_phase(now, staging, JobPhase::Visualize, staging_phase);
                    let cid = rec.span(now, "compress", Component::Transport);
                    rec.set_attr(cid, "index", AttrValue::U64(k));
                    now += compress_t;
                    rec.close(now, cid);
                    stats.compress_time += compress_t;
                }
                // Backpressure: at most `depth` samples in flight.
                while inflight.front().is_some_and(|&d| d <= now) {
                    inflight.pop_front();
                }
                if inflight.len() >= depth {
                    let free = inflight[0];
                    machine.begin_split_phase(
                        now,
                        staging,
                        JobPhase::WriteOutput,
                        JobPhase::Visualize,
                    );
                    stats.stall_time += free.duration_since(now);
                    rec.event(
                        now,
                        "transport_stall",
                        Component::Transport,
                        &[
                            ("index", AttrValue::U64(k)),
                            (
                                "wait_seconds",
                                AttrValue::F64(free.duration_since(now).as_secs_f64()),
                            ),
                        ],
                    );
                    rec.counter_add(now, "transport.stalls", 1.0);
                    rec.histogram_record(
                        now,
                        "transport.stall_seconds",
                        free.duration_since(now).as_secs_f64(),
                    );
                    now = free;
                    while inflight.front().is_some_and(|&d| d <= now) {
                        inflight.pop_front();
                    }
                }
                // Ship over the shared link. Synchronous depth blocks
                // through the transfer; deeper queues overlap it.
                link.set_bandwidth_scale(session.link_scale(now));
                let submit = now;
                if depth == 1 {
                    machine.begin_split_phase(
                        now,
                        staging,
                        JobPhase::WriteOutput,
                        JobPhase::WriteOutput,
                    );
                }
                let xfer = link.transfer(submit, per_node);
                if depth == 1 {
                    now = xfer.done;
                }
                let hid = rec.span(submit, "handoff", Component::Transport);
                rec.set_attr(hid, "index", AttrValue::U64(k));
                rec.set_attr(hid, "wire_bytes", AttrValue::U64(per_node));
                rec.set_attr(
                    hid,
                    "queued_seconds",
                    AttrValue::F64(xfer.queued(submit).as_secs_f64()),
                );
                rec.close(xfer.done, hid);
                // Staging serves FIFO: decompress + render behind whatever
                // is still queued, then the image write retires the sample.
                let render = SimDuration::from_secs_f64(staging_viz_secs * self.noise(&mut rng));
                let service_start = xfer.done.max(staging_busy_until);
                let render_done = service_start + decompress_t + render;
                stats.decompress_time += decompress_t;
                let path = format!("/intransit/cinema/ts_{k:06}.png");
                let op = WriteOp {
                    path: &path,
                    bytes: self.config.image_bytes_per_output,
                    index: k,
                    counts: true,
                };
                let completion = match resilient_write(rec, session, &mut pfs, render_done, &op) {
                    Ok(WriteOutcome::Written(done)) => {
                        written += 1;
                        done
                    }
                    Ok(WriteOutcome::SpaceShed(at)) => at,
                    Err(e) => {
                        error = Some(e);
                        return;
                    }
                };
                staging_busy_until = completion;
                inflight.push_back(completion);
                stats.samples_shipped += 1;
                stats.bytes_shipped += per_node * staging as u64;
                if inflight.len() > stats.max_in_flight {
                    stats.max_in_flight = inflight.len();
                }
                rec.gauge_set(submit, "transport.queue_depth", inflight.len() as f64);
                rec.histogram_record(submit, "transport.queue_depth_dist", inflight.len() as f64);
                rec.counter_add(
                    submit,
                    "transport.bytes_shipped",
                    (per_node * staging as u64) as f64,
                );
                eng.schedule_at(now, next_chunk(k));
            }
            TransitEvent::Tail => {
                // Trailing simulation steps, then wait out the staging tail.
                let mut now = t;
                if trailing > 0 {
                    machine.begin_split_phase(now, staging, JobPhase::Simulate, JobPhase::Idle);
                    let slow = session.compute_slowdown(now);
                    now += SimDuration::from_secs_f64(
                        step_secs * trailing as f64 * self.noise(&mut rng) * slow,
                    );
                }
                if staging_busy_until > now {
                    machine.begin_split_phase(now, staging, JobPhase::Idle, JobPhase::Visualize);
                    now = staging_busy_until;
                }
                machine.finish(now);
                rec.close(now, root);
                stats.link_queued = link.queued_time();
                stats.link_busy = link.busy_time();
                end = now;
            }
        };
        engine.run(&mut handler);
        let _ = handler;
        if let Some(e) = error {
            return Err(e);
        }
        Ok((
            self.harvest(pc, machine, &pfs, end, written),
            stats,
            engine.events_executed(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intransit::reported_kind;
    use crate::transport::{CompressionConfig, TransportConfig};
    use ivis_fault::FaultPlan;

    #[test]
    fn family_dags_validate_and_topo_sort() {
        for family in [
            DesFamily::InSitu,
            DesFamily::PostProcessing,
            DesFamily::InTransit,
        ] {
            for faulted in [false, true] {
                let dag = family_dag(family, faulted);
                dag.validate().expect("family dag is acyclic");
                let order = dag.topo_order().expect("family dag topo-sorts");
                assert_eq!(order.len(), dag.len());
                // The first schedulable component is the solver — unless
                // a fault injector gates it, in which case the injector
                // is the unique source.
                let expected_first = if faulted {
                    ComponentKind::Fault
                } else {
                    ComponentKind::Solver
                };
                assert_eq!(dag.kind(order[0]), expected_first);
                let faults = dag
                    .ids()
                    .filter(|&id| dag.kind(id) == ComponentKind::Fault)
                    .count();
                assert_eq!(faults, usize::from(faulted));
            }
        }
    }

    #[test]
    fn insitu_des_is_bit_identical_to_the_reference_loop() {
        let campaign = Campaign::paper();
        let pc = PipelineConfig::paper(PipelineKind::InSitu, 8.0);
        let (m, events) = campaign
            .try_run_des_with_events(&pc)
            .expect("clean run cannot fail");
        assert_eq!(m.digest(), campaign.run(&pc).digest());
        // Simulate + Render + Write per sample, plus Trailing and Finish.
        assert_eq!(events, 3 * m.num_outputs + 2);
    }

    #[test]
    fn postproc_des_is_bit_identical_to_the_reference_loop() {
        let campaign = Campaign::paper();
        let pc = PipelineConfig::paper(PipelineKind::PostProcessing, 24.0);
        let (m, events) = campaign
            .try_run_des_with_events(&pc)
            .expect("clean run cannot fail");
        assert_eq!(m.digest(), campaign.run(&pc).digest());
        // Simulate + RawWrite per sample, plus the four stage-2 events.
        assert_eq!(events, 2 * m.num_outputs + 4);
    }

    #[test]
    fn intransit_des_is_bit_identical_including_stats() {
        let campaign = Campaign::paper();
        let mut pc = PipelineConfig::paper(PipelineKind::InSitu, 24.0);
        pc.kind = reported_kind();
        let it = InTransitConfig {
            staging_nodes: 25,
            transport: TransportConfig::pipelined(2)
                .with_compression(CompressionConfig::zfp_like()),
            ..InTransitConfig::caddy_default()
        };
        let (m_ref, s_ref) = campaign
            .try_run_intransit_with_stats(&pc, &it)
            .expect("clean staged run cannot fail");
        let (m_des, s_des) = campaign
            .try_run_intransit_des_with_stats(&pc, &it)
            .expect("clean staged run cannot fail");
        assert_eq!(m_des.digest(), m_ref.digest());
        assert_eq!(s_des, s_ref);
    }

    #[test]
    fn faulted_des_matches_the_reference_digest() {
        let campaign = Campaign::paper();
        let pc = PipelineConfig::paper(PipelineKind::InSitu, 8.0);
        let scenario =
            FaultScenario::with_plan(FaultPlan::random(42, SimDuration::from_secs(1_300)));
        let a = campaign
            .run_faulted(&pc, &scenario)
            .expect("random plan at seed 42 completes")
            .digest();
        let b = campaign
            .run_faulted_des(&pc, &scenario)
            .expect("random plan at seed 42 completes")
            .digest();
        assert_eq!(a, b);
    }
}
