//! The in-transit pipeline: visualization on dedicated staging nodes.
//!
//! Bennett et al. (cited by the paper) and Rodero et al. (its related work)
//! move analysis off the compute partition onto **staging nodes**: after
//! each sample the field is shipped over the interconnect to the staging
//! partition, which renders while the simulation proceeds. This trades
//! compute nodes for overlap.
//!
//! The hand-off itself is modeled by the staged transport in
//! [`transport`](crate::transport): a bounded depth-`k` in-flight queue
//! with optional wire compression and link contention. The default
//! [`TransportConfig::synchronous`] (depth 1, no compression) reproduces
//! the original synchronous executor — kept here verbatim as
//! [`Campaign::try_run_intransit_reference`] — bit-identically; golden
//! tests pin that equivalence.
//!
//! This module extends the measurement campaign with
//! [`Campaign::run_intransit`], producing the same [`PipelineMetrics`]
//! artifact so in-transit drops straight into the Fig. 3/5/6/7 comparisons.

use ivis_cluster::interconnect::Interconnect;
use ivis_cluster::JobPhase;
use ivis_fault::{FaultScenario, FaultSession};
use ivis_ocean::cost::SimulationCostModel;
use ivis_sim::{SimDuration, SimRng, SimTime};
use ivis_storage::ParallelFileSystem;

use crate::campaign::Campaign;
use crate::config::{PipelineConfig, PipelineKind};
use crate::metrics::PipelineMetrics;
use crate::resilience::PipelineError;
use crate::transport::{per_node_payload, TransportConfig, TransportStats};

/// In-transit specific knobs.
#[derive(Debug, Clone)]
pub struct InTransitConfig {
    /// Staging nodes carved out of the machine.
    pub staging_nodes: usize,
    /// Interconnect used for the compute→staging hand-off.
    pub interconnect: Interconnect,
    /// How the hand-off is staged (queue depth, compression). The default
    /// synchronous transport reproduces the original executor.
    pub transport: TransportConfig,
}

impl InTransitConfig {
    /// A typical allocation: 10 of the 150 nodes stage, over IB QDR, with
    /// the synchronous single-in-flight hand-off.
    pub fn caddy_default() -> Self {
        InTransitConfig {
            staging_nodes: 10,
            interconnect: Interconnect::ib_qdr(),
            transport: TransportConfig::synchronous(),
        }
    }
}

impl Campaign {
    /// Run the in-transit pipeline on the simulated machine.
    ///
    /// The compute partition shrinks to `N − staging` nodes (the cost model
    /// scales accordingly); rendering time scales inversely with the staging
    /// partition size from the paper's whole-machine β.
    pub fn run_intransit(&self, pc: &PipelineConfig, it: &InTransitConfig) -> PipelineMetrics {
        self.try_run_intransit(pc, it)
            .unwrap_or_else(|e| panic!("pipeline run failed: {e}"))
    }

    /// [`run_intransit`](Self::run_intransit) with storage failures
    /// returned as typed errors.
    pub fn try_run_intransit(
        &self,
        pc: &PipelineConfig,
        it: &InTransitConfig,
    ) -> Result<PipelineMetrics, PipelineError> {
        self.try_run_intransit_with_stats(pc, it).map(|(m, _)| m)
    }

    /// [`run_intransit`](Self::run_intransit), also returning the
    /// transport's accounting ([`TransportStats`]): queue high-water mark,
    /// stall time, link contention and codec cost.
    pub fn run_intransit_with_stats(
        &self,
        pc: &PipelineConfig,
        it: &InTransitConfig,
    ) -> (PipelineMetrics, TransportStats) {
        self.try_run_intransit_with_stats(pc, it)
            .unwrap_or_else(|e| panic!("pipeline run failed: {e}"))
    }

    /// Fallible [`run_intransit_with_stats`](Self::run_intransit_with_stats).
    pub fn try_run_intransit_with_stats(
        &self,
        pc: &PipelineConfig,
        it: &InTransitConfig,
    ) -> Result<(PipelineMetrics, TransportStats), PipelineError> {
        // The staged executor is shared with the fault-aware path; a
        // no-fault session keeps every hook at its nominal value, so the
        // clean run stays bit-identical by construction.
        let scenario = FaultScenario::none();
        let mut session = FaultSession::new(&scenario);
        self.intransit_staged(pc, it, &mut session)
    }

    /// The original synchronous in-transit executor, kept verbatim as the
    /// golden reference: exactly one sample in flight, the compute
    /// partition blocked through the whole hand-off, no instrumentation.
    ///
    /// [`try_run_intransit`](Self::try_run_intransit) with
    /// [`TransportConfig::synchronous`] must reproduce this bit-identically
    /// (metrics, machine timeline, storage schedule) — the
    /// `intransit_transport` integration tests pin that equivalence at
    /// several thread counts. The per-node payload uses the same
    /// [`per_node_payload`] ceiling division as the staged transport.
    pub fn try_run_intransit_reference(
        &self,
        pc: &PipelineConfig,
        it: &InTransitConfig,
    ) -> Result<PipelineMetrics, PipelineError> {
        let mut rng = SimRng::new(self.config.seed ^ 0x17A7);
        let mut machine = self.machine();
        let mut pfs = ParallelFileSystem::caddy_lustre();
        let spec = &pc.spec;
        let n_out = spec.num_outputs(pc.rate);
        let spp = spec.steps_per_output(pc.rate);
        let total_nodes = machine.topology().num_nodes();
        assert!(
            it.staging_nodes > 0 && it.staging_nodes < total_nodes,
            "staging partition must be a proper subset of the machine"
        );
        let staging = it.staging_nodes;
        let cores_per_node = machine.topology().cores_per_node();

        // Compute-partition cost model: fewer cores, same problem.
        let mut cost: SimulationCostModel = self.cost.clone();
        cost.cores = ((total_nodes - staging) * cores_per_node) as u64;
        let step_secs = cost.step_seconds(spec);

        // Rendering on the staging partition: β scales with partition size.
        let staging_viz_secs =
            self.config.viz_seconds_per_output * total_nodes as f64 / staging as f64;
        // Hand-off: the raw field fans out over the staging nodes' links;
        // the slowest link carries the rounded-up remainder.
        let transfer = {
            let per_node = per_node_payload(spec.raw_output_bytes(), staging as u64);
            it.interconnect.ptp_time(per_node)
        };

        let mut now = SimTime::ZERO; // compute-partition clock
        let mut staging_free = SimTime::ZERO; // staging-partition clock
        for k in 0..n_out {
            // Simulate the chunk; staging renders the previous sample (if
            // still busy) in parallel.
            let chunk = SimDuration::from_secs_f64(step_secs * spp as f64 * self.noise(&mut rng));
            if staging_free > now {
                machine.begin_split_phase(now, staging, JobPhase::Simulate, JobPhase::Visualize);
                if staging_free < now + chunk {
                    // Staging finishes mid-chunk.
                    machine.begin_split_phase(
                        staging_free,
                        staging,
                        JobPhase::Simulate,
                        JobPhase::Idle,
                    );
                }
            } else {
                machine.begin_split_phase(now, staging, JobPhase::Simulate, JobPhase::Idle);
            }
            now += chunk;
            // Hand-off: compute must wait until staging is free (synchronous
            // staging, single in-flight sample). Ranks busy-wait.
            if staging_free > now {
                machine.begin_split_phase(now, staging, JobPhase::WriteOutput, JobPhase::Visualize);
                now = staging_free;
            }
            machine.begin_split_phase(now, staging, JobPhase::WriteOutput, JobPhase::WriteOutput);
            now += transfer;
            // Staging renders this sample and writes its images.
            let render = SimDuration::from_secs_f64(staging_viz_secs * self.noise(&mut rng));
            let render_done = now + render;
            let path = format!("/intransit/cinema/ts_{k:06}.png");
            let image_done = pfs
                .write(render_done, &path, self.config.image_bytes_per_output)
                .map_err(|source| PipelineError::storage(render_done, &path, source))?;
            staging_free = image_done;
        }
        // Trailing simulation steps, then wait out the staging tail.
        let trailing = spec.total_steps().saturating_sub(n_out * spp);
        if trailing > 0 {
            machine.begin_split_phase(now, staging, JobPhase::Simulate, JobPhase::Idle);
            now += SimDuration::from_secs_f64(step_secs * trailing as f64 * self.noise(&mut rng));
        }
        if staging_free > now {
            machine.begin_split_phase(now, staging, JobPhase::Idle, JobPhase::Visualize);
            now = staging_free;
        }
        machine.finish(now);
        Ok(self.harvest(pc, machine, &pfs, now, n_out))
    }
}

/// The pipeline kind reported for in-transit runs: it *is* an in-situ
/// variant from the storage system's point of view (only images are
/// written), so metrics carry [`PipelineKind::InSitu`]; use the row label
/// from the experiment harness to distinguish them.
pub fn reported_kind() -> PipelineKind {
    PipelineKind::InSitu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;

    fn run_it(staging: usize, hours: f64) -> PipelineMetrics {
        let campaign = Campaign::paper();
        let mut pc = PipelineConfig::paper(PipelineKind::InSitu, hours);
        pc.kind = reported_kind();
        campaign.run_intransit(
            &pc,
            &InTransitConfig {
                staging_nodes: staging,
                ..InTransitConfig::caddy_default()
            },
        )
    }

    fn run_insitu(hours: f64) -> PipelineMetrics {
        Campaign::paper().run(&PipelineConfig::paper(PipelineKind::InSitu, hours))
    }

    #[test]
    fn undersized_staging_partition_stalls_the_pipeline() {
        // 10 staging nodes must render 15× slower than the whole machine:
        // at the 8 h rate the renderer cannot keep up and in-transit is much
        // slower than in-situ.
        let it = run_it(10, 8.0);
        let insitu = run_insitu(8.0);
        assert!(
            it.execution_time.as_secs_f64() > 2.0 * insitu.execution_time.as_secs_f64(),
            "in-transit {} vs in-situ {}",
            it.execution_time.as_secs_f64(),
            insitu.execution_time.as_secs_f64()
        );
    }

    #[test]
    fn generous_staging_partition_approaches_insitu() {
        // With 50 staging nodes at the 72 h rate the render hides behind the
        // simulation; only the compute-partition slowdown (150/100) remains.
        let it = run_it(50, 72.0);
        let insitu = run_insitu(72.0);
        let ratio = it.execution_time.as_secs_f64() / insitu.execution_time.as_secs_f64();
        assert!(
            ratio < 1.45,
            "well-provisioned in-transit should be near in-situ: ratio {ratio:.2}"
        );
    }

    #[test]
    fn storage_footprint_matches_insitu() {
        let it = run_it(25, 24.0);
        let insitu = run_insitu(24.0);
        assert_eq!(it.storage_bytes, insitu.storage_bytes);
        assert_eq!(it.num_outputs, insitu.num_outputs);
    }

    #[test]
    fn staging_idle_time_lowers_average_power() {
        // At the 72 h rate with 25 staging nodes, staging idles most of the
        // time ⇒ average power drops below the all-busy in-situ level.
        let it = run_it(25, 72.0);
        let insitu = run_insitu(72.0);
        assert!(
            it.avg_power_compute().watts() < insitu.avg_power_compute().watts(),
            "in-transit {} vs in-situ {}",
            it.avg_power_compute(),
            insitu.avg_power_compute()
        );
    }

    #[test]
    fn phase_decomposition_is_consistent() {
        let it = run_it(25, 24.0);
        let total = it.t_sim + it.t_io + it.t_viz;
        // The compute-partition timeline may also contain idle tail time;
        // phases never exceed the makespan.
        assert!(total <= it.execution_time + ivis_sim::SimDuration::from_secs(1));
        assert!(it.t_sim.as_secs_f64() > 600.0, "slowed t_sim > 603 s");
    }

    #[test]
    #[should_panic(expected = "proper subset")]
    fn zero_staging_rejected() {
        let _ = run_it(0, 24.0);
    }
}
