//! # ivis-core — the paper's pipeline layer
//!
//! This crate is the primary contribution of the reproduced paper: coupled
//! simulation + visualization pipelines, instrumented for performance,
//! power, energy and storage, in both flavors the paper compares:
//!
//! * **Post-processing** (Fig. 1a): the simulation writes raw data every
//!   sample through a PIO-style collective writer; after the run, the data
//!   is read back and rendered.
//! * **In-situ** (Fig. 1b): a Catalyst-style adaptor copies simulation
//!   structures to visualization structures at every sample; images are
//!   rendered in place and only the (tiny) image database hits storage.
//!
//! Two execution backends share the same pipeline semantics:
//!
//! * [`campaign`] — the *measured-cluster* backend: runs a pipeline against
//!   the simulated 150-node *Caddy* machine ([`ivis_cluster`]) and its
//!   Lustre rack ([`ivis_storage`]), with per-minute power meters attached,
//!   and returns the full [`metrics::PipelineMetrics`] the paper reports.
//! * [`native`] — the *laptop* backend: actually time-steps the ocean,
//!   renders PNGs, encodes ncdf files and tracks eddies, measuring real
//!   wall-clock time.
//!
//! Shared pieces: [`adaptor`] (the Catalyst analogue), [`config`]
//! (pipeline kind, sampling rate, cost constants).

//! A third concern cuts across both backends: [`resilience`] runs the same
//! pipelines under an [`ivis_fault::FaultPlan`] with retry/timeout/
//! degradation machinery, producing a [`resilience::FaultedRun`] that
//! degrades gracefully instead of panicking.
//!
//! Every executor also feeds one observability hook: [`telemetry`] turns
//! a finished run's harvested power profiles (or the native backend's
//! phase spans) into sampled W(t) [`ivis_obs::telemetry::PowerTimeline`]s
//! at a configurable cadence — the paper's per-minute PDU view.

pub mod adaptive;
pub mod adaptor;
pub mod campaign;
pub mod config;
pub mod des;
pub mod intransit;
pub mod metrics;
pub mod native;
pub mod resilience;
pub mod telemetry;
pub mod transport;

pub use adaptive::{
    run_native_adaptive, run_native_adaptive_sequential, run_native_adaptive_sequential_with,
    run_native_adaptive_with, AdaptiveReport,
};
pub use adaptor::{CatalystAdaptor, VizSnapshot};
pub use campaign::{Campaign, CampaignConfig};
pub use config::{PipelineConfig, PipelineKind};
pub use des::{family_dag, DesFamily};
pub use metrics::PipelineMetrics;
pub use resilience::{FaultedRun, PipelineError};
pub use telemetry::{native_power_timeline, RunTelemetry};
pub use transport::{per_node_payload, CompressionConfig, TransportConfig, TransportStats};
