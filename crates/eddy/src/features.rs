//! Per-eddy features.
//!
//! For each labeled component we compute a periodic-aware centroid (the x
//! direction wraps, so the centroid is taken on the circle), the area, an
//! equivalent radius, and the Okubo-Weiss minimum (core intensity).

use ivis_ocean::grid::Grid;
use ivis_ocean::Field2D;

use crate::segment::Segmentation;

/// Features of one identified eddy.
#[derive(Debug, Clone, PartialEq)]
pub struct EddyFeature {
    /// Dense component label within its frame.
    pub label: u32,
    /// Centroid x, meters (periodic-aware).
    pub x: f64,
    /// Centroid y, meters.
    pub y: f64,
    /// Core area, cells.
    pub area_cells: usize,
    /// Core area, m².
    pub area_m2: f64,
    /// Radius of the equal-area circle, meters.
    pub radius_m: f64,
    /// Minimum Okubo-Weiss value in the core (most negative = strongest).
    pub w_min: f64,
}

/// Extract features for every component of a segmentation.
pub fn extract_features(grid: &Grid, w: &Field2D, seg: &Segmentation) -> Vec<EddyFeature> {
    assert_eq!(
        (seg.nx, seg.ny),
        (grid.nx, grid.ny),
        "segmentation/grid mismatch"
    );
    let n = seg.num_components;
    if n == 0 {
        return Vec::new();
    }
    let lx = grid.nx as f64 * grid.dx;
    // Periodic centroid: average unit vectors on the circle for x.
    let mut sum_cos = vec![0.0; n];
    let mut sum_sin = vec![0.0; n];
    let mut sum_y = vec![0.0; n];
    let mut count = vec![0usize; n];
    let mut w_min = vec![f64::INFINITY; n];
    for j in 0..grid.ny {
        for i in 0..grid.nx {
            if let Some(c) = seg.label(i, j) {
                let c = c as usize;
                let theta = 2.0 * std::f64::consts::PI * grid.x_center(i) / lx;
                sum_cos[c] += theta.cos();
                sum_sin[c] += theta.sin();
                sum_y[c] += grid.y_center(j);
                count[c] += 1;
                w_min[c] = w_min[c].min(w.get(i, j));
            }
        }
    }
    let cell_area = grid.dx * grid.dy;
    (0..n)
        .map(|c| {
            let theta = sum_sin[c].atan2(sum_cos[c]);
            let x = (theta / (2.0 * std::f64::consts::PI)).rem_euclid(1.0) * lx;
            let area_m2 = count[c] as f64 * cell_area;
            EddyFeature {
                label: c as u32,
                x,
                y: sum_y[c] / count[c] as f64,
                area_cells: count[c],
                area_m2,
                radius_m: (area_m2 / std::f64::consts::PI).sqrt(),
                w_min: w_min[c],
            }
        })
        .collect()
}

/// Distance between two centroids, honoring x-periodicity of width `lx`.
pub fn periodic_distance(a: &EddyFeature, b: &EddyFeature, lx: f64) -> f64 {
    let mut dx = (a.x - b.x).abs();
    if dx > lx / 2.0 {
        dx = lx - dx;
    }
    let dy = a.y - b.y;
    (dx * dx + dy * dy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::segment_eddies;

    fn gaussian_well(nx: usize, ny: usize, ci: f64, cj: f64) -> Field2D {
        Field2D::from_fn(nx, ny, |i, j| {
            let dx = i as f64 - ci;
            let dy = j as f64 - cj;
            -3.0 * (-(dx * dx + dy * dy) / 10.0).exp() + 0.05
        })
    }

    #[test]
    fn centroid_matches_well_center() {
        let grid = Grid::channel(32, 32, 1000.0);
        let w = gaussian_well(32, 32, 20.0, 12.0);
        let seg = segment_eddies(&w, 0.2, 1);
        let feats = extract_features(&grid, &w, &seg);
        assert_eq!(feats.len(), 1);
        let f = &feats[0];
        // Cell (20,12) center = (20500, 12500) m.
        assert!((f.x - 20_500.0).abs() < 1_500.0, "x={}", f.x);
        assert!((f.y - 12_500.0).abs() < 1_500.0, "y={}", f.y);
        assert!(f.w_min < -2.5);
        assert!(f.area_cells > 4);
        assert!((f.radius_m - (f.area_m2 / std::f64::consts::PI).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn centroid_wraps_across_boundary() {
        // Eddy centered at the seam (i ≈ 0): cells span both edges.
        let grid = Grid::channel(32, 16, 1000.0);
        let w = Field2D::from_fn(32, 16, |i, j| {
            let mut dx = (i as f64 - 0.0).abs();
            if dx > 16.0 {
                dx = 32.0 - dx;
            }
            let dy = j as f64 - 8.0;
            -3.0 * (-(dx * dx + dy * dy) / 8.0).exp() + 0.05
        });
        let seg = segment_eddies(&w, 0.2, 1);
        let feats = extract_features(&grid, &w, &seg);
        assert_eq!(feats.len(), 1);
        let f = &feats[0];
        let lx = 32_000.0;
        // Centroid must sit near x = 500 (cell 0 center) or wrap-equivalent.
        let d = (f.x - 500.0).abs().min(lx - (f.x - 500.0).abs());
        assert!(d < 1_500.0, "wrapped centroid x={}", f.x);
    }

    #[test]
    fn empty_segmentation_no_features() {
        let grid = Grid::channel(8, 8, 1000.0);
        let w = Field2D::filled(8, 8, 1.0);
        let seg = segment_eddies(&w, 0.2, 1);
        assert!(extract_features(&grid, &w, &seg).is_empty());
    }

    #[test]
    fn two_eddies_two_features() {
        let grid = Grid::channel(48, 24, 1000.0);
        let w = Field2D::from_fn(48, 24, |i, j| {
            let d1 = ((i as f64 - 10.0).powi(2) + (j as f64 - 12.0).powi(2)) / 6.0;
            let d2 = ((i as f64 - 34.0).powi(2) + (j as f64 - 12.0).powi(2)) / 6.0;
            -3.0 * (-d1).exp() - 3.0 * (-d2).exp() + 0.05
        });
        let seg = segment_eddies(&w, 0.2, 1);
        let feats = extract_features(&grid, &w, &seg);
        assert_eq!(feats.len(), 2);
        let mut xs: Vec<f64> = feats.iter().map(|f| f.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] - 10_500.0).abs() < 2_000.0);
        assert!((xs[1] - 34_500.0).abs() < 2_000.0);
    }

    #[test]
    fn periodic_distance_shortcuts_through_seam() {
        let a = EddyFeature {
            label: 0,
            x: 1_000.0,
            y: 0.0,
            area_cells: 1,
            area_m2: 1.0,
            radius_m: 1.0,
            w_min: -1.0,
        };
        let b = EddyFeature {
            label: 1,
            x: 31_000.0,
            y: 0.0,
            area_cells: 1,
            area_m2: 1.0,
            radius_m: 1.0,
            w_min: -1.0,
        };
        assert!((periodic_distance(&a, &b, 32_000.0) - 2_000.0).abs() < 1e-9);
        assert!((periodic_distance(&a, &b, 1e9) - 30_000.0).abs() < 1e-9);
    }
}
