//! # ivis-eddy — eddy identification and tracking
//!
//! The paper's visualization task (from Woodring et al.): identify ocean
//! eddies as connected regions where the Okubo-Weiss field falls below
//! `−0.2 σ_W`, then track them across timesteps. This crate implements that
//! pipeline:
//!
//! * [`segment`] — thresholding and connected-component labeling
//!   (union-find, periodic in x).
//! * [`features`] — per-eddy features: centroid (periodic-aware), area,
//!   equivalent radius, W minimum.
//! * [`tracking`] — greedy nearest-centroid frame-to-frame association with
//!   a gating radius; yields tracks with lifetimes.
//! * [`census`] — population statistics over frames and tracks.

pub mod census;
pub mod features;
pub mod metrics;
pub mod segment;
pub mod tracking;

pub use features::{extract_features, EddyFeature};
pub use segment::{label_components, segment_eddies};
pub use tracking::{EddyTracker, Track};
