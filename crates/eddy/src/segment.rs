//! Thresholding and connected-component labeling.
//!
//! Eddy cores are the connected regions (4-neighborhood, periodic in x)
//! where `W < threshold`. Labeling uses a union-find over the mask.

use ivis_ocean::okubo_weiss::eddy_threshold;
use ivis_ocean::Field2D;

/// A disjoint-set (union-find) with path compression and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`. Returns the new root.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        big
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// A labeled segmentation: `labels[j*nx+i]` is `Some(k)` for component `k`
/// (0-based, dense) or `None` outside the mask.
#[derive(Debug, Clone)]
pub struct Segmentation {
    /// Grid width.
    pub nx: usize,
    /// Grid height.
    pub ny: usize,
    /// Per-cell component label.
    pub labels: Vec<Option<u32>>,
    /// Number of components.
    pub num_components: usize,
}

impl Segmentation {
    /// Label of cell `(i, j)`.
    pub fn label(&self, i: usize, j: usize) -> Option<u32> {
        self.labels[j * self.nx + i]
    }

    /// Cells per component.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components];
        for l in self.labels.iter().flatten() {
            sizes[*l as usize] += 1;
        }
        sizes
    }
}

/// Label connected components of `mask` (true = in a core), 4-neighborhood,
/// periodic in x, walls in y.
pub fn label_components(nx: usize, ny: usize, mask: &[bool]) -> Segmentation {
    assert_eq!(mask.len(), nx * ny, "mask size mismatch");
    let mut uf = UnionFind::new(nx * ny);
    let idx = |i: usize, j: usize| j * nx + i;
    for j in 0..ny {
        for i in 0..nx {
            if !mask[idx(i, j)] {
                continue;
            }
            let right = (i + 1) % nx;
            if mask[idx(right, j)] {
                uf.union(idx(i, j), idx(right, j));
            }
            if j + 1 < ny && mask[idx(i, j + 1)] {
                uf.union(idx(i, j), idx(i, j + 1));
            }
        }
    }
    // Dense relabeling.
    let mut labels = vec![None; nx * ny];
    let mut remap: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
    for j in 0..ny {
        for i in 0..nx {
            if mask[idx(i, j)] {
                let root = uf.find(idx(i, j));
                let next = remap.len() as u32;
                let label = *remap.entry(root).or_insert(next);
                labels[idx(i, j)] = Some(label);
            }
        }
    }
    Segmentation {
        nx,
        ny,
        labels,
        num_components: remap.len(),
    }
}

/// Segment eddy cores of an Okubo-Weiss field at the Woodring threshold
/// `W < −k·σ_W`, discarding components smaller than `min_cells`.
pub fn segment_eddies(w: &Field2D, k: f64, min_cells: usize) -> Segmentation {
    let thr = eddy_threshold(w, k);
    let mask: Vec<bool> = w.data().iter().map(|&x| x < thr).collect();
    let seg = label_components(w.nx(), w.ny(), &mask);
    if min_cells <= 1 {
        return seg;
    }
    // Drop small components and relabel densely.
    let sizes = seg.component_sizes();
    let mut remap = vec![None; seg.num_components];
    let mut next = 0u32;
    for (c, &s) in sizes.iter().enumerate() {
        if s >= min_cells {
            remap[c] = Some(next);
            next += 1;
        }
    }
    let labels = seg
        .labels
        .iter()
        .map(|l| l.and_then(|c| remap[c as usize]))
        .collect();
    Segmentation {
        nx: seg.nx,
        ny: seg.ny,
        labels,
        num_components: next as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.connected(0, 1));
        uf.union(0, 1);
        uf.union(3, 4);
        assert!(uf.connected(0, 1));
        assert!(uf.connected(4, 3));
        assert!(!uf.connected(1, 3));
        uf.union(1, 3);
        assert!(uf.connected(0, 4));
    }

    #[test]
    fn two_separate_blobs() {
        // 6x4 grid with blobs at left and right (not touching).
        let nx = 6;
        let ny = 4;
        let mut mask = vec![false; nx * ny];
        mask[nx + 1] = true; // (1,1)
        mask[nx + 2] = true; // (2,1)
        mask[2 * nx + 4] = true; // (4,2)
        let seg = label_components(nx, ny, &mask);
        assert_eq!(seg.num_components, 2);
        assert_eq!(seg.label(1, 1), seg.label(2, 1));
        assert_ne!(seg.label(1, 1), seg.label(4, 2));
        assert_eq!(seg.label(0, 0), None);
        assert_eq!(seg.component_sizes().iter().sum::<usize>(), 3);
    }

    #[test]
    fn periodic_wrap_joins_across_boundary() {
        let nx = 6;
        let ny = 3;
        let mut mask = vec![false; nx * ny];
        mask[nx] = true; // (0,1)
        mask[nx + nx - 1] = true; // (5,1) — adjacent through the wrap
        let seg = label_components(nx, ny, &mask);
        assert_eq!(seg.num_components, 1);
        assert_eq!(seg.label(0, 1), seg.label(5, 1));
    }

    #[test]
    fn diagonals_do_not_connect() {
        let nx = 4;
        let ny = 4;
        let mut mask = vec![false; nx * ny];
        mask[0] = true; // (0,0)
        mask[nx + 1] = true; // (1,1) diagonal neighbor
        let seg = label_components(nx, ny, &mask);
        assert_eq!(seg.num_components, 2);
    }

    #[test]
    fn empty_mask_has_no_components() {
        let seg = label_components(5, 5, &[false; 25]);
        assert_eq!(seg.num_components, 0);
    }

    #[test]
    fn full_mask_is_one_component() {
        let seg = label_components(5, 5, &[true; 25]);
        assert_eq!(seg.num_components, 1);
        assert_eq!(seg.component_sizes(), vec![25]);
    }

    #[test]
    fn segment_eddies_finds_gaussian_core() {
        // Synthetic W: negative well in the middle, positive ring.
        let w = Field2D::from_fn(32, 32, |i, j| {
            let dx = i as f64 - 16.0;
            let dy = j as f64 - 16.0;
            let r2 = dx * dx + dy * dy;
            -2.0 * (-r2 / 18.0).exp() + 0.5 * (-((r2.sqrt() - 8.0).powi(2)) / 8.0).exp()
        });
        let seg = segment_eddies(&w, 0.2, 2);
        assert_eq!(seg.num_components, 1, "one core expected");
        assert!(seg.label(16, 16).is_some(), "center is in the core");
        assert!(seg.label(0, 0).is_none());
    }

    #[test]
    fn min_cells_filters_specks() {
        let nx = 8;
        let ny = 8;
        let mut mask = vec![false; nx * ny];
        // One 4-cell blob and one single-cell speck.
        for (i, j) in [(2, 2), (3, 2), (2, 3), (3, 3)] {
            mask[j * nx + i] = true;
        }
        mask[6 * nx + 6] = true;
        // Build a field whose threshold keeps exactly these cells.
        let w = Field2D::from_fn(nx, ny, |i, j| if mask[j * nx + i] { -10.0 } else { 0.1 });
        let seg_all = segment_eddies(&w, 0.2, 1);
        let seg_filtered = segment_eddies(&w, 0.2, 2);
        assert_eq!(seg_all.num_components, 2);
        assert_eq!(seg_filtered.num_components, 1);
        assert_eq!(seg_filtered.label(6, 6), None);
    }

    #[test]
    #[should_panic(expected = "mask size mismatch")]
    fn wrong_mask_size_rejected() {
        let _ = label_components(4, 4, &[true; 3]);
    }
}
