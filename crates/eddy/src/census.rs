//! Eddy population statistics.
//!
//! Aggregates per-frame detections and finished tracks into the census
//! numbers an oceanographer reports: counts, sizes, intensities, lifetimes.
//! The paper's motivation for high sampling rates (eddies live for hundreds
//! of days while traveling hundreds of kilometers) is quantified by exactly
//! these statistics.

use crate::features::EddyFeature;
use crate::tracking::Track;

/// Summary of a single frame's detections.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameCensus {
    /// Number of eddies detected.
    pub count: usize,
    /// Mean equivalent radius, meters (0 if none).
    pub mean_radius_m: f64,
    /// Strongest core (most negative W; 0 if none).
    pub strongest_w: f64,
    /// Total core area, m².
    pub total_area_m2: f64,
}

/// Census over one frame.
pub fn frame_census(detections: &[EddyFeature]) -> FrameCensus {
    if detections.is_empty() {
        return FrameCensus {
            count: 0,
            mean_radius_m: 0.0,
            strongest_w: 0.0,
            total_area_m2: 0.0,
        };
    }
    FrameCensus {
        count: detections.len(),
        mean_radius_m: detections.iter().map(|d| d.radius_m).sum::<f64>() / detections.len() as f64,
        strongest_w: detections
            .iter()
            .map(|d| d.w_min)
            .fold(f64::INFINITY, f64::min),
        total_area_m2: detections.iter().map(|d| d.area_m2).sum(),
    }
}

/// Summary of a set of finished tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackCensus {
    /// Number of tracks.
    pub count: usize,
    /// Mean lifetime in frames.
    pub mean_lifetime_frames: f64,
    /// Longest lifetime in frames.
    pub max_lifetime_frames: u64,
    /// Mean path length, meters.
    pub mean_path_m: f64,
}

/// Census over finished tracks (`lx` = basin width for periodic distances).
pub fn track_census(tracks: &[Track], lx: f64) -> TrackCensus {
    if tracks.is_empty() {
        return TrackCensus {
            count: 0,
            mean_lifetime_frames: 0.0,
            max_lifetime_frames: 0,
            mean_path_m: 0.0,
        };
    }
    let lifetimes: Vec<u64> = tracks.iter().map(Track::lifetime_frames).collect();
    TrackCensus {
        count: tracks.len(),
        mean_lifetime_frames: lifetimes.iter().sum::<u64>() as f64 / tracks.len() as f64,
        max_lifetime_frames: *lifetimes.iter().max().expect("non-empty"),
        mean_path_m: tracks.iter().map(|t| t.path_length(lx)).sum::<f64>() / tracks.len() as f64,
    }
}

/// How temporal sampling degrades tracking: the fraction of frame-to-frame
/// displacements exceeding the tracker gate when only every `stride`-th
/// frame is kept. High values mean identities will be lost — the paper's
/// argument for sampling "once per simulated day (or even hour)".
pub fn gate_violation_fraction(tracks: &[Track], lx: f64, gate_m: f64, stride: usize) -> f64 {
    assert!(stride >= 1, "stride must be at least 1");
    let mut total = 0usize;
    let mut violations = 0usize;
    for t in tracks {
        let pts: Vec<_> = t.points.iter().step_by(stride).collect();
        for w in pts.windows(2) {
            total += 1;
            if crate::features::periodic_distance(&w[0].feature, &w[1].feature, lx) > gate_m {
                violations += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        violations as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracking::TrackPoint;

    fn det(x: f64, r: f64, w: f64) -> EddyFeature {
        EddyFeature {
            label: 0,
            x,
            y: 0.0,
            area_cells: 1,
            area_m2: std::f64::consts::PI * r * r,
            radius_m: r,
            w_min: w,
        }
    }

    #[test]
    fn frame_census_aggregates() {
        let c = frame_census(&[det(0.0, 10_000.0, -2.0), det(1.0, 20_000.0, -5.0)]);
        assert_eq!(c.count, 2);
        assert!((c.mean_radius_m - 15_000.0).abs() < 1e-9);
        assert_eq!(c.strongest_w, -5.0);
        assert!(c.total_area_m2 > 0.0);
    }

    #[test]
    fn empty_frame_census() {
        let c = frame_census(&[]);
        assert_eq!(c.count, 0);
        assert_eq!(c.mean_radius_m, 0.0);
    }

    fn track(id: u64, xs: &[f64]) -> Track {
        Track {
            id,
            points: xs
                .iter()
                .enumerate()
                .map(|(f, &x)| TrackPoint {
                    frame: f as u64,
                    feature: det(x, 1_000.0, -1.0),
                })
                .collect(),
        }
    }

    #[test]
    fn track_census_aggregates() {
        let tracks = vec![track(0, &[0.0, 10_000.0, 20_000.0]), track(1, &[0.0])];
        let c = track_census(&tracks, 1e9);
        assert_eq!(c.count, 2);
        assert!((c.mean_lifetime_frames - 2.0).abs() < 1e-9);
        assert_eq!(c.max_lifetime_frames, 3);
        assert!((c.mean_path_m - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_track_census() {
        let c = track_census(&[], 1e9);
        assert_eq!(c.count, 0);
        assert_eq!(c.max_lifetime_frames, 0);
    }

    #[test]
    fn gate_violations_grow_with_stride() {
        // Eddy drifting 10 km per frame; gate 15 km.
        let t = vec![track(0, &[0.0, 1e4, 2e4, 3e4, 4e4, 5e4, 6e4])];
        let dense = gate_violation_fraction(&t, 1e9, 15_000.0, 1);
        let sparse = gate_violation_fraction(&t, 1e9, 15_000.0, 2);
        assert_eq!(dense, 0.0, "dense sampling keeps every hop inside gate");
        assert_eq!(sparse, 1.0, "2-stride hops (20 km) all violate the gate");
    }

    #[test]
    fn gate_violation_empty_is_zero() {
        assert_eq!(gate_violation_fraction(&[], 1e9, 1.0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = gate_violation_fraction(&[], 1e9, 1.0, 0);
    }
}
