//! Tracking-quality metrics versus temporal sampling.
//!
//! The paper's scientific motivation for high sampling rates: "understanding
//! the simulation becomes difficult when the sampling frequency gets too
//! low". These metrics quantify *how* tracking degrades when frames are
//! dropped: re-run the tracker on every `stride`-th frame of a reference
//! detection sequence and compare against the dense tracks (identity
//! fragmentation, count recall, displacement error).

use crate::features::EddyFeature;
use crate::tracking::{EddyTracker, Track};

/// A detection sequence: per-frame feature lists (frame index = position).
pub type DetectionSequence = Vec<Vec<EddyFeature>>;

/// Quality of tracking at a given temporal stride, relative to dense
/// tracking of the same detections.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingQuality {
    /// The stride evaluated (1 = every frame).
    pub stride: usize,
    /// Tracks found at this stride.
    pub tracks: usize,
    /// Tracks found at stride 1 (the reference).
    pub tracks_dense: usize,
    /// Fragmentation: tracks / dense tracks (1.0 = perfect; > 1 means
    /// identities were split; < 1 means eddies were missed entirely).
    pub fragmentation: f64,
    /// Mean per-hop centroid displacement at this stride, meters — large
    /// values mean the gating assumption is breaking down.
    pub mean_hop_m: f64,
}

/// Re-track a detection sequence at `stride`, using tracker settings
/// `(gate_m, max_gap, lx)`.
pub fn track_at_stride(
    detections: &DetectionSequence,
    stride: usize,
    gate_m: f64,
    max_gap: u64,
    lx: f64,
) -> Vec<Track> {
    assert!(stride >= 1, "stride must be at least 1");
    let mut tracker = EddyTracker::new(gate_m, max_gap, lx);
    for (frame, dets) in detections.iter().step_by(stride).enumerate() {
        tracker.observe(frame as u64, dets);
    }
    tracker.finish()
}

/// Evaluate tracking quality across a set of strides.
pub fn sampling_sweep(
    detections: &DetectionSequence,
    strides: &[usize],
    gate_m: f64,
    max_gap: u64,
    lx: f64,
) -> Vec<SamplingQuality> {
    let dense = track_at_stride(detections, 1, gate_m, max_gap, lx);
    let dense_count = dense.len().max(1);
    strides
        .iter()
        .map(|&stride| {
            let tracks = track_at_stride(detections, stride, gate_m, max_gap, lx);
            let hops: Vec<f64> = tracks
                .iter()
                .flat_map(|t| {
                    t.points.windows(2).map(|w| {
                        crate::features::periodic_distance(&w[0].feature, &w[1].feature, lx)
                    })
                })
                .collect();
            let mean_hop_m = if hops.is_empty() {
                0.0
            } else {
                hops.iter().sum::<f64>() / hops.len() as f64
            };
            SamplingQuality {
                stride,
                tracks: tracks.len(),
                tracks_dense: dense.len(),
                fragmentation: tracks.len() as f64 / dense_count as f64,
                mean_hop_m,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(x: f64, y: f64) -> EddyFeature {
        EddyFeature {
            label: 0,
            x,
            y,
            area_cells: 10,
            area_m2: 1e8,
            radius_m: 5_000.0,
            w_min: -1.0,
        }
    }

    const LX: f64 = 10_000_000.0;

    /// Two eddies drifting steadily for `frames` frames.
    fn drifting_pair(frames: usize, step_m: f64) -> DetectionSequence {
        (0..frames)
            .map(|f| {
                vec![
                    det(100_000.0 + f as f64 * step_m, 200_000.0),
                    det(500_000.0 - f as f64 * step_m, 800_000.0),
                ]
            })
            .collect()
    }

    #[test]
    fn dense_tracking_is_the_reference() {
        let seq = drifting_pair(20, 10_000.0);
        let q = sampling_sweep(&seq, &[1], 25_000.0, 1, LX);
        assert_eq!(q[0].tracks, 2);
        assert_eq!(q[0].fragmentation, 1.0);
        assert!((q[0].mean_hop_m - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn coarse_sampling_fragments_tracks() {
        // Hops of 10 km per frame, gate 25 km: stride 2 (20 km) still holds,
        // stride 4 (40 km) breaks every association.
        let seq = drifting_pair(20, 10_000.0);
        let q = sampling_sweep(&seq, &[2, 4], 25_000.0, 1, LX);
        assert_eq!(q[0].stride, 2);
        assert_eq!(q[0].tracks, 2, "stride 2 keeps identities");
        assert!(
            q[1].tracks > 2,
            "stride 4 must fragment: {} tracks",
            q[1].tracks
        );
        assert!(q[1].fragmentation > 1.0);
    }

    #[test]
    fn hop_distance_scales_with_stride() {
        let seq = drifting_pair(30, 5_000.0);
        let q = sampling_sweep(&seq, &[1, 2, 3], 100_000.0, 1, LX);
        assert!((q[0].mean_hop_m - 5_000.0).abs() < 1.0);
        assert!((q[1].mean_hop_m - 10_000.0).abs() < 1.0);
        assert!((q[2].mean_hop_m - 15_000.0).abs() < 1.0);
    }

    #[test]
    fn empty_sequence_is_graceful() {
        let seq: DetectionSequence = vec![vec![], vec![], vec![]];
        let q = sampling_sweep(&seq, &[1, 2], 10_000.0, 1, LX);
        assert_eq!(q[0].tracks, 0);
        assert_eq!(q[0].mean_hop_m, 0.0);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = track_at_stride(&vec![], 0, 1.0, 1, LX);
    }
}
