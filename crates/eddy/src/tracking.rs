//! Frame-to-frame eddy tracking.
//!
//! Greedy nearest-centroid association with a gating radius: each new
//! detection is matched to the closest live track whose last position lies
//! within the gate; unmatched detections start new tracks; tracks missing
//! for more than `max_gap` frames are closed. This is the standard baseline
//! tracker for ocean-eddy censuses (eddies live for hundreds of days and
//! move slowly, so gating works well).

use crate::features::{periodic_distance, EddyFeature};

/// One observation of an eddy along a track.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackPoint {
    /// Frame index (output sample number).
    pub frame: u64,
    /// The detection.
    pub feature: EddyFeature,
}

/// A tracked eddy: its observations in frame order.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// Stable track id.
    pub id: u64,
    /// Observations.
    pub points: Vec<TrackPoint>,
}

impl Track {
    /// Number of frames between first and last observation, inclusive.
    pub fn lifetime_frames(&self) -> u64 {
        match (self.points.first(), self.points.last()) {
            (Some(f), Some(l)) => l.frame - f.frame + 1,
            _ => 0,
        }
    }

    /// Total centroid path length, meters (periodic in x over `lx`).
    pub fn path_length(&self, lx: f64) -> f64 {
        self.points
            .windows(2)
            .map(|w| periodic_distance(&w[0].feature, &w[1].feature, lx))
            .sum()
    }
}

/// The tracker.
///
/// ```
/// use ivis_eddy::features::EddyFeature;
/// use ivis_eddy::EddyTracker;
///
/// let det = |x: f64| EddyFeature {
///     label: 0, x, y: 0.0, area_cells: 9,
///     area_m2: 9e8, radius_m: 17_000.0, w_min: -1.0,
/// };
/// let mut tracker = EddyTracker::new(50_000.0, 1, 1.0e7);
/// let a = tracker.observe(0, &[det(100_000.0)]);
/// let b = tracker.observe(1, &[det(120_000.0)]); // drifted 20 km: same eddy
/// assert_eq!(a, b);
/// assert_eq!(tracker.finish().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EddyTracker {
    /// Maximum association distance, meters.
    pub gate_m: f64,
    /// Frames a track may go unobserved before it is closed.
    pub max_gap: u64,
    /// Basin width, meters (for periodic distances).
    pub lx: f64,
    next_id: u64,
    live: Vec<Track>,
    closed: Vec<Track>,
}

impl EddyTracker {
    /// Create a tracker.
    pub fn new(gate_m: f64, max_gap: u64, lx: f64) -> Self {
        assert!(gate_m > 0.0, "gate must be positive");
        EddyTracker {
            gate_m,
            max_gap,
            lx,
            next_id: 0,
            live: Vec::new(),
            closed: Vec::new(),
        }
    }

    /// Feed the detections of frame `frame` (frames must be fed in
    /// increasing order). Returns the ids assigned to each detection, in
    /// input order.
    pub fn observe(&mut self, frame: u64, detections: &[EddyFeature]) -> Vec<u64> {
        // Close stale tracks first.
        let (still_live, newly_closed): (Vec<Track>, Vec<Track>) =
            self.live.drain(..).partition(|t| {
                t.points
                    .last()
                    .is_some_and(|p| frame - p.frame <= self.max_gap)
            });
        self.live = still_live;
        self.closed.extend(newly_closed);

        // Build candidate (distance, track_idx, det_idx) pairs inside the gate.
        let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
        for (ti, track) in self.live.iter().enumerate() {
            let last = &track
                .points
                .last()
                .expect("live tracks are non-empty")
                .feature;
            for (di, det) in detections.iter().enumerate() {
                let d = periodic_distance(last, det, self.lx);
                if d <= self.gate_m {
                    candidates.push((d, ti, di));
                }
            }
        }
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));
        let mut track_used = vec![false; self.live.len()];
        let mut det_assigned: Vec<Option<u64>> = vec![None; detections.len()];
        for (_, ti, di) in candidates {
            if track_used[ti] || det_assigned[di].is_some() {
                continue;
            }
            track_used[ti] = true;
            let track = &mut self.live[ti];
            track.points.push(TrackPoint {
                frame,
                feature: detections[di].clone(),
            });
            det_assigned[di] = Some(track.id);
        }
        // Unmatched detections start new tracks.
        for (di, det) in detections.iter().enumerate() {
            if det_assigned[di].is_none() {
                let id = self.next_id;
                self.next_id += 1;
                self.live.push(Track {
                    id,
                    points: vec![TrackPoint {
                        frame,
                        feature: det.clone(),
                    }],
                });
                det_assigned[di] = Some(id);
            }
        }
        det_assigned
            .into_iter()
            .map(|x| x.expect("all assigned"))
            .collect()
    }

    /// Close all live tracks and return everything, ordered by id.
    pub fn finish(mut self) -> Vec<Track> {
        self.closed.append(&mut self.live);
        self.closed.sort_by_key(|t| t.id);
        self.closed
    }

    /// Currently live track count.
    pub fn live_tracks(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(x: f64, y: f64) -> EddyFeature {
        EddyFeature {
            label: 0,
            x,
            y,
            area_cells: 10,
            area_m2: 1e8,
            radius_m: 5_000.0,
            w_min: -1.0,
        }
    }

    const LX: f64 = 1_000_000.0;

    #[test]
    fn single_eddy_tracked_across_frames() {
        let mut tr = EddyTracker::new(50_000.0, 1, LX);
        let ids0 = tr.observe(0, &[det(100_000.0, 50_000.0)]);
        let ids1 = tr.observe(1, &[det(110_000.0, 52_000.0)]);
        let ids2 = tr.observe(2, &[det(120_000.0, 54_000.0)]);
        assert_eq!(ids0, ids1);
        assert_eq!(ids1, ids2);
        let tracks = tr.finish();
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].lifetime_frames(), 3);
        assert!(tracks[0].path_length(LX) > 19_000.0);
    }

    #[test]
    fn far_detection_starts_new_track() {
        let mut tr = EddyTracker::new(20_000.0, 1, LX);
        tr.observe(0, &[det(100_000.0, 50_000.0)]);
        let ids = tr.observe(1, &[det(500_000.0, 50_000.0)]);
        let tracks = tr.finish();
        assert_eq!(tracks.len(), 2);
        assert_ne!(ids[0], tracks[0].id.min(tracks[1].id).wrapping_add(99));
    }

    #[test]
    fn two_eddies_keep_identities() {
        let mut tr = EddyTracker::new(30_000.0, 1, LX);
        let a0 = det(100_000.0, 50_000.0);
        let b0 = det(300_000.0, 80_000.0);
        let ids0 = tr.observe(0, &[a0, b0]);
        // Next frame, both drift slightly; order reversed in the input.
        let b1 = det(305_000.0, 81_000.0);
        let a1 = det(104_000.0, 51_000.0);
        let ids1 = tr.observe(1, &[b1, a1]);
        assert_eq!(ids0[0], ids1[1], "eddy A keeps its id");
        assert_eq!(ids0[1], ids1[0], "eddy B keeps its id");
    }

    #[test]
    fn gap_tolerance_bridges_missing_frames() {
        let mut tr = EddyTracker::new(30_000.0, 2, LX);
        let ids0 = tr.observe(0, &[det(100_000.0, 50_000.0)]);
        tr.observe(1, &[]); // missed detection
        let ids2 = tr.observe(2, &[det(108_000.0, 50_000.0)]);
        assert_eq!(ids0, ids2, "track should survive a one-frame gap");
        assert_eq!(tr.finish().len(), 1);
    }

    #[test]
    fn stale_tracks_close_after_max_gap() {
        let mut tr = EddyTracker::new(30_000.0, 1, LX);
        let ids0 = tr.observe(0, &[det(100_000.0, 50_000.0)]);
        tr.observe(1, &[]);
        tr.observe(2, &[]);
        let ids3 = tr.observe(3, &[det(100_000.0, 50_000.0)]);
        assert_ne!(ids0, ids3, "old track must have closed");
        assert_eq!(tr.finish().len(), 2);
    }

    #[test]
    fn tracking_wraps_across_periodic_seam() {
        let mut tr = EddyTracker::new(30_000.0, 1, LX);
        let ids0 = tr.observe(0, &[det(LX - 5_000.0, 50_000.0)]);
        let ids1 = tr.observe(1, &[det(5_000.0, 50_000.0)]); // crossed the seam
        assert_eq!(ids0, ids1);
    }

    #[test]
    fn greedy_matching_prefers_nearest() {
        let mut tr = EddyTracker::new(100_000.0, 1, LX);
        tr.observe(0, &[det(100_000.0, 50_000.0)]);
        // Two candidates in gate; the closer one must extend the track.
        let ids = tr.observe(1, &[det(160_000.0, 50_000.0), det(110_000.0, 50_000.0)]);
        let tracks = tr.finish();
        let t0 = tracks.iter().find(|t| t.points.len() == 2).unwrap();
        assert_eq!(t0.points[1].feature.x, 110_000.0);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn empty_frames_are_fine() {
        let mut tr = EddyTracker::new(10_000.0, 1, LX);
        assert!(tr.observe(0, &[]).is_empty());
        assert_eq!(tr.live_tracks(), 0);
        assert!(tr.finish().is_empty());
    }
}
