//! Adaptive multi-viewpoint visualization triggers.
//!
//! The source paper treats the visualization rate as a fixed input to
//! its Eq. 6/7 storage and rendering scalings. This crate makes the
//! rate a *dynamic output*: following the vizlab-kobe InSituVis design
//! (Kageyama & Yamada, arXiv:1301.4546), each analysis step renders a
//! grid of candidate viewpoints ([`ViewpointGrid::spherical`]), scores
//! every frame by Shannon image entropy ([`image_entropy_bits`]) and by
//! the Okubo-Weiss census mass visible in its window, keeps the
//! max-entropy camera, and adapts the sampling interval between
//! configured bounds with a hysteresis loop on census activity
//! ([`AdaptiveTrigger`]).
//!
//! Every decision is a pure function of field state — never wall clock,
//! never thread count — so adaptive campaigns replay bit-identically at
//! any `ZSIM_THREADS`.

pub mod entropy;
pub mod trigger;
pub mod viewpoint;

pub use entropy::{histogram_entropy_bits, image_entropy_bits};
pub use trigger::{
    score_viewpoints, select_best, AdaptiveTrigger, TriggerConfig, TriggerDecision, ViewpointScore,
};
pub use viewpoint::{extract_window, sample_periodic, ViewWindow, Viewpoint, ViewpointGrid};
