//! Shannon image entropy — the viewpoint-quality metric.
//!
//! InSituVis scores each candidate camera by the information content of
//! the frame it would produce: a flat frame (camera staring at quiet
//! water) carries near-zero entropy, a frame full of eddy cores and
//! filaments fills the histogram. The score here is the classic 8-bit
//! luminance entropy: build a 256-bin histogram over the image, then
//! `H = −Σ p·log2 p` — between 0 and 8 bits.
//!
//! Determinism: the histogram holds integer counts accumulated in pixel
//! order, and the entropy sum walks the 256 bins in index order, so the
//! score is a pure function of the pixel bytes — identical on any host
//! at any thread count.

use ivis_viz::raster::ImageBuffer;

/// Integer Rec. 601 luma of one pixel, 0–255.
#[inline]
fn luma(r: u8, g: u8, b: u8) -> u8 {
    ((299 * r as u32 + 587 * g as u32 + 114 * b as u32) / 1000) as u8
}

/// Shannon entropy of the image's 8-bit luminance histogram, in bits
/// (`0.0` for an empty or constant image, at most `8.0`).
pub fn image_entropy_bits(img: &ImageBuffer) -> f64 {
    let mut hist = [0u64; 256];
    for p in img.pixels() {
        hist[luma(p.r, p.g, p.b) as usize] += 1;
    }
    histogram_entropy_bits(&hist)
}

/// Shannon entropy of an arbitrary 256-bin histogram, in bits.
pub fn histogram_entropy_bits(hist: &[u64; 256]) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    let mut h = 0.0;
    for &c in hist.iter() {
        if c > 0 {
            let p = c as f64 / n;
            h -= p * p.log2();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivis_viz::color::Rgb;

    #[test]
    fn constant_image_has_zero_entropy() {
        let img = ImageBuffer::new(16, 16); // all black
        assert_eq!(image_entropy_bits(&img), 0.0);
    }

    #[test]
    fn two_level_image_has_one_bit() {
        let mut img = ImageBuffer::new(16, 2);
        for x in 0..16 {
            img.set(x, 0, Rgb::new(255, 255, 255));
        }
        let h = image_entropy_bits(&img);
        assert!((h - 1.0).abs() < 1e-12, "half black / half white = 1 bit");
    }

    #[test]
    fn uniform_histogram_saturates_at_eight_bits() {
        let hist = [4u64; 256];
        assert!((histogram_entropy_bits(&hist) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_zero() {
        assert_eq!(histogram_entropy_bits(&[0u64; 256]), 0.0);
    }

    #[test]
    fn richer_images_score_higher() {
        let mut flat = ImageBuffer::new(32, 32);
        let mut rich = ImageBuffer::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                flat.set(x, y, Rgb::new(100, 100, 100));
                let v = ((x * 8 + y * 5) % 256) as u8;
                rich.set(x, y, Rgb::new(v, v, v));
            }
        }
        assert!(image_entropy_bits(&rich) > image_entropy_bits(&flat) + 3.0);
    }

    #[test]
    fn entropy_is_deterministic() {
        let mut img = ImageBuffer::new(24, 24);
        for y in 0..24 {
            for x in 0..24 {
                img.set(x, y, Rgb::new((x * 11) as u8, (y * 7) as u8, 33));
            }
        }
        let a = image_entropy_bits(&img);
        let b = image_entropy_bits(&img);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
