//! The adaptive trigger: score candidate viewpoints, pick the best
//! camera, and adapt the sampling interval to what the field is doing.
//!
//! Each analysis step the executor hands the trigger one global eddy
//! census plus the per-viewpoint scores for the current field. The
//! trigger then makes two decisions, both pure functions of field
//! state (never wall clock, never thread count):
//!
//! 1. **Which camera** — the candidate whose rendered frame carries the
//!    most Shannon entropy (ties break to the lowest index, so the
//!    polar overview wins when everything looks alike).
//! 2. **How often** — a hysteresis loop on census *activity* (eddy
//!    count changes and relative core-mass swings between consecutive
//!    analyses). High activity halves the sampling interval, quiet
//!    stretches double it, and the interval is always clamped to the
//!    configured `[min_interval, max_interval]` band.

use ivis_eddy::census::FrameCensus;
use ivis_eddy::features::EddyFeature;
use ivis_ocean::Field2D;
use ivis_viz::render::FieldRenderer;
use rayon::prelude::*;

use crate::entropy::image_entropy_bits;
use crate::viewpoint::{extract_window, ViewWindow, Viewpoint, ViewpointGrid};

/// Knobs for the adaptive trigger. All intervals are in analysis
/// periods of the driving executor (simulation steps between `analyze`
/// calls), so the trigger itself never sees absolute time.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerConfig {
    /// Simulation steps between analyses (the cadence `analyze` is called at).
    pub analysis_interval: u64,
    /// Number of candidate viewpoints on the spherical grid (≥ 1).
    pub candidates: usize,
    /// Tightest allowed emission interval, in steps.
    pub min_interval: u64,
    /// Most relaxed allowed emission interval, in steps.
    pub max_interval: u64,
    /// Activity at or above this tightens the interval (halves it).
    pub tighten_threshold: f64,
    /// Activity at or below this relaxes the interval (doubles it).
    pub relax_threshold: f64,
    /// Domain fraction a non-polar candidate window covers per axis.
    pub zoom: f64,
    /// Width of the low-res evaluation render each candidate is scored on.
    pub eval_width: usize,
    /// Height of the low-res evaluation render.
    pub eval_height: usize,
}

impl TriggerConfig {
    /// A small deterministic default tuned for the native tiny/small
    /// scenarios: analyze every `analysis_interval` steps with
    /// `candidates` cameras, adapt between 1× and 4× that cadence.
    pub fn new(analysis_interval: u64, candidates: usize) -> Self {
        let analysis_interval = analysis_interval.max(1);
        TriggerConfig {
            analysis_interval,
            candidates: candidates.max(1),
            min_interval: analysis_interval,
            max_interval: analysis_interval * 4,
            tighten_threshold: 1.0,
            relax_threshold: 0.25,
            zoom: 0.5,
            eval_width: 48,
            eval_height: 32,
        }
    }

    /// Panic early (at configuration time, not mid-campaign) on an
    /// inconsistent band.
    pub fn validate(&self) {
        assert!(self.analysis_interval >= 1, "analysis_interval must be ≥ 1");
        assert!(self.min_interval >= 1, "min_interval must be ≥ 1");
        assert!(
            self.min_interval <= self.max_interval,
            "min_interval {} must be ≤ max_interval {}",
            self.min_interval,
            self.max_interval
        );
        assert!(
            self.relax_threshold <= self.tighten_threshold,
            "relax_threshold {} must be ≤ tighten_threshold {}",
            self.relax_threshold,
            self.tighten_threshold
        );
        assert!(self.candidates >= 1, "need at least one candidate");
        assert!(
            self.eval_width >= 2 && self.eval_height >= 2,
            "evaluation render must be at least 2×2"
        );
    }
}

/// Score of one candidate viewpoint for one analysis step.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewpointScore {
    /// The candidate camera.
    pub viewpoint: Viewpoint,
    /// Shannon entropy of its evaluation render, bits.
    pub entropy_bits: f64,
    /// Eddies whose centroid falls inside its window.
    pub census_count: usize,
    /// Total core area inside its window, m².
    pub census_mass_m2: f64,
}

/// Is a feature centroid (fractional coords `u`,`v`) inside the window,
/// honoring x-periodicity?
fn window_contains(win: &ViewWindow, u: f64, v: f64) -> bool {
    let mut du = (u - win.cx).abs();
    if du > 0.5 {
        du = 1.0 - du;
    }
    du <= win.half_w && (v - win.cy).abs() <= win.half_h
}

/// Score every candidate on the grid against the current Okubo-Weiss
/// field and its extracted features. `lx`/`ly` are the physical domain
/// extents (to place feature centroids in fractional coordinates).
///
/// Candidates are independent, so they score in parallel; the result is
/// collected in index order and each score is a pure function of
/// `(field, feats, viewpoint)`, so the vector is bit-identical at any
/// thread count.
pub fn score_viewpoints(
    grid: &ViewpointGrid,
    w: &Field2D,
    feats: &[EddyFeature],
    lx: f64,
    ly: f64,
    cfg: &TriggerConfig,
) -> Vec<ViewpointScore> {
    let renderer = FieldRenderer::okubo_weiss(cfg.eval_width, cfg.eval_height);
    grid.views()
        .par_iter()
        .map(|vp| {
            let win = vp.window(cfg.zoom);
            let sub = extract_window(w, &win, cfg.eval_width, cfg.eval_height);
            let entropy_bits = image_entropy_bits(&renderer.render(&sub));
            let mut census_count = 0;
            let mut census_mass_m2 = 0.0;
            for f in feats {
                if window_contains(&win, f.x / lx, f.y / ly) {
                    census_count += 1;
                    census_mass_m2 += f.area_m2;
                }
            }
            ViewpointScore {
                viewpoint: *vp,
                entropy_bits,
                census_count,
                census_mass_m2,
            }
        })
        .collect()
}

/// Index of the winning candidate: maximum entropy, ties (and NaN
/// scores, which compare as "not greater") falling back to the lowest
/// index — the polar overview.
pub fn select_best(scores: &[ViewpointScore]) -> usize {
    let mut best = 0;
    for (i, s) in scores.iter().enumerate().skip(1) {
        if s.entropy_bits > scores[best].entropy_bits {
            best = i;
        }
    }
    best
}

/// One trigger decision.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerDecision {
    /// Simulation step the decision was made at.
    pub step: u64,
    /// Whether a full-resolution frame should be emitted now.
    pub emit: bool,
    /// The emission interval in force *after* this analysis, steps.
    pub interval_steps: u64,
    /// The census activity that drove the adaptation.
    pub activity: f64,
    /// Winning candidate index.
    pub best_viewpoint: usize,
    /// Winning candidate's entropy, bits.
    pub best_entropy_bits: f64,
}

/// The stateful rate controller. Feed it one `(census, scores)` pair per
/// analysis step, in step order; it returns the emit/interval decision.
#[derive(Debug, Clone)]
pub struct AdaptiveTrigger {
    cfg: TriggerConfig,
    interval: u64,
    last_emit: Option<u64>,
    prev: Option<FrameCensus>,
}

impl AdaptiveTrigger {
    /// Build a trigger; starts at the configured `analysis_interval`
    /// clamped into the `[min, max]` band.
    pub fn new(cfg: TriggerConfig) -> Self {
        cfg.validate();
        let interval = cfg
            .analysis_interval
            .clamp(cfg.min_interval, cfg.max_interval);
        AdaptiveTrigger {
            cfg,
            interval,
            last_emit: None,
            prev: None,
        }
    }

    /// The configuration this trigger runs under.
    pub fn config(&self) -> &TriggerConfig {
        &self.cfg
    }

    /// The emission interval currently in force, steps.
    pub fn interval_steps(&self) -> u64 {
        self.interval
    }

    /// Census activity between consecutive analyses: the eddy-count
    /// delta plus the relative swing in total core mass. Zero when
    /// nothing changed; ≥ 1 whenever an eddy was born, died, or merged.
    /// The very first analysis scores the population itself so a busy
    /// initial field starts tight.
    fn activity(&self, census: &FrameCensus) -> f64 {
        match &self.prev {
            None => census.count as f64,
            Some(p) => {
                let count_delta = census.count.abs_diff(p.count) as f64;
                let denom = census.total_area_m2.max(p.total_area_m2);
                let mass_delta = if denom > 0.0 {
                    (census.total_area_m2 - p.total_area_m2).abs() / denom
                } else {
                    0.0
                };
                count_delta + mass_delta
            }
        }
    }

    /// Analyze one step. `scores` must be the candidate scores for the
    /// same field state as `census`.
    pub fn analyze(
        &mut self,
        step: u64,
        census: &FrameCensus,
        scores: &[ViewpointScore],
    ) -> TriggerDecision {
        assert!(!scores.is_empty(), "need at least one candidate score");
        let activity = self.activity(census);
        // Hysteresis: tighten fast on activity, relax slowly in quiet.
        if activity >= self.cfg.tighten_threshold {
            self.interval = (self.interval / 2).max(self.cfg.min_interval);
        } else if activity <= self.cfg.relax_threshold {
            self.interval = self.interval.saturating_mul(2).min(self.cfg.max_interval);
        }
        self.interval = self
            .interval
            .clamp(self.cfg.min_interval, self.cfg.max_interval);
        let emit = match self.last_emit {
            None => true,
            Some(last) => step.saturating_sub(last) >= self.interval,
        };
        if emit {
            self.last_emit = Some(step);
        }
        self.prev = Some(census.clone());
        let best = select_best(scores);
        TriggerDecision {
            step,
            emit,
            interval_steps: self.interval,
            activity,
            best_viewpoint: best,
            best_entropy_bits: scores[best].entropy_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn census(count: usize, mass: f64) -> FrameCensus {
        FrameCensus {
            count,
            mean_radius_m: 1.0,
            strongest_w: -1.0,
            total_area_m2: mass,
        }
    }

    fn flat_scores(n: usize) -> Vec<ViewpointScore> {
        ViewpointGrid::spherical(n)
            .views()
            .iter()
            .map(|vp| ViewpointScore {
                viewpoint: *vp,
                entropy_bits: 1.0,
                census_count: 0,
                census_mass_m2: 0.0,
            })
            .collect()
    }

    #[test]
    fn first_analysis_always_emits() {
        let mut t = AdaptiveTrigger::new(TriggerConfig::new(8, 5));
        let d = t.analyze(0, &census(0, 0.0), &flat_scores(5));
        assert!(d.emit);
    }

    #[test]
    fn quiet_field_relaxes_to_max_interval() {
        let cfg = TriggerConfig::new(8, 1);
        let max = cfg.max_interval;
        let mut t = AdaptiveTrigger::new(cfg);
        let c = census(2, 100.0);
        for k in 0..10 {
            t.analyze(k * 8, &c, &flat_scores(1));
        }
        assert_eq!(t.interval_steps(), max);
    }

    #[test]
    fn births_tighten_to_min_interval() {
        let cfg = TriggerConfig::new(8, 1);
        let min = cfg.min_interval;
        let mut t = AdaptiveTrigger::new(cfg);
        // Eddy count climbs every analysis: sustained activity.
        for k in 0..10u64 {
            t.analyze(
                k * 8,
                &census(k as usize, 100.0 * k as f64),
                &flat_scores(1),
            );
        }
        assert_eq!(t.interval_steps(), min);
    }

    #[test]
    fn emission_respects_the_interval() {
        let mut cfg = TriggerConfig::new(4, 1);
        cfg.min_interval = 8;
        cfg.max_interval = 8;
        let mut t = AdaptiveTrigger::new(cfg);
        let c = census(1, 10.0);
        let emitted: Vec<u64> = (0..8u64)
            .filter(|k| t.analyze(k * 4, &c, &flat_scores(1)).emit)
            .map(|k| k * 4)
            .collect();
        // With the interval pinned at 8 steps and analyses every 4,
        // every other analysis emits.
        assert_eq!(emitted, vec![0, 8, 16, 24]);
    }

    #[test]
    fn best_viewpoint_is_max_entropy_lowest_index_on_ties() {
        let mut scores = flat_scores(5);
        scores[3].entropy_bits = 7.5;
        assert_eq!(select_best(&scores), 3);
        let flat = flat_scores(5);
        assert_eq!(select_best(&flat), 0, "ties fall to the overview");
        let mut with_nan = flat_scores(3);
        with_nan[1].entropy_bits = f64::NAN;
        assert_eq!(select_best(&with_nan), 0, "NaN never wins");
    }

    #[test]
    fn window_census_attributes_mass_to_the_right_camera() {
        use ivis_eddy::features::EddyFeature;
        let w = Field2D::from_fn(64, 32, |i, j| {
            // A deep OW well in the left half only.
            let (dx, dy) = (i as f64 - 16.0, j as f64 - 16.0);
            -(-(dx * dx + dy * dy) / 20.0).exp()
        });
        let feats = vec![EddyFeature {
            label: 0,
            x: 0.25 * 640_000.0,
            y: 0.5 * 320_000.0,
            area_cells: 10,
            area_m2: 1.0e9,
            radius_m: (1.0e9 / std::f64::consts::PI).sqrt(),
            w_min: -1.0,
        }];
        let cfg = TriggerConfig::new(8, 10);
        let grid = ViewpointGrid::spherical(cfg.candidates);
        let scores = score_viewpoints(&grid, &w, &feats, 640_000.0, 320_000.0, &cfg);
        // The overview always sees the eddy...
        assert_eq!(scores[0].census_count, 1);
        // ...and at least one zoomed camera misses it.
        assert!(scores.iter().any(|s| s.census_count == 0));
        // Scores arrive in candidate order.
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(s.viewpoint.index, i);
        }
    }

    #[test]
    #[should_panic(expected = "min_interval")]
    fn inverted_band_panics_at_construction() {
        let mut cfg = TriggerConfig::new(8, 1);
        cfg.min_interval = 32;
        cfg.max_interval = 8;
        AdaptiveTrigger::new(cfg);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Whatever census sequence arrives, the interval never leaves
        /// the configured band.
        #[test]
        fn interval_always_within_bounds(
            seq in prop::collection::vec((0usize..20, 0.0f64..1e12), 1..40),
            min_pow in 0u32..4,
            span_pow in 0u32..4,
        ) {
            let mut cfg = TriggerConfig::new(4, 1);
            cfg.min_interval = 4u64 << min_pow;
            cfg.max_interval = cfg.min_interval << span_pow;
            let (min, max) = (cfg.min_interval, cfg.max_interval);
            let mut t = AdaptiveTrigger::new(cfg);
            for (k, (count, mass)) in seq.into_iter().enumerate() {
                let d = t.analyze(k as u64 * 4, &census(count, mass), &flat_scores(1));
                prop_assert!(d.interval_steps >= min);
                prop_assert!(d.interval_steps <= max);
            }
        }

        /// The controller is a pure function of its input sequence.
        #[test]
        fn trigger_is_deterministic(
            seq in prop::collection::vec((0usize..10, 0.0f64..1e10), 1..20),
        ) {
            let run = |seq: &[(usize, f64)]| -> Vec<TriggerDecision> {
                let mut t = AdaptiveTrigger::new(TriggerConfig::new(4, 3));
                seq.iter()
                    .enumerate()
                    .map(|(k, (c, m))| t.analyze(k as u64 * 4, &census(*c, *m), &flat_scores(3)))
                    .collect()
            };
            prop_assert_eq!(run(&seq), run(&seq));
        }
    }
}
