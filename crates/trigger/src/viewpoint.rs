//! Spherical multi-viewpoint camera grids.
//!
//! InSituVis (vizlab-kobe) renders each analysis step from a grid of
//! candidate viewpoints distributed on a sphere around the data
//! (`SphericalViewpoint`, `ViewDim {1, 5, 10}`) and keeps the most
//! informative frame. The ocean here is a 2D periodic channel, so a
//! viewpoint maps onto a *camera window*: the azimuth picks the window's
//! x-center (periodic, like flying around the channel), the polar angle
//! its y-center (clamped to the walls), and the window spans a fixed
//! fraction of the domain. One candidate — the pole — always sees the
//! whole field, so the overview the fixed pipeline rendered is never
//! lost, and a single-candidate grid degenerates to exactly that view.
//!
//! Everything is a closed-form function of `(index, candidates)`:
//! no RNG, no wall clock, no thread-count dependence.

use ivis_ocean::Field2D;

/// One candidate camera on the spherical grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewpoint {
    /// Position on the grid (0-based; 0 is always the polar overview).
    pub index: usize,
    /// Polar angle from the pole, radians in `[0, π/2]`.
    pub theta: f64,
    /// Azimuth, radians in `[0, 2π)`.
    pub phi: f64,
}

/// The rectangular window a viewpoint sees, in fractional field
/// coordinates (`cx`/`cy` in `[0, 1)` of the domain, half-extents as
/// domain fractions). `x` wraps periodically; `y` is clamped so the
/// window never crosses a wall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewWindow {
    /// Window center x, fraction of the domain width (periodic).
    pub cx: f64,
    /// Window center y, fraction of the domain height.
    pub cy: f64,
    /// Half-width, fraction of the domain width.
    pub half_w: f64,
    /// Half-height, fraction of the domain height.
    pub half_h: f64,
}

impl Viewpoint {
    /// The window this camera sees. `zoom` is the fraction of the domain a
    /// non-polar candidate covers per axis (clamped to `[0.05, 1]`); the
    /// polar overview (`theta == 0`) always covers everything.
    pub fn window(&self, zoom: f64) -> ViewWindow {
        let zoom = zoom.clamp(0.05, 1.0);
        if self.theta == 0.0 {
            return ViewWindow {
                cx: 0.5,
                cy: 0.5,
                half_w: 0.5,
                half_h: 0.5,
            };
        }
        let half = zoom / 2.0;
        // Azimuth sweeps the periodic x axis; sin(theta) pushes the
        // window from mid-channel toward the walls as the camera dips.
        let cx = self.phi / (2.0 * std::f64::consts::PI);
        let cy = 0.5
            + 0.5
                * (self.theta.sin())
                * if self.phi < std::f64::consts::PI {
                    1.0
                } else {
                    -1.0
                }
                * (1.0 - zoom);
        ViewWindow {
            cx: cx.rem_euclid(1.0),
            cy: cy.clamp(half, 1.0 - half),
            half_w: half,
            half_h: half,
        }
    }
}

/// A deterministic spherical grid of `candidates` viewpoints.
///
/// Candidate 0 sits at the pole (the whole-field overview); the rest are
/// laid out on a golden-angle spiral over the upper hemisphere, the
/// standard low-discrepancy spherical covering — even azimuthal spread at
/// any count, and the grid for `n` candidates is a pure function of `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewpointGrid {
    views: Vec<Viewpoint>,
}

impl ViewpointGrid {
    /// Build a grid of `candidates` viewpoints (at least 1).
    pub fn spherical(candidates: usize) -> Self {
        let n = candidates.max(1);
        // 2π(1 − 1/φ): the golden angle, irrational fraction of the circle.
        let golden = std::f64::consts::PI * (3.0 - 5.0_f64.sqrt());
        let mut views = Vec::with_capacity(n);
        views.push(Viewpoint {
            index: 0,
            theta: 0.0,
            phi: 0.0,
        });
        for k in 1..n {
            // Equal-area latitudes over the open upper hemisphere.
            let frac = k as f64 / n as f64;
            let theta = (1.0 - frac).acos().min(std::f64::consts::FRAC_PI_2);
            let phi = (k as f64 * golden).rem_euclid(2.0 * std::f64::consts::PI);
            views.push(Viewpoint {
                index: k,
                theta,
                phi,
            });
        }
        ViewpointGrid { views }
    }

    /// The candidate viewpoints, in index order.
    pub fn views(&self) -> &[Viewpoint] {
        &self.views
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Always false — a grid holds at least the polar overview.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

/// Sample `field` at fractional coordinates (`u`, `v` in `[0, 1)` of the
/// domain) with bilinear interpolation, wrapping x periodically and
/// clamping y at the walls — the channel topology the solver uses.
pub fn sample_periodic(field: &Field2D, u: f64, v: f64) -> f64 {
    let (nx, ny) = (field.nx(), field.ny());
    let fx = u.rem_euclid(1.0) * nx as f64 - 0.5;
    let fy = (v * ny as f64 - 0.5).clamp(0.0, (ny - 1) as f64);
    let x0 = fx.floor();
    let y0 = fy.floor() as usize;
    let tx = fx - x0;
    let ty = fy - y0 as f64;
    let y1 = (y0 + 1).min(ny - 1);
    let x0 = x0 as isize;
    let a = field.get_wrap_x(x0, y0);
    let b = field.get_wrap_x(x0 + 1, y0);
    let c = field.get_wrap_x(x0, y1);
    let d = field.get_wrap_x(x0 + 1, y1);
    a * (1.0 - tx) * (1.0 - ty) + b * tx * (1.0 - ty) + c * (1.0 - tx) * ty + d * tx * ty
}

/// Resample the window a viewpoint sees into an `out_nx × out_ny` field —
/// the candidate frame the renderer rasterizes and the entropy scorer
/// reads. A pure function of `(field, window, shape)`.
pub fn extract_window(field: &Field2D, win: &ViewWindow, out_nx: usize, out_ny: usize) -> Field2D {
    let x0 = win.cx - win.half_w;
    let y0 = win.cy - win.half_h;
    Field2D::from_fn(out_nx, out_ny, |i, j| {
        let u = x0 + (i as f64 + 0.5) / out_nx as f64 * (2.0 * win.half_w);
        let v = y0 + (j as f64 + 0.5) / out_ny as f64 * (2.0 * win.half_h);
        sample_periodic(field, u, v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_always_has_polar_overview() {
        for n in [1, 5, 10, 37] {
            let g = ViewpointGrid::spherical(n);
            assert_eq!(g.len(), n);
            assert_eq!(g.views()[0].theta, 0.0, "candidate 0 is the overview");
            let w = g.views()[0].window(0.5);
            assert_eq!((w.half_w, w.half_h), (0.5, 0.5));
        }
    }

    #[test]
    fn zero_candidates_clamps_to_one() {
        assert_eq!(ViewpointGrid::spherical(0).len(), 1);
    }

    #[test]
    fn grid_is_deterministic_and_distinct() {
        let a = ViewpointGrid::spherical(10);
        let b = ViewpointGrid::spherical(10);
        assert_eq!(a, b);
        for pair in a.views().windows(2) {
            assert_ne!(
                (pair[0].theta, pair[0].phi),
                (pair[1].theta, pair[1].phi),
                "viewpoints must differ"
            );
        }
    }

    #[test]
    fn windows_stay_inside_the_channel() {
        for vp in ViewpointGrid::spherical(24).views() {
            for zoom in [0.1, 0.35, 0.8] {
                let w = vp.window(zoom);
                assert!(w.cy - w.half_h >= -1e-12, "{vp:?} zoom {zoom}");
                assert!(w.cy + w.half_h <= 1.0 + 1e-12, "{vp:?} zoom {zoom}");
                assert!((0.0..1.0).contains(&w.cx), "{vp:?} zoom {zoom}");
            }
        }
    }

    #[test]
    fn periodic_sampling_wraps_x() {
        let f = Field2D::from_fn(8, 4, |i, _| i as f64);
        // u just past 1.0 equals u just past 0.0.
        let a = sample_periodic(&f, 1.001, 0.5);
        let b = sample_periodic(&f, 0.001, 0.5);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn full_window_resamples_the_field() {
        let f = Field2D::from_fn(16, 12, |i, j| (i * 3 + j) as f64);
        let win = ViewWindow {
            cx: 0.5,
            cy: 0.5,
            half_w: 0.5,
            half_h: 0.5,
        };
        let out = extract_window(&f, &win, 16, 12);
        // Same shape, same cell centers: exact match.
        for j in 0..12 {
            for i in 0..16 {
                assert!(
                    (out.get(i, j) - f.get(i, j)).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    out.get(i, j),
                    f.get(i, j)
                );
            }
        }
    }

    #[test]
    fn windowed_extraction_sees_local_values() {
        // A field hot only in the left half; a window on the left sees
        // high values, one on the right sees low.
        let f = Field2D::from_fn(32, 16, |i, _| if i < 16 { 10.0 } else { 0.0 });
        let left = extract_window(
            &f,
            &ViewWindow {
                cx: 0.25,
                cy: 0.5,
                half_w: 0.15,
                half_h: 0.15,
            },
            8,
            8,
        );
        let right = extract_window(
            &f,
            &ViewWindow {
                cx: 0.75,
                cy: 0.5,
                half_w: 0.15,
                half_h: 0.15,
            },
            8,
            8,
        );
        assert!(left.mean() > 9.0);
        assert!(right.mean() < 1.0);
    }
}
