//! Steady-state stepping must not touch the heap.
//!
//! `ShallowWaterModel::step` ping-pongs between two preallocated states, so
//! after construction the solver loop performs zero allocations — asserted
//! here with a counting global allocator. This file holds exactly one test
//! (its own process) so no sibling test can allocate concurrently and
//! pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ivis_ocean::grid::Grid;
use ivis_ocean::shallow_water::{ShallowWaterModel, SwParams};
use ivis_ocean::vortex::{seed_vortex, Vortex};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_stepping_is_allocation_free() {
    let grid = Grid::channel(96, 64, 60_000.0);
    let params = SwParams::eddy_channel(&grid);
    let mut m = ShallowWaterModel::new(grid, params);
    let (lx, ly) = m.grid().extent();
    seed_vortex(
        &mut m,
        &Vortex {
            x: lx * 0.5,
            y: ly * 0.5,
            radius: 200_000.0,
            amplitude: 1.0,
        },
    );
    // Warm up: first steps after construction are already allocation-free,
    // but run a few anyway so the measurement is unambiguously steady-state.
    m.run(4);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    m.run(100);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "ShallowWaterModel::step allocated {} times over 100 steps",
        after - before
    );
    // The model actually did something.
    assert!(m.max_speed() > 0.0);
    assert_eq!(m.steps(), 104);
}
