//! Property-based tests of the shallow-water solver: conservation and
//! stability must hold across random (but physically valid) configurations,
//! not just the hand-picked ones in the unit tests.

use ivis_ocean::grid::Grid;
use ivis_ocean::okubo_weiss::okubo_weiss;
use ivis_ocean::shallow_water::{ShallowWaterModel, SwParams};
use ivis_ocean::vortex::{seed_random_eddies, seed_vortex, Vortex};
use proptest::prelude::*;

fn random_model(nx: usize, ny: usize, eddies: usize, seed: u64) -> ShallowWaterModel {
    let grid = Grid::channel(nx, ny, 60_000.0);
    let params = SwParams::eddy_channel(&grid);
    let mut m = ShallowWaterModel::new(grid, params);
    seed_random_eddies(&mut m, eddies, seed);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mass_conserved_for_any_seeding(
        nx in 8usize..32,
        ny in 8usize..24,
        eddies in 0usize..6,
        seed in 0u64..1_000,
        steps in 1u64..60,
    ) {
        let mut m = random_model(nx, ny, eddies, seed);
        let m0 = m.total_mass();
        m.run(steps);
        let m1 = m.total_mass();
        let scale = (m.state().h.max_abs() * m.grid().dx * m.grid().dy
            * m.grid().num_cells() as f64).max(1.0);
        prop_assert!(
            (m1 - m0).abs() <= 1e-9 * scale,
            "mass drifted {m0} -> {m1}"
        );
    }

    #[test]
    fn solution_stays_finite_and_bounded(
        seed in 0u64..1_000,
        steps in 1u64..120,
    ) {
        let mut m = random_model(24, 16, 4, seed);
        let h0 = m.state().h.max_abs();
        m.run(steps);
        prop_assert!(m.state().h.data().iter().all(|x| x.is_finite()));
        prop_assert!(m.max_speed().is_finite());
        // Energy-bounded evolution: the surface must not grow more than a
        // modest factor beyond the initial anomaly.
        prop_assert!(
            m.state().h.max_abs() <= 3.0 * h0.max(0.1),
            "h grew from {h0} to {}",
            m.state().h.max_abs()
        );
    }

    #[test]
    fn walls_never_leak(
        seed in 0u64..500,
        steps in 1u64..80,
    ) {
        let mut m = random_model(16, 12, 3, seed);
        m.run(steps);
        let ny = m.grid().ny;
        for i in 0..m.grid().nx {
            prop_assert_eq!(m.state().v.get(i, 0), 0.0);
            prop_assert_eq!(m.state().v.get(i, ny), 0.0);
        }
    }

    #[test]
    fn anticyclones_have_negative_w_cores(
        radius_cells in 2.5f64..5.0,
        amplitude in 0.3f64..1.5,
    ) {
        let grid = Grid::channel(48, 32, 60_000.0);
        let params = SwParams::eddy_channel(&grid);
        let mut m = ShallowWaterModel::new(grid, params);
        let (lx, ly) = m.grid().extent();
        seed_vortex(&mut m, &Vortex {
            x: lx / 2.0,
            y: ly / 2.0,
            radius: radius_cells * 60_000.0,
            amplitude,
        });
        let (uc, vc) = m.centered_velocities();
        let w = okubo_weiss(m.grid(), &uc, &vc);
        let (ci, cj) = (m.grid().nx / 2, m.grid().ny / 2);
        prop_assert!(w.get(ci, cj) < 0.0, "core W = {}", w.get(ci, cj));
    }

    #[test]
    fn energy_monotone_under_strong_drag(seed in 0u64..200) {
        let grid = Grid::channel(24, 16, 60_000.0);
        let mut params = SwParams::eddy_channel(&grid);
        params.drag = 5e-5;
        let mut m = ShallowWaterModel::new(grid, params);
        seed_random_eddies(&mut m, 3, seed);
        let mut prev = m.total_energy();
        // Sampled every 40 steps: short-term geostrophic adjustment can
        // shuffle energy between PE and KE, but the strongly damped trend
        // must come down.
        for _ in 0..3 {
            m.run(40);
            let e = m.total_energy();
            prop_assert!(e <= prev * 1.02, "energy rose {prev} -> {e}");
            prev = e;
        }
    }
}
