//! Dense 2-D scalar fields.
//!
//! Row-major storage (`idx = j * nx + i`), with parallel row-wise iteration
//! built on rayon for the compute kernels (time stepping, Okubo-Weiss).

use rayon::prelude::*;

/// A dense row-major 2-D field of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Field2D {
    nx: usize,
    ny: usize,
    data: Vec<f64>,
}

impl Field2D {
    /// A field of zeros with `nx` columns and `ny` rows.
    pub fn zeros(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "field dimensions must be positive");
        Field2D {
            nx,
            ny,
            data: vec![0.0; nx * ny],
        }
    }

    /// A field filled with `value`.
    pub fn filled(nx: usize, ny: usize, value: f64) -> Self {
        let mut f = Field2D::zeros(nx, ny);
        f.data.fill(value);
        f
    }

    /// Build a field by evaluating `f(i, j)` at every point (in parallel).
    pub fn from_fn(nx: usize, ny: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        assert!(nx > 0 && ny > 0, "field dimensions must be positive");
        let mut data = vec![0.0; nx * ny];
        data.par_chunks_mut(nx).enumerate().for_each(|(j, row)| {
            for (i, v) in row.iter_mut().enumerate() {
                *v = f(i, j);
            }
        });
        Field2D { nx, ny, data }
    }

    /// Number of columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the field has no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Value at column `i`, row `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nx && j < self.ny);
        self.data[j * self.nx + i]
    }

    /// Set the value at column `i`, row `j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nx && j < self.ny);
        self.data[j * self.nx + i] = v;
    }

    /// Value with periodic wraparound in `i` (x is periodic in the basin).
    #[inline]
    pub fn get_wrap_x(&self, i: isize, j: usize) -> f64 {
        let nx = self.nx as isize;
        let iw = i.rem_euclid(nx) as usize;
        self.get(iw, j)
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data, row-major.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Parallel mutable row iterator: `(j, row)` pairs.
    pub fn par_rows_mut(&mut self) -> impl IndexedParallelIterator<Item = (usize, &mut [f64])> {
        self.data.par_chunks_mut(self.nx).enumerate()
    }

    /// Sum of all elements (parallel reduction).
    pub fn sum(&self) -> f64 {
        self.data.par_iter().sum()
    }

    /// Minimum element.
    pub fn min(&self) -> f64 {
        self.data
            .par_iter()
            .copied()
            .reduce(|| f64::INFINITY, f64::min)
    }

    /// Maximum element.
    pub fn max(&self) -> f64 {
        self.data
            .par_iter()
            .copied()
            .reduce(|| f64::NEG_INFINITY, f64::max)
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        let mean = self.mean();
        let var = self
            .data
            .par_iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / self.data.len() as f64;
        var.sqrt()
    }

    /// Maximum absolute value.
    pub fn max_abs(&self) -> f64 {
        self.data
            .par_iter()
            .map(|x| x.abs())
            .reduce(|| 0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut f = Field2D::zeros(4, 3);
        assert_eq!((f.nx(), f.ny(), f.len()), (4, 3, 12));
        f.set(2, 1, 7.5);
        assert_eq!(f.get(2, 1), 7.5);
        assert_eq!(f.get(0, 0), 0.0);
    }

    #[test]
    fn from_fn_matches_formula() {
        let f = Field2D::from_fn(5, 4, |i, j| (i + 10 * j) as f64);
        for j in 0..4 {
            for i in 0..5 {
                assert_eq!(f.get(i, j), (i + 10 * j) as f64);
            }
        }
    }

    #[test]
    fn wraparound_in_x() {
        let f = Field2D::from_fn(4, 2, |i, _| i as f64);
        assert_eq!(f.get_wrap_x(-1, 0), 3.0);
        assert_eq!(f.get_wrap_x(4, 1), 0.0);
        assert_eq!(f.get_wrap_x(9, 0), 1.0);
    }

    #[test]
    fn reductions() {
        let f = Field2D::from_fn(3, 3, |i, j| (i as f64) - (j as f64));
        assert_eq!(f.min(), -2.0);
        assert_eq!(f.max(), 2.0);
        assert!((f.sum() - 0.0).abs() < 1e-12);
        assert!((f.mean() - 0.0).abs() < 1e-12);
        assert_eq!(f.max_abs(), 2.0);
    }

    #[test]
    fn std_dev_matches_naive() {
        let f = Field2D::from_fn(2, 2, |i, j| (2 * j + i) as f64); // 0,1,2,3
                                                                   // variance of {0,1,2,3} = 1.25
        assert!((f.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn filled_is_constant() {
        let f = Field2D::filled(7, 2, 3.25);
        assert!(f.data().iter().all(|&x| x == 3.25));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_size_rejected() {
        let _ = Field2D::zeros(0, 5);
    }
}
