//! Seeding of geostrophically balanced eddies.
//!
//! An ocean eddy is, to leading order, a geostrophic vortex: the pressure
//! gradient of its raised (anticyclone) or depressed (cyclone) surface
//! balances the Coriolis force. Seeding balanced Gaussians gives the solver
//! realistic, long-lived eddies — the structures the paper's visualization
//! task identifies and tracks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::shallow_water::ShallowWaterModel;

/// A Gaussian eddy: `h(r) = A · exp(−r² / 2R²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vortex {
    /// Center x, meters.
    pub x: f64,
    /// Center y, meters.
    pub y: f64,
    /// e-folding radius R, meters.
    pub radius: f64,
    /// Surface amplitude A, meters (positive = anticyclone on the northern
    /// hemisphere β-plane, negative = cyclone).
    pub amplitude: f64,
}

impl Vortex {
    /// Surface elevation contribution at `(x, y)`, accounting for the
    /// basin's periodicity in x (width `lx`).
    pub fn h_at(&self, x: f64, y: f64, lx: f64) -> f64 {
        let mut dx = (x - self.x).abs();
        if dx > lx / 2.0 {
            dx = lx - dx; // wrap through the periodic boundary
        }
        let dy = y - self.y;
        let r2 = dx * dx + dy * dy;
        self.amplitude * (-r2 / (2.0 * self.radius * self.radius)).exp()
    }
}

/// Add one balanced vortex to the model state.
///
/// The surface field is superposed and the velocities are set to geostrophic
/// balance with the *total* (new) surface field:
/// `u = −(g/f) ∂h/∂y`, `v = +(g/f) ∂h/∂x`, evaluated at the staggered
/// points by central differences.
pub fn seed_vortex(model: &mut ShallowWaterModel, vortex: &Vortex) {
    seed_vortices(model, std::slice::from_ref(vortex));
}

/// Add several balanced vortices at once.
pub fn seed_vortices(model: &mut ShallowWaterModel, vortices: &[Vortex]) {
    let grid = model.grid().clone();
    let g = model.params().g;
    let (lx, _) = grid.extent();
    // 1. superpose surface anomalies at the cell centers
    {
        let h = &mut model.state_mut().h;
        for j in 0..grid.ny {
            for i in 0..grid.nx {
                let mut acc = h.get(i, j);
                for v in vortices {
                    acc += v.h_at(grid.x_center(i), grid.y_center(j), lx);
                }
                h.set(i, j, acc);
            }
        }
    }
    // 2. geostrophic velocities from the total surface field
    let h = model.state().h.clone();
    {
        let u = &mut model.state_mut().u;
        for j in 0..grid.ny {
            let f = grid.coriolis(j);
            for i in 0..grid.nx {
                // u-point: west face of (i,j). ∂h/∂y by averaging the two
                // adjacent columns' central differences.
                let jm = j.saturating_sub(1);
                let jp = (j + 1).min(grid.ny - 1);
                let span = (jp - jm) as f64 * grid.dy;
                if span == 0.0 {
                    continue;
                }
                let ii = i as isize;
                let dhdy = 0.5
                    * ((h.get_wrap_x(ii, jp) - h.get_wrap_x(ii, jm))
                        + (h.get_wrap_x(ii - 1, jp) - h.get_wrap_x(ii - 1, jm)))
                    / span;
                u.set(i, j, -(g / f) * dhdy);
            }
        }
    }
    {
        let v = &mut model.state_mut().v;
        for j in 1..grid.ny {
            let f = grid.coriolis_at_vface(j);
            for i in 0..grid.nx {
                // v-point: south face of (i,j). ∂h/∂x averaged over the two
                // adjacent rows.
                let ii = i as isize;
                let dhdx = 0.5
                    * ((h.get_wrap_x(ii + 1, j) - h.get_wrap_x(ii - 1, j))
                        + (h.get_wrap_x(ii + 1, j - 1) - h.get_wrap_x(ii - 1, j - 1)))
                    / (2.0 * grid.dx);
                v.set(i, j, (g / f) * dhdx);
            }
        }
    }
}

/// Scatter `count` random eddies over the interior of the basin,
/// deterministic in `seed`. Radii, amplitudes and polarity vary; eddies are
/// kept away from the walls by one diameter.
pub fn seed_random_eddies(model: &mut ShallowWaterModel, count: usize, seed: u64) -> Vec<Vortex> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (lx, ly) = model.grid().extent();
    // Radii scale with the basin so small test domains stay valid: an eddy
    // never exceeds a fifth of the meridional extent.
    let r_hi = (ly / 5.0).min(200_000.0);
    let r_lo = (r_hi * 0.4).min(80_000.0);
    let vortices: Vec<Vortex> = (0..count)
        .map(|_| {
            let radius = rng.gen_range(r_lo..r_hi);
            let amplitude = rng.gen_range(0.3..1.2) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            Vortex {
                x: rng.gen_range(0.0..lx),
                y: rng.gen_range(2.0 * radius..ly - 2.0 * radius),
                radius,
                amplitude,
            }
        })
        .collect();
    seed_vortices(model, &vortices);
    vortices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::shallow_water::SwParams;

    fn model() -> ShallowWaterModel {
        let grid = Grid::channel(48, 32, 60_000.0);
        let params = SwParams::eddy_channel(&grid);
        ShallowWaterModel::new(grid, params)
    }

    #[test]
    fn vortex_h_peaks_at_center() {
        let v = Vortex {
            x: 100.0,
            y: 200.0,
            radius: 50.0,
            amplitude: 2.0,
        };
        assert_eq!(v.h_at(100.0, 200.0, 1e9), 2.0);
        assert!(v.h_at(100.0 + 50.0, 200.0, 1e9) < 2.0);
        // One e-folding radius: A·exp(-1/2).
        let at_r = v.h_at(150.0, 200.0, 1e9);
        assert!((at_r - 2.0 * (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn periodic_wrap_in_x() {
        let v = Vortex {
            x: 10.0,
            y: 0.0,
            radius: 30.0,
            amplitude: 1.0,
        };
        let lx = 1000.0;
        // Point at x=990 is only 20 away through the boundary.
        assert!((v.h_at(990.0, 0.0, lx) - v.h_at(30.0, 0.0, lx)).abs() < 1e-12);
    }

    #[test]
    fn seeded_vortex_rotates() {
        let mut m = model();
        let (lx, ly) = m.grid().extent();
        seed_vortex(
            &mut m,
            &Vortex {
                x: lx / 2.0,
                y: ly / 2.0,
                radius: 150_000.0,
                amplitude: 1.0,
            },
        );
        assert!(m.max_speed() > 0.01, "geostrophic flow expected");
        // Anticyclone (A>0, f>0): clockwise. North of center u > 0.
        let j_north = (m.grid().ny * 3) / 4;
        let i_mid = m.grid().nx / 2;
        let u_north = m.state().u.get(i_mid, j_north);
        assert!(
            u_north > 0.0,
            "u north of an anticyclone should be eastward"
        );
    }

    #[test]
    fn cyclone_rotates_opposite() {
        let mut m = model();
        let (lx, ly) = m.grid().extent();
        seed_vortex(
            &mut m,
            &Vortex {
                x: lx / 2.0,
                y: ly / 2.0,
                radius: 150_000.0,
                amplitude: -1.0,
            },
        );
        let j_north = (m.grid().ny * 3) / 4;
        let i_mid = m.grid().nx / 2;
        assert!(m.state().u.get(i_mid, j_north) < 0.0);
    }

    #[test]
    fn superposition_adds() {
        let mut m1 = model();
        let (lx, ly) = m1.grid().extent();
        let v1 = Vortex {
            x: lx * 0.25,
            y: ly * 0.5,
            radius: 100_000.0,
            amplitude: 1.0,
        };
        let v2 = Vortex {
            x: lx * 0.75,
            y: ly * 0.5,
            radius: 100_000.0,
            amplitude: -0.5,
        };
        seed_vortices(&mut m1, &[v1, v2]);
        let h_both = m1.state().h.clone();
        let mut m2 = model();
        seed_vortex(&mut m2, &v1);
        seed_vortex(&mut m2, &v2);
        // h superposes exactly (velocities differ slightly because balance
        // is computed against the total field each time).
        for (a, b) in h_both.data().iter().zip(m2.state().h.data()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn random_eddies_deterministic_and_in_bounds() {
        let mut m1 = model();
        let mut m2 = model();
        let e1 = seed_random_eddies(&mut m1, 8, 42);
        let e2 = seed_random_eddies(&mut m2, 8, 42);
        assert_eq!(e1, e2);
        let (lx, ly) = m1.grid().extent();
        for e in &e1 {
            assert!(e.x >= 0.0 && e.x <= lx);
            assert!(e.y >= 0.0 && e.y <= ly);
            assert!(e.y - 2.0 * e.radius >= -1.0 && e.y + 2.0 * e.radius <= ly + 1.0);
        }
        assert_eq!(m1.state().h.data(), m2.state().h.data());
    }

    #[test]
    fn different_seeds_differ() {
        let mut m1 = model();
        let mut m2 = model();
        seed_random_eddies(&mut m1, 4, 1);
        seed_random_eddies(&mut m2, 4, 2);
        assert_ne!(m1.state().h.data(), m2.state().h.data());
    }
}
