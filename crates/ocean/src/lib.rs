//! # ivis-ocean — the ocean simulation proxy for MPAS-O
//!
//! The paper couples the ocean component of MPAS (MPAS-O, a 60 km global
//! ocean run) to its visualization pipelines; the visualization task is to
//! identify and track **eddies** via the **Okubo-Weiss** field. We cannot
//! run MPAS-O itself, so this crate provides a real, laptop-scale ocean
//! model with the same relevant physics — a rotating shallow-water solver on
//! an Arakawa C grid that spins up genuine eddies — plus the bookkeeping
//! needed to reason about the paper-scale problem:
//!
//! * [`field`] — dense 2-D fields with parallel iteration (rayon).
//! * [`grid`] — the staggered C grid: spacing, periodicity, Coriolis
//!   (β-plane).
//! * [`shallow_water`] — the solver: forward–backward time stepping of the
//!   rotating shallow-water equations with bottom drag and wind forcing,
//!   mass-conserving by construction.
//! * [`vortex`] — seeding of geostrophically balanced Gaussian eddies.
//! * [`mod@okubo_weiss`] — the W = s_n² + s_s² − ω² diagnostic the paper
//!   visualizes (negative W = rotation-dominated = eddy core).
//! * [`decomposition`] — 1-D block domain decomposition across ranks with
//!   halo-size accounting.
//! * [`problem`] — the paper's problem specification (60 km grid, 30-minute
//!   steps, six simulated months, sampling every 8/24/72 simulated hours)
//!   and its derived counts (timesteps, outputs, raw bytes per output).
//! * [`cost`] — the per-step wall-clock cost model of the 60 km problem on
//!   the 150-node *Caddy* cluster, calibrated to the paper's measured
//!   t_sim = 603 s for 8640 steps.

pub mod cost;
pub mod decomposition;
pub mod field;
pub mod grid;
pub mod okubo_weiss;
pub mod problem;
pub mod shallow_water;
pub mod synthetic;
pub mod vortex;

pub use field::Field2D;
pub use grid::Grid;
pub use okubo_weiss::okubo_weiss;
pub use problem::{ProblemSpec, SamplingRate};
pub use shallow_water::{ShallowWaterModel, SwParams, SwState};
