//! Synthetic geostrophic turbulence.
//!
//! A random-phase streamfunction with a prescribed spectral slope generates
//! velocity fields that *look* like an eddying ocean without time-stepping —
//! ideal for stress-testing the eddy-identification pipeline at sizes where
//! running the solver would dominate test time, and for generating
//! reproducible workloads in benchmarks.
//!
//! The construction: `ψ(x, y) = Σ_k A(k) · cos(k·x + φ_k)` over a set of
//! random wavevectors with amplitudes `A(k) ∝ k^(−slope/2)`; the
//! non-divergent velocities are `u = −∂ψ/∂y`, `v = +∂ψ/∂x`, evaluated
//! analytically (no differencing error).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::field::Field2D;
use crate::grid::Grid;

/// Parameters of the synthetic field.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Number of random Fourier modes.
    pub modes: usize,
    /// Smallest wavelength, in cells (sets the highest wavenumber).
    pub min_wavelength_cells: f64,
    /// Largest wavelength, in cells.
    pub max_wavelength_cells: f64,
    /// Spectral slope of kinetic energy (≈3 for quasi-geostrophic
    /// turbulence).
    pub slope: f64,
    /// RMS target velocity, m/s.
    pub rms_velocity: f64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            modes: 48,
            min_wavelength_cells: 6.0,
            max_wavelength_cells: 40.0,
            slope: 3.0,
            rms_velocity: 0.3,
        }
    }
}

struct Mode {
    kx: f64,
    ky: f64,
    amp: f64,
    phase: f64,
}

/// Generate cell-centered `(u, v)` velocity fields on `grid`,
/// deterministically from `seed`.
pub fn synthetic_velocities(grid: &Grid, spec: &SyntheticSpec, seed: u64) -> (Field2D, Field2D) {
    assert!(spec.modes > 0, "need at least one mode");
    assert!(
        spec.max_wavelength_cells > spec.min_wavelength_cells && spec.min_wavelength_cells >= 2.0,
        "wavelength band must be valid and resolvable"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let two_pi = 2.0 * std::f64::consts::PI;
    let modes: Vec<Mode> = (0..spec.modes)
        .map(|_| {
            let wavelength_cells =
                rng.gen_range(spec.min_wavelength_cells..spec.max_wavelength_cells);
            let k_mag = two_pi / (wavelength_cells * grid.dx);
            let theta = rng.gen_range(0.0..two_pi);
            Mode {
                kx: k_mag * theta.cos(),
                ky: k_mag * theta.sin(),
                // KE(k) ∝ k^-slope ⇒ velocity amplitude ∝ k^(-slope/2); the
                // streamfunction gets one more factor of 1/k.
                amp: k_mag.powf(-spec.slope / 2.0) / k_mag,
                phase: rng.gen_range(0.0..two_pi),
            }
        })
        .collect();

    let (nx, ny) = (grid.nx, grid.ny);
    let eval = |f: &(dyn Fn(&Mode, f64, f64) -> f64 + Sync)| -> Field2D {
        let mut out = Field2D::zeros(nx, ny);
        out.par_rows_mut().for_each(|(j, row)| {
            let y = (j as f64 + 0.5) * grid.dy;
            for (i, v) in row.iter_mut().enumerate() {
                let x = (i as f64 + 0.5) * grid.dx;
                *v = modes.iter().map(|m| f(m, x, y)).sum();
            }
        });
        out
    };
    // u = -dψ/dy = +Σ A ky sin(kx·x + ky·y + φ);  v = dψ/dx = -Σ A kx sin(..)
    let u = eval(&|m, x, y| m.amp * m.ky * (m.kx * x + m.ky * y + m.phase).sin());
    let v = eval(&|m, x, y| -m.amp * m.kx * (m.kx * x + m.ky * y + m.phase).sin());

    // Normalize to the requested RMS speed.
    let ms = (u.data().iter().map(|x| x * x).sum::<f64>()
        + v.data().iter().map(|x| x * x).sum::<f64>())
        / (2.0 * u.len() as f64);
    let scale = if ms > 0.0 {
        spec.rms_velocity / ms.sqrt()
    } else {
        0.0
    };
    let mut u = u;
    let mut v = v;
    u.data_mut().iter_mut().for_each(|x| *x *= scale);
    v.data_mut().iter_mut().for_each(|x| *x *= scale);
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::okubo_weiss::{eddy_fraction, okubo_weiss};

    #[test]
    fn deterministic_per_seed() {
        let grid = Grid::channel(32, 32, 60_000.0);
        let (u1, v1) = synthetic_velocities(&grid, &SyntheticSpec::default(), 5);
        let (u2, v2) = synthetic_velocities(&grid, &SyntheticSpec::default(), 5);
        assert_eq!(u1.data(), u2.data());
        assert_eq!(v1.data(), v2.data());
        let (u3, _) = synthetic_velocities(&grid, &SyntheticSpec::default(), 6);
        assert_ne!(u1.data(), u3.data());
    }

    #[test]
    fn rms_velocity_is_normalized() {
        let grid = Grid::channel(48, 48, 60_000.0);
        let spec = SyntheticSpec {
            rms_velocity: 0.5,
            ..SyntheticSpec::default()
        };
        let (u, v) = synthetic_velocities(&grid, &spec, 1);
        let ms = (u.data().iter().map(|x| x * x).sum::<f64>()
            + v.data().iter().map(|x| x * x).sum::<f64>())
            / (2.0 * u.len() as f64);
        assert!((ms.sqrt() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn produces_rotation_and_strain_regions() {
        let grid = Grid::channel(64, 64, 60_000.0);
        let (u, v) = synthetic_velocities(&grid, &SyntheticSpec::default(), 9);
        let w = okubo_weiss(&grid, &u, &v);
        assert!(w.min() < 0.0, "vortex cores expected");
        assert!(w.max() > 0.0, "strain regions expected");
        let frac = eddy_fraction(&w, 0.2);
        assert!(
            frac > 0.02 && frac < 0.6,
            "plausible eddy coverage, got {frac}"
        );
    }

    #[test]
    fn steeper_slope_means_smoother_field() {
        // A steeper KE slope concentrates energy at large scales: the mean
        // wavenumber content drops, so the velocity gradient magnitudes do
        // too (at fixed RMS velocity).
        let grid = Grid::channel(64, 64, 60_000.0);
        let grad_scale = |slope: f64| -> f64 {
            let spec = SyntheticSpec {
                slope,
                ..SyntheticSpec::default()
            };
            let (u, v) = synthetic_velocities(&grid, &spec, 77);
            let w = okubo_weiss(&grid, &u, &v);
            w.max_abs()
        };
        let shallow = grad_scale(1.0);
        let steep = grad_scale(5.0);
        assert!(
            steep < shallow,
            "steeper spectrum should weaken gradients: {steep} vs {shallow}"
        );
    }

    #[test]
    #[should_panic(expected = "wavelength band")]
    fn invalid_band_rejected() {
        let grid = Grid::tiny();
        let spec = SyntheticSpec {
            min_wavelength_cells: 10.0,
            max_wavelength_cells: 5.0,
            ..SyntheticSpec::default()
        };
        let _ = synthetic_velocities(&grid, &spec, 0);
    }
}
