//! The paper's problem specification and derived quantities.
//!
//! Direct measurements in the paper use: a **60 km** global ocean grid, a
//! **half-hour** timestep, **six simulated months** of integration, and
//! output sampling every **8, 24 or 72 simulated hours**. The what-if
//! analyses extrapolate to **100 simulated years**. This module captures
//! those knobs and the byte/count arithmetic derived from them.

/// Simulated hours in the paper's six-month measurement runs
/// (180 days × 24 h).
pub const SIX_MONTHS_HOURS: f64 = 4_320.0;

/// Simulated hours in the 100-year what-if scenario (365-day years).
pub const HUNDRED_YEARS_HOURS: f64 = 876_000.0;

/// How often output products (raw data or images) are written, in simulated
/// hours.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct SamplingRate {
    /// Simulated hours between consecutive outputs.
    pub every_hours: f64,
}

impl SamplingRate {
    /// Output every `h` simulated hours.
    ///
    /// # Panics
    /// Panics if `h` is not positive.
    pub fn every_hours(h: f64) -> Self {
        assert!(
            h > 0.0 && h.is_finite(),
            "sampling interval must be positive"
        );
        SamplingRate { every_hours: h }
    }

    /// Output once per simulated day.
    pub fn daily() -> Self {
        SamplingRate::every_hours(24.0)
    }

    /// The paper's three measured configurations.
    pub fn paper_rates() -> [SamplingRate; 3] {
        [
            SamplingRate::every_hours(8.0),
            SamplingRate::every_hours(24.0),
            SamplingRate::every_hours(72.0),
        ]
    }

    /// Number of outputs over `duration_hours` of simulated time.
    pub fn outputs_over(&self, duration_hours: f64) -> u64 {
        (duration_hours / self.every_hours).floor() as u64
    }

    /// Relative rate versus another sampling rate (Eq. 6/7 of the paper:
    /// counts scale as `rate_any / rate_ref`).
    pub fn relative_to(&self, reference: SamplingRate) -> f64 {
        reference.every_hours / self.every_hours
    }
}

/// The coupled-simulation problem the pipelines run.
#[derive(Debug, Clone)]
pub struct ProblemSpec {
    /// Nominal grid spacing, km (descriptive).
    pub grid_km: f64,
    /// Horizontal cells in the mesh.
    pub num_cells: u64,
    /// Vertical levels.
    pub num_levels: u32,
    /// Variables written per raw output.
    pub output_vars: u32,
    /// Simulated minutes per timestep.
    pub step_minutes: f64,
    /// Total simulated hours.
    pub duration_hours: f64,
}

impl ProblemSpec {
    /// The paper's measured configuration: 60 km grid, half-hour steps, six
    /// simulated months. Cell/level/variable counts are set so one raw
    /// output encodes to ≈426 MB — the size implied by the paper's Fig. 7
    /// (230 GB for 540 outputs at the 8-hour rate).
    pub fn paper_60km() -> Self {
        ProblemSpec {
            grid_km: 60.0,
            num_cells: 665_509,
            num_levels: 40,
            output_vars: 2,
            step_minutes: 30.0,
            duration_hours: SIX_MONTHS_HOURS,
        }
    }

    /// The 100-year what-if configuration (same mesh, longer run).
    pub fn paper_100yr() -> Self {
        ProblemSpec {
            duration_hours: HUNDRED_YEARS_HOURS,
            ..ProblemSpec::paper_60km()
        }
    }

    /// Total timesteps in the run.
    pub fn total_steps(&self) -> u64 {
        (self.duration_hours * 60.0 / self.step_minutes).round() as u64
    }

    /// Timesteps between consecutive outputs at `rate`.
    pub fn steps_per_output(&self, rate: SamplingRate) -> u64 {
        (rate.every_hours * 60.0 / self.step_minutes)
            .round()
            .max(1.0) as u64
    }

    /// Number of outputs at `rate`.
    pub fn num_outputs(&self, rate: SamplingRate) -> u64 {
        rate.outputs_over(self.duration_hours)
    }

    /// Bytes of one raw (netCDF-style) output:
    /// `cells × levels × vars × 8 B` plus a small header allowance.
    pub fn raw_output_bytes(&self) -> u64 {
        self.num_cells * self.num_levels as u64 * self.output_vars as u64 * 8 + 4096
    }

    /// Total raw bytes written over the run at `rate` (post-processing).
    pub fn total_raw_bytes(&self, rate: SamplingRate) -> u64 {
        self.num_outputs(rate) * self.raw_output_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_step_and_output_counts() {
        let spec = ProblemSpec::paper_60km();
        assert_eq!(spec.total_steps(), 8_640); // 180 days × 48 steps/day
        let [r8, r24, r72] = SamplingRate::paper_rates();
        assert_eq!(spec.num_outputs(r8), 540);
        assert_eq!(spec.num_outputs(r24), 180);
        assert_eq!(spec.num_outputs(r72), 60);
        assert_eq!(spec.steps_per_output(r8), 16);
        assert_eq!(spec.steps_per_output(r72), 144);
    }

    #[test]
    fn raw_output_size_matches_fig7() {
        let spec = ProblemSpec::paper_60km();
        let per_output_gb = spec.raw_output_bytes() as f64 / 1e9;
        // 230 GB / 540 outputs ≈ 0.4259 GB.
        assert!(
            (per_output_gb - 0.42593).abs() < 0.002,
            "per-output = {per_output_gb} GB"
        );
        let total_gb = spec.total_raw_bytes(SamplingRate::every_hours(8.0)) as f64 / 1e9;
        assert!((total_gb - 230.0).abs() < 1.0, "total = {total_gb} GB");
    }

    #[test]
    fn fig7_other_rates() {
        let spec = ProblemSpec::paper_60km();
        let gb24 = spec.total_raw_bytes(SamplingRate::every_hours(24.0)) as f64 / 1e9;
        let gb72 = spec.total_raw_bytes(SamplingRate::every_hours(72.0)) as f64 / 1e9;
        // Paper: ~80 GB and ~27 GB.
        assert!((gb24 - 76.7).abs() < 4.0, "24h total = {gb24}");
        assert!((gb72 - 25.6).abs() < 2.0, "72h total = {gb72}");
    }

    #[test]
    fn hundred_year_run_counts() {
        let spec = ProblemSpec::paper_100yr();
        assert_eq!(spec.num_outputs(SamplingRate::daily()), 36_500);
        assert_eq!(spec.total_steps(), 1_752_000);
    }

    #[test]
    fn sampling_rate_relative_scaling() {
        let r8 = SamplingRate::every_hours(8.0);
        let r24 = SamplingRate::every_hours(24.0);
        // Sampling every 8 h is 3× the rate of every 24 h.
        assert!((r8.relative_to(r24) - 3.0).abs() < 1e-12);
        assert!((r24.relative_to(r8) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn storage_scales_linearly_with_rate() {
        // Eq. 6: doubling the rate doubles the bytes.
        let spec = ProblemSpec::paper_60km();
        let s12 = spec.total_raw_bytes(SamplingRate::every_hours(12.0));
        let s24 = spec.total_raw_bytes(SamplingRate::every_hours(24.0));
        assert_eq!(s12, 2 * s24);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_rejected() {
        let _ = SamplingRate::every_hours(0.0);
    }
}
