//! The staggered Arakawa C grid and basin geometry.
//!
//! The basin is a mid-latitude channel: **periodic in x** (like a
//! circumpolar current), **solid walls in y**. The Coriolis parameter varies
//! linearly with y (β-plane): `f(y) = f0 + β·y`, which is what lets the
//! model produce realistic westward-drifting eddies.

/// Basin geometry and rotation.
#[derive(Debug, Clone)]
pub struct Grid {
    /// Number of cells in x (periodic direction).
    pub nx: usize,
    /// Number of cells in y.
    pub ny: usize,
    /// Cell size in x, meters.
    pub dx: f64,
    /// Cell size in y, meters.
    pub dy: f64,
    /// Coriolis parameter at the basin's southern edge, 1/s.
    pub f0: f64,
    /// β = df/dy, 1/(m·s).
    pub beta: f64,
}

impl Grid {
    /// A mid-latitude β-plane channel with square cells of `d` meters.
    ///
    /// Defaults: `f0 = 1e-4 s⁻¹` (≈45° N), `β = 2e-11 (m·s)⁻¹`.
    pub fn channel(nx: usize, ny: usize, d: f64) -> Self {
        assert!(nx >= 4 && ny >= 4, "grid too small for the C-grid stencils");
        assert!(d > 0.0, "cell size must be positive");
        Grid {
            nx,
            ny,
            dx: d,
            dy: d,
            f0: 1e-4,
            beta: 2e-11,
        }
    }

    /// The laptop-scale analogue of the paper's 60 km run: a 256×128
    /// channel of 60 km cells (≈15,360 × 7,680 km).
    pub fn paper_analogue() -> Self {
        Grid::channel(256, 128, 60_000.0)
    }

    /// Small grid for fast tests.
    pub fn tiny() -> Self {
        Grid::channel(16, 12, 60_000.0)
    }

    /// Total cell count.
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Basin extent in meters, `(Lx, Ly)`.
    pub fn extent(&self) -> (f64, f64) {
        (self.nx as f64 * self.dx, self.ny as f64 * self.dy)
    }

    /// Coriolis parameter at the center of row `j`.
    pub fn coriolis(&self, j: usize) -> f64 {
        self.f0 + self.beta * (j as f64 + 0.5) * self.dy
    }

    /// Coriolis parameter at the y-face below row `j` (v-points).
    pub fn coriolis_at_vface(&self, j: usize) -> f64 {
        self.f0 + self.beta * j as f64 * self.dy
    }

    /// x-coordinate of the center of column `i`, meters.
    pub fn x_center(&self, i: usize) -> f64 {
        (i as f64 + 0.5) * self.dx
    }

    /// y-coordinate of the center of row `j`, meters.
    pub fn y_center(&self, j: usize) -> f64 {
        (j as f64 + 0.5) * self.dy
    }

    /// The maximum stable timestep for gravity-wave speed `c = sqrt(gH)`
    /// under the forward–backward scheme (with a 0.5 safety factor).
    pub fn max_stable_dt(&self, g: f64, depth: f64) -> f64 {
        let c = (g * depth).sqrt();
        0.5 * self.dx.min(self.dy) / (c * std::f64::consts::SQRT_2)
    }

    /// Per-row Coriolis parameter at cell centers, `f[j] = coriolis(j)` for
    /// `j in 0..ny`. The solver hoists this out of its per-cell hot loop;
    /// values are exactly [`Grid::coriolis`]'s, entry for entry.
    pub fn coriolis_center_table(&self) -> Vec<f64> {
        (0..self.ny).map(|j| self.coriolis(j)).collect()
    }

    /// Per-row Coriolis parameter at v-faces, `f[j] = coriolis_at_vface(j)`
    /// for `j in 0..=ny` (one entry per face row, walls included).
    pub fn coriolis_vface_table(&self) -> Vec<f64> {
        (0..=self.ny).map(|j| self.coriolis_at_vface(j)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_and_counts() {
        let g = Grid::channel(10, 5, 1000.0);
        assert_eq!(g.num_cells(), 50);
        assert_eq!(g.extent(), (10_000.0, 5_000.0));
    }

    #[test]
    fn coriolis_increases_northward() {
        let g = Grid::paper_analogue();
        assert!(g.coriolis(10) < g.coriolis(100));
        assert!(g.coriolis(0) > 0.0);
        // v-face value sits below the first cell center.
        assert!(g.coriolis_at_vface(0) < g.coriolis(0));
    }

    #[test]
    fn centers_are_offset_half_cell() {
        let g = Grid::channel(8, 8, 100.0);
        assert_eq!(g.x_center(0), 50.0);
        assert_eq!(g.y_center(3), 350.0);
    }

    #[test]
    fn stable_dt_is_sane_for_paper_analogue() {
        let g = Grid::paper_analogue();
        let dt = g.max_stable_dt(9.81, 1000.0);
        // c ≈ 99 m/s, dx = 60 km ⇒ dt ≈ 214 s.
        assert!(dt > 100.0 && dt < 400.0, "dt={dt}");
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn tiny_grids_rejected() {
        let _ = Grid::channel(2, 2, 100.0);
    }

    #[test]
    fn coriolis_tables_match_pointwise_formulas() {
        let g = Grid::channel(8, 6, 50_000.0);
        let centers = g.coriolis_center_table();
        let vfaces = g.coriolis_vface_table();
        assert_eq!(centers.len(), 6);
        assert_eq!(vfaces.len(), 7);
        for (j, c) in centers.iter().enumerate() {
            assert_eq!(c.to_bits(), g.coriolis(j).to_bits());
        }
        for (j, f) in vfaces.iter().enumerate() {
            assert_eq!(f.to_bits(), g.coriolis_at_vface(j).to_bits());
        }
    }
}
