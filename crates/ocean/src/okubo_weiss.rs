//! The Okubo-Weiss diagnostic.
//!
//! `W = s_n² + s_s² − ω²`, where `s_n = ∂u/∂x − ∂v/∂y` (normal strain),
//! `s_s = ∂v/∂x + ∂u/∂y` (shear strain) and `ω = ∂v/∂x − ∂u/∂y` (relative
//! vorticity). Rotation-dominated regions (eddy cores) have `W < 0`; strain-
//! dominated regions (the shear around eddies) have `W > 0`. The paper's
//! visualization colors exactly this field (green = rotation, blue = shear),
//! and eddy identification thresholds it at `W < −0.2 σ_W` (Woodring et al.).

use rayon::prelude::*;

use crate::field::Field2D;
use crate::grid::Grid;

/// Compute the Okubo-Weiss field from cell-centered velocities.
///
/// Derivatives are central differences, periodic in x and one-sided at the
/// y walls. Runs in parallel over rows.
///
/// # Panics
/// Panics if the field shapes disagree with the grid.
pub fn okubo_weiss(grid: &Grid, uc: &Field2D, vc: &Field2D) -> Field2D {
    let mut w = Field2D::zeros(grid.nx, grid.ny);
    okubo_weiss_into(grid, uc, vc, &mut w);
    w
}

/// [`okubo_weiss`] into a caller-provided buffer — allocation-free for
/// pipelines that recycle snapshots. Identical values and iteration order.
///
/// # Panics
/// Panics if any field shape disagrees with the grid.
pub fn okubo_weiss_into(grid: &Grid, uc: &Field2D, vc: &Field2D, w: &mut Field2D) {
    assert_eq!((uc.nx(), uc.ny()), (grid.nx, grid.ny), "u shape mismatch");
    assert_eq!((vc.nx(), vc.ny()), (grid.nx, grid.ny), "v shape mismatch");
    assert_eq!((w.nx(), w.ny()), (grid.nx, grid.ny), "w shape mismatch");
    let ny = grid.ny;
    let (dx, dy) = (grid.dx, grid.dy);
    w.par_rows_mut().for_each(|(j, row)| {
        let (jm, jp, denom_y) = if j == 0 {
            (0, 1, dy)
        } else if j == ny - 1 {
            (ny - 2, ny - 1, dy)
        } else {
            (j - 1, j + 1, 2.0 * dy)
        };
        for (i, out) in row.iter_mut().enumerate() {
            let ii = i as isize;
            let dudx = (uc.get_wrap_x(ii + 1, j) - uc.get_wrap_x(ii - 1, j)) / (2.0 * dx);
            let dvdx = (vc.get_wrap_x(ii + 1, j) - vc.get_wrap_x(ii - 1, j)) / (2.0 * dx);
            let dudy = (uc.get(i, jp) - uc.get(i, jm)) / denom_y;
            let dvdy = (vc.get(i, jp) - vc.get(i, jm)) / denom_y;
            let sn = dudx - dvdy;
            let ss = dvdx + dudy;
            let omega = dvdx - dudy;
            *out = sn * sn + ss * ss - omega * omega;
        }
    });
}

/// The eddy threshold of Woodring et al.: cells with `W < −k·σ_W` are
/// rotation-dominated cores (`k = 0.2` in the paper's pipeline).
pub fn eddy_threshold(w: &Field2D, k: f64) -> f64 {
    -k * w.std_dev()
}

/// Fraction of cells below the eddy threshold — a cheap scalar summary used
/// in tests and examples.
pub fn eddy_fraction(w: &Field2D, k: f64) -> f64 {
    let thr = eddy_threshold(w, k);
    let below = w.data().par_iter().filter(|&&x| x < thr).count();
    below as f64 / w.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shallow_water::{ShallowWaterModel, SwParams};
    use crate::vortex::{seed_vortex, Vortex};

    #[test]
    fn solid_body_rotation_is_negative_w() {
        // u = -ω0·(y−yc), v = ω0·(x−xc): pure rotation, W = −ω0²·4... with
        // sn = 0, ss = 0, ω = 2ω0 ⇒ W = −4ω0².
        let grid = Grid::channel(32, 32, 1000.0);
        let (lx, ly) = grid.extent();
        let om = 1e-4;
        let uc = Field2D::from_fn(32, 32, |_, j| -om * (grid.y_center(j) - ly / 2.0));
        let vc = Field2D::from_fn(32, 32, |i, _| om * (grid.x_center(i) - lx / 2.0));
        let w = okubo_weiss(&grid, &uc, &vc);
        // Interior cells (x periodicity corrupts the edges of this
        // non-periodic test field).
        let mid = w.get(16, 16);
        assert!(
            (mid + 4.0 * om * om).abs() < 1e-12,
            "expected W = -4ω² = {}, got {mid}",
            -4.0 * om * om
        );
    }

    #[test]
    fn pure_shear_is_positive_w() {
        // u = γ·y, v = 0: sn=0, ss=γ, ω=−γ ⇒ W = γ² − γ² = 0 for pure shear?
        // No: ss² − ω² = 0. Pure *strain* instead: u = γx, v = −γy ⇒ sn=2γ,
        // ω=0 ⇒ W = 4γ² > 0.
        let grid = Grid::channel(32, 32, 1000.0);
        let (lx, ly) = grid.extent();
        let gamma = 1e-5;
        let uc = Field2D::from_fn(32, 32, |i, _| gamma * (grid.x_center(i) - lx / 2.0));
        let vc = Field2D::from_fn(32, 32, |_, j| -gamma * (grid.y_center(j) - ly / 2.0));
        let w = okubo_weiss(&grid, &uc, &vc);
        let mid = w.get(16, 16);
        assert!((mid - 4.0 * gamma * gamma).abs() < 1e-14, "got {mid}");
    }

    #[test]
    fn quiescent_flow_is_zero() {
        let grid = Grid::tiny();
        let uc = Field2D::zeros(grid.nx, grid.ny);
        let vc = Field2D::zeros(grid.nx, grid.ny);
        let w = okubo_weiss(&grid, &uc, &vc);
        assert_eq!(w.max_abs(), 0.0);
        assert_eq!(eddy_fraction(&w, 0.2), 0.0);
    }

    #[test]
    fn seeded_eddy_core_is_rotation_dominated() {
        let grid = Grid::channel(48, 32, 60_000.0);
        let params = SwParams::eddy_channel(&grid);
        let mut m = ShallowWaterModel::new(grid, params);
        let (lx, ly) = m.grid().extent();
        seed_vortex(
            &mut m,
            &Vortex {
                x: lx / 2.0,
                y: ly / 2.0,
                radius: 150_000.0,
                amplitude: 1.0,
            },
        );
        let (uc, vc) = m.centered_velocities();
        let w = okubo_weiss(m.grid(), &uc, &vc);
        // Core cell must be below the eddy threshold; the surrounding ring
        // must contain strain-dominated (positive) cells.
        let (ci, cj) = (m.grid().nx / 2, m.grid().ny / 2);
        let thr = eddy_threshold(&w, 0.2);
        assert!(w.get(ci, cj) < thr, "core W={} thr={thr}", w.get(ci, cj));
        assert!(w.max() > 0.0, "strain ring expected");
        let frac = eddy_fraction(&w, 0.2);
        assert!(frac > 0.0 && frac < 0.5, "eddy fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_rejected() {
        let grid = Grid::tiny();
        let uc = Field2D::zeros(grid.nx + 1, grid.ny);
        let vc = Field2D::zeros(grid.nx, grid.ny);
        let _ = okubo_weiss(&grid, &uc, &vc);
    }
}
