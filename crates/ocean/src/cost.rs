//! Wall-clock cost model of the paper-scale simulation on *Caddy*.
//!
//! The paper's calibrated model has `t_sim = 603 s` for the six-month,
//! 8640-step run on 150 nodes / 2400 cores. We decompose that into a
//! mechanistic per-step cost — floating-point work per cell-level divided
//! over the cores at a realistic sustained rate, plus a halo-exchange
//! term — and provide a calibration hook that pins the total to a measured
//! value, which is exactly how the paper's own `t_sim` constant was
//! obtained.

use crate::problem::ProblemSpec;

/// Per-step cost model for a distributed ocean simulation.
#[derive(Debug, Clone)]
pub struct SimulationCostModel {
    /// Floating-point operations per cell per vertical level per step.
    pub flops_per_cell_level: f64,
    /// Sustained FLOP rate per core, FLOP/s (≈10 % of peak on Sandy Bridge
    /// for memory-bound stencil codes).
    pub sustained_flops_per_core: f64,
    /// Total cores applied to the problem.
    pub cores: u64,
    /// Fixed per-step communication cost (halo exchange + small
    /// collectives), seconds.
    pub comm_seconds_per_step: f64,
}

impl SimulationCostModel {
    /// The *Caddy* model, calibrated so the paper's six-month run costs
    /// t_sim = 603 s (69.79 ms per step on 2400 cores).
    pub fn caddy() -> Self {
        let mut model = SimulationCostModel {
            flops_per_cell_level: 11_000.0,
            sustained_flops_per_core: 2.0e9,
            cores: 2_400,
            comm_seconds_per_step: 5e-3,
        };
        model.calibrate_to(&ProblemSpec::paper_60km(), 603.0);
        model
    }

    /// Compute seconds per timestep for `spec`.
    pub fn step_seconds(&self, spec: &ProblemSpec) -> f64 {
        let flops = spec.num_cells as f64 * spec.num_levels as f64 * self.flops_per_cell_level;
        flops / (self.cores as f64 * self.sustained_flops_per_core) + self.comm_seconds_per_step
    }

    /// Total simulation (compute-only) seconds for `spec`.
    pub fn total_seconds(&self, spec: &ProblemSpec) -> f64 {
        self.step_seconds(spec) * spec.total_steps() as f64
    }

    /// Adjust the sustained FLOP rate so `total_seconds(spec)` equals
    /// `target_seconds` — the calibration the paper performs when it solves
    /// for `t_sim`.
    ///
    /// # Panics
    /// Panics if the target is too small to be reachable (communication
    /// alone exceeds it).
    pub fn calibrate_to(&mut self, spec: &ProblemSpec, target_seconds: f64) {
        let steps = spec.total_steps() as f64;
        let comm_total = self.comm_seconds_per_step * steps;
        assert!(
            target_seconds > comm_total,
            "target {target_seconds}s below the communication floor {comm_total}s"
        );
        let compute_per_step = (target_seconds - comm_total) / steps;
        let flops = spec.num_cells as f64 * spec.num_levels as f64 * self.flops_per_cell_level;
        self.sustained_flops_per_core = flops / (self.cores as f64 * compute_per_step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SamplingRate;

    #[test]
    fn caddy_matches_paper_t_sim() {
        let model = SimulationCostModel::caddy();
        let spec = ProblemSpec::paper_60km();
        let total = model.total_seconds(&spec);
        assert!((total - 603.0).abs() < 0.5, "t_sim = {total}");
    }

    #[test]
    fn step_time_is_tens_of_milliseconds() {
        let model = SimulationCostModel::caddy();
        let spec = ProblemSpec::paper_60km();
        let step = model.step_seconds(&spec);
        assert!((step - 0.0698).abs() < 0.001, "step = {step}");
    }

    #[test]
    fn sustained_rate_is_physically_plausible() {
        // Calibration should land near ~2 GFLOP/s per core — well under the
        // 20.8 GFLOP/s peak of an E5-2670 core.
        let model = SimulationCostModel::caddy();
        assert!(
            model.sustained_flops_per_core > 5e8 && model.sustained_flops_per_core < 2.08e10,
            "sustained = {}",
            model.sustained_flops_per_core
        );
    }

    #[test]
    fn simulation_time_scales_with_duration() {
        // Eq. 4: t_sim scales with iter_any / iter_ref.
        let model = SimulationCostModel::caddy();
        let six_months = ProblemSpec::paper_60km();
        let hundred_years = ProblemSpec::paper_100yr();
        let ratio = model.total_seconds(&hundred_years) / model.total_seconds(&six_months);
        let step_ratio = hundred_years.total_steps() as f64 / six_months.total_steps() as f64;
        assert!((ratio - step_ratio).abs() < 1e-9);
    }

    #[test]
    fn sampling_rate_does_not_affect_t_sim() {
        let model = SimulationCostModel::caddy();
        let spec = ProblemSpec::paper_60km();
        let _ = SamplingRate::paper_rates();
        // t_sim depends only on steps, not on output frequency.
        assert_eq!(model.total_seconds(&spec), model.total_seconds(&spec));
    }

    #[test]
    fn more_cores_fewer_seconds() {
        let mut model = SimulationCostModel::caddy();
        let spec = ProblemSpec::paper_60km();
        let base = model.total_seconds(&spec);
        model.cores *= 2;
        let doubled = model.total_seconds(&spec);
        assert!(doubled < base);
        // Communication floor prevents perfect scaling.
        assert!(doubled > base / 2.0);
    }

    #[test]
    #[should_panic(expected = "communication floor")]
    fn impossible_calibration_rejected() {
        let mut model = SimulationCostModel::caddy();
        model.calibrate_to(&ProblemSpec::paper_60km(), 1.0);
    }
}
