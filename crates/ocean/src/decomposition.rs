//! 1-D block domain decomposition.
//!
//! The paper's MPAS-O run decomposes the ocean mesh across 2400 cores; the
//! cost model and the PIO writer need to know how much data each rank owns
//! and how much halo it exchanges per step. We model a 1-D decomposition in
//! y: each rank owns a contiguous block of rows plus one halo row on each
//! interior side.

/// A rank's slice of the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankSlab {
    /// First owned row.
    pub row_start: usize,
    /// One past the last owned row.
    pub row_end: usize,
    /// Number of halo rows exchanged with neighbors per step (0, 1 or 2
    /// sides × halo width 1).
    pub halo_rows: usize,
}

impl RankSlab {
    /// Owned row count.
    pub fn rows(&self) -> usize {
        self.row_end - self.row_start
    }
}

/// Decompose `ny` rows across `nranks` ranks as evenly as possible
/// (remainder rows go to the lowest ranks).
///
/// # Panics
/// Panics if `nranks` is zero or exceeds `ny`.
pub fn decompose_rows(ny: usize, nranks: usize) -> Vec<RankSlab> {
    assert!(nranks > 0, "need at least one rank");
    assert!(nranks <= ny, "more ranks ({nranks}) than rows ({ny})");
    let base = ny / nranks;
    let extra = ny % nranks;
    let mut slabs = Vec::with_capacity(nranks);
    let mut start = 0;
    for r in 0..nranks {
        let rows = base + usize::from(r < extra);
        let end = start + rows;
        let mut halo = 0;
        if r > 0 {
            halo += 1;
        }
        if r + 1 < nranks {
            halo += 1;
        }
        slabs.push(RankSlab {
            row_start: start,
            row_end: end,
            halo_rows: halo,
        });
        start = end;
    }
    slabs
}

/// Bytes of field data a rank owns: `rows × nx × fields × 8`.
pub fn rank_bytes(slab: &RankSlab, nx: usize, fields_per_cell: usize) -> u64 {
    (slab.rows() * nx * fields_per_cell * 8) as u64
}

/// Bytes a rank exchanges per halo update: `halo_rows × nx × fields × 8`.
pub fn halo_bytes(slab: &RankSlab, nx: usize, fields_per_cell: usize) -> u64 {
    (slab.halo_rows * nx * fields_per_cell * 8) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let slabs = decompose_rows(100, 4);
        assert_eq!(slabs.len(), 4);
        for s in &slabs {
            assert_eq!(s.rows(), 25);
        }
        assert_eq!(slabs[0].row_start, 0);
        assert_eq!(slabs[3].row_end, 100);
    }

    #[test]
    fn remainder_goes_to_low_ranks() {
        let slabs = decompose_rows(10, 3);
        assert_eq!(
            slabs.iter().map(RankSlab::rows).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        // Contiguous coverage.
        for w in slabs.windows(2) {
            assert_eq!(w[0].row_end, w[1].row_start);
        }
    }

    #[test]
    fn halo_counts() {
        let slabs = decompose_rows(10, 3);
        assert_eq!(slabs[0].halo_rows, 1); // only a northern neighbor
        assert_eq!(slabs[1].halo_rows, 2);
        assert_eq!(slabs[2].halo_rows, 1);
        let single = decompose_rows(10, 1);
        assert_eq!(single[0].halo_rows, 0);
    }

    #[test]
    fn byte_accounting() {
        let slabs = decompose_rows(8, 2);
        let s = &slabs[0];
        assert_eq!(rank_bytes(s, 16, 3), (4 * 16 * 3 * 8) as u64);
        assert_eq!(halo_bytes(s, 16, 3), (16 * 3 * 8) as u64);
    }

    #[test]
    fn total_bytes_partition_domain() {
        let ny = 128;
        let nx = 256;
        let slabs = decompose_rows(ny, 7);
        let total: u64 = slabs.iter().map(|s| rank_bytes(s, nx, 2)).sum();
        assert_eq!(total, (nx * ny * 2 * 8) as u64);
    }

    #[test]
    #[should_panic(expected = "more ranks")]
    fn too_many_ranks_rejected() {
        let _ = decompose_rows(4, 5);
    }
}
