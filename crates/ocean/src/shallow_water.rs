//! The rotating shallow-water solver.
//!
//! Single-layer shallow water on an Arakawa C grid, integrated with the
//! forward–backward scheme (continuity first with the old velocities, then
//! momentum with the *new* surface elevation):
//!
//! ```text
//! ∂h/∂t = −H (∂u/∂x + ∂v/∂y)
//! ∂u/∂t = +f v̄ − g ∂h/∂x − r u + F_w(y)
//! ∂v/∂t = −f ū − g ∂h/∂y − r v
//! ```
//!
//! Staggering: `h` at cell centers, `u` at west faces (periodic in x), `v`
//! at south faces with `v = 0` on the north/south walls. Mass is conserved
//! to round-off by construction (the divergence telescopes over the periodic
//! x direction and vanishes at the walls).
//!
//! ## Stepping performance
//!
//! [`ShallowWaterModel::step`] performs **zero heap allocations in steady
//! state**: the three prognostic fields ping-pong between the live state
//! and a same-shaped scratch state that is written in place and swapped in,
//! each kernel runs over row slices with an interior fast path (no
//! wraparound modulo, no per-element bounds checks the optimizer can't
//! elide) plus explicit periodic boundary columns, and the per-row Coriolis
//! and wind-forcing terms are hoisted into tables built once at
//! construction. Every cell evaluates *exactly* the float expression of the
//! original allocating implementation — kept verbatim as
//! [`ShallowWaterModel::step_reference`] — in the same order, so the two
//! paths are bit-identical (see the `fast_step_matches_reference_bitwise`
//! test) and all downstream goldens are preserved.
//!
//! The interior row loops additionally run four cells per [`F64x4`] lane
//! step with scalar tails. Lane arithmetic is elementwise and unfused, and
//! each laned loop evaluates the reference's per-cell expression tree with
//! the same parenthesization (loop-invariant factors like `dt·H` are
//! hoisted only where the scalar code already associates them together), so
//! bit-identity is preserved — the determinism rules are spelled out in
//! DESIGN.md §8.

use ivis_lanes::F64x4;
use rayon::prelude::*;

use crate::field::Field2D;
use crate::grid::Grid;

/// Physical and numerical parameters.
#[derive(Debug, Clone)]
pub struct SwParams {
    /// Gravitational acceleration, m/s².
    pub g: f64,
    /// Resting layer depth H, meters.
    pub depth: f64,
    /// Linear bottom drag coefficient r, 1/s.
    pub drag: f64,
    /// Amplitude of the zonal wind-stress acceleration, m/s²
    /// (applied as `F_w(y) = amp · sin(π y / Ly)`; zero disables forcing).
    pub wind_accel: f64,
    /// Timestep, seconds.
    pub dt: f64,
}

impl SwParams {
    /// Defaults for an eddy-resolving channel: full gravity, a 1000 m
    /// equivalent layer, weak drag, no wind, and a timestep safely below
    /// both the gravity-wave CFL limit and the inertial limit `0.05/f0`
    /// (the explicit Coriolis terms need `f·dt ≪ 1`).
    pub fn eddy_channel(grid: &Grid) -> Self {
        let g = 9.81;
        let depth = 1_000.0;
        let dt = grid.max_stable_dt(g, depth).min(0.05 / grid.f0);
        SwParams {
            g,
            depth,
            drag: 1e-7,
            wind_accel: 0.0,
            dt,
        }
    }
}

/// The prognostic fields.
#[derive(Debug, Clone)]
pub struct SwState {
    /// Surface elevation anomaly at cell centers, `(nx, ny)`.
    pub h: Field2D,
    /// Zonal velocity at west faces, `(nx, ny)`.
    pub u: Field2D,
    /// Meridional velocity at south faces, `(nx, ny+1)`; rows 0 and ny are
    /// the solid walls and stay zero.
    pub v: Field2D,
}

impl SwState {
    /// A state of rest.
    pub fn rest(grid: &Grid) -> Self {
        SwState {
            h: Field2D::zeros(grid.nx, grid.ny),
            u: Field2D::zeros(grid.nx, grid.ny),
            v: Field2D::zeros(grid.nx, grid.ny + 1),
        }
    }
}

/// The time-stepping model.
#[derive(Debug, Clone)]
pub struct ShallowWaterModel {
    grid: Grid,
    params: SwParams,
    state: SwState,
    /// Scratch state the kernels write into; swapped with `state` at the
    /// end of each step so stepping never allocates.
    next: SwState,
    /// Hoisted per-row Coriolis at cell centers (`grid.coriolis(j)`).
    f_center: Vec<f64>,
    /// Hoisted per-row Coriolis at v-faces (`grid.coriolis_at_vface(j)`).
    f_vface: Vec<f64>,
    /// Hoisted per-row wind acceleration `F_w(y_j)` (all zeros when
    /// `wind_accel == 0`, matching the reference path's branch exactly).
    wind: Vec<f64>,
    time: f64,
    steps: u64,
}

impl ShallowWaterModel {
    /// Create a model at rest.
    ///
    /// # Panics
    /// Panics if the timestep violates the gravity-wave CFL limit.
    pub fn new(grid: Grid, params: SwParams) -> Self {
        let dt_max = grid.max_stable_dt(params.g, params.depth) * 2.0; // the
                                                                       // helper already applies a 0.5 safety factor; allow up to the hard limit.
        assert!(
            params.dt > 0.0 && params.dt <= dt_max,
            "dt {} exceeds CFL limit {}",
            params.dt,
            dt_max
        );
        let state = SwState::rest(&grid);
        let next = SwState::rest(&grid);
        let f_center = grid.coriolis_center_table();
        let f_vface = grid.coriolis_vface_table();
        let ly = grid.ny as f64 * grid.dy;
        let wind = (0..grid.ny)
            .map(|j| {
                if params.wind_accel != 0.0 {
                    let y = grid.y_center(j);
                    params.wind_accel * (std::f64::consts::PI * y / ly).sin()
                } else {
                    0.0
                }
            })
            .collect();
        ShallowWaterModel {
            grid,
            params,
            state,
            next,
            f_center,
            f_vface,
            wind,
            time: 0.0,
            steps: 0,
        }
    }

    /// The grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The parameters.
    pub fn params(&self) -> &SwParams {
        &self.params
    }

    /// Current state (read-only).
    pub fn state(&self) -> &SwState {
        &self.state
    }

    /// Current state (mutable, for seeding initial conditions).
    pub fn state_mut(&mut self) -> &mut SwState {
        &mut self.state
    }

    /// Model time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Advance one timestep. Allocation-free: writes the ping-pong scratch
    /// state in place and swaps it in. Bit-identical to
    /// [`ShallowWaterModel::step_reference`].
    pub fn step(&mut self) {
        let (nx, ny) = (self.grid.nx, self.grid.ny);
        let (dx, dy, dt) = (self.grid.dx, self.grid.dy, self.params.dt);
        let (g, depth, drag) = (self.params.g, self.params.depth, self.params.drag);

        // --- continuity: h^{n+1} = h^n − dt·H·div(u^n, v^n) ---------------
        {
            let u = self.state.u.data();
            let v = self.state.v.data();
            let h = self.state.h.data();
            let out = self.next.h.data_mut();
            for j in 0..ny {
                let row = j * nx;
                let h_row = &h[row..row + nx];
                let u_row = &u[row..row + nx];
                let v_s = &v[row..row + nx];
                let v_n = &v[row + nx..row + 2 * nx];
                let out_row = &mut out[row..row + nx];
                // Interior: the east u-face of cell i is u[i+1]. Four cells
                // per lane step (`dt * depth * div` left-associates, so the
                // hoisted `dt·depth` splat performs the identical float ops).
                let dxv = F64x4::splat(dx);
                let dyv = F64x4::splat(dy);
                let dtd = F64x4::splat(dt * depth);
                let mut i = 0;
                while i + 5 <= nx {
                    let u0 = F64x4::from_slice(&u_row[i..]);
                    let u1 = F64x4::from_slice(&u_row[i + 1..]);
                    let vs = F64x4::from_slice(&v_s[i..]);
                    let vn = F64x4::from_slice(&v_n[i..]);
                    let h0 = F64x4::from_slice(&h_row[i..]);
                    let div = (u1 - u0) / dxv + (vn - vs) / dyv;
                    (h0 - dtd * div).write_to(&mut out_row[i..]);
                    i += 4;
                }
                while i < nx - 1 {
                    let div = (u_row[i + 1] - u_row[i]) / dx + (v_n[i] - v_s[i]) / dy;
                    out_row[i] = h_row[i] - dt * depth * div;
                    i += 1;
                }
                // Periodic east column: the east face wraps to u[0].
                let i = nx - 1;
                let div = (u_row[0] - u_row[i]) / dx + (v_n[i] - v_s[i]) / dy;
                out_row[i] = h_row[i] - dt * depth * div;
            }
        }

        // --- u momentum with the new h -------------------------------------
        {
            let h = self.next.h.data();
            let u = self.state.u.data();
            let v = self.state.v.data();
            let out = self.next.u.data_mut();
            for j in 0..ny {
                let f = self.f_center[j];
                let wind = self.wind[j];
                let row = j * nx;
                let h_row = &h[row..row + nx];
                let u_row = &u[row..row + nx];
                let v_s = &v[row..row + nx];
                let v_n = &v[row + nx..row + 2 * nx];
                let out_row = &mut out[row..row + nx];
                // Periodic west column: the west neighbor wraps to nx−1.
                {
                    let vbar = 0.25 * (v_s[nx - 1] + v_s[0] + v_n[nx - 1] + v_n[0]);
                    let dhdx = (h_row[0] - h_row[nx - 1]) / dx;
                    let u0 = u_row[0];
                    out_row[0] = u0 + dt * (f * vbar - g * dhdx - drag * u0 + wind);
                }
                // Interior: the west neighbor of face i is i−1. Four faces
                // per lane step; the row-constant splats (f, wind, …) feed
                // the same left-associated expression tree as the scalars.
                let quarter = F64x4::splat(0.25);
                let dxv = F64x4::splat(dx);
                let dtv = F64x4::splat(dt);
                let fv = F64x4::splat(f);
                let gv = F64x4::splat(g);
                let dragv = F64x4::splat(drag);
                let windv = F64x4::splat(wind);
                let mut i = 1;
                while i + 4 <= nx {
                    let vs_w = F64x4::from_slice(&v_s[i - 1..]);
                    let vs_c = F64x4::from_slice(&v_s[i..]);
                    let vn_w = F64x4::from_slice(&v_n[i - 1..]);
                    let vn_c = F64x4::from_slice(&v_n[i..]);
                    let h_w = F64x4::from_slice(&h_row[i - 1..]);
                    let h_c = F64x4::from_slice(&h_row[i..]);
                    let u0 = F64x4::from_slice(&u_row[i..]);
                    let vbar = quarter * (((vs_w + vs_c) + vn_w) + vn_c);
                    let dhdx = (h_c - h_w) / dxv;
                    let accel = ((fv * vbar - gv * dhdx) - dragv * u0) + windv;
                    (u0 + dtv * accel).write_to(&mut out_row[i..]);
                    i += 4;
                }
                while i < nx {
                    let vbar = 0.25 * (v_s[i - 1] + v_s[i] + v_n[i - 1] + v_n[i]);
                    let dhdx = (h_row[i] - h_row[i - 1]) / dx;
                    let u0 = u_row[i];
                    out_row[i] = u0 + dt * (f * vbar - g * dhdx - drag * u0 + wind);
                    i += 1;
                }
            }
        }

        // --- v momentum with the new h and (forward–backward) new u --------
        {
            let h = self.next.h.data();
            let u = self.next.u.data();
            let v = self.state.v.data();
            let out = self.next.v.data_mut();
            // Solid walls: rows 0 and ny stay zero.
            out[..nx].fill(0.0);
            out[ny * nx..(ny + 1) * nx].fill(0.0);
            for j in 1..ny {
                let f = self.f_vface[j];
                let row = j * nx;
                let u_row = &u[row..row + nx];
                let u_south = &u[row - nx..row];
                let h_row = &h[row..row + nx];
                let h_south = &h[row - nx..row];
                let v_row = &v[row..row + nx];
                let out_row = &mut out[row..row + nx];
                // Interior: the east u-face of cell i is u[i+1]. Four faces
                // per lane step; `-f * ubar` is `(−f)·ubar`, so the splat
                // carries the negated Coriolis.
                let quarter = F64x4::splat(0.25);
                let dyv = F64x4::splat(dy);
                let dtv = F64x4::splat(dt);
                let nfv = F64x4::splat(-f);
                let gv = F64x4::splat(g);
                let dragv = F64x4::splat(drag);
                let mut i = 0;
                while i + 5 <= nx {
                    let u_w = F64x4::from_slice(&u_row[i..]);
                    let u_e = F64x4::from_slice(&u_row[i + 1..]);
                    let us_w = F64x4::from_slice(&u_south[i..]);
                    let us_e = F64x4::from_slice(&u_south[i + 1..]);
                    let h_c = F64x4::from_slice(&h_row[i..]);
                    let h_s = F64x4::from_slice(&h_south[i..]);
                    let v0 = F64x4::from_slice(&v_row[i..]);
                    let ubar = quarter * (((u_w + u_e) + us_w) + us_e);
                    let dhdy = (h_c - h_s) / dyv;
                    let accel = (nfv * ubar - gv * dhdy) - dragv * v0;
                    (v0 + dtv * accel).write_to(&mut out_row[i..]);
                    i += 4;
                }
                while i < nx - 1 {
                    let ubar = 0.25 * (u_row[i] + u_row[i + 1] + u_south[i] + u_south[i + 1]);
                    let dhdy = (h_row[i] - h_south[i]) / dy;
                    let v0 = v_row[i];
                    out_row[i] = v0 + dt * (-f * ubar - g * dhdy - drag * v0);
                    i += 1;
                }
                // Periodic east column: the east face wraps to u[0].
                let i = nx - 1;
                let ubar = 0.25 * (u_row[i] + u_row[0] + u_south[i] + u_south[0]);
                let dhdy = (h_row[i] - h_south[i]) / dy;
                let v0 = v_row[i];
                out_row[i] = v0 + dt * (-f * ubar - g * dhdy - drag * v0);
            }
        }

        std::mem::swap(&mut self.state, &mut self.next);
        self.time += dt;
        self.steps += 1;
    }

    /// The seed's original allocating step, kept verbatim as the golden
    /// reference for [`ShallowWaterModel::step`] (the same role
    /// `rasterize_reference` plays for the renderer) and as the baseline
    /// the solver benchmark in `native_bench` measures speedup against.
    /// Three full-field allocations per call; bit-identical results.
    pub fn step_reference(&mut self) {
        let (nx, ny) = (self.grid.nx, self.grid.ny);
        let (dx, dy, dt) = (self.grid.dx, self.grid.dy, self.params.dt);
        let (g, depth, drag) = (self.params.g, self.params.depth, self.params.drag);
        let wind_amp = self.params.wind_accel;
        let ly = ny as f64 * dy;

        // --- continuity: h^{n+1} = h^n − dt·H·div(u^n, v^n) ---------------
        let h_new = {
            let u = &self.state.u;
            let v = &self.state.v;
            let h = &self.state.h;
            Field2D::from_fn(nx, ny, |i, j| {
                let ue = u.get_wrap_x(i as isize + 1, j);
                let uw = u.get(i, j);
                let vn = v.get(i, j + 1);
                let vs = v.get(i, j);
                let div = (ue - uw) / dx + (vn - vs) / dy;
                h.get(i, j) - dt * depth * div
            })
        };

        // --- momentum with the new h ---------------------------------------
        let u_new = {
            let u = &self.state.u;
            let v = &self.state.v;
            let h = &h_new;
            let grid = &self.grid;
            Field2D::from_fn(nx, ny, |i, j| {
                let f = grid.coriolis(j);
                let ii = i as isize;
                // v averaged to the u-point (west face of cell (i,j)).
                let vbar = 0.25
                    * (v.get_wrap_x(ii - 1, j)
                        + v.get(i, j)
                        + v.get_wrap_x(ii - 1, j + 1)
                        + v.get(i, j + 1));
                let dhdx = (h.get(i, j) - h.get_wrap_x(ii - 1, j)) / dx;
                let wind = if wind_amp != 0.0 {
                    let y = grid.y_center(j);
                    wind_amp * (std::f64::consts::PI * y / ly).sin()
                } else {
                    0.0
                };
                let u0 = u.get(i, j);
                u0 + dt * (f * vbar - g * dhdx - drag * u0 + wind)
            })
        };

        // Forward–backward Coriolis: the v update sees the *new* u, which
        // keeps the inertial oscillation neutrally stable for f·dt < 2
        // (a pure forward treatment amplifies by √(1+(f·dt)²) per step).
        let v_new = {
            let u = &u_new;
            let v = &self.state.v;
            let h = &h_new;
            let grid = &self.grid;
            Field2D::from_fn(nx, ny + 1, |i, j| {
                if j == 0 || j == ny {
                    return 0.0; // solid walls
                }
                let f = grid.coriolis_at_vface(j);
                let ii = i as isize;
                // u averaged to the v-point (south face of cell (i,j)).
                let ubar = 0.25
                    * (u.get(i, j)
                        + u.get_wrap_x(ii + 1, j)
                        + u.get(i, j - 1)
                        + u.get_wrap_x(ii + 1, j - 1));
                let dhdy = (h.get(i, j) - h.get(i, j - 1)) / dy;
                let v0 = v.get(i, j);
                v0 + dt * (-f * ubar - g * dhdy - drag * v0)
            })
        };

        self.state.h = h_new;
        self.state.u = u_new;
        self.state.v = v_new;
        self.time += dt;
        self.steps += 1;
    }

    /// Advance `n` timesteps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Total mass anomaly `Σ h · dx·dy` (conserved to round-off).
    pub fn total_mass(&self) -> f64 {
        self.state.h.sum() * self.grid.dx * self.grid.dy
    }

    /// Total energy `Σ ½(g h² + H(u² + v²)) dx dy`.
    pub fn total_energy(&self) -> f64 {
        let pe = 0.5 * self.params.g * self.state.h.data().par_iter().map(|h| h * h).sum::<f64>();
        let ke = 0.5
            * self.params.depth
            * (self.state.u.data().par_iter().map(|u| u * u).sum::<f64>()
                + self.state.v.data().par_iter().map(|v| v * v).sum::<f64>());
        (pe + ke) * self.grid.dx * self.grid.dy
    }

    /// Maximum flow speed (for CFL monitoring).
    pub fn max_speed(&self) -> f64 {
        self.state.u.max_abs().max(self.state.v.max_abs())
    }

    /// Cell-centered velocities `(u_c, v_c)` interpolated from the faces —
    /// the input to the Okubo-Weiss diagnostic.
    pub fn centered_velocities(&self) -> (Field2D, Field2D) {
        let (nx, ny) = (self.grid.nx, self.grid.ny);
        let mut uc = Field2D::zeros(nx, ny);
        let mut vc = Field2D::zeros(nx, ny);
        self.centered_velocities_into(&mut uc, &mut vc);
        (uc, vc)
    }

    /// [`ShallowWaterModel::centered_velocities`] into caller-provided
    /// buffers — allocation-free for pipelines that recycle snapshots.
    /// Identical values: each cell is the same `0.5 · (face + face)`
    /// average the allocating path computes.
    ///
    /// # Panics
    /// Panics if either buffer is not `(nx, ny)`-shaped.
    pub fn centered_velocities_into(&self, uc: &mut Field2D, vc: &mut Field2D) {
        let (nx, ny) = (self.grid.nx, self.grid.ny);
        assert!(
            uc.nx() == nx && uc.ny() == ny && vc.nx() == nx && vc.ny() == ny,
            "centered_velocities_into requires (nx, ny)-shaped buffers"
        );
        let u = self.state.u.data();
        let v = self.state.v.data();
        let ucd = uc.data_mut();
        let vcd = vc.data_mut();
        for j in 0..ny {
            let row = j * nx;
            let u_row = &u[row..row + nx];
            let v_s = &v[row..row + nx];
            let v_n = &v[row + nx..row + 2 * nx];
            for i in 0..nx - 1 {
                ucd[row + i] = 0.5 * (u_row[i] + u_row[i + 1]);
            }
            // Periodic east column: the east face wraps to u[0].
            ucd[row + nx - 1] = 0.5 * (u_row[nx - 1] + u_row[0]);
            for i in 0..nx {
                vcd[row + i] = 0.5 * (v_s[i] + v_n[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vortex::{seed_vortex, Vortex};

    fn eddy_model() -> ShallowWaterModel {
        let grid = Grid::channel(32, 24, 60_000.0);
        let params = SwParams::eddy_channel(&grid);
        let mut m = ShallowWaterModel::new(grid, params);
        let (lx, ly) = m.grid().extent();
        seed_vortex(
            &mut m,
            &Vortex {
                x: lx * 0.5,
                y: ly * 0.5,
                radius: 150_000.0,
                amplitude: 1.0,
            },
        );
        m
    }

    #[test]
    fn rest_state_stays_at_rest() {
        let grid = Grid::tiny();
        let params = SwParams::eddy_channel(&grid);
        let mut m = ShallowWaterModel::new(grid, params);
        m.run(10);
        assert_eq!(m.max_speed(), 0.0);
        assert_eq!(m.total_mass(), 0.0);
        assert_eq!(m.steps(), 10);
    }

    #[test]
    fn mass_is_conserved() {
        let mut m = eddy_model();
        let m0 = m.total_mass();
        m.run(200);
        let m1 = m.total_mass();
        let scale = m.state().h.max_abs() * m.grid().dx * m.grid().dy * m.grid().num_cells() as f64;
        assert!(
            (m1 - m0).abs() <= 1e-10 * scale.max(1.0),
            "mass drifted: {m0} -> {m1}"
        );
    }

    #[test]
    fn geostrophic_vortex_is_quasi_steady() {
        // A balanced vortex should evolve slowly: after 50 steps the peak
        // elevation should remain within ~10% of the initial (the discrete
        // geostrophic balance sheds a little energy as gravity waves while
        // it adjusts, especially for a vortex only ~2.5 cells wide).
        let mut m = eddy_model();
        let h0 = m.state().h.max();
        m.run(50);
        let h1 = m.state().h.max();
        assert!(
            (h1 - h0).abs() / h0 < 0.12,
            "balanced vortex decayed too fast: {h0} -> {h1}"
        );
    }

    #[test]
    fn unbalanced_bump_radiates_but_stays_stable() {
        let grid = Grid::channel(32, 24, 60_000.0);
        let params = SwParams::eddy_channel(&grid);
        let mut m = ShallowWaterModel::new(grid, params);
        // Raise h without any balancing flow: gravity waves radiate.
        let (lx, ly) = m.grid().extent();
        let (cx, cy) = (lx * 0.5, ly * 0.5);
        let grid2 = m.grid().clone();
        let h = &mut m.state_mut().h;
        for j in 0..grid2.ny {
            for i in 0..grid2.nx {
                let dx = grid2.x_center(i) - cx;
                let dy = grid2.y_center(j) - cy;
                let r2 = dx * dx + dy * dy;
                h.set(i, j, 0.5 * (-r2 / (2.0 * 120_000.0f64.powi(2))).exp());
            }
        }
        m.run(300);
        assert!(m.max_speed().is_finite());
        assert!(m.state().h.max_abs() < 10.0, "solution blew up");
    }

    #[test]
    fn energy_decays_under_drag() {
        let grid = Grid::channel(32, 24, 60_000.0);
        let mut params = SwParams::eddy_channel(&grid);
        params.drag = 1e-5; // strong drag
        let mut m = ShallowWaterModel::new(grid, params);
        let (lx, ly) = m.grid().extent();
        seed_vortex(
            &mut m,
            &Vortex {
                x: lx * 0.5,
                y: ly * 0.5,
                radius: 150_000.0,
                amplitude: 1.0,
            },
        );
        let e0 = m.total_energy();
        m.run(400);
        let e1 = m.total_energy();
        assert!(e1 < e0, "drag must dissipate energy: {e0} -> {e1}");
    }

    #[test]
    fn wind_forcing_injects_momentum() {
        let grid = Grid::channel(32, 24, 60_000.0);
        let mut params = SwParams::eddy_channel(&grid);
        params.wind_accel = 1e-6;
        let mut m = ShallowWaterModel::new(grid, params);
        m.run(50);
        assert!(m.max_speed() > 0.0, "wind should spin up a current");
    }

    #[test]
    fn walls_keep_v_zero() {
        let mut m = eddy_model();
        m.run(100);
        let v = &m.state().v;
        let ny = m.grid().ny;
        for i in 0..m.grid().nx {
            assert_eq!(v.get(i, 0), 0.0);
            assert_eq!(v.get(i, ny), 0.0);
        }
    }

    #[test]
    fn centered_velocities_average_faces() {
        let grid = Grid::tiny();
        let params = SwParams::eddy_channel(&grid);
        let mut m = ShallowWaterModel::new(grid, params);
        let nx = m.grid().nx;
        // u = column index at each west face; centered = avg of i, i+1 faces.
        for j in 0..m.grid().ny {
            for i in 0..nx {
                m.state_mut().u.set(i, j, i as f64);
            }
        }
        let (uc, _) = m.centered_velocities();
        assert_eq!(uc.get(0, 0), 0.5);
        // Last column wraps: (u[nx-1] + u[0]) / 2.
        assert_eq!(uc.get(nx - 1, 0), (nx - 1) as f64 / 2.0);
    }

    #[test]
    #[should_panic(expected = "CFL")]
    fn unstable_dt_rejected() {
        let grid = Grid::tiny();
        let mut params = SwParams::eddy_channel(&grid);
        params.dt = 1e6;
        let _ = ShallowWaterModel::new(grid, params);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut m = eddy_model();
            m.run(20);
            m.state().h.data().to_vec()
        };
        assert_eq!(run(), run());
    }

    fn state_bits(m: &ShallowWaterModel) -> Vec<u64> {
        m.state()
            .h
            .data()
            .iter()
            .chain(m.state().u.data())
            .chain(m.state().v.data())
            .map(|x| x.to_bits())
            .collect()
    }

    #[test]
    fn fast_step_matches_reference_bitwise() {
        // The allocation-free ping-pong kernels must reproduce the seed's
        // from_fn implementation bit for bit, step after step — including
        // with wind forcing and strong drag switched on so every term in
        // the momentum equations is exercised.
        for wind in [0.0, 1e-6] {
            let make = |wind: f64| {
                let grid = Grid::channel(32, 24, 60_000.0);
                let mut params = SwParams::eddy_channel(&grid);
                params.wind_accel = wind;
                params.drag = 1e-6;
                let mut m = ShallowWaterModel::new(grid, params);
                let (lx, ly) = m.grid().extent();
                seed_vortex(
                    &mut m,
                    &Vortex {
                        x: lx * 0.4,
                        y: ly * 0.6,
                        radius: 150_000.0,
                        amplitude: 0.8,
                    },
                );
                m
            };
            let mut fast = make(wind);
            let mut reference = make(wind);
            for step in 0..60 {
                fast.step();
                reference.step_reference();
                assert_eq!(
                    state_bits(&fast),
                    state_bits(&reference),
                    "diverged at step {step} (wind={wind})"
                );
            }
            assert_eq!(fast.time(), reference.time());
            assert_eq!(fast.steps(), reference.steps());
        }
    }
}
