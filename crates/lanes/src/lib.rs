//! Fixed-width SIMD-style lane types over plain arrays.
//!
//! The frame-chain kernels (shallow-water stencils, raster blending, PNG
//! checksums) want the machine's native vector width without giving up two
//! things: **stable Rust** (no nightly `std::simd`) and the workspace-wide
//! **bit-identity contract** (every optimized kernel must reproduce its
//! retained scalar reference exactly). This crate threads that needle with
//! the classic trick real codecs and BLAS kernels use: small `#[repr]`-plain
//! structs over `[T; LANES]` whose operators are written as straight-line
//! per-lane loops. LLVM reliably autovectorizes these into `movupd`/`vaddpd`
//! (or NEON equivalents) because the lane count is a compile-time constant
//! and the loops have no carried dependencies.
//!
//! ## Why this preserves bit-identity
//!
//! Every operator below is **elementwise**: lane `l` of `a + b` is exactly
//! `a.0[l] + b.0[l]`, one IEEE-754 operation, no reassociation, no fused
//! multiply-add. A kernel that evaluates the *same expression tree* per
//! element as its scalar reference therefore produces bit-identical f64
//! results — vectorization changes *which elements share an instruction*,
//! never *what arithmetic an element sees*. The rules that keep this true
//! (fixed lane width, per-element expression parity, scalar tails for
//! remainders, fixed reduction order) are documented in the workspace
//! `DESIGN.md` §8; the proptest suite `tests/simd_kernel_identity.rs` holds
//! every consumer to them over arbitrary lengths, including tails of
//! `1..LANES`.
//!
//! Integer lanes ([`U32x8`]) are exact by definition; they exist so striped
//! checksum kernels (Adler-32) can carry eight independent accumulators the
//! optimizer can keep in one vector register.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// Lane width of [`F64x4`].
pub const F64_LANES: usize = 4;

/// Lane width of [`U32x8`].
pub const U32_LANES: usize = 8;

/// Four `f64` lanes. All arithmetic is elementwise and unfused — lane `l`
/// of any operator result is the same single IEEE-754 operation the scalar
/// expression would perform, so laned kernels stay bit-identical to their
/// scalar references.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All four lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        F64x4([v; 4])
    }

    /// Load the first four elements of `s`.
    ///
    /// # Panics
    /// Panics if `s` has fewer than four elements.
    #[inline(always)]
    pub fn from_slice(s: &[f64]) -> Self {
        F64x4([s[0], s[1], s[2], s[3]])
    }

    /// Gather four elements of `s` at the given indices.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    #[inline(always)]
    pub fn gather(s: &[f64], idx: [usize; 4]) -> Self {
        F64x4([s[idx[0]], s[idx[1]], s[idx[2]], s[idx[3]]])
    }

    /// Store the four lanes into the first four elements of `out`.
    ///
    /// # Panics
    /// Panics if `out` has fewer than four elements.
    #[inline(always)]
    pub fn write_to(self, out: &mut [f64]) {
        out[0] = self.0[0];
        out[1] = self.0[1];
        out[2] = self.0[2];
        out[3] = self.0[3];
    }

    /// The lanes as a plain array.
    #[inline(always)]
    pub fn to_array(self) -> [f64; 4] {
        self.0
    }
}

macro_rules! f64x4_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F64x4 {
            type Output = F64x4;
            #[inline(always)]
            fn $method(self, rhs: F64x4) -> F64x4 {
                F64x4([
                    self.0[0] $op rhs.0[0],
                    self.0[1] $op rhs.0[1],
                    self.0[2] $op rhs.0[2],
                    self.0[3] $op rhs.0[3],
                ])
            }
        }
    };
}

f64x4_binop!(Add, add, +);
f64x4_binop!(Sub, sub, -);
f64x4_binop!(Mul, mul, *);
f64x4_binop!(Div, div, /);

impl Neg for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn neg(self) -> F64x4 {
        F64x4([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

/// Eight `u32` lanes with wrapping elementwise arithmetic — the accumulator
/// shape for striped checksum kernels (eight independent Adler-32 partial
/// sums that the optimizer can keep in one 256-bit register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct U32x8(pub [u32; 8]);

impl U32x8 {
    /// All eight lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: u32) -> Self {
        U32x8([v; 8])
    }

    /// Widen the first eight bytes of `s` into lanes.
    ///
    /// # Panics
    /// Panics if `s` has fewer than eight bytes.
    #[inline(always)]
    pub fn from_bytes(s: &[u8]) -> Self {
        U32x8([
            s[0] as u32,
            s[1] as u32,
            s[2] as u32,
            s[3] as u32,
            s[4] as u32,
            s[5] as u32,
            s[6] as u32,
            s[7] as u32,
        ])
    }

    /// Sum of all lanes, widened to `u64` so it cannot overflow.
    #[inline(always)]
    pub fn horizontal_sum(self) -> u64 {
        let mut total = 0u64;
        let mut l = 0;
        while l < 8 {
            total += self.0[l] as u64;
            l += 1;
        }
        total
    }

    /// The lanes as a plain array.
    #[inline(always)]
    pub fn to_array(self) -> [u32; 8] {
        self.0
    }
}

macro_rules! u32x8_binop {
    ($trait:ident, $method:ident, $wrap:ident) => {
        impl $trait for U32x8 {
            type Output = U32x8;
            #[inline(always)]
            fn $method(self, rhs: U32x8) -> U32x8 {
                U32x8([
                    self.0[0].$wrap(rhs.0[0]),
                    self.0[1].$wrap(rhs.0[1]),
                    self.0[2].$wrap(rhs.0[2]),
                    self.0[3].$wrap(rhs.0[3]),
                    self.0[4].$wrap(rhs.0[4]),
                    self.0[5].$wrap(rhs.0[5]),
                    self.0[6].$wrap(rhs.0[6]),
                    self.0[7].$wrap(rhs.0[7]),
                ])
            }
        }
    };
}

u32x8_binop!(Add, add, wrapping_add);
u32x8_binop!(Sub, sub, wrapping_sub);
u32x8_binop!(Mul, mul, wrapping_mul);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64x4_ops_are_elementwise_and_bit_exact() {
        let a = F64x4([0.1, -2.5, 1e300, f64::MIN_POSITIVE]);
        let b = F64x4([0.3, 7.25, 1e-300, 3.0]);
        let sum = (a + b).to_array();
        let dif = (a - b).to_array();
        let mul = (a * b).to_array();
        let div = (a / b).to_array();
        let neg = (-a).to_array();
        for l in 0..4 {
            assert_eq!(sum[l].to_bits(), (a.0[l] + b.0[l]).to_bits());
            assert_eq!(dif[l].to_bits(), (a.0[l] - b.0[l]).to_bits());
            assert_eq!(mul[l].to_bits(), (a.0[l] * b.0[l]).to_bits());
            assert_eq!(div[l].to_bits(), (a.0[l] / b.0[l]).to_bits());
            assert_eq!(neg[l].to_bits(), (-a.0[l]).to_bits());
        }
    }

    #[test]
    fn f64x4_load_store_roundtrip() {
        let src = [1.5, 2.5, 3.5, 4.5, 9.9];
        let v = F64x4::from_slice(&src);
        assert_eq!(v.to_array(), [1.5, 2.5, 3.5, 4.5]);
        let mut out = [0.0; 6];
        v.write_to(&mut out);
        assert_eq!(out, [1.5, 2.5, 3.5, 4.5, 0.0, 0.0]);
        let g = F64x4::gather(&src, [4, 0, 4, 2]);
        assert_eq!(g.to_array(), [9.9, 1.5, 9.9, 3.5]);
        assert_eq!(F64x4::splat(7.0).to_array(), [7.0; 4]);
    }

    #[test]
    fn u32x8_ops_wrap_like_scalars() {
        let a = U32x8([u32::MAX, 1, 2, 3, 4, 5, 6, 7]);
        let b = U32x8::splat(3);
        assert_eq!((a + b).0[0], u32::MAX.wrapping_add(3));
        assert_eq!((a - b).0[1], 1u32.wrapping_sub(3));
        assert_eq!((a * b).0[7], 21);
        let s = U32x8::splat(u32::MAX).horizontal_sum();
        assert_eq!(s, 8 * u32::MAX as u64);
    }

    #[test]
    fn u32x8_from_bytes_widens() {
        let v = U32x8::from_bytes(&[255, 0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(v.to_array(), [255, 0, 1, 2, 3, 4, 5, 6]);
    }
}
