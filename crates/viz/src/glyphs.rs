//! Vector glyphs: line drawing and velocity arrows.
//!
//! Ocean visualizations commonly overlay velocity arrows on the scalar
//! field; ParaView's glyph filter is the reference. This module provides a
//! dependency-free Bresenham line rasterizer and an arrow-field overlay that
//! subsamples the velocity field onto a regular glyph grid.

use ivis_ocean::Field2D;

use crate::color::Rgb;
use crate::raster::{sample_bilinear, ImageBuffer};

/// Draw a line from `(x0, y0)` to `(x1, y1)` (pixel coordinates, clipped to
/// the image) using Bresenham's algorithm.
pub fn draw_line(img: &mut ImageBuffer, x0: i64, y0: i64, x1: i64, y1: i64, color: Rgb) {
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (x0, y0);
    loop {
        if x >= 0 && y >= 0 && (x as usize) < img.width() && (y as usize) < img.height() {
            img.set(x as usize, y as usize, color);
        }
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Draw an arrow from `(x0, y0)` toward `(x1, y1)` with a two-stroke head.
pub fn draw_arrow(img: &mut ImageBuffer, x0: i64, y0: i64, x1: i64, y1: i64, color: Rgb) {
    draw_line(img, x0, y0, x1, y1, color);
    let dx = (x1 - x0) as f64;
    let dy = (y1 - y0) as f64;
    let len = (dx * dx + dy * dy).sqrt();
    if len < 2.0 {
        return;
    }
    let (ux, uy) = (dx / len, dy / len);
    let head = (len * 0.35).clamp(2.0, 6.0);
    // Two barbs at ±150° from the shaft direction.
    for sign in [1.0f64, -1.0] {
        let angle: f64 = sign * 2.6; // ≈150°
        let bx = ux * angle.cos() - uy * angle.sin();
        let by = ux * angle.sin() + uy * angle.cos();
        draw_line(
            img,
            x1,
            y1,
            x1 + (bx * head).round() as i64,
            y1 + (by * head).round() as i64,
            color,
        );
    }
}

/// Overlay a velocity arrow field on `img`: one arrow per `spacing × spacing`
/// pixel block, sampled bilinearly from `(u, v)` (cell-centered fields) and
/// scaled so the fastest glyph spans ~`0.9 × spacing` pixels. Arrows follow
/// the field orientation with image y pointing down (the renderer's flip is
/// honored).
pub fn overlay_velocity_arrows(
    img: &mut ImageBuffer,
    u: &Field2D,
    v: &Field2D,
    spacing: usize,
    color: Rgb,
) {
    assert!(spacing >= 4, "glyph spacing too small");
    assert_eq!((u.nx(), u.ny()), (v.nx(), v.ny()), "u/v shape mismatch");
    let (w, h) = (img.width(), img.height());
    let (nx, ny) = (u.nx() as f64, u.ny() as f64);
    let vmax = u.max_abs().max(v.max_abs());
    if vmax == 0.0 {
        return;
    }
    let scale = 0.9 * spacing as f64 / vmax / 2.0;
    let mut y = spacing / 2;
    while y < h {
        let mut x = spacing / 2;
        let fy = (1.0 - (y as f64 + 0.5) / h as f64) * ny - 0.5;
        while x < w {
            let fx = (x as f64 + 0.5) / w as f64 * nx - 0.5;
            let uu = sample_bilinear(u, fx, fy);
            let vv = sample_bilinear(v, fx, fy);
            // Image y grows downward; field v grows northward.
            let px = (uu * scale).round() as i64;
            let py = (-vv * scale).round() as i64;
            draw_arrow(
                img,
                x as i64 - px,
                y as i64 - py,
                x as i64 + px,
                y as i64 + py,
                color,
            );
            x += spacing;
        }
        y += spacing;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_line_sets_expected_pixels() {
        let mut img = ImageBuffer::new(10, 3);
        draw_line(&mut img, 1, 1, 8, 1, Rgb::WHITE);
        for x in 1..=8 {
            assert_eq!(img.get(x, 1), Rgb::WHITE);
        }
        assert_eq!(img.get(0, 1), Rgb::BLACK);
        assert_eq!(img.get(9, 1), Rgb::BLACK);
    }

    #[test]
    fn diagonal_line_is_connected() {
        let mut img = ImageBuffer::new(16, 16);
        draw_line(&mut img, 0, 0, 15, 15, Rgb::WHITE);
        // Every step along the diagonal must be lit.
        for i in 0..16 {
            assert_eq!(img.get(i, i), Rgb::WHITE, "missing at {i}");
        }
    }

    #[test]
    fn steep_line_terminates_and_is_connected() {
        // Regression: a slope-steeper-than-one line must terminate (a
        // Bresenham error-update typo once made y run away forever) and
        // touch every row between its endpoints.
        let mut img = ImageBuffer::new(8, 16);
        draw_line(&mut img, 1, 1, 4, 13, Rgb::WHITE);
        for y in 1..=13 {
            let row_lit = (0..8).any(|x| img.get(x, y) == Rgb::WHITE);
            assert!(row_lit, "row {y} untouched");
        }
        assert_eq!(img.get(1, 1), Rgb::WHITE);
        assert_eq!(img.get(4, 13), Rgb::WHITE);
    }

    #[test]
    fn clipping_out_of_bounds_is_safe() {
        let mut img = ImageBuffer::new(8, 8);
        draw_line(&mut img, -5, -5, 20, 3, Rgb::WHITE);
        draw_arrow(&mut img, -3, 4, 30, 4, Rgb::WHITE);
        // Must not panic; some in-bounds pixels are set.
        assert!(img.fraction_where(|p| p == Rgb::WHITE) > 0.0);
    }

    #[test]
    fn arrow_has_a_head() {
        let mut img = ImageBuffer::new(32, 32);
        draw_arrow(&mut img, 4, 16, 28, 16, Rgb::WHITE);
        // Barbs extend off the shaft row near the tip.
        let off_axis = (0..32)
            .flat_map(|x| [(x, 14usize), (x, 18usize)])
            .filter(|&(x, y)| img.get(x, y) == Rgb::WHITE)
            .count();
        assert!(off_axis > 0, "arrowhead barbs expected off the shaft");
    }

    #[test]
    fn uniform_flow_draws_uniform_arrows() {
        let u = Field2D::filled(8, 8, 1.0);
        let v = Field2D::zeros(8, 8);
        let mut img = ImageBuffer::new(64, 64);
        overlay_velocity_arrows(&mut img, &u, &v, 16, Rgb::WHITE);
        let lit = img.fraction_where(|p| p == Rgb::WHITE);
        assert!(lit > 0.005 && lit < 0.3, "lit fraction {lit}");
    }

    #[test]
    fn still_water_draws_nothing() {
        let u = Field2D::zeros(8, 8);
        let v = Field2D::zeros(8, 8);
        let mut img = ImageBuffer::new(32, 32);
        overlay_velocity_arrows(&mut img, &u, &v, 8, Rgb::WHITE);
        assert_eq!(img.fraction_where(|p| p == Rgb::WHITE), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_fields_rejected() {
        let u = Field2D::zeros(8, 8);
        let v = Field2D::zeros(8, 9);
        let mut img = ImageBuffer::new(16, 16);
        overlay_velocity_arrows(&mut img, &u, &v, 8, Rgb::WHITE);
    }
}
