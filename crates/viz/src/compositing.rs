//! Rank-parallel rendering and image compositing.
//!
//! In the real in-situ pipeline every MPI rank renders the part of the image
//! covered by its domain slab and the slabs are composited into the final
//! frame. We reproduce that structure with rayon: the image rows are
//! partitioned into `nranks` bands, rendered independently, and stitched —
//! bit-identical to a serial render, which the tests assert.

use ivis_ocean::decomposition::decompose_rows;
use ivis_ocean::Field2D;
use rayon::prelude::*;

use crate::color::{Colormap, Rgb};
use crate::raster::{ImageBuffer, SampleTables};

/// One rank's rendered band.
#[derive(Debug, Clone)]
pub struct RenderedBand {
    /// First image row of the band.
    pub row_start: usize,
    /// Pixels, row-major, `width × rows`.
    pub pixels: Vec<Rgb>,
}

/// Render `field` into a `width × height` image using `nranks` independent
/// band renderers, then composite. Produces exactly the same pixels as
/// [`crate::raster::rasterize`].
pub fn render_distributed(
    field: &Field2D,
    width: usize,
    height: usize,
    nranks: usize,
    colormap: Colormap,
    lo: f64,
    hi: f64,
) -> ImageBuffer {
    assert!(nranks > 0 && nranks <= height, "invalid rank count");
    let tables = SampleTables::new(field, width, height);
    let bands: Vec<RenderedBand> = decompose_rows(height, nranks)
        .par_iter()
        .map(|slab| {
            let mut pixels = vec![Rgb::BLACK; width * slab.rows()];
            for (r, row) in pixels.chunks_mut(width).enumerate() {
                tables.shade_row(slab.row_start + r, colormap, lo, hi, row);
            }
            RenderedBand {
                row_start: slab.row_start,
                pixels,
            }
        })
        .collect();
    composite_bands(width, height, &bands)
}

/// Stitch non-overlapping bands into one image.
///
/// # Panics
/// Panics if bands do not exactly tile the image.
pub fn composite_bands(width: usize, height: usize, bands: &[RenderedBand]) -> ImageBuffer {
    let mut img = ImageBuffer::new(width, height);
    let mut covered = vec![false; height];
    for band in bands {
        let rows = band.pixels.len() / width;
        assert_eq!(band.pixels.len(), rows * width, "ragged band");
        for r in 0..rows {
            let y = band.row_start + r;
            assert!(y < height, "band exceeds image");
            assert!(!covered[y], "bands overlap at row {y}");
            covered[y] = true;
            for x in 0..width {
                img.set(x, y, band.pixels[r * width + x]);
            }
        }
    }
    assert!(covered.iter().all(|&c| c), "bands do not cover the image");
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::rasterize;

    fn field() -> Field2D {
        Field2D::from_fn(32, 24, |i, j| {
            (i as f64 * 0.3).sin() + (j as f64 * 0.5).cos()
        })
    }

    #[test]
    fn distributed_render_matches_serial() {
        let f = field();
        let serial = rasterize(&f, 64, 48, Colormap::Viridis, -2.0, 2.0);
        for nranks in [1, 2, 3, 7, 48] {
            let dist = render_distributed(&f, 64, 48, nranks, Colormap::Viridis, -2.0, 2.0);
            assert_eq!(dist, serial, "mismatch at nranks={nranks}");
        }
    }

    #[test]
    fn composite_rejects_overlap() {
        let band = RenderedBand {
            row_start: 0,
            pixels: vec![Rgb::BLACK; 4 * 2],
        };
        let overlapping = RenderedBand {
            row_start: 1,
            pixels: vec![Rgb::BLACK; 4 * 2],
        };
        let r = std::panic::catch_unwind(|| composite_bands(4, 3, &[band, overlapping]));
        assert!(r.is_err());
    }

    #[test]
    fn composite_rejects_gaps() {
        let band = RenderedBand {
            row_start: 0,
            pixels: vec![Rgb::BLACK; 4 * 2],
        };
        let r = std::panic::catch_unwind(|| composite_bands(4, 4, &[band]));
        assert!(r.is_err());
    }

    #[test]
    fn bands_tile_exactly() {
        let bands = vec![
            RenderedBand {
                row_start: 0,
                pixels: vec![Rgb::new(1, 0, 0); 2 * 2],
            },
            RenderedBand {
                row_start: 2,
                pixels: vec![Rgb::new(2, 0, 0); 2],
            },
        ];
        let img = composite_bands(2, 3, &bands);
        assert_eq!(img.get(0, 0).r, 1);
        assert_eq!(img.get(1, 2).r, 2);
    }

    #[test]
    #[should_panic(expected = "invalid rank count")]
    fn too_many_ranks_rejected() {
        let f = field();
        let _ = render_distributed(&f, 8, 4, 5, Colormap::Gray, 0.0, 1.0);
    }
}
