//! A Cinema-style image database.
//!
//! ParaView Cinema writes an *image database*: a deterministic directory of
//! images indexed by simulation parameters (here: timestep / simulated
//! hours), plus a JSON index. The in-situ pipeline's entire output is one of
//! these — its total byte count is what makes the paper's Fig. 7 bars
//! microscopic.

use std::fs;
use std::io;
use std::path::Path;

use crate::png::{encoded_png_size, PngEncoder};
use crate::raster::ImageBuffer;

/// One image entry.
#[derive(Debug, Clone)]
pub struct CinemaEntry {
    /// Timestep index of the simulation.
    pub timestep: u64,
    /// Simulated hours at capture.
    pub sim_hours: f64,
    /// File name inside the database directory.
    pub filename: String,
    /// Encoded PNG bytes.
    pub data: Vec<u8>,
}

/// An in-memory Cinema database, exportable to disk.
#[derive(Debug, Clone)]
pub struct CinemaDatabase {
    name: String,
    entries: Vec<CinemaEntry>,
    /// Reusable streaming encoder: its scanline scratch persists across
    /// frames, so per-frame encoding allocates only the entry's own PNG
    /// buffer (sized exactly via [`encoded_png_size`]).
    encoder: PngEncoder,
}

impl CinemaDatabase {
    /// Create an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        CinemaDatabase {
            name: name.into(),
            entries: Vec::new(),
            encoder: PngEncoder::new(),
        }
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add an image captured at `timestep` / `sim_hours`.
    pub fn add_image(&mut self, timestep: u64, sim_hours: f64, img: &ImageBuffer) {
        let mut data = Vec::with_capacity(encoded_png_size(img.width(), img.height()) as usize);
        self.encoder.encode_into(img, &mut data);
        self.add_encoded(timestep, sim_hours, data);
    }

    /// Add an already-encoded PNG captured at `timestep` / `sim_hours` —
    /// the commit half of pipelines that encode frames on worker threads
    /// and append them to the index strictly in frame order. Produces the
    /// same entry (filename, bytes, index line) as [`CinemaDatabase::
    /// add_image`] given the same image.
    pub fn add_encoded(&mut self, timestep: u64, sim_hours: f64, data: Vec<u8>) {
        let filename = format!("ts_{timestep:08}.png");
        self.entries.push(CinemaEntry {
            timestep,
            sim_hours,
            filename,
            data,
        });
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The entry captured at exactly `timestep`, if any.
    ///
    /// Every executor appends frames in strictly increasing timestep
    /// order, so this is a binary search — the accessor sharded image
    /// indexes build on without re-sorting the database.
    pub fn entry_by_timestep(&self, timestep: u64) -> Option<&CinemaEntry> {
        self.entries
            .binary_search_by_key(&timestep, |e| e.timestep)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// The `(first, last)` timesteps stored, or `None` when empty.
    pub fn timestep_range(&self) -> Option<(u64, u64)> {
        match (self.entries.first(), self.entries.last()) {
            (Some(a), Some(b)) => Some((a.timestep, b.timestep)),
            _ => None,
        }
    }

    /// A deterministic synthetic database for serving benchmarks and
    /// tests: `frames` images of `width x height`, one per `steps_per_frame`
    /// timesteps, each with content that varies by frame (a moving
    /// two-band gradient) so entries differ byte-for-byte. Purely a
    /// function of the arguments — same call, same bytes, any host.
    pub fn synthetic(
        name: impl Into<String>,
        frames: u64,
        width: usize,
        height: usize,
        steps_per_frame: u64,
    ) -> Self {
        let mut db = CinemaDatabase::new(name);
        let mut img = ImageBuffer::new(width, height);
        for f in 0..frames {
            for y in 0..height {
                for x in 0..width {
                    let phase = (x as u64 + y as u64 * 3 + f * 7) % 256;
                    img.set(
                        x,
                        y,
                        crate::color::Rgb {
                            r: phase as u8,
                            g: (y * 255 / height.max(1)) as u8,
                            b: (f % 251) as u8,
                        },
                    );
                }
            }
            let ts = f * steps_per_frame;
            db.add_image(ts, ts as f64 * 0.5, &img);
        }
        db
    }

    /// `true` iff no images have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[CinemaEntry] {
        &self.entries
    }

    /// Total bytes of all images plus the index — the database's storage
    /// footprint (the in-situ pipeline's `S_io`).
    pub fn total_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.data.len() as u64)
            .sum::<u64>()
            + self.index_json().len() as u64
    }

    /// The JSON index (hand-rolled; schema mirrors Cinema's `info.json`).
    pub fn index_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.entries.len() * 96);
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", escape_json(&self.name)));
        out.push_str("  \"type\": \"simple\",\n");
        out.push_str("  \"arguments\": [\"timestep\", \"sim_hours\"],\n");
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"timestep\": {}, \"sim_hours\": {:.3}, \"file\": \"{}\", \"bytes\": {}}}{}\n",
                e.timestep,
                e.sim_hours,
                escape_json(&e.filename),
                e.data.len(),
                if i + 1 == self.entries.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the database (images + `info.json`) to `dir`, creating it if
    /// needed.
    pub fn export_to_dir(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        for e in &self.entries {
            fs::write(dir.join(&e.filename), &e.data)?;
        }
        fs::write(dir.join("info.json"), self.index_json())?;
        Ok(())
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::png::encoded_png_size;

    fn img(w: usize, h: usize) -> ImageBuffer {
        ImageBuffer::new(w, h)
    }

    #[test]
    fn entries_accumulate_in_order() {
        let mut db = CinemaDatabase::new("eddies");
        db.add_image(0, 0.0, &img(4, 4));
        db.add_image(16, 8.0, &img(4, 4));
        assert_eq!(db.len(), 2);
        assert_eq!(db.entries()[0].filename, "ts_00000000.png");
        assert_eq!(db.entries()[1].filename, "ts_00000016.png");
        assert_eq!(db.entries()[1].sim_hours, 8.0);
    }

    #[test]
    fn total_bytes_counts_images_and_index() {
        let mut db = CinemaDatabase::new("x");
        db.add_image(0, 0.0, &img(8, 8));
        let image_bytes = encoded_png_size(8, 8);
        assert_eq!(db.total_bytes(), image_bytes + db.index_json().len() as u64);
    }

    #[test]
    fn index_json_is_well_formed() {
        let mut db = CinemaDatabase::new("my \"weird\" name");
        db.add_image(3, 1.5, &img(2, 2));
        let json = db.index_json();
        assert!(json.contains("\\\"weird\\\""));
        assert!(json.contains("\"timestep\": 3"));
        assert!(json.contains("ts_00000003.png"));
        // Crude structural checks: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_database_has_valid_index() {
        let db = CinemaDatabase::new("empty");
        assert!(db.is_empty());
        let json = db.index_json();
        assert!(json.contains("\"entries\": [\n  ]"));
        assert_eq!(db.total_bytes(), json.len() as u64);
    }

    #[test]
    fn export_writes_files() {
        let mut db = CinemaDatabase::new("exported");
        db.add_image(0, 0.0, &img(4, 4));
        db.add_image(1, 0.5, &img(4, 4));
        let dir = std::env::temp_dir().join(format!("ivis_cinema_test_{}", std::process::id()));
        db.export_to_dir(&dir).unwrap();
        assert!(dir.join("info.json").exists());
        assert!(dir.join("ts_00000000.png").exists());
        let on_disk = std::fs::read(dir.join("ts_00000001.png")).unwrap();
        assert_eq!(on_disk, db.entries()[1].data);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn timestep_lookup_finds_only_stored_frames() {
        let mut db = CinemaDatabase::new("lookup");
        for ts in [0u64, 16, 32, 48] {
            db.add_image(ts, ts as f64 / 2.0, &img(2, 2));
        }
        assert_eq!(
            db.entry_by_timestep(32).unwrap().filename,
            "ts_00000032.png"
        );
        assert!(db.entry_by_timestep(33).is_none());
        assert_eq!(db.timestep_range(), Some((0, 48)));
        assert_eq!(CinemaDatabase::new("e").timestep_range(), None);
    }

    #[test]
    fn synthetic_database_is_deterministic_and_distinct() {
        let a = CinemaDatabase::synthetic("s", 8, 6, 4, 16);
        let b = CinemaDatabase::synthetic("s", 8, 6, 4, 16);
        assert_eq!(a.len(), 8);
        for (x, y) in a.entries().iter().zip(b.entries()) {
            assert_eq!(x.data, y.data, "same arguments, same bytes");
        }
        assert_ne!(
            a.entries()[0].data,
            a.entries()[1].data,
            "frames differ in content"
        );
        assert_eq!(a.entries()[3].timestep, 48);
    }

    #[test]
    fn json_escaping_handles_control_chars() {
        assert_eq!(escape_json("a\tb\nc"), "a\\tb\\nc");
        assert_eq!(escape_json("back\\slash"), "back\\\\slash");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
