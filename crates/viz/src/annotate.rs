//! Image annotation: a tiny bitmap font, text labels and colorbar legends.
//!
//! The paper's Fig. 2 carries a colorbar and caption; Cinema databases are
//! meant to be browsed standalone, so frames should be self-describing.
//! This module provides a dependency-free 5×7 bitmap font (digits, upper
//! case, and the punctuation needed for scientific labels) plus a colorbar
//! renderer.

use crate::color::{Colormap, Rgb};
use crate::raster::ImageBuffer;

/// Glyph width in pixels (plus 1 pixel spacing when drawing text).
pub const GLYPH_W: usize = 5;
/// Glyph height in pixels.
pub const GLYPH_H: usize = 7;

/// 5×7 glyph bitmaps, one `u8` row each (low 5 bits used, MSB-left).
fn glyph(c: char) -> [u8; 7] {
    match c.to_ascii_uppercase() {
        '0' => [0x0E, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0E],
        '1' => [0x04, 0x0C, 0x04, 0x04, 0x04, 0x04, 0x0E],
        '2' => [0x0E, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1F],
        '3' => [0x1F, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0E],
        '4' => [0x02, 0x06, 0x0A, 0x12, 0x1F, 0x02, 0x02],
        '5' => [0x1F, 0x10, 0x1E, 0x01, 0x01, 0x11, 0x0E],
        '6' => [0x06, 0x08, 0x10, 0x1E, 0x11, 0x11, 0x0E],
        '7' => [0x1F, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08],
        '8' => [0x0E, 0x11, 0x11, 0x0E, 0x11, 0x11, 0x0E],
        '9' => [0x0E, 0x11, 0x11, 0x0F, 0x01, 0x02, 0x0C],
        'A' => [0x0E, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11],
        'B' => [0x1E, 0x11, 0x11, 0x1E, 0x11, 0x11, 0x1E],
        'C' => [0x0E, 0x11, 0x10, 0x10, 0x10, 0x11, 0x0E],
        'D' => [0x1C, 0x12, 0x11, 0x11, 0x11, 0x12, 0x1C],
        'E' => [0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x1F],
        'F' => [0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x10],
        'G' => [0x0E, 0x11, 0x10, 0x17, 0x11, 0x11, 0x0F],
        'H' => [0x11, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11],
        'I' => [0x0E, 0x04, 0x04, 0x04, 0x04, 0x04, 0x0E],
        'J' => [0x07, 0x02, 0x02, 0x02, 0x02, 0x12, 0x0C],
        'K' => [0x11, 0x12, 0x14, 0x18, 0x14, 0x12, 0x11],
        'L' => [0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x1F],
        'M' => [0x11, 0x1B, 0x15, 0x15, 0x11, 0x11, 0x11],
        'N' => [0x11, 0x19, 0x15, 0x13, 0x11, 0x11, 0x11],
        'O' => [0x0E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E],
        'P' => [0x1E, 0x11, 0x11, 0x1E, 0x10, 0x10, 0x10],
        'Q' => [0x0E, 0x11, 0x11, 0x11, 0x15, 0x12, 0x0D],
        'R' => [0x1E, 0x11, 0x11, 0x1E, 0x14, 0x12, 0x11],
        'S' => [0x0F, 0x10, 0x10, 0x0E, 0x01, 0x01, 0x1E],
        'T' => [0x1F, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04],
        'U' => [0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E],
        'V' => [0x11, 0x11, 0x11, 0x11, 0x11, 0x0A, 0x04],
        'W' => [0x11, 0x11, 0x11, 0x15, 0x15, 0x1B, 0x11],
        'X' => [0x11, 0x11, 0x0A, 0x04, 0x0A, 0x11, 0x11],
        'Y' => [0x11, 0x11, 0x0A, 0x04, 0x04, 0x04, 0x04],
        'Z' => [0x1F, 0x01, 0x02, 0x04, 0x08, 0x10, 0x1F],
        '-' => [0x00, 0x00, 0x00, 0x1F, 0x00, 0x00, 0x00],
        '+' => [0x00, 0x04, 0x04, 0x1F, 0x04, 0x04, 0x00],
        '.' => [0x00, 0x00, 0x00, 0x00, 0x00, 0x0C, 0x0C],
        ',' => [0x00, 0x00, 0x00, 0x00, 0x0C, 0x04, 0x08],
        ':' => [0x00, 0x0C, 0x0C, 0x00, 0x0C, 0x0C, 0x00],
        '=' => [0x00, 0x00, 0x1F, 0x00, 0x1F, 0x00, 0x00],
        '/' => [0x01, 0x01, 0x02, 0x04, 0x08, 0x10, 0x10],
        '%' => [0x19, 0x19, 0x02, 0x04, 0x08, 0x13, 0x13],
        '(' => [0x02, 0x04, 0x08, 0x08, 0x08, 0x04, 0x02],
        ')' => [0x08, 0x04, 0x02, 0x02, 0x02, 0x04, 0x08],
        ' ' => [0; 7],
        _ => [0x1F, 0x11, 0x15, 0x11, 0x15, 0x11, 0x1F], // unknown: boxed
    }
}

/// Draw `text` with its top-left corner at `(x, y)` in `color`.
/// Glyphs that fall outside the image are clipped.
pub fn draw_text(img: &mut ImageBuffer, x: usize, y: usize, text: &str, color: Rgb) {
    let mut cx = x;
    for ch in text.chars() {
        let rows = glyph(ch);
        for (gy, row) in rows.iter().enumerate() {
            for gx in 0..GLYPH_W {
                if row & (1 << (GLYPH_W - 1 - gx)) != 0 {
                    let px = cx + gx;
                    let py = y + gy;
                    if px < img.width() && py < img.height() {
                        img.set(px, py, color);
                    }
                }
            }
        }
        cx += GLYPH_W + 1;
    }
}

/// Pixel width of `text` when drawn with [`draw_text`].
pub fn text_width(text: &str) -> usize {
    let n = text.chars().count();
    if n == 0 {
        0
    } else {
        n * (GLYPH_W + 1) - 1
    }
}

/// Draw a horizontal colorbar spanning `[x, x+w) × [y, y+h)` for `colormap`,
/// with min/max labels underneath (if `h + GLYPH_H + 1` rows fit).
#[allow(clippy::too_many_arguments)] // geometry + range: all genuinely independent
pub fn draw_colorbar(
    img: &mut ImageBuffer,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    colormap: Colormap,
    lo: f64,
    hi: f64,
) {
    assert!(w >= 2 && h >= 1, "colorbar too small");
    for dx in 0..w {
        let t = dx as f64 / (w - 1) as f64;
        let c = colormap.sample(t);
        for dy in 0..h {
            let (px, py) = (x + dx, y + dy);
            if px < img.width() && py < img.height() {
                img.set(px, py, c);
            }
        }
    }
    let label_y = y + h + 1;
    let lo_text = format_sci(lo);
    let hi_text = format_sci(hi);
    draw_text(img, x, label_y, &lo_text, Rgb::BLACK);
    let hx = (x + w).saturating_sub(text_width(&hi_text));
    draw_text(img, hx, label_y, &hi_text, Rgb::BLACK);
}

/// Compact scientific-ish formatting for labels (the font has no lowercase,
/// so exponents use 'E').
pub fn format_sci(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if (0.01..10_000.0).contains(&a) {
        format!("{v:.2}")
    } else {
        format!("{v:.1E}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_renders_some_pixels() {
        let mut img = ImageBuffer::new(64, 16);
        draw_text(&mut img, 1, 1, "W=42", Rgb::WHITE);
        let lit = img.fraction_where(|p| p == Rgb::WHITE);
        assert!(lit > 0.0 && lit < 0.5);
    }

    #[test]
    fn distinct_characters_have_distinct_glyphs() {
        let chars = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ-+.:=/%";
        let mut seen = std::collections::HashSet::new();
        for c in chars.chars() {
            assert!(seen.insert(glyph(c)), "duplicate glyph for {c}");
        }
    }

    #[test]
    fn lowercase_maps_to_uppercase() {
        assert_eq!(glyph('a'), glyph('A'));
        assert_eq!(glyph('z'), glyph('Z'));
    }

    #[test]
    fn clipping_does_not_panic() {
        let mut img = ImageBuffer::new(8, 8);
        draw_text(&mut img, 6, 6, "CLIPPED TEXT", Rgb::WHITE);
    }

    #[test]
    fn text_width_accounts_for_spacing() {
        assert_eq!(text_width(""), 0);
        assert_eq!(text_width("A"), 5);
        assert_eq!(text_width("AB"), 11);
    }

    #[test]
    fn colorbar_spans_palette() {
        let mut img = ImageBuffer::new(120, 24);
        draw_colorbar(&mut img, 4, 2, 100, 8, Colormap::OkuboWeiss, -1.0, 1.0);
        // Left end green-ish, right end blue-ish (the paper's palette).
        let left = img.get(4, 5);
        let right = img.get(103, 5);
        assert!(left.g > left.b, "left end should be green: {left:?}");
        assert!(right.b > right.g, "right end should be blue: {right:?}");
    }

    #[test]
    fn format_sci_modes() {
        assert_eq!(format_sci(0.0), "0");
        assert_eq!(format_sci(1.5), "1.50");
        assert!(format_sci(1.0e-9).contains('E'));
        assert!(format_sci(-3.2e7).contains('E'));
    }

    #[test]
    #[should_panic(expected = "colorbar too small")]
    fn degenerate_colorbar_rejected() {
        let mut img = ImageBuffer::new(10, 10);
        draw_colorbar(&mut img, 0, 0, 1, 1, Colormap::Gray, 0.0, 1.0);
    }
}
