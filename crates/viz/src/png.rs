//! A from-scratch PNG encoder.
//!
//! Produces standard-compliant PNGs: 8-bit RGB, one IDAT chunk containing a
//! zlib stream of **stored** (uncompressed) deflate blocks with a correct
//! Adler-32, and CRC-32 on every chunk. Stored blocks keep the encoder tiny
//! and dependency-free while remaining readable by every PNG decoder; the
//! resulting file size is `~3·w·h + h + 70` bytes.

use crate::raster::ImageBuffer;

/// The 8-byte PNG signature.
pub const PNG_SIGNATURE: [u8; 8] = [0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A];

/// CRC-32 (IEEE 802.3) over `data`, as PNG requires.
pub fn crc32(data: &[u8]) -> u32 {
    // Small table generated on the fly; performance is irrelevant next to
    // the pixel volume.
    let mut table = [0u32; 256];
    for (n, entry) in table.iter_mut().enumerate() {
        let mut c = n as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *entry = c;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Adler-32 checksum, as zlib requires.
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for chunk in data.chunks(5_552) {
        for &x in chunk {
            a += x as u32;
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

fn push_chunk(out: &mut Vec<u8>, kind: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    let start = out.len();
    out.extend_from_slice(kind);
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_be_bytes());
}

/// Wrap raw bytes in a zlib stream of stored deflate blocks.
fn zlib_stored(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + data.len() / 65_535 * 5 + 16);
    out.push(0x78); // CMF: deflate, 32K window
    out.push(0x01); // FLG: no preset dict, fastest (checksum-correct)
    let mut chunks = data.chunks(65_535).peekable();
    if data.is_empty() {
        // One empty final stored block.
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xFF, 0xFF]);
    }
    while let Some(chunk) = chunks.next() {
        let bfinal = if chunks.peek().is_none() { 1 } else { 0 };
        out.push(bfinal);
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Encode an image as a PNG file.
pub fn encode_png(img: &ImageBuffer) -> Vec<u8> {
    let (w, h) = (img.width(), img.height());
    let mut out = Vec::with_capacity(w * h * 3 + h + 128);
    out.extend_from_slice(&PNG_SIGNATURE);

    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&(w as u32).to_be_bytes());
    ihdr.extend_from_slice(&(h as u32).to_be_bytes());
    ihdr.push(8); // bit depth
    ihdr.push(2); // color type: truecolor RGB
    ihdr.push(0); // compression
    ihdr.push(0); // filter method
    ihdr.push(0); // no interlace
    push_chunk(&mut out, b"IHDR", &ihdr);

    // Scanlines: filter byte 0 (None) + RGB triples.
    let rgb = img.to_rgb_bytes();
    let mut raw = Vec::with_capacity(h * (1 + 3 * w));
    for y in 0..h {
        raw.push(0);
        raw.extend_from_slice(&rgb[y * 3 * w..(y + 1) * 3 * w]);
    }
    push_chunk(&mut out, b"IDAT", &zlib_stored(&raw));
    push_chunk(&mut out, b"IEND", &[]);
    out
}

/// Exact size in bytes of the PNG this encoder produces for a `w × h` image,
/// without encoding. Used for byte accounting in the pipelines.
pub fn encoded_png_size(w: usize, h: usize) -> u64 {
    let raw = h * (1 + 3 * w);
    let n_blocks = raw.div_ceil(65_535).max(1);
    let zlib = 2 + raw + 5 * n_blocks + 4;
    // signature + IHDR(12+13) + IDAT(12+zlib) + IEND(12)
    (8 + 25 + 12 + zlib + 12) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb;

    /// Minimal structural PNG parser used only for verification.
    fn parse_chunks(data: &[u8]) -> Vec<(String, Vec<u8>)> {
        assert_eq!(&data[..8], &PNG_SIGNATURE);
        let mut chunks = Vec::new();
        let mut pos = 8;
        while pos < data.len() {
            let len = u32::from_be_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let kind = String::from_utf8(data[pos + 4..pos + 8].to_vec()).unwrap();
            let payload = data[pos + 8..pos + 8 + len].to_vec();
            let stored_crc =
                u32::from_be_bytes(data[pos + 8 + len..pos + 12 + len].try_into().unwrap());
            let computed = crc32(&data[pos + 4..pos + 8 + len]);
            assert_eq!(stored_crc, computed, "bad CRC on {kind}");
            chunks.push((kind, payload));
            pos += 12 + len;
        }
        chunks
    }

    /// Decode a zlib stream of stored blocks (inverse of `zlib_stored`).
    fn unzlib_stored(z: &[u8]) -> Vec<u8> {
        assert_eq!(z[0] & 0x0F, 8, "deflate method");
        let mut out = Vec::new();
        let mut pos = 2;
        loop {
            let bfinal = z[pos] & 1;
            assert_eq!(z[pos] >> 1, 0, "stored block expected");
            let len = u16::from_le_bytes(z[pos + 1..pos + 3].try_into().unwrap()) as usize;
            let nlen = u16::from_le_bytes(z[pos + 3..pos + 5].try_into().unwrap());
            assert_eq!(!(len as u16), nlen, "LEN/NLEN mismatch");
            out.extend_from_slice(&z[pos + 5..pos + 5 + len]);
            pos += 5 + len;
            if bfinal == 1 {
                break;
            }
        }
        let expect = u32::from_be_bytes(z[pos..pos + 4].try_into().unwrap());
        assert_eq!(adler32(&out), expect, "adler mismatch");
        out
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"IEND"), 0xAE42_6082);
    }

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn png_structure_is_valid() {
        let mut img = ImageBuffer::new(5, 3);
        img.set(0, 0, Rgb::new(255, 0, 0));
        let png = encode_png(&img);
        let chunks = parse_chunks(&png);
        assert_eq!(chunks[0].0, "IHDR");
        assert_eq!(chunks[1].0, "IDAT");
        assert_eq!(chunks[2].0, "IEND");
        // IHDR fields
        let ihdr = &chunks[0].1;
        assert_eq!(u32::from_be_bytes(ihdr[0..4].try_into().unwrap()), 5);
        assert_eq!(u32::from_be_bytes(ihdr[4..8].try_into().unwrap()), 3);
        assert_eq!(ihdr[8], 8);
        assert_eq!(ihdr[9], 2);
    }

    #[test]
    fn pixels_roundtrip_through_idat() {
        let mut img = ImageBuffer::new(4, 2);
        for y in 0..2 {
            for x in 0..4 {
                img.set(x, y, Rgb::new(x as u8 * 10, y as u8 * 100, 7));
            }
        }
        let png = encode_png(&img);
        let chunks = parse_chunks(&png);
        let raw = unzlib_stored(&chunks[1].1);
        // Each scanline: filter byte then RGB triples.
        assert_eq!(raw.len(), 2 * (1 + 12));
        assert_eq!(raw[0], 0);
        assert_eq!(&raw[1..4], &[0, 0, 7]); // pixel (0,0)
        assert_eq!(&raw[1 + 9..1 + 12], &[30, 0, 7]); // pixel (3,0)
        assert_eq!(&raw[14..17], &[0, 100, 7]); // pixel (0,1)
    }

    #[test]
    fn size_prediction_is_exact() {
        for (w, h) in [(1, 1), (5, 3), (64, 64), (333, 17)] {
            let img = ImageBuffer::new(w, h);
            assert_eq!(
                encode_png(&img).len() as u64,
                encoded_png_size(w, h),
                "size mismatch for {w}x{h}"
            );
        }
    }

    #[test]
    fn large_image_spans_multiple_deflate_blocks() {
        // > 65535 raw bytes forces multiple stored blocks.
        let img = ImageBuffer::new(256, 100); // raw = 100*(1+768) = 76900
        let png = encode_png(&img);
        let chunks = parse_chunks(&png);
        let raw = unzlib_stored(&chunks[1].1);
        assert_eq!(raw.len(), 100 * 769);
        assert_eq!(png.len() as u64, encoded_png_size(256, 100));
    }

    #[test]
    fn hd_image_size_near_cinema_budget() {
        // The in-situ image budget per timestep in the paper is ≈1.1 MB;
        // one 720×512 stored-PNG frame is in that ballpark.
        let size = encoded_png_size(720, 512);
        assert!(size > 1_000_000 && size < 1_200_000, "size={size}");
    }
}
