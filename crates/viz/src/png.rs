//! A from-scratch PNG encoder.
//!
//! Produces standard-compliant PNGs: 8-bit RGB, one IDAT chunk containing a
//! zlib stream of **stored** (uncompressed) deflate blocks with a correct
//! Adler-32, and CRC-32 on every chunk. Stored blocks keep the encoder tiny
//! and dependency-free while remaining readable by every PNG decoder; the
//! resulting file size is `~3·w·h + h + 70` bytes.
//!
//! ## Single-pass streaming
//!
//! [`PngEncoder`] emits the file in one pass directly into the output
//! `Vec`: scanlines (filter byte + pixels) are framed into stored deflate
//! blocks as they are produced, with the chunk CRC-32 and the zlib
//! Adler-32 updated incrementally on every appended byte. The seed's
//! three-copy chain (`to_rgb_bytes` → scanline `raw` → `zlib_stored` →
//! chunk payload copy) is retained verbatim as [`encode_png_reference`] —
//! the golden both the tests and `native_bench` compare against — but the
//! hot path touches each pixel exactly once and allocates nothing beyond
//! the output buffer and a reusable one-scanline scratch. The stored-block
//! layout (and therefore the exact file size) comes from one shared
//! function, [`png_layout`], so [`encoded_png_size`] is exact *by
//! construction*.
//!
//! ## Width-parallel checksums
//!
//! Stored blocks mean the encoder's arithmetic is *all* checksum work, so
//! the two inner loops get the classic wide treatments (DESIGN.md §8):
//!
//! * **CRC-32, slice-by-8** — eight derived lookup tables (built at compile
//!   time from the same polynomial table) fold 8 input bytes per iteration
//!   instead of 1. CRC over GF(2) is linear, so the split is exact: the
//!   result equals the bytewise [`crc32_reference`] on every input, which
//!   the proptests assert.
//! * **Adler-32, 8-striped with mod-deferral** — within each ≤ 5552-byte
//!   block, eight [`U32x8`] lane accumulators carry
//!   `Σ x[8j+l]` and `Σ j·x[8j+l]`; the closed-form recombination in u64
//!   yields exactly the serial `a += x; b += a` recurrence mod 65521
//!   ([`adler32_reference`] is the retained golden).

use crate::raster::ImageBuffer;
use ivis_lanes::U32x8;

/// The 8-byte PNG signature.
pub const PNG_SIGNATURE: [u8; 8] = [0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A];

/// Largest stored-deflate block payload (LEN is a u16).
const STORED_BLOCK_MAX: usize = 65_535;

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// Slice-by-8 CRC-32 tables. `CRC_TABLES[0]` is the classic bytewise
/// [`CRC_TABLE`]; table `k` advances a byte through `k` additional zero
/// bytes, so one iteration can fold 8 input bytes at once. Built at compile
/// time from the same polynomial.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    tables[0] = CRC_TABLE;
    let mut k = 1;
    while k < 8 {
        let mut n = 0;
        while n < 256 {
            let prev = tables[k - 1][n];
            tables[k][n] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            n += 1;
        }
        k += 1;
    }
    tables
};

/// Fold `data` into a running (pre-inverted) CRC-32 state, bytewise. The
/// retained scalar reference for the slice-by-8 fast path.
#[inline]
fn crc32_update_reference(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// Fold `data` into a running (pre-inverted) CRC-32 state, 8 bytes per
/// iteration (slice-by-8). Bit-identical to [`crc32_update_reference`] —
/// CRC is linear over GF(2), so folding the state through two 4-byte words
/// with precomputed shift tables computes the same remainder.
#[inline]
fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    let mut octets = data.chunks_exact(8);
    for c in octets.by_ref() {
        let lo = u32::from_le_bytes(c[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    crc32_update_reference(crc, octets.remainder())
}

/// CRC-32 (IEEE 802.3) over `data`, as PNG requires.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// CRC-32 via the retained bytewise loop — the golden the slice-by-8 path
/// is proptested against, and the baseline `native_bench` measures the
/// `simd.crc32` speedup from.
pub fn crc32_reference(data: &[u8]) -> u32 {
    crc32_update_reference(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Largest number of bytes that can be folded into an Adler-32 state
/// between modular reductions without overflowing u32 (zlib's NMAX).
const ADLER_NMAX: usize = 5_552;
const ADLER_MOD: u32 = 65_521;

/// Fold `data` into a running Adler-32 state `(a, b)` with the serial
/// `a += x; b += a` recurrence — the retained scalar reference for the
/// striped fast path. Both components are left reduced mod 65521, so
/// updates can be chained on arbitrary slices.
#[inline]
fn adler32_update_reference(a: &mut u32, b: &mut u32, data: &[u8]) {
    for chunk in data.chunks(ADLER_NMAX) {
        for &x in chunk {
            *a += x as u32;
            *b += *a;
        }
        *a %= ADLER_MOD;
        *b %= ADLER_MOD;
    }
}

/// Fold `data` into a running Adler-32 state `(a, b)`, 8 stripes wide with
/// deferred reduction. Identical results to [`adler32_update_reference`]:
/// over one block of `m` bytes, `a' = a + Σ x[i]` and
/// `b' = b + m·a + Σ (m − i)·x[i]`; with `i = 8j + l` the weighted sum
/// splits per lane into `(m − l)·Σ_j x[8j+l] − 8·Σ_j j·x[8j+l]`, which the
/// [`U32x8`] accumulators track without overflow (per-lane byte sums stay
/// below 2²⁵ within an NMAX block) and the u64 recombination reduces mod
/// 65521 once per block.
#[inline]
fn adler32_update(a: &mut u32, b: &mut u32, data: &[u8]) {
    const M64: u64 = ADLER_MOD as u64;
    for chunk in data.chunks(ADLER_NMAX) {
        let m = chunk.len() as u64;
        let main = chunk.len() - chunk.len() % 8;
        let mut sum = U32x8::splat(0);
        let mut jsum = U32x8::splat(0);
        for (j, oct) in chunk[..main].chunks_exact(8).enumerate() {
            let v = U32x8::from_bytes(oct);
            sum = sum + v;
            jsum = jsum + U32x8::splat(j as u32) * v;
        }
        let mut atot = *a as u64;
        let mut btot = *b as u64 + m * (*a as u64);
        if main > 0 {
            // main > 0 implies m ≥ 8 > l, so m − l cannot underflow.
            let sums = sum.to_array();
            let jsums = jsum.to_array();
            for (l, (&s, &js)) in sums.iter().zip(&jsums).enumerate() {
                atot += s as u64;
                // Non-negative: this equals Σ_j (m − 8j − l)·x[8j+l], and
                // every position weight m − i is ≥ 1 inside the block.
                btot += (m - l as u64) * s as u64 - 8 * js as u64;
            }
        }
        for (k, &x) in chunk[main..].iter().enumerate() {
            atot += x as u64;
            btot += (m - (main + k) as u64) * x as u64;
        }
        *a = (atot % M64) as u32;
        *b = (btot % M64) as u32;
    }
}

/// Adler-32 checksum, as zlib requires.
pub fn adler32(data: &[u8]) -> u32 {
    let (mut a, mut b) = (1u32, 0u32);
    adler32_update(&mut a, &mut b, data);
    (b << 16) | a
}

/// Adler-32 via the retained serial recurrence — the golden the striped
/// path is proptested against, and the baseline `native_bench` measures
/// the `simd.adler32` speedup from.
pub fn adler32_reference(data: &[u8]) -> u32 {
    let (mut a, mut b) = (1u32, 0u32);
    adler32_update_reference(&mut a, &mut b, data);
    (b << 16) | a
}

/// The exact stored-deflate layout of the PNG this encoder produces for a
/// `w × h` RGB image. Both [`PngEncoder`] (to frame blocks and reserve the
/// output) and [`encoded_png_size`] (to predict bytes without encoding)
/// derive from this one function, which is what keeps the prediction exact
/// by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PngLayout {
    /// Filtered scanline bytes: `h · (1 + 3·w)`.
    pub raw_len: usize,
    /// Stored deflate blocks needed (≥ 1 even for empty payloads).
    pub n_blocks: usize,
    /// zlib stream length: header + blocks + Adler-32.
    pub zlib_len: usize,
    /// Total file length in bytes.
    pub file_len: u64,
}

/// Compute the [`PngLayout`] for a `w × h` RGB image.
pub fn png_layout(w: usize, h: usize) -> PngLayout {
    let raw_len = h * (1 + 3 * w);
    let n_blocks = raw_len.div_ceil(STORED_BLOCK_MAX).max(1);
    let zlib_len = 2 + raw_len + 5 * n_blocks + 4;
    // signature + IHDR(12+13) + IDAT(12+zlib) + IEND(12)
    let file_len = (8 + 25 + 12 + zlib_len + 12) as u64;
    PngLayout {
        raw_len,
        n_blocks,
        zlib_len,
        file_len,
    }
}

/// Appends one PNG chunk's type + payload bytes while maintaining the
/// chunk's CRC-32 incrementally; `finish` seals the chunk with the CRC.
/// The 4-byte length header is the caller's job (it must be known before
/// the payload is streamed — see [`png_layout`]).
struct ChunkWriter<'a> {
    out: &'a mut Vec<u8>,
    crc: u32,
}

impl<'a> ChunkWriter<'a> {
    fn begin(out: &'a mut Vec<u8>, payload_len: u32, kind: &[u8; 4]) -> Self {
        out.extend_from_slice(&payload_len.to_be_bytes());
        let mut w = ChunkWriter {
            out,
            crc: 0xFFFF_FFFF,
        };
        w.put(kind);
        w
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) {
        self.crc = crc32_update(self.crc, bytes);
        self.out.extend_from_slice(bytes);
    }

    fn finish(self) {
        let crc = self.crc ^ 0xFFFF_FFFF;
        self.out.extend_from_slice(&crc.to_be_bytes());
    }
}

/// Single-pass streaming PNG encoder with a reusable scanline scratch
/// buffer. Create once per run and call [`PngEncoder::encode_into`] per
/// frame; output bytes are identical to [`encode_png_reference`].
#[derive(Debug, Clone, Default)]
pub struct PngEncoder {
    /// One filtered scanline (`1 + 3·w` bytes), reused across rows and
    /// frames.
    row: Vec<u8>,
}

impl PngEncoder {
    /// A fresh encoder (no scratch allocated until first use).
    pub fn new() -> Self {
        PngEncoder::default()
    }

    /// Encode `img` into `out` (cleared first). Appends exactly
    /// [`png_layout`]`(w, h).file_len` bytes.
    pub fn encode_into(&mut self, img: &ImageBuffer, out: &mut Vec<u8>) {
        let (w, h) = (img.width(), img.height());
        let layout = png_layout(w, h);
        out.clear();
        out.reserve(layout.file_len as usize);
        out.extend_from_slice(&PNG_SIGNATURE);

        // IHDR.
        let mut ihdr = ChunkWriter::begin(out, 13, b"IHDR");
        ihdr.put(&(w as u32).to_be_bytes());
        ihdr.put(&(h as u32).to_be_bytes());
        ihdr.put(&[8, 2, 0, 0, 0]); // depth, RGB, compression, filter, interlace
        ihdr.finish();

        // IDAT: zlib header, stored blocks framed on the fly, Adler-32.
        let mut idat = ChunkWriter::begin(out, layout.zlib_len as u32, b"IDAT");
        idat.put(&[0x78, 0x01]); // CMF: deflate, 32K window; FLG: no dict
        let (mut a, mut b) = (1u32, 0u32);
        let mut raw_remaining = layout.raw_len;
        let mut block_remaining = 0usize;
        if raw_remaining == 0 {
            // One empty final stored block (unreachable for ImageBuffers,
            // whose dimensions are positive; kept for layout parity).
            idat.put(&[0x01, 0x00, 0x00, 0xFF, 0xFF]);
        }
        self.row.resize(1 + 3 * w, 0);
        for y in 0..h {
            // Fill the scanline scratch: filter byte 0 (None) + RGB triples.
            self.row[0] = 0;
            for (dst, p) in self.row[1..]
                .chunks_exact_mut(3)
                .zip(&img.pixels()[y * w..(y + 1) * w])
            {
                dst[0] = p.r;
                dst[1] = p.g;
                dst[2] = p.b;
            }
            // Stream it through the stored-block framing.
            let mut src = &self.row[..];
            while !src.is_empty() {
                if block_remaining == 0 {
                    let len = raw_remaining.min(STORED_BLOCK_MAX);
                    let bfinal = if raw_remaining <= STORED_BLOCK_MAX {
                        1
                    } else {
                        0
                    };
                    idat.put(&[bfinal]);
                    idat.put(&(len as u16).to_le_bytes());
                    idat.put(&(!(len as u16)).to_le_bytes());
                    block_remaining = len;
                }
                let take = src.len().min(block_remaining);
                idat.put(&src[..take]);
                adler32_update(&mut a, &mut b, &src[..take]);
                block_remaining -= take;
                raw_remaining -= take;
                src = &src[take..];
            }
        }
        idat.put(&((b << 16) | a).to_be_bytes());
        idat.finish();

        ChunkWriter::begin(out, 0, b"IEND").finish();
        debug_assert_eq!(out.len() as u64, layout.file_len, "layout drifted");
    }
}

/// Encode an image as a PNG file (one-shot convenience over
/// [`PngEncoder`]).
pub fn encode_png(img: &ImageBuffer) -> Vec<u8> {
    let mut out = Vec::new();
    PngEncoder::new().encode_into(img, &mut out);
    out
}

fn push_chunk(out: &mut Vec<u8>, kind: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    let start = out.len();
    out.extend_from_slice(kind);
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_be_bytes());
}

/// Wrap raw bytes in a zlib stream of stored deflate blocks.
fn zlib_stored(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + data.len() / STORED_BLOCK_MAX * 5 + 16);
    out.push(0x78); // CMF: deflate, 32K window
    out.push(0x01); // FLG: no preset dict, fastest (checksum-correct)
    let mut chunks = data.chunks(STORED_BLOCK_MAX).peekable();
    if data.is_empty() {
        // One empty final stored block.
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xFF, 0xFF]);
    }
    while let Some(chunk) = chunks.next() {
        let bfinal = if chunks.peek().is_none() { 1 } else { 0 };
        out.push(bfinal);
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// The seed's original copy-chain encoder (`to_rgb_bytes` → scanline
/// assembly → `zlib_stored` → chunk copy), kept verbatim as the golden
/// reference for [`PngEncoder`] and as the baseline `native_bench`
/// measures encode throughput against.
pub fn encode_png_reference(img: &ImageBuffer) -> Vec<u8> {
    let (w, h) = (img.width(), img.height());
    let mut out = Vec::with_capacity(w * h * 3 + h + 128);
    out.extend_from_slice(&PNG_SIGNATURE);

    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&(w as u32).to_be_bytes());
    ihdr.extend_from_slice(&(h as u32).to_be_bytes());
    ihdr.push(8); // bit depth
    ihdr.push(2); // color type: truecolor RGB
    ihdr.push(0); // compression
    ihdr.push(0); // filter method
    ihdr.push(0); // no interlace
    push_chunk(&mut out, b"IHDR", &ihdr);

    // Scanlines: filter byte 0 (None) + RGB triples.
    let rgb = img.to_rgb_bytes();
    let mut raw = Vec::with_capacity(h * (1 + 3 * w));
    for y in 0..h {
        raw.push(0);
        raw.extend_from_slice(&rgb[y * 3 * w..(y + 1) * 3 * w]);
    }
    push_chunk(&mut out, b"IDAT", &zlib_stored(&raw));
    push_chunk(&mut out, b"IEND", &[]);
    out
}

/// Exact size in bytes of the PNG this encoder produces for a `w × h` image,
/// without encoding. Used for byte accounting in the pipelines. Derived
/// from the same [`png_layout`] the encoder frames blocks with.
pub fn encoded_png_size(w: usize, h: usize) -> u64 {
    png_layout(w, h).file_len
}

/// Minimal structural PNG parser: validates the signature and every
/// chunk's CRC, returning `(type, payload)` pairs. A verification helper
/// for tests (unit, integration and property) — not a general decoder.
///
/// # Panics
/// Panics on any structural violation.
pub fn parse_png_chunks(data: &[u8]) -> Vec<(String, Vec<u8>)> {
    assert_eq!(&data[..8], &PNG_SIGNATURE);
    let mut chunks = Vec::new();
    let mut pos = 8;
    while pos < data.len() {
        let len = u32::from_be_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let kind = String::from_utf8(data[pos + 4..pos + 8].to_vec()).unwrap();
        let payload = data[pos + 8..pos + 8 + len].to_vec();
        let stored_crc =
            u32::from_be_bytes(data[pos + 8 + len..pos + 12 + len].try_into().unwrap());
        let computed = crc32(&data[pos + 4..pos + 8 + len]);
        assert_eq!(stored_crc, computed, "bad CRC on {kind}");
        chunks.push((kind, payload));
        pos += 12 + len;
    }
    chunks
}

/// Decode a zlib stream of stored deflate blocks (the inverse of this
/// encoder's IDAT payload), verifying LEN/NLEN framing and the Adler-32.
/// A verification helper for tests — only stored blocks are understood.
///
/// # Panics
/// Panics on compressed blocks, framing errors, or checksum mismatch.
pub fn unzlib_stored(z: &[u8]) -> Vec<u8> {
    assert_eq!(z[0] & 0x0F, 8, "deflate method");
    let mut out = Vec::new();
    let mut pos = 2;
    loop {
        let bfinal = z[pos] & 1;
        assert_eq!(z[pos] >> 1, 0, "stored block expected");
        let len = u16::from_le_bytes(z[pos + 1..pos + 3].try_into().unwrap()) as usize;
        let nlen = u16::from_le_bytes(z[pos + 3..pos + 5].try_into().unwrap());
        assert_eq!(!(len as u16), nlen, "LEN/NLEN mismatch");
        out.extend_from_slice(&z[pos + 5..pos + 5 + len]);
        pos += 5 + len;
        if bfinal == 1 {
            break;
        }
    }
    let expect = u32::from_be_bytes(z[pos..pos + 4].try_into().unwrap());
    assert_eq!(adler32(&out), expect, "adler mismatch");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb;

    fn parse_chunks(data: &[u8]) -> Vec<(String, Vec<u8>)> {
        parse_png_chunks(data)
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"IEND"), 0xAE42_6082);
    }

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn fast_checksums_match_references_at_all_tail_lengths() {
        // Lengths straddling the 8-byte stride and the NMAX reduction
        // boundary, including every tail length 0..8.
        let data: Vec<u8> = (0..20_000u32).map(|i| (i * 131 % 256) as u8).collect();
        let mut lens: Vec<usize> = (0..=16).collect();
        lens.extend([
            5_551, 5_552, 5_553, 5_559, 5_560, 11_104, 11_105, 19_993, 20_000,
        ]);
        for &len in &lens {
            let d = &data[..len];
            assert_eq!(crc32(d), crc32_reference(d), "crc len {len}");
            assert_eq!(adler32(d), adler32_reference(d), "adler len {len}");
        }
    }

    #[test]
    fn incremental_checksums_match_oneshot_at_any_split() {
        let data: Vec<u8> = (0..40_000u32).map(|i| (i * 31 % 251) as u8).collect();
        for split in [0, 1, 7, 5_551, 5_552, 5_553, 39_999] {
            let (head, tail) = data.split_at(split);
            let crc = crc32_update(crc32_update(0xFFFF_FFFF, head), tail) ^ 0xFFFF_FFFF;
            assert_eq!(crc, crc32(&data), "crc split at {split}");
            let (mut a, mut b) = (1u32, 0u32);
            adler32_update(&mut a, &mut b, head);
            adler32_update(&mut a, &mut b, tail);
            assert_eq!((b << 16) | a, adler32(&data), "adler split at {split}");
        }
    }

    #[test]
    fn png_structure_is_valid() {
        let mut img = ImageBuffer::new(5, 3);
        img.set(0, 0, Rgb::new(255, 0, 0));
        let png = encode_png(&img);
        let chunks = parse_chunks(&png);
        assert_eq!(chunks[0].0, "IHDR");
        assert_eq!(chunks[1].0, "IDAT");
        assert_eq!(chunks[2].0, "IEND");
        // IHDR fields
        let ihdr = &chunks[0].1;
        assert_eq!(u32::from_be_bytes(ihdr[0..4].try_into().unwrap()), 5);
        assert_eq!(u32::from_be_bytes(ihdr[4..8].try_into().unwrap()), 3);
        assert_eq!(ihdr[8], 8);
        assert_eq!(ihdr[9], 2);
    }

    #[test]
    fn pixels_roundtrip_through_idat() {
        let mut img = ImageBuffer::new(4, 2);
        for y in 0..2 {
            for x in 0..4 {
                img.set(x, y, Rgb::new(x as u8 * 10, y as u8 * 100, 7));
            }
        }
        let png = encode_png(&img);
        let chunks = parse_chunks(&png);
        let raw = unzlib_stored(&chunks[1].1);
        // Each scanline: filter byte then RGB triples.
        assert_eq!(raw.len(), 2 * (1 + 12));
        assert_eq!(raw[0], 0);
        assert_eq!(&raw[1..4], &[0, 0, 7]); // pixel (0,0)
        assert_eq!(&raw[1 + 9..1 + 12], &[30, 0, 7]); // pixel (3,0)
        assert_eq!(&raw[14..17], &[0, 100, 7]); // pixel (0,1)
    }

    /// A deterministic non-trivial test image.
    fn patterned(w: usize, h: usize) -> ImageBuffer {
        let mut img = ImageBuffer::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    Rgb::new((x * 7 + y * 13) as u8, (x ^ y) as u8, (x * y % 251) as u8),
                );
            }
        }
        img
    }

    #[test]
    fn streaming_encoder_matches_reference_bytes() {
        // Including widths whose scanlines straddle the 65 535-byte
        // stored-block boundary mid-row and mid-file.
        let mut enc = PngEncoder::new();
        let mut out = Vec::new();
        for (w, h) in [
            (1, 1),
            (5, 3),
            (64, 64),
            (333, 17),
            (256, 100),
            (21_844, 1),
            (21_845, 1),
            (21_846, 2),
            (4_096, 6),
        ] {
            let img = patterned(w, h);
            enc.encode_into(&img, &mut out);
            assert_eq!(
                out,
                encode_png_reference(&img),
                "encoder diverged from reference at {w}x{h}"
            );
        }
    }

    #[test]
    fn size_prediction_is_exact() {
        // The original sizes, plus widths that straddle the 65 535-byte
        // stored-block boundary: raw = h·(1+3w), so w = 21 844 → 65 533
        // raw bytes (one block), w = 21 845 → 65 536 (two blocks, second
        // of length 1), and multi-row shapes whose rows split mid-block.
        for (w, h) in [
            (1, 1),
            (5, 3),
            (64, 64),
            (333, 17),
            (21_844, 1),
            (21_845, 1),
            (21_846, 1),
            (21_844, 2),
            (21_845, 3),
            (10_922, 2),
            (4_096, 6),
        ] {
            let img = ImageBuffer::new(w, h);
            assert_eq!(
                encode_png(&img).len() as u64,
                encoded_png_size(w, h),
                "size mismatch for {w}x{h}"
            );
        }
    }

    #[test]
    fn large_image_spans_multiple_deflate_blocks() {
        // > 65535 raw bytes forces multiple stored blocks.
        let img = ImageBuffer::new(256, 100); // raw = 100*(1+768) = 76900
        let png = encode_png(&img);
        let chunks = parse_chunks(&png);
        let raw = unzlib_stored(&chunks[1].1);
        assert_eq!(raw.len(), 100 * 769);
        assert_eq!(png.len() as u64, encoded_png_size(256, 100));
        assert_eq!(png_layout(256, 100).n_blocks, 2);
    }

    #[test]
    fn hd_image_size_near_cinema_budget() {
        // The in-situ image budget per timestep in the paper is ≈1.1 MB;
        // one 720×512 stored-PNG frame is in that ballpark.
        let size = encoded_png_size(720, 512);
        assert!(size > 1_000_000 && size < 1_200_000, "size={size}");
    }
}
