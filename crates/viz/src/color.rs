//! Colors and colormaps.
//!
//! The paper's Fig. 2 renders the Okubo-Weiss field with green for
//! rotation-dominated regions (`W < 0`, eddy cores) and blue for
//! shear/strain-dominated regions (`W > 0`). [`Colormap::OkuboWeiss`]
//! reproduces that diverging palette; [`Colormap::Viridis`] is a standard
//! perceptually-uniform sequential map for other fields (SSH, speed).

/// An 8-bit RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Construct from channels.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Black.
    pub const BLACK: Rgb = Rgb::new(0, 0, 0);
    /// White.
    pub const WHITE: Rgb = Rgb::new(255, 255, 255);

    /// Linear interpolation between two colors, `t ∈ [0, 1]`.
    pub fn lerp(a: Rgb, b: Rgb, t: f64) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        // The blend stays in [0, 255], where adding 0.5 is exact (0.5 is
        // a multiple of the ulp), so truncation equals `.round()`'s
        // half-away-from-zero for every input — without its libm call,
        // which dominates the per-pixel cost of the render hot path.
        let mix = |x: u8, y: u8| -> u8 { (x as f64 + (y as f64 - x as f64) * t + 0.5) as u8 };
        Rgb::new(mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b))
    }
}

/// A colormap: maps a normalized value in `[0, 1]` to a color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Colormap {
    /// The paper's Okubo-Weiss palette: deep green (0.0, rotation) through
    /// near-white (0.5, neutral) to deep blue (1.0, shear).
    OkuboWeiss,
    /// A viridis-like sequential map (dark purple → teal → yellow).
    Viridis,
    /// Simple grayscale.
    Gray,
}

impl Colormap {
    /// Sample the map at `t ∈ [0, 1]` (clamped; NaN maps to 0).
    pub fn sample(&self, t: f64) -> Rgb {
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        match self {
            Colormap::Gray => {
                let v = (t * 255.0).round() as u8;
                Rgb::new(v, v, v)
            }
            Colormap::OkuboWeiss => piecewise(
                &[
                    (0.0, Rgb::new(0, 97, 52)), // deep green: strong rotation
                    (0.35, Rgb::new(110, 199, 133)),
                    (0.5, Rgb::new(242, 244, 238)), // neutral
                    (0.65, Rgb::new(120, 170, 221)),
                    (1.0, Rgb::new(17, 60, 133)), // deep blue: strong shear
                ],
                t,
            ),
            Colormap::Viridis => piecewise(
                &[
                    (0.0, Rgb::new(68, 1, 84)),
                    (0.25, Rgb::new(59, 82, 139)),
                    (0.5, Rgb::new(33, 145, 140)),
                    (0.75, Rgb::new(94, 201, 98)),
                    (1.0, Rgb::new(253, 231, 37)),
                ],
                t,
            ),
        }
    }

    /// Map a raw value into the palette given a `(lo, hi)` range.
    ///
    /// # Panics
    /// Panics if `hi <= lo`.
    pub fn map(&self, value: f64, lo: f64, hi: f64) -> Rgb {
        assert!(hi > lo, "colormap range must have hi > lo");
        self.sample((value - lo) / (hi - lo))
    }
}

fn piecewise(stops: &[(f64, Rgb)], t: f64) -> Rgb {
    debug_assert!(stops.len() >= 2);
    if t <= stops[0].0 {
        return stops[0].1;
    }
    for w in stops.windows(2) {
        let (t0, c0) = w[0];
        let (t1, c1) = w[1];
        if t <= t1 {
            return Rgb::lerp(c0, c1, (t - t0) / (t1 - t0));
        }
    }
    stops[stops.len() - 1].1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Rgb::new(0, 0, 0);
        let b = Rgb::new(200, 100, 50);
        assert_eq!(Rgb::lerp(a, b, 0.0), a);
        assert_eq!(Rgb::lerp(a, b, 1.0), b);
        assert_eq!(Rgb::lerp(a, b, 0.5), Rgb::new(100, 50, 25));
        // Clamped outside [0,1].
        assert_eq!(Rgb::lerp(a, b, 2.0), b);
    }

    #[test]
    fn okubo_weiss_palette_semantics() {
        // Rotation end (t=0) must be green-dominated; shear end blue-dominated.
        let rot = Colormap::OkuboWeiss.sample(0.0);
        assert!(
            rot.g > rot.r && rot.g > rot.b,
            "rotation end not green: {rot:?}"
        );
        let shear = Colormap::OkuboWeiss.sample(1.0);
        assert!(
            shear.b > shear.r && shear.b > shear.g,
            "shear end not blue: {shear:?}"
        );
        // Neutral middle is light.
        let mid = Colormap::OkuboWeiss.sample(0.5);
        assert!(mid.r > 200 && mid.g > 200 && mid.b > 200);
    }

    #[test]
    fn gray_is_linear() {
        assert_eq!(Colormap::Gray.sample(0.0), Rgb::BLACK);
        assert_eq!(Colormap::Gray.sample(1.0), Rgb::WHITE);
        assert_eq!(Colormap::Gray.sample(0.5), Rgb::new(128, 128, 128));
    }

    #[test]
    fn nan_and_out_of_range_clamped() {
        let cm = Colormap::Viridis;
        assert_eq!(cm.sample(f64::NAN), cm.sample(0.0));
        assert_eq!(cm.sample(-5.0), cm.sample(0.0));
        assert_eq!(cm.sample(5.0), cm.sample(1.0));
    }

    #[test]
    fn map_applies_range() {
        let cm = Colormap::Gray;
        assert_eq!(cm.map(-1.0, -1.0, 1.0), Rgb::BLACK);
        assert_eq!(cm.map(1.0, -1.0, 1.0), Rgb::WHITE);
        assert_eq!(cm.map(0.0, -1.0, 1.0), Rgb::new(128, 128, 128));
    }

    #[test]
    fn viridis_is_monotone_in_luma() {
        // Approximate luma must increase monotonically along viridis.
        let luma = |c: Rgb| 0.2126 * c.r as f64 + 0.7152 * c.g as f64 + 0.0722 * c.b as f64;
        let mut prev = -1.0;
        for i in 0..=20 {
            let l = luma(Colormap::Viridis.sample(i as f64 / 20.0));
            assert!(l >= prev - 1.0, "viridis luma dipped at {i}");
            prev = l;
        }
    }

    #[test]
    #[should_panic(expected = "hi > lo")]
    fn bad_range_rejected() {
        let _ = Colormap::Gray.map(0.0, 1.0, 1.0);
    }
}
