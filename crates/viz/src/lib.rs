//! # ivis-viz — the visualization substrate
//!
//! Stands in for ParaView/Catalyst/Cinema in the paper's pipelines, built
//! from scratch:
//!
//! * [`color`] — RGB colors and colormaps, including the paper's Fig. 2
//!   palette (green = rotation-dominated, blue = shear-dominated
//!   Okubo-Weiss) and a viridis-like sequential map.
//! * [`raster`] — image buffers and field→image resampling (bilinear),
//!   parallelized over rows with rayon.
//! * [`png`] — a from-scratch PNG encoder (stored-deflate zlib stream,
//!   CRC-32, Adler-32) producing valid, loadable files.
//! * [`ppm`] — binary PPM (P6) encode/decode, handy for tests and quick
//!   viewing.
//! * [`render`] — the field renderer: scalar field + colormap + optional
//!   contour overlay → image.
//! * [`cinema`] — a Cinema-style image database: deterministic directory
//!   layout, hand-rolled JSON index, byte accounting (the in-situ
//!   pipeline's `S_io`).
//! * [`compositing`] — rank-parallel rendering: each simulated rank renders
//!   its row slab; slabs are composited into the final image.

pub mod annotate;
pub mod cinema;
pub mod color;
pub mod compositing;
pub mod contour;
pub mod glyphs;
pub mod png;
pub mod ppm;
pub mod raster;
pub mod render;

pub use cinema::CinemaDatabase;
pub use color::{Colormap, Rgb};
pub use raster::ImageBuffer;
pub use render::FieldRenderer;
