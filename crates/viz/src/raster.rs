//! Image buffers and field resampling.

use ivis_ocean::Field2D;
use rayon::prelude::*;

use crate::color::{Colormap, Rgb};

/// A dense RGB image, row-major, row 0 at the top.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageBuffer {
    width: usize,
    height: usize,
    pixels: Vec<Rgb>,
}

impl ImageBuffer {
    /// A black image.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        ImageBuffer {
            width,
            height,
            pixels: vec![Rgb::BLACK; width * height],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Rgb {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x]
    }

    /// Set pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: Rgb) {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x] = c;
    }

    /// Raw pixels, row-major.
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Parallel mutable access to rows: `(y, row)` pairs.
    pub fn par_rows_mut(&mut self) -> impl IndexedParallelIterator<Item = (usize, &mut [Rgb])> {
        self.pixels.par_chunks_mut(self.width).enumerate()
    }

    /// Raw RGB bytes (3 per pixel), for encoders.
    pub fn to_rgb_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pixels.len() * 3);
        for p in &self.pixels {
            out.extend_from_slice(&[p.r, p.g, p.b]);
        }
        out
    }

    /// Fraction of pixels for which `pred` holds — a cheap way to assert
    /// image content in tests.
    pub fn fraction_where(&self, pred: impl Fn(Rgb) -> bool + Sync) -> f64 {
        let n = self.pixels.par_iter().filter(|&&p| pred(p)).count();
        n as f64 / self.pixels.len() as f64
    }
}

/// Bilinearly sample `field` at fractional coordinates `(fx, fy)` given in
/// cell units (0..nx, 0..ny), clamped at the y edges and wrapped in x.
pub fn sample_bilinear(field: &Field2D, fx: f64, fy: f64) -> f64 {
    let ny = field.ny();
    let x0 = fx.floor();
    let y0 = fy.floor();
    let tx = fx - x0;
    let ty = fy - y0;
    let i0 = x0 as isize;
    let i1 = i0 + 1;
    let clamp_y = |j: isize| -> usize { j.clamp(0, ny as isize - 1) as usize };
    let j0 = clamp_y(y0 as isize);
    let j1 = clamp_y(y0 as isize + 1);
    let v00 = field.get_wrap_x(i0, j0);
    let v10 = field.get_wrap_x(i1, j0);
    let v01 = field.get_wrap_x(i0, j1);
    let v11 = field.get_wrap_x(i1, j1);
    let top = v00 * (1.0 - tx) + v10 * tx;
    let bot = v01 * (1.0 - tx) + v11 * tx;
    top * (1.0 - ty) + bot * ty
}

/// Rasterize a scalar field into an image using `colormap` over `(lo, hi)`.
/// Row 0 of the image corresponds to the *top* (largest y / northernmost
/// row) of the field. Parallel over image rows.
pub fn rasterize(
    field: &Field2D,
    width: usize,
    height: usize,
    colormap: Colormap,
    lo: f64,
    hi: f64,
) -> ImageBuffer {
    assert!(hi > lo, "rasterize range must have hi > lo");
    let mut img = ImageBuffer::new(width, height);
    let (nx, ny) = (field.nx() as f64, field.ny() as f64);
    img.par_rows_mut().for_each(|(y, row)| {
        // Flip vertically: image row 0 = field's top row.
        let fy = (1.0 - (y as f64 + 0.5) / height as f64) * ny - 0.5;
        for (x, px) in row.iter_mut().enumerate() {
            let fx = (x as f64 + 0.5) / width as f64 * nx - 0.5;
            let v = sample_bilinear(field, fx, fy);
            *px = colormap.map(v, lo, hi);
        }
    });
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_basics() {
        let mut img = ImageBuffer::new(4, 3);
        assert_eq!((img.width(), img.height()), (4, 3));
        img.set(2, 1, Rgb::new(9, 8, 7));
        assert_eq!(img.get(2, 1), Rgb::new(9, 8, 7));
        assert_eq!(img.pixels().len(), 12);
        assert_eq!(img.to_rgb_bytes().len(), 36);
    }

    #[test]
    fn bilinear_interpolates_exactly_at_centers() {
        let f = Field2D::from_fn(4, 4, |i, j| (i * 10 + j) as f64);
        assert_eq!(sample_bilinear(&f, 1.0, 2.0), 12.0);
        // Halfway between (1,2)=12 and (2,2)=22.
        assert!((sample_bilinear(&f, 1.5, 2.0) - 17.0).abs() < 1e-12);
    }

    #[test]
    fn bilinear_wraps_in_x_and_clamps_in_y() {
        let f = Field2D::from_fn(4, 3, |i, _| i as f64);
        // x = 3.5 sits between column 3 (=3) and wrapped column 0 (=0).
        assert!((sample_bilinear(&f, 3.5, 1.0) - 1.5).abs() < 1e-12);
        // y below 0 clamps to row 0.
        assert_eq!(sample_bilinear(&f, 1.0, -5.0), 1.0);
        assert_eq!(sample_bilinear(&f, 1.0, 99.0), 1.0);
    }

    #[test]
    fn rasterize_constant_field_is_uniform() {
        let f = Field2D::filled(8, 8, 0.5);
        let img = rasterize(&f, 32, 16, Colormap::Gray, 0.0, 1.0);
        let expected = Colormap::Gray.sample(0.5);
        assert!(img.fraction_where(|p| p == expected) > 0.999);
    }

    #[test]
    fn rasterize_flips_vertically() {
        // Field with a bright top row (j = ny-1): must appear at image row 0.
        let f = Field2D::from_fn(8, 8, |_, j| if j == 7 { 1.0 } else { 0.0 });
        let img = rasterize(&f, 8, 8, Colormap::Gray, 0.0, 1.0);
        let top_avg: u32 = (0..8).map(|x| img.get(x, 0).r as u32).sum();
        let bottom_avg: u32 = (0..8).map(|x| img.get(x, 7).r as u32).sum();
        assert!(top_avg > bottom_avg, "top {top_avg} vs bottom {bottom_avg}");
    }

    #[test]
    fn fraction_where_counts() {
        let mut img = ImageBuffer::new(2, 2);
        img.set(0, 0, Rgb::WHITE);
        assert!((img.fraction_where(|p| p == Rgb::WHITE) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_size_rejected() {
        let _ = ImageBuffer::new(0, 4);
    }
}
