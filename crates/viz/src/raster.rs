//! Image buffers and field resampling.
//!
//! The table-driven sampler stores its per-column data structure-of-arrays
//! and runs its two per-pixel blends ([`SampleTables::new`]'s horizontal
//! pass and [`SampleTables::shade_row`]'s vertical pass) four columns at a
//! time through [`F64x4`] lanes. Both laned loops evaluate the exact
//! per-element expression tree of the retained scalar goldens
//! ([`SampleTables::new_reference`], [`rasterize_reference`]) with scalar
//! tails for the last `width % 4` columns, so shaded pixels stay
//! bit-identical — see DESIGN.md §8 for the rules.

use ivis_lanes::F64x4;
use ivis_ocean::Field2D;
use rayon::prelude::*;

use crate::color::{Colormap, Rgb};

/// A dense RGB image, row-major, row 0 at the top.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageBuffer {
    width: usize,
    height: usize,
    pixels: Vec<Rgb>,
}

impl ImageBuffer {
    /// A black image.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        ImageBuffer {
            width,
            height,
            pixels: vec![Rgb::BLACK; width * height],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Rgb {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x]
    }

    /// Set pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: Rgb) {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x] = c;
    }

    /// Raw pixels, row-major.
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Mutable raw pixels, row-major — for renderers that reuse one
    /// buffer across frames.
    pub fn pixels_mut(&mut self) -> &mut [Rgb] {
        &mut self.pixels
    }

    /// Parallel mutable access to rows: `(y, row)` pairs.
    pub fn par_rows_mut(&mut self) -> impl IndexedParallelIterator<Item = (usize, &mut [Rgb])> {
        self.pixels.par_chunks_mut(self.width).enumerate()
    }

    /// Raw RGB bytes (3 per pixel), for encoders.
    pub fn to_rgb_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pixels.len() * 3);
        for p in &self.pixels {
            out.extend_from_slice(&[p.r, p.g, p.b]);
        }
        out
    }

    /// Fraction of pixels for which `pred` holds — a cheap way to assert
    /// image content in tests.
    pub fn fraction_where(&self, pred: impl Fn(Rgb) -> bool + Sync) -> f64 {
        let n = self.pixels.par_iter().filter(|&&p| pred(p)).count();
        n as f64 / self.pixels.len() as f64
    }
}

/// Bilinearly sample `field` at fractional coordinates `(fx, fy)` given in
/// cell units (0..nx, 0..ny), clamped at the y edges and wrapped in x.
pub fn sample_bilinear(field: &Field2D, fx: f64, fy: f64) -> f64 {
    let ny = field.ny();
    let x0 = fx.floor();
    let y0 = fy.floor();
    let tx = fx - x0;
    let ty = fy - y0;
    let i0 = x0 as isize;
    let i1 = i0 + 1;
    let clamp_y = |j: isize| -> usize { j.clamp(0, ny as isize - 1) as usize };
    let j0 = clamp_y(y0 as isize);
    let j1 = clamp_y(y0 as isize + 1);
    let v00 = field.get_wrap_x(i0, j0);
    let v10 = field.get_wrap_x(i1, j0);
    let v01 = field.get_wrap_x(i0, j1);
    let v11 = field.get_wrap_x(i1, j1);
    let top = v00 * (1.0 - tx) + v10 * tx;
    let bot = v01 * (1.0 - tx) + v11 * tx;
    top * (1.0 - ty) + bot * ty
}

#[derive(Debug, Clone, Copy)]
struct RowSample {
    j0: usize,
    j1: usize,
    ty: f64,
}

/// Precomputed bilinear source indices and weights for rendering a field
/// at a fixed `width × height`.
///
/// The per-pixel hot loop of [`sample_bilinear`] spends most of its time
/// on address arithmetic — two `floor`s and four `rem_euclid` integer
/// divisions per pixel — that depends only on the pixel's column and row,
/// not on the field values. Hoisting it into per-column / per-row tables
/// removes all of it from the inner loop while performing *exactly* the
/// same float operations in the same order, so the shaded pixels are
/// bit-identical to the naive path ([`rasterize_reference`]). Shared by
/// [`rasterize`] and [`crate::compositing::render_distributed`], which is
/// what makes the two bit-identical to each other.
///
/// Column data is stored structure-of-arrays (`i0` / `i1` / `tx` as three
/// flat vectors) so the horizontal-blend build and the per-row vertical
/// blend can run four columns per [`F64x4`] lane step with contiguous
/// weight loads. Per element the laned loops perform exactly the scalar
/// expression `v0·(1 − t) + v1·t`, so the tables — and every pixel shaded
/// from them — are bit-identical to the scalar build (retained as
/// [`SampleTables::new_reference`]).
#[derive(Debug, Clone)]
pub struct SampleTables {
    /// Left source column per output column (wrapped in x).
    i0: Vec<usize>,
    /// Right source column per output column (wrapped in x).
    i1: Vec<usize>,
    /// Horizontal blend weight per output column.
    tx: Vec<f64>,
    rows: Vec<RowSample>,
    /// Horizontal bilinear blend of every field row at every output column
    /// (`ny × width`, row-major). The horizontal blend depends only on the
    /// field row and the output column — not the output row — so with
    /// `height / ny` output rows per field row it would otherwise be
    /// recomputed that many times over.
    hblend: Vec<f64>,
    width: usize,
    nx: usize,
    ny: usize,
}

impl SampleTables {
    /// Index/weight skeleton shared by [`SampleTables::new`] and
    /// [`SampleTables::new_reference`]; `hblend` starts empty.
    fn skeleton(field: &Field2D, width: usize, height: usize) -> Self {
        let (nx, ny) = (field.nx() as f64, field.ny() as f64);
        let nxi = field.nx() as isize;
        let nyi = field.ny() as isize;
        let mut i0 = Vec::with_capacity(width);
        let mut i1 = Vec::with_capacity(width);
        let mut tx = Vec::with_capacity(width);
        for x in 0..width {
            let fx = (x as f64 + 0.5) / width as f64 * nx - 0.5;
            let x0 = fx.floor();
            let i = x0 as isize;
            i0.push(i.rem_euclid(nxi) as usize);
            i1.push((i + 1).rem_euclid(nxi) as usize);
            tx.push(fx - x0);
        }
        let rows = (0..height)
            .map(|y| {
                // Flip vertically: image row 0 = field's top row.
                let fy = (1.0 - (y as f64 + 0.5) / height as f64) * ny - 0.5;
                let y0 = fy.floor();
                let j0 = y0 as isize;
                RowSample {
                    j0: j0.clamp(0, nyi - 1) as usize,
                    j1: (j0 + 1).clamp(0, nyi - 1) as usize,
                    ty: fy - y0,
                }
            })
            .collect();
        SampleTables {
            i0,
            i1,
            tx,
            rows,
            hblend: Vec::new(),
            width,
            nx: field.nx(),
            ny: field.ny(),
        }
    }

    /// Precompute the tables for rendering `field` at `width × height`.
    pub fn new(field: &Field2D, width: usize, height: usize) -> Self {
        let mut t = SampleTables::skeleton(field, width, height);
        t.hblend.reserve(t.ny * width);
        t.fill_hblend(field);
        t
    }

    /// Scalar-build golden: the same tables via the original one-column-
    /// at-a-time horizontal blend. Retained as the reference the laned
    /// [`SampleTables::new`] is proptested against.
    pub fn new_reference(field: &Field2D, width: usize, height: usize) -> Self {
        let mut t = SampleTables::skeleton(field, width, height);
        let nxu = field.nx();
        let data = field.data();
        let mut hblend = Vec::with_capacity(field.ny() * width);
        for j in 0..field.ny() {
            let row = &data[j * nxu..j * nxu + nxu];
            hblend.extend(
                (0..width).map(|x| row[t.i0[x]] * (1.0 - t.tx[x]) + row[t.i1[x]] * t.tx[x]),
            );
        }
        t.hblend = hblend;
        t
    }

    /// True if these tables were built for this field shape at this
    /// output resolution (i.e. [`SampleTables::rebuild`] is applicable).
    pub fn matches(&self, field: &Field2D, width: usize, height: usize) -> bool {
        self.nx == field.nx()
            && self.ny == field.ny()
            && self.width == width
            && self.rows.len() == height
    }

    /// Refresh the baked field values for a new frame of the same shape,
    /// reusing the index/weight tables and the `hblend` allocation.
    ///
    /// # Panics
    /// Panics if `field` has different dimensions than the tables were
    /// built for.
    pub fn rebuild(&mut self, field: &Field2D) {
        assert!(
            self.nx == field.nx() && self.ny == field.ny(),
            "rebuild requires the original field shape"
        );
        self.hblend.clear();
        self.fill_hblend(field);
    }

    /// Append the horizontal blend of every field row to `self.hblend`,
    /// four columns per lane step. Per element this is exactly the scalar
    /// `row[i0]·(1 − tx) + row[i1]·tx`.
    fn fill_hblend(&mut self, field: &Field2D) {
        let nxu = field.nx();
        let width = self.width;
        let data = field.data();
        let main = width - width % 4;
        let mut lanes = [0.0f64; 4];
        for j in 0..field.ny() {
            let row = &data[j * nxu..j * nxu + nxu];
            let mut x = 0;
            while x < main {
                let v0 = F64x4::gather(
                    row,
                    [self.i0[x], self.i0[x + 1], self.i0[x + 2], self.i0[x + 3]],
                );
                let v1 = F64x4::gather(
                    row,
                    [self.i1[x], self.i1[x + 1], self.i1[x + 2], self.i1[x + 3]],
                );
                let t = F64x4::from_slice(&self.tx[x..]);
                let blended = v0 * (F64x4::splat(1.0) - t) + v1 * t;
                blended.write_to(&mut lanes);
                self.hblend.extend_from_slice(&lanes);
                x += 4;
            }
            for x in main..width {
                self.hblend
                    .push(row[self.i0[x]] * (1.0 - self.tx[x]) + row[self.i1[x]] * self.tx[x]);
            }
        }
    }

    /// The baked horizontal-blend table (`ny × width`, row-major) — exposed
    /// so benchmarks and identity tests can witness build equality.
    pub fn hblend(&self) -> &[f64] {
        &self.hblend
    }

    /// Shade image row `y` into `out` (one pixel per column). The field
    /// values are baked into the tables at construction, so only the
    /// vertical blend and the colormap run per pixel — with exactly the
    /// same operations and ordering as [`sample_bilinear`]. The vertical
    /// blend runs four columns per lane step (the weight `1 − ty` is
    /// row-constant, so hoisting it changes nothing per element) with a
    /// scalar tail.
    pub fn shade_row(&self, y: usize, colormap: Colormap, lo: f64, hi: f64, out: &mut [Rgb]) {
        let width = self.width;
        let RowSample { j0, j1, ty } = self.rows[y];
        let top_row = &self.hblend[j0 * width..j0 * width + width];
        let bot_row = &self.hblend[j1 * width..j1 * width + width];
        let n = out.len().min(width);
        let main = n - n % 4;
        let tyv = F64x4::splat(ty);
        let omt = F64x4::splat(1.0 - ty);
        let mut lanes = [0.0f64; 4];
        let mut x = 0;
        while x < main {
            let top = F64x4::from_slice(&top_row[x..]);
            let bot = F64x4::from_slice(&bot_row[x..]);
            (top * omt + bot * tyv).write_to(&mut lanes);
            for (px, &v) in out[x..x + 4].iter_mut().zip(&lanes) {
                *px = colormap.map(v, lo, hi);
            }
            x += 4;
        }
        for x in main..n {
            let v = top_row[x] * (1.0 - ty) + bot_row[x] * ty;
            out[x] = colormap.map(v, lo, hi);
        }
    }
}

/// Rasterize a scalar field into an image using `colormap` over `(lo, hi)`.
/// Row 0 of the image corresponds to the *top* (largest y / northernmost
/// row) of the field. Table-driven and parallel over image rows;
/// bit-identical to [`rasterize_reference`] at every thread count.
pub fn rasterize(
    field: &Field2D,
    width: usize,
    height: usize,
    colormap: Colormap,
    lo: f64,
    hi: f64,
) -> ImageBuffer {
    assert!(hi > lo, "rasterize range must have hi > lo");
    let tables = SampleTables::new(field, width, height);
    let mut img = ImageBuffer::new(width, height);
    img.par_rows_mut()
        .for_each(|(y, row)| tables.shade_row(y, colormap, lo, hi, row));
    img
}

/// The original naive renderer: one [`sample_bilinear`] call per pixel,
/// strictly sequential. Kept as the golden reference for the determinism
/// suite and as the sequential baseline for the scaling benchmarks.
pub fn rasterize_reference(
    field: &Field2D,
    width: usize,
    height: usize,
    colormap: Colormap,
    lo: f64,
    hi: f64,
) -> ImageBuffer {
    assert!(hi > lo, "rasterize range must have hi > lo");
    let mut img = ImageBuffer::new(width, height);
    let (nx, ny) = (field.nx() as f64, field.ny() as f64);
    for y in 0..height {
        // Flip vertically: image row 0 = field's top row.
        let fy = (1.0 - (y as f64 + 0.5) / height as f64) * ny - 0.5;
        for x in 0..width {
            let fx = (x as f64 + 0.5) / width as f64 * nx - 0.5;
            let v = sample_bilinear(field, fx, fy);
            img.set(x, y, colormap.map(v, lo, hi));
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_basics() {
        let mut img = ImageBuffer::new(4, 3);
        assert_eq!((img.width(), img.height()), (4, 3));
        img.set(2, 1, Rgb::new(9, 8, 7));
        assert_eq!(img.get(2, 1), Rgb::new(9, 8, 7));
        assert_eq!(img.pixels().len(), 12);
        assert_eq!(img.to_rgb_bytes().len(), 36);
    }

    #[test]
    fn bilinear_interpolates_exactly_at_centers() {
        let f = Field2D::from_fn(4, 4, |i, j| (i * 10 + j) as f64);
        assert_eq!(sample_bilinear(&f, 1.0, 2.0), 12.0);
        // Halfway between (1,2)=12 and (2,2)=22.
        assert!((sample_bilinear(&f, 1.5, 2.0) - 17.0).abs() < 1e-12);
    }

    #[test]
    fn bilinear_wraps_in_x_and_clamps_in_y() {
        let f = Field2D::from_fn(4, 3, |i, _| i as f64);
        // x = 3.5 sits between column 3 (=3) and wrapped column 0 (=0).
        assert!((sample_bilinear(&f, 3.5, 1.0) - 1.5).abs() < 1e-12);
        // y below 0 clamps to row 0.
        assert_eq!(sample_bilinear(&f, 1.0, -5.0), 1.0);
        assert_eq!(sample_bilinear(&f, 1.0, 99.0), 1.0);
    }

    #[test]
    fn rasterize_constant_field_is_uniform() {
        let f = Field2D::filled(8, 8, 0.5);
        let img = rasterize(&f, 32, 16, Colormap::Gray, 0.0, 1.0);
        let expected = Colormap::Gray.sample(0.5);
        assert!(img.fraction_where(|p| p == expected) > 0.999);
    }

    #[test]
    fn rasterize_flips_vertically() {
        // Field with a bright top row (j = ny-1): must appear at image row 0.
        let f = Field2D::from_fn(8, 8, |_, j| if j == 7 { 1.0 } else { 0.0 });
        let img = rasterize(&f, 8, 8, Colormap::Gray, 0.0, 1.0);
        let top_avg: u32 = (0..8).map(|x| img.get(x, 0).r as u32).sum();
        let bottom_avg: u32 = (0..8).map(|x| img.get(x, 7).r as u32).sum();
        assert!(top_avg > bottom_avg, "top {top_avg} vs bottom {bottom_avg}");
    }

    #[test]
    fn table_driven_matches_reference_bit_for_bit() {
        let f = Field2D::from_fn(37, 23, |i, j| {
            (i as f64 * 0.31).sin() * (j as f64 * 0.17).cos() + (i + j) as f64 * 1e-3
        });
        for (w, h) in [(64, 48), (31, 7), (5, 40)] {
            let fast = rasterize(&f, w, h, Colormap::OkuboWeiss, -1.5, 1.5);
            let refr = rasterize_reference(&f, w, h, Colormap::OkuboWeiss, -1.5, 1.5);
            assert_eq!(fast, refr, "mismatch at {w}x{h}");
        }
    }

    #[test]
    fn laned_table_build_matches_scalar_reference() {
        let f = Field2D::from_fn(19, 11, |i, j| (i as f64 * 0.7).cos() + j as f64 * 0.01);
        // Widths covering every lane tail 0..4.
        for w in [1, 2, 3, 4, 5, 6, 7, 8, 31, 64] {
            let fast = SampleTables::new(&f, w, 9);
            let refr = SampleTables::new_reference(&f, w, 9);
            assert_eq!(fast.hblend(), refr.hblend(), "hblend mismatch at w={w}");
        }
    }

    #[test]
    fn rebuild_refreshes_values_in_place() {
        let f0 = Field2D::filled(8, 6, 1.0);
        let f1 = Field2D::from_fn(8, 6, |i, j| (i + j) as f64);
        let mut t = SampleTables::new(&f0, 24, 16);
        assert!(t.matches(&f0, 24, 16));
        assert!(!t.matches(&f0, 25, 16));
        t.rebuild(&f1);
        assert_eq!(t.hblend(), SampleTables::new(&f1, 24, 16).hblend());
    }

    #[test]
    fn fraction_where_counts() {
        let mut img = ImageBuffer::new(2, 2);
        img.set(0, 0, Rgb::WHITE);
        assert!((img.fraction_where(|p| p == Rgb::WHITE) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_size_rejected() {
        let _ = ImageBuffer::new(0, 4);
    }
}
