//! Marching-squares isoline extraction.
//!
//! Extracts the `W = threshold` contour of a scalar field as polyline
//! segments — the vector analogue of the eddy-core boundary the raster
//! overlay marks. Segments are produced per cell (no polygon assembly),
//! which is what the renderer needs to stroke boundaries.

use ivis_ocean::Field2D;

/// A 2-D point in cell coordinates (x along columns, y along rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Column coordinate.
    pub x: f64,
    /// Row coordinate.
    pub y: f64,
}

/// One contour segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Segment start.
    pub a: Point,
    /// Segment end.
    pub b: Point,
}

fn interp(p0: f64, p1: f64, v0: f64, v1: f64, iso: f64) -> f64 {
    debug_assert!((v0 < iso) != (v1 < iso));
    let t = (iso - v0) / (v1 - v0);
    p0 + t * (p1 - p0)
}

/// Extract iso-contour segments of `field` at level `iso` using marching
/// squares over each 2×2 cell block (non-periodic; the seam column is
/// skipped, matching how contours are drawn on an unrolled map).
pub fn extract_contours(field: &Field2D, iso: f64) -> Vec<Segment> {
    let (nx, ny) = (field.nx(), field.ny());
    let mut out = Vec::new();
    for j in 0..ny.saturating_sub(1) {
        for i in 0..nx.saturating_sub(1) {
            let v = [
                field.get(i, j),         // top-left  (local 0)
                field.get(i + 1, j),     // top-right (1)
                field.get(i + 1, j + 1), // bottom-right (2)
                field.get(i, j + 1),     // bottom-left (3)
            ];
            let mut case = 0usize;
            for (bit, &val) in v.iter().enumerate() {
                if val >= iso {
                    case |= 1 << bit;
                }
            }
            if case == 0 || case == 15 {
                continue;
            }
            let (x, y) = (i as f64, j as f64);
            // Edge midpoints with linear interpolation.
            let top = || Point {
                x: interp(x, x + 1.0, v[0], v[1], iso),
                y,
            };
            let right = || Point {
                x: x + 1.0,
                y: interp(y, y + 1.0, v[1], v[2], iso),
            };
            let bottom = || Point {
                x: interp(x, x + 1.0, v[3], v[2], iso),
                y: y + 1.0,
            };
            let left = || Point {
                x,
                y: interp(y, y + 1.0, v[0], v[3], iso),
            };
            let mut push = |a: Point, b: Point| out.push(Segment { a, b });
            match case {
                1 | 14 => push(left(), top()),
                2 | 13 => push(top(), right()),
                3 | 12 => push(left(), right()),
                4 | 11 => push(right(), bottom()),
                6 | 9 => push(top(), bottom()),
                7 | 8 => push(left(), bottom()),
                5 => {
                    // Saddle: resolve by the cell-center average.
                    let center = (v[0] + v[1] + v[2] + v[3]) / 4.0;
                    if center >= iso {
                        push(left(), top());
                        push(right(), bottom());
                    } else {
                        push(top(), right());
                        push(left(), bottom());
                    }
                }
                10 => {
                    let center = (v[0] + v[1] + v[2] + v[3]) / 4.0;
                    if center >= iso {
                        push(top(), right());
                        push(left(), bottom());
                    } else {
                        push(left(), top());
                        push(right(), bottom());
                    }
                }
                _ => unreachable!("cases 0 and 15 are filtered"),
            }
        }
    }
    out
}

/// Total polyline length of a set of segments (cell units).
pub fn total_length(segments: &[Segment]) -> f64 {
    segments
        .iter()
        .map(|s| ((s.a.x - s.b.x).powi(2) + (s.a.y - s.b.y).powi(2)).sqrt())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_field_has_no_contours() {
        let f = Field2D::filled(8, 8, 1.0);
        assert!(extract_contours(&f, 0.5).is_empty());
        assert!(extract_contours(&f, 2.0).is_empty());
    }

    #[test]
    fn vertical_step_yields_vertical_line() {
        // Field = i: contour of iso=2.5 runs between columns 2 and 3.
        let f = Field2D::from_fn(6, 4, |i, _| i as f64);
        let segs = extract_contours(&f, 2.5);
        assert_eq!(segs.len(), 3); // one per row band
        for s in &segs {
            assert!((s.a.x - 2.5).abs() < 1e-12);
            assert!((s.b.x - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn circle_contour_length_approximates_circumference() {
        // f = r² around the center; iso = R² gives a circle of radius R.
        let n = 64;
        let f = Field2D::from_fn(n, n, |i, j| {
            let dx = i as f64 - 32.0;
            let dy = j as f64 - 32.0;
            dx * dx + dy * dy
        });
        let r = 10.0;
        let segs = extract_contours(&f, r * r);
        let len = total_length(&segs);
        let circumference = 2.0 * std::f64::consts::PI * r;
        assert!(
            (len - circumference).abs() / circumference < 0.05,
            "len {len} vs 2πR {circumference}"
        );
    }

    #[test]
    fn segment_endpoints_lie_on_cell_edges() {
        let f = Field2D::from_fn(16, 16, |i, j| ((i * 7 + j * 13) % 5) as f64 - 2.0);
        for s in extract_contours(&f, 0.1) {
            for p in [s.a, s.b] {
                let on_x_edge = (p.x - p.x.round()).abs() < 1e-9;
                let on_y_edge = (p.y - p.y.round()).abs() < 1e-9;
                assert!(on_x_edge || on_y_edge, "point off-grid: {p:?}");
            }
        }
    }

    #[test]
    fn saddle_cases_produce_two_segments() {
        // 2×2 checkerboard: v0,v2 high; v1,v3 low → case 5 or 10.
        let f = Field2D::from_fn(2, 2, |i, j| if (i + j) % 2 == 0 { 1.0 } else { -1.0 });
        let segs = extract_contours(&f, 0.0);
        assert_eq!(segs.len(), 2);
    }

    #[test]
    fn interp_crosses_at_fraction() {
        assert!((interp(0.0, 1.0, 0.0, 10.0, 2.5) - 0.25).abs() < 1e-12);
    }
}
