//! The field renderer: scalar fields → images.
//!
//! This is the "ParaView" of the workspace: it turns an Okubo-Weiss (or any
//! scalar) field into the colored image the paper's Fig. 2 shows, with a
//! choice of range normalization and an optional eddy-core contour overlay.

use ivis_ocean::Field2D;

use crate::color::{Colormap, Rgb};
use crate::raster::{rasterize, ImageBuffer};

/// How raw field values are normalized into the colormap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RangeMode {
    /// Use the field's min/max.
    MinMax,
    /// Symmetric about zero: `[−k·σ, +k·σ]` — the right choice for
    /// Okubo-Weiss, whose sign carries the physics.
    SymmetricSigma(f64),
    /// Fixed explicit range.
    Fixed(f64, f64),
}

/// A configured renderer.
///
/// ```
/// use ivis_ocean::Field2D;
/// use ivis_viz::render::FieldRenderer;
/// use ivis_viz::png::encode_png;
///
/// // A synthetic Okubo-Weiss well (negative core = rotation).
/// let w = Field2D::from_fn(16, 16, |i, j| {
///     let (dx, dy) = (i as f64 - 8.0, j as f64 - 8.0);
///     -((-(dx * dx + dy * dy) / 8.0).exp())
/// });
/// let img = FieldRenderer::okubo_weiss(64, 64).render(&w);
/// let png = encode_png(&img);
/// assert_eq!(&png[1..4], b"PNG");
/// ```
#[derive(Debug, Clone)]
pub struct FieldRenderer {
    /// Output width, pixels.
    pub width: usize,
    /// Output height, pixels.
    pub height: usize,
    /// Colormap.
    pub colormap: Colormap,
    /// Range normalization.
    pub range: RangeMode,
}

impl FieldRenderer {
    /// The paper's Fig. 2 style: Okubo-Weiss palette, symmetric ±2σ range.
    pub fn okubo_weiss(width: usize, height: usize) -> Self {
        FieldRenderer {
            width,
            height,
            colormap: Colormap::OkuboWeiss,
            range: RangeMode::SymmetricSigma(2.0),
        }
    }

    /// Resolve the active `(lo, hi)` range for a field.
    ///
    /// Always returns a finite range with `hi > lo`, even for constant
    /// fields (min == max), all-NaN fields (whose min/max degenerate to
    /// `(+∞, −∞)` because `f64::min`/`f64::max` ignore NaN), or fields
    /// whose statistics are themselves NaN/infinite — so `render` never
    /// panics on degenerate data.
    pub fn resolve_range(&self, field: &Field2D) -> (f64, f64) {
        match self.range {
            RangeMode::Fixed(lo, hi) => (lo, hi),
            RangeMode::MinMax => {
                let (lo, hi) = (field.min(), field.max());
                if lo.is_finite() && hi.is_finite() && hi > lo {
                    (lo, hi)
                } else if lo.is_finite() {
                    (lo - 0.5, lo + 0.5) // constant field: any non-empty range
                } else {
                    (-0.5, 0.5) // no finite data at all
                }
            }
            RangeMode::SymmetricSigma(k) => {
                let s = field.std_dev();
                let bound = if s.is_finite() && s > 0.0 { k * s } else { 1.0 };
                (-bound, bound)
            }
        }
    }

    /// Render the field.
    pub fn render(&self, field: &Field2D) -> ImageBuffer {
        let (lo, hi) = self.resolve_range(field);
        rasterize(field, self.width, self.height, self.colormap, lo, hi)
    }

    /// Render with an overlay marking cells below `threshold` (eddy cores)
    /// by darkening their pixels — the visual analogue of the tracking
    /// pipeline's segmentation.
    pub fn render_with_core_overlay(&self, field: &Field2D, threshold: f64) -> ImageBuffer {
        let mut img = self.render(field);
        let (nx, ny) = (field.nx() as f64, field.ny() as f64);
        let (w, h) = (self.width, self.height);
        for y in 0..h {
            let fy = (1.0 - (y as f64 + 0.5) / h as f64) * ny - 0.5;
            for x in 0..w {
                let fx = (x as f64 + 0.5) / w as f64 * nx - 0.5;
                let v = crate::raster::sample_bilinear(field, fx, fy);
                if v < threshold {
                    let p = img.get(x, y);
                    img.set(x, y, Rgb::new(p.r / 2, p.g / 2, p.b / 2));
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivis_ocean::grid::Grid;
    use ivis_ocean::okubo_weiss::{eddy_threshold, okubo_weiss};
    use ivis_ocean::shallow_water::{ShallowWaterModel, SwParams};
    use ivis_ocean::vortex::{seed_vortex, Vortex};

    fn eddy_ow_field() -> (Grid, Field2D) {
        let grid = Grid::channel(48, 32, 60_000.0);
        let params = SwParams::eddy_channel(&grid);
        let mut m = ShallowWaterModel::new(grid.clone(), params);
        let (lx, ly) = m.grid().extent();
        seed_vortex(
            &mut m,
            &Vortex {
                x: lx / 2.0,
                y: ly / 2.0,
                radius: 150_000.0,
                amplitude: 1.0,
            },
        );
        let (uc, vc) = m.centered_velocities();
        let w = okubo_weiss(m.grid(), &uc, &vc);
        (grid, w)
    }

    #[test]
    fn fig2_style_render_contains_green_cores_and_blue_shear() {
        let (_, w) = eddy_ow_field();
        let img = FieldRenderer::okubo_weiss(96, 64).render(&w);
        let green = img.fraction_where(|p| p.g > p.b.saturating_add(20) && p.g > p.r);
        let blue = img.fraction_where(|p| p.b > p.g.saturating_add(10));
        assert!(green > 0.001, "eddy core should render green: {green}");
        assert!(blue > 0.001, "shear ring should render blue: {blue}");
    }

    #[test]
    fn fixed_range_is_respected() {
        let f = Field2D::filled(8, 8, 5.0);
        let r = FieldRenderer {
            width: 4,
            height: 4,
            colormap: Colormap::Gray,
            range: RangeMode::Fixed(0.0, 10.0),
        };
        let img = r.render(&f);
        assert!(img.fraction_where(|p| p == Rgb::new(128, 128, 128)) > 0.99);
    }

    #[test]
    fn minmax_range_spans_field() {
        let f = Field2D::from_fn(8, 8, |i, _| i as f64);
        let r = FieldRenderer {
            width: 8,
            height: 8,
            colormap: Colormap::Gray,
            range: RangeMode::MinMax,
        };
        let (lo, hi) = r.resolve_range(&f);
        assert_eq!((lo, hi), (0.0, 7.0));
    }

    #[test]
    fn constant_field_does_not_panic_in_any_mode() {
        let f = Field2D::filled(8, 8, 3.0);
        for range in [
            RangeMode::MinMax,
            RangeMode::SymmetricSigma(2.0),
            RangeMode::Fixed(0.0, 1.0),
        ] {
            let r = FieldRenderer {
                width: 4,
                height: 4,
                colormap: Colormap::Viridis,
                range,
            };
            let _ = r.render(&f);
        }
    }

    #[test]
    fn all_nan_field_renders_without_panic() {
        // f64::min/max ignore NaN, so an all-NaN field degenerates to
        // min = +inf, max = -inf; resolve_range must still produce a
        // usable range and the colormap maps NaN samples to t = 0.
        let f = Field2D::from_fn(8, 8, |_, _| f64::NAN);
        for range in [RangeMode::MinMax, RangeMode::SymmetricSigma(2.0)] {
            let r = FieldRenderer {
                width: 6,
                height: 6,
                colormap: Colormap::Viridis,
                range,
            };
            let (lo, hi) = r.resolve_range(&f);
            assert!(lo.is_finite() && hi.is_finite() && hi > lo, "{range:?}");
            let img = r.render(&f);
            let nan_color = Colormap::Viridis.sample(0.0);
            assert!(img.fraction_where(|p| p == nan_color) > 0.999);
        }
    }

    #[test]
    fn partially_nan_field_uses_finite_values_for_minmax() {
        let f = Field2D::from_fn(8, 8, |i, _| if i == 0 { f64::NAN } else { i as f64 });
        let r = FieldRenderer {
            width: 4,
            height: 4,
            colormap: Colormap::Gray,
            range: RangeMode::MinMax,
        };
        let (lo, hi) = r.resolve_range(&f);
        assert_eq!((lo, hi), (1.0, 7.0));
        let _ = r.render(&f);
    }

    #[test]
    fn overlay_darkens_core_pixels() {
        let (grid, w) = eddy_ow_field();
        let renderer = FieldRenderer::okubo_weiss(96, 64);
        let thr = eddy_threshold(&w, 0.2);
        let plain = renderer.render(&w);
        let overlaid = renderer.render_with_core_overlay(&w, thr);
        let _ = grid;
        // Some pixels must differ (darkened), and darkened ones are darker.
        let mut darkened = 0;
        for y in 0..64 {
            for x in 0..96 {
                let a = plain.get(x, y);
                let b = overlaid.get(x, y);
                if a != b {
                    darkened += 1;
                    assert!(b.r <= a.r && b.g <= a.g && b.b <= a.b);
                }
            }
        }
        assert!(darkened > 0, "overlay should mark the eddy core");
    }

    #[test]
    fn symmetric_range_centered_on_zero() {
        let f = Field2D::from_fn(16, 16, |i, j| ((i + j) as f64).sin());
        let r = FieldRenderer::okubo_weiss(8, 8);
        let (lo, hi) = r.resolve_range(&f);
        assert!((lo + hi).abs() < 1e-12);
        assert!(hi > 0.0);
    }
}
