//! Binary PPM (P6) encoding and decoding.
//!
//! PPM is the simplest interchange format there is; we use it in tests (its
//! decoder doubles as a check on our buffers) and for quick local viewing.

use crate::color::Rgb;
use crate::raster::ImageBuffer;

/// Errors from PPM decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PpmError {
    /// Missing or wrong magic number.
    BadMagic,
    /// Malformed header.
    BadHeader,
    /// Only maxval 255 is supported.
    UnsupportedMaxval(u32),
    /// Payload shorter than `3·w·h`.
    Truncated,
}

impl std::fmt::Display for PpmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PpmError::BadMagic => write!(f, "not a P6 PPM"),
            PpmError::BadHeader => write!(f, "malformed PPM header"),
            PpmError::UnsupportedMaxval(m) => write!(f, "unsupported maxval {m}"),
            PpmError::Truncated => write!(f, "truncated PPM payload"),
        }
    }
}

impl std::error::Error for PpmError {}

/// Encode an image as binary PPM (P6).
pub fn encode_ppm(img: &ImageBuffer) -> Vec<u8> {
    let header = format!("P6\n{} {}\n255\n", img.width(), img.height());
    let mut out = Vec::with_capacity(header.len() + img.pixels().len() * 3);
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(&img.to_rgb_bytes());
    out
}

/// Decode a binary PPM (P6) produced by [`encode_ppm`] (or any conforming
/// writer without comment lines).
pub fn decode_ppm(data: &[u8]) -> Result<ImageBuffer, PpmError> {
    let mut pos = 0;
    let mut token = |data: &[u8]| -> Result<String, PpmError> {
        while pos < data.len() && data[pos].is_ascii_whitespace() {
            pos += 1;
        }
        let start = pos;
        while pos < data.len() && !data[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(PpmError::BadHeader);
        }
        String::from_utf8(data[start..pos].to_vec()).map_err(|_| PpmError::BadHeader)
    };
    if token(data)? != "P6" {
        return Err(PpmError::BadMagic);
    }
    let w: usize = token(data)?.parse().map_err(|_| PpmError::BadHeader)?;
    let h: usize = token(data)?.parse().map_err(|_| PpmError::BadHeader)?;
    let maxval: u32 = token(data)?.parse().map_err(|_| PpmError::BadHeader)?;
    if maxval != 255 {
        return Err(PpmError::UnsupportedMaxval(maxval));
    }
    pos += 1; // exactly one whitespace byte after maxval
    if data.len() < pos + 3 * w * h {
        return Err(PpmError::Truncated);
    }
    let mut img = ImageBuffer::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let o = pos + 3 * (y * w + x);
            img.set(x, y, Rgb::new(data[o], data[o + 1], data[o + 2]));
        }
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image() -> ImageBuffer {
        let mut img = ImageBuffer::new(3, 2);
        img.set(0, 0, Rgb::new(1, 2, 3));
        img.set(2, 1, Rgb::new(250, 251, 252));
        img
    }

    #[test]
    fn roundtrip() {
        let img = test_image();
        let back = decode_ppm(&encode_ppm(&img)).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn header_shape() {
        let data = encode_ppm(&test_image());
        assert!(data.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(data.len(), 11 + 18);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode_ppm(b"P5\n1 1\n255\nxxx"), Err(PpmError::BadMagic));
    }

    #[test]
    fn truncated_rejected() {
        let mut data = encode_ppm(&test_image());
        data.truncate(data.len() - 1);
        assert_eq!(decode_ppm(&data), Err(PpmError::Truncated));
    }

    #[test]
    fn wrong_maxval_rejected() {
        assert_eq!(
            decode_ppm(b"P6\n1 1\n65535\n\0\0\0\0\0\0"),
            Err(PpmError::UnsupportedMaxval(65535))
        );
    }

    #[test]
    fn garbage_header_rejected() {
        assert_eq!(decode_ppm(b"P6\nxx yy\n255\n"), Err(PpmError::BadHeader));
        assert_eq!(decode_ppm(b""), Err(PpmError::BadHeader));
    }
}
