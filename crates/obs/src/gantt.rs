//! ASCII Gantt/timeline rendering — the terminal analogue of Fig. 4.
//!
//! [`render_timeline`] draws one row per [`JobPhase`] with `#` marking
//! buckets the phase dominates, plus a combined strip of phase initials.
//! [`render_fig4`] adds compute and storage power rows (digits 0–9 scaled
//! to the peak), which is exactly the information content of the paper's
//! Fig. 4 power-profile plot.

use ivis_cluster::{JobPhase, PhaseTimeline};
use ivis_power::profile::PowerProfile;
use ivis_sim::SimTime;

use crate::energy::PHASE_ORDER;

fn phase_initial(phase: JobPhase) -> char {
    match phase {
        JobPhase::Simulate => 'S',
        JobPhase::WriteOutput => 'W',
        JobPhase::Visualize => 'V',
        JobPhase::ReadInput => 'R',
        JobPhase::Idle => 'I',
    }
}

/// Seconds each phase occupies in each of `width` equal buckets spanning
/// `[start, end]`. Row order follows [`PHASE_ORDER`].
fn bucket_occupancy(timeline: &PhaseTimeline, width: usize) -> Vec<[f64; PHASE_ORDER.len()]> {
    let mut buckets = vec![[0.0; PHASE_ORDER.len()]; width];
    let records = timeline.records();
    let (Some(first), Some(last)) = (records.first(), records.last()) else {
        return buckets;
    };
    let t0 = first.start.as_secs_f64();
    let t1 = last.end.as_secs_f64();
    let span = t1 - t0;
    if span <= 0.0 {
        return buckets;
    }
    let bucket_len = span / width as f64;
    for rec in records {
        let p = PHASE_ORDER.iter().position(|&q| q == rec.phase).unwrap();
        let (rs, re) = (rec.start.as_secs_f64() - t0, rec.end.as_secs_f64() - t0);
        let first_b = ((rs / bucket_len) as usize).min(width - 1);
        let last_b = ((re / bucket_len) as usize).min(width - 1);
        for (b, bucket) in buckets
            .iter_mut()
            .enumerate()
            .take(last_b + 1)
            .skip(first_b)
        {
            let lo = (b as f64 * bucket_len).max(rs);
            let hi = ((b + 1) as f64 * bucket_len).min(re);
            if hi > lo {
                bucket[p] += hi - lo;
            }
        }
    }
    buckets
}

/// Render `timeline` as an ASCII Gantt chart, `width` columns wide.
///
/// One row per phase that occurs: `#` where the phase dominates the
/// bucket, `.` where it is present but not dominant. A final `phase` row
/// shows the dominant phase's initial per bucket
/// (`S`imulate/`W`rite/`V`isualize/`R`ead/`I`dle).
pub fn render_timeline(timeline: &PhaseTimeline, width: usize) -> String {
    assert!(width > 0, "timeline width must be positive");
    let records = timeline.records();
    let (Some(first), Some(last)) = (records.first(), records.last()) else {
        return String::from("(empty timeline)\n");
    };
    let buckets = bucket_occupancy(timeline, width);
    let mut out = format!(
        "t = {:.1}s .. {:.1}s  ({} records, {:.1}s makespan)\n",
        first.start.as_secs_f64(),
        last.end.as_secs_f64(),
        records.len(),
        timeline.makespan().as_secs_f64()
    );
    for (p, &phase) in PHASE_ORDER.iter().enumerate() {
        if timeline.time_in(phase).is_zero() {
            continue;
        }
        out.push_str(&format!("{:<10} |", phase.label()));
        for bucket in &buckets {
            let occ = bucket[p];
            let max = bucket.iter().cloned().fold(0.0, f64::max);
            out.push(if occ > 0.0 && occ >= max {
                '#'
            } else if occ > 0.0 {
                '.'
            } else {
                ' '
            });
        }
        out.push_str("|\n");
    }
    out.push_str(&format!("{:<10} |", "phase"));
    for bucket in &buckets {
        let dominant = (0..PHASE_ORDER.len())
            .filter(|&p| bucket[p] > 0.0)
            .max_by(|&a, &b| bucket[a].total_cmp(&bucket[b]));
        out.push(dominant.map_or(' ', |p| phase_initial(PHASE_ORDER[p])));
    }
    out.push_str("|\n");
    out
}

/// Average watts drawn from `profile` in each of `width` buckets over
/// `[t0, t1]` (seconds).
fn power_row(profile: &PowerProfile, t0: f64, t1: f64, width: usize) -> Vec<f64> {
    let bucket_len = (t1 - t0) / width as f64;
    (0..width)
        .map(|b| {
            let lo = SimTime::from_secs_f64(t0 + b as f64 * bucket_len);
            let hi = SimTime::from_secs_f64(t0 + (b + 1) as f64 * bucket_len);
            if hi > lo {
                profile.energy_between(lo, hi).joules() / (hi - lo).as_secs_f64()
            } else {
                0.0
            }
        })
        .collect()
}

fn digits_row(label: &str, watts: &[f64], peak: f64) -> String {
    let mut out = format!("{label:<10} |");
    for &w in watts {
        let d = if peak > 0.0 {
            ((9.0 * w / peak).round() as i64).clamp(0, 9)
        } else {
            0
        };
        out.push((b'0' + d as u8) as char);
    }
    out.push_str(&format!("| peak {peak:.0} W\n"));
    out
}

/// Render the full Fig. 4 analogue: phase strip plus compute and storage
/// power rows, each digit scaling linearly from 0 (idle) to 9 (peak).
pub fn render_fig4(
    timeline: &PhaseTimeline,
    compute: &PowerProfile,
    storage: &PowerProfile,
    width: usize,
) -> String {
    let mut out = render_timeline(timeline, width);
    let records = timeline.records();
    let (Some(first), Some(last)) = (records.first(), records.last()) else {
        return out;
    };
    let (t0, t1) = (first.start.as_secs_f64(), last.end.as_secs_f64());
    if t1 <= t0 {
        return out;
    }
    let compute_w = power_row(compute, t0, t1, width);
    let storage_w = power_row(storage, t0, t1, width);
    let peak_c = compute_w.iter().cloned().fold(0.0, f64::max);
    let peak_s = storage_w.iter().cloned().fold(0.0, f64::max);
    out.push_str(&digits_row("compute_w", &compute_w, peak_c));
    out.push_str(&digits_row("storage_w", &storage_w, peak_s));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivis_cluster::PhaseRecord;
    use ivis_power::meter::MeterSample;
    use ivis_power::units::Watts;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn tl(recs: &[(JobPhase, u64, u64)]) -> PhaseTimeline {
        let mut timeline = PhaseTimeline::new();
        for &(phase, start, end) in recs {
            timeline.push(PhaseRecord {
                phase,
                start: t(start),
                end: t(end),
            });
        }
        timeline
    }

    #[test]
    fn renders_one_row_per_present_phase() {
        let timeline = tl(&[
            (JobPhase::Simulate, 0, 60),
            (JobPhase::Visualize, 60, 70),
            (JobPhase::WriteOutput, 70, 80),
        ]);
        let s = render_timeline(&timeline, 40);
        let lines: Vec<&str> = s.lines().collect();
        // header + simulate + write + visualize + phase strip
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("simulate"));
        assert!(lines[2].starts_with("write"));
        assert!(lines[3].starts_with("visualize"));
        assert!(lines[4].starts_with("phase"));
        // Simulate dominates the first three quarters of the strip.
        let strip = lines[4].split('|').nth(1).unwrap();
        assert_eq!(strip.len(), 40);
        assert!(strip.starts_with("SSSSSSSSSS"));
        assert!(strip.contains('V') && strip.contains('W'));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        assert_eq!(
            render_timeline(&PhaseTimeline::new(), 10),
            "(empty timeline)\n"
        );
    }

    #[test]
    fn fig4_adds_power_digit_rows() {
        let timeline = tl(&[
            (JobPhase::Simulate, 0, 50),
            (JobPhase::WriteOutput, 50, 100),
        ]);
        let profile = |w1: f64, w2: f64| {
            PowerProfile::from_meter_samples(
                SimTime::ZERO,
                vec![
                    MeterSample {
                        at: t(50),
                        avg: Watts(w1),
                    },
                    MeterSample {
                        at: t(100),
                        avg: Watts(w2),
                    },
                ],
            )
        };
        let s = render_fig4(&timeline, &profile(400.0, 100.0), &profile(10.0, 40.0), 10);
        let lines: Vec<&str> = s.lines().collect();
        let compute = lines.iter().find(|l| l.starts_with("compute_w")).unwrap();
        let storage = lines.iter().find(|l| l.starts_with("storage_w")).unwrap();
        // Compute is at peak (9) early and low late; storage the reverse.
        let cdigits = compute.split('|').nth(1).unwrap();
        let sdigits = storage.split('|').nth(1).unwrap();
        assert!(cdigits.starts_with("99999"));
        assert!(cdigits.ends_with("22222"));
        assert!(sdigits.starts_with("22222"));
        assert!(sdigits.ends_with("99999"));
        assert!(compute.contains("peak 400 W"));
    }
}
