//! CSV renderers for attribution reports and metric series.
//!
//! These produce the same "header line + comma rows + trailing newline"
//! shape as the bench harness's figure exports, so `ivis-bench` can drop
//! them straight into its CSV output directory.

use std::fmt::Write as _;

use crate::energy::EnergyAttribution;
use crate::metrics::MetricsRegistry;

/// Header for multi-config per-phase energy tables.
pub const ENERGY_CSV_HEADER: &str = "config,phase,seconds,compute_j,storage_j,total_j";

/// Render one attribution as rows under [`ENERGY_CSV_HEADER`], labelled
/// with `config` (no header line; callers concatenate configs).
pub fn energy_csv_rows(config: &str, att: &EnergyAttribution) -> String {
    let mut out = String::new();
    for r in att.rows() {
        let _ = writeln!(
            out,
            "{config},{},{},{},{},{}",
            r.phase.label(),
            r.seconds,
            r.compute.joules(),
            r.storage.joules(),
            r.total().joules()
        );
    }
    out
}

/// Render one attribution as a standalone CSV table (header + rows +
/// a `total` row).
pub fn energy_csv(config: &str, att: &EnergyAttribution) -> String {
    let mut out = String::from(ENERGY_CSV_HEADER);
    out.push('\n');
    out.push_str(&energy_csv_rows(config, att));
    let _ = writeln!(
        out,
        "{config},total,{},{},{},{}",
        (att.window().1 - att.window().0).as_secs_f64(),
        att.attributed_compute().joules(),
        att.attributed_storage().joules(),
        att.attributed_total().joules()
    );
    out
}

/// Render every metric series in long form:
/// `metric,kind,t_us,value` — one row per step-function sample.
pub fn metrics_csv(reg: &MetricsRegistry) -> String {
    let mut out = String::from("metric,kind,t_us,value\n");
    for m in reg.iter() {
        for &(t, v) in m.series().samples() {
            let _ = writeln!(
                out,
                "{},{},{},{v}",
                m.name(),
                m.kind().label(),
                t.as_micros()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::attribute;
    use ivis_cluster::{JobPhase, PhaseRecord, PhaseTimeline};
    use ivis_power::meter::MeterSample;
    use ivis_power::profile::PowerProfile;
    use ivis_power::units::Watts;
    use ivis_sim::SimTime;

    #[test]
    fn energy_csv_shape() {
        let profile = |w: f64| {
            PowerProfile::from_meter_samples(
                SimTime::ZERO,
                vec![MeterSample {
                    at: SimTime::from_secs(100),
                    avg: Watts(w),
                }],
            )
        };
        let mut tl = PhaseTimeline::new();
        tl.push(PhaseRecord {
            phase: JobPhase::Simulate,
            start: SimTime::ZERO,
            end: SimTime::from_secs(100),
        });
        let att = attribute(&tl, &profile(10.0), &profile(1.0));
        let csv = energy_csv("insitu-72h", &att);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], ENERGY_CSV_HEADER);
        assert_eq!(lines[1], "insitu-72h,simulate,100,1000,100,1100");
        assert_eq!(lines[2], "insitu-72h,total,100,1000,100,1100");
    }

    #[test]
    fn metrics_csv_is_long_form() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add(SimTime::from_secs(1), "outputs", 1.0);
        reg.counter_add(SimTime::from_secs(2), "outputs", 1.0);
        reg.gauge_set(SimTime::from_secs(3), "util", 0.5);
        let csv = metrics_csv(&reg);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "metric,kind,t_us,value");
        assert_eq!(lines[1], "outputs,counter,1000000,1");
        assert_eq!(lines[2], "outputs,counter,2000000,2");
        assert_eq!(lines[3], "util,gauge,3000000,0.5");
    }
}
