//! JSONL trace exporter: one record per line, stable `ivis-trace-v1` schema.
//!
//! The schema is deliberately frozen (and pinned by a golden-file test in
//! `ivis-core`): line 1 is a `meta` record, followed by every span in open
//! order, every event in record order, and every metric with its full
//! sample series. Times are integer microseconds of sim time, matching
//! [`SimTime`]'s internal resolution, so the export is lossless.
//!
//! [`SimTime`]: ivis_sim::SimTime

use std::fmt::Write as _;

use crate::metrics::MetricKind;
use crate::recorder::{AttrValue, SpanId, TraceBuffer};

/// Schema identifier embedded in the meta line.
pub const SCHEMA: &str = "ivis-trace-v1";

pub(crate) fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

pub(crate) fn push_attrs(out: &mut String, attrs: &[(&'static str, AttrValue)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        push_escaped(out, k);
        out.push_str("\":");
        match *v {
            AttrValue::U64(x) => {
                let _ = write!(out, "{x}");
            }
            AttrValue::I64(x) => {
                let _ = write!(out, "{x}");
            }
            AttrValue::F64(x) => push_f64(out, x),
            AttrValue::Str(s) => {
                out.push('"');
                push_escaped(out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
}

pub(crate) fn push_span_ref(out: &mut String, id: SpanId) {
    if id.is_none() {
        out.push_str("null");
    } else {
        let _ = write!(out, "{}", id.0);
    }
}

/// Serialize the whole buffer to JSONL.
pub fn to_jsonl(buf: &TraceBuffer) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"v\":1,\"type\":\"meta\",\"schema\":\"{}\",\"spans\":{},\"events\":{},\"metrics\":{}}}",
        SCHEMA,
        buf.spans().len(),
        buf.events().len(),
        buf.metrics.len()
    );
    for (id, span) in buf.spans().iter().enumerate() {
        let _ = write!(out, "{{\"type\":\"span\",\"id\":{id},\"parent\":");
        push_span_ref(&mut out, span.parent);
        let _ = write!(
            out,
            ",\"name\":\"{}\",\"component\":\"{}\",\"phase\":",
            span.name,
            span.component.label()
        );
        match span.phase {
            Some(p) => {
                let _ = write!(out, "\"{}\"", p.label());
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"start_us\":{},\"end_us\":", span.start.as_micros());
        match span.end {
            Some(t) => {
                let _ = write!(out, "{}", t.as_micros());
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"attrs\":");
        push_attrs(&mut out, &span.attrs);
        out.push_str("}\n");
    }
    for ev in buf.events() {
        out.push_str("{\"type\":\"event\",\"span\":");
        push_span_ref(&mut out, ev.parent);
        let _ = write!(
            out,
            ",\"name\":\"{}\",\"component\":\"{}\",\"t_us\":{},\"attrs\":",
            ev.name,
            ev.component.label(),
            ev.at.as_micros()
        );
        push_attrs(&mut out, &ev.attrs);
        out.push_str("}\n");
    }
    for metric in buf.metrics.iter() {
        let _ = write!(
            out,
            "{{\"type\":\"metric\",\"name\":\"{}\",\"kind\":\"{}\",\"samples\":[",
            metric.name(),
            metric.kind().label()
        );
        // Counters and gauges serialize their step function; histograms
        // serialize the raw `(t, value)` observations, which is the
        // lossless form (the step function is just the running count).
        let samples: &[(ivis_sim::SimTime, f64)] = match metric.kind() {
            MetricKind::Histogram => metric.observations(),
            _ => metric.series().samples(),
        };
        for (i, &(t, v)) in samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},", t.as_micros());
            push_f64(&mut out, v);
            out.push(']');
        }
        out.push_str("]}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Component, Recorder};
    use ivis_cluster::JobPhase;
    use ivis_sim::SimTime;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn export_shape_matches_schema() {
        let rec = Recorder::in_memory();
        let root = rec.span(t(0.0), "campaign", Component::Campaign);
        rec.set_attr(root, "kind", AttrValue::Str("insitu"));
        let phase = rec.phase_span(t(0.0), JobPhase::Simulate, Component::Compute);
        rec.event(
            t(1.5),
            "output_written",
            Component::Storage,
            &[("index", AttrValue::U64(0)), ("bytes", AttrValue::U64(42))],
        );
        rec.gauge_set(t(1.5), "pfs.utilization", 0.25);
        rec.close(t(2.0), phase);
        rec.close(t(2.0), root);

        let text = rec.with_buffer(to_jsonl).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 2 + 1 + 1);
        assert_eq!(
            lines[0],
            "{\"v\":1,\"type\":\"meta\",\"schema\":\"ivis-trace-v1\",\"spans\":2,\"events\":1,\"metrics\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"span\",\"id\":0,\"parent\":null,\"name\":\"campaign\",\"component\":\"campaign\",\"phase\":null,\"start_us\":0,\"end_us\":2000000,\"attrs\":{\"kind\":\"insitu\"}}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"simulate\",\"component\":\"compute\",\"phase\":\"simulate\",\"start_us\":0,\"end_us\":2000000,\"attrs\":{}}"
        );
        assert_eq!(
            lines[3],
            "{\"type\":\"event\",\"span\":1,\"name\":\"output_written\",\"component\":\"storage\",\"t_us\":1500000,\"attrs\":{\"index\":0,\"bytes\":42}}"
        );
        assert_eq!(
            lines[4],
            "{\"type\":\"metric\",\"name\":\"pfs.utilization\",\"kind\":\"gauge\",\"samples\":[[1500000,0.25]]}"
        );
    }

    #[test]
    fn histogram_metrics_export_raw_observations() {
        let rec = Recorder::in_memory();
        rec.histogram_record(t(1.0), "transport.stall_seconds", 0.5);
        rec.histogram_record(t(2.0), "transport.stall_seconds", 1.5);
        let text = rec.with_buffer(to_jsonl).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[1],
            "{\"type\":\"metric\",\"name\":\"transport.stall_seconds\",\"kind\":\"histogram\",\"samples\":[[1000000,0.5],[2000000,1.5]]}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        out.push(' ');
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null null");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
