//! Per-phase energy attribution: the §VIII analysis as a first-class report.
//!
//! The paper's key observation about in-situ I/O is that the compute
//! nodes' busy-wait during writes keeps rack power near its compute level,
//! so "I/O time" is charged energy at close to full power. Attribution
//! makes that visible: it joins a [`PhaseTimeline`] against the compute
//! and storage [`PowerProfile`]s, integrating each profile over each phase
//! record's window with [`PowerProfile::energy_between`]. Because the
//! timeline tiles the profile window and `energy_between` clips exactly,
//! the attributed joules sum back to the metered totals (conservation).

use ivis_cluster::{JobPhase, PhaseTimeline};
use ivis_power::profile::PowerProfile;
use ivis_power::units::Joules;
use ivis_sim::SimTime;

/// Canonical phase ordering used by reports.
pub const PHASE_ORDER: [JobPhase; 5] = [
    JobPhase::Simulate,
    JobPhase::WriteOutput,
    JobPhase::Visualize,
    JobPhase::ReadInput,
    JobPhase::Idle,
];

/// Energy charged to one job phase, split by subsystem.
#[derive(Debug, Clone, Copy)]
pub struct PhaseEnergy {
    /// The phase being charged.
    pub phase: JobPhase,
    /// Total seconds the campaign spent in this phase.
    pub seconds: f64,
    /// Compute-cluster energy during this phase.
    pub compute: Joules,
    /// Storage-rack energy during this phase.
    pub storage: Joules,
}

impl PhaseEnergy {
    /// Compute plus storage energy for this phase.
    pub fn total(&self) -> Joules {
        self.compute + self.storage
    }
}

/// The per-phase energy report for one pipeline run.
#[derive(Debug, Clone)]
pub struct EnergyAttribution {
    rows: Vec<PhaseEnergy>,
    window: (SimTime, SimTime),
    metered_compute: Joules,
    metered_storage: Joules,
}

impl EnergyAttribution {
    /// Rows in [`PHASE_ORDER`]; phases the run never entered are omitted.
    pub fn rows(&self) -> &[PhaseEnergy] {
        &self.rows
    }

    /// The row for `phase`, if the run entered it.
    pub fn get(&self, phase: JobPhase) -> Option<&PhaseEnergy> {
        self.rows.iter().find(|r| r.phase == phase)
    }

    /// `[start, end]` of the attributed window (the timeline's extent).
    pub fn window(&self) -> (SimTime, SimTime) {
        self.window
    }

    /// Sum of attributed compute energy across phases.
    pub fn attributed_compute(&self) -> Joules {
        self.rows.iter().map(|r| r.compute).sum()
    }

    /// Sum of attributed storage energy across phases.
    pub fn attributed_storage(&self) -> Joules {
        self.rows.iter().map(|r| r.storage).sum()
    }

    /// Sum of all attributed energy.
    pub fn attributed_total(&self) -> Joules {
        self.attributed_compute() + self.attributed_storage()
    }

    /// Total energy the meters reported (compute + storage profiles).
    pub fn metered_total(&self) -> Joules {
        self.metered_compute + self.metered_storage
    }

    /// Metered minus attributed energy — profile energy falling outside
    /// the timeline. Zero (up to float summation order) when the timeline
    /// covers the whole profile window.
    pub fn residual(&self) -> Joules {
        self.metered_total() - self.attributed_total()
    }

    /// Fraction of all attributed energy charged to `phase` (0 if absent
    /// or if nothing was attributed).
    pub fn share(&self, phase: JobPhase) -> f64 {
        let total = self.attributed_total().joules();
        if total <= 0.0 {
            return 0.0;
        }
        self.get(phase).map_or(0.0, |r| r.total().joules() / total)
    }

    /// Render the report as a fixed-width ASCII table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>12} {:>14} {:>14} {:>14} {:>7}\n",
            "phase", "seconds", "compute_j", "storage_j", "total_j", "share"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>12.1} {:>14.1} {:>14.1} {:>14.1} {:>6.1}%\n",
                r.phase.label(),
                r.seconds,
                r.compute.joules(),
                r.storage.joules(),
                r.total().joules(),
                100.0 * self.share(r.phase)
            ));
        }
        let dur = (self.window.1 - self.window.0).as_secs_f64();
        out.push_str(&format!(
            "{:<10} {:>12.1} {:>14.1} {:>14.1} {:>14.1} {:>6.1}%\n",
            "total",
            dur,
            self.attributed_compute().joules(),
            self.attributed_storage().joules(),
            self.attributed_total().joules(),
            100.0
        ));
        out
    }
}

/// Join `timeline` against the compute and storage profiles, producing
/// joules by `JobPhase × {compute, storage}`.
pub fn attribute(
    timeline: &PhaseTimeline,
    compute: &PowerProfile,
    storage: &PowerProfile,
) -> EnergyAttribution {
    let mut acc: Vec<PhaseEnergy> = Vec::new();
    for rec in timeline.records() {
        let c = compute.energy_between(rec.start, rec.end);
        let s = storage.energy_between(rec.start, rec.end);
        let secs = rec.duration().as_secs_f64();
        match acc.iter_mut().find(|r| r.phase == rec.phase) {
            Some(row) => {
                row.seconds += secs;
                row.compute += c;
                row.storage += s;
            }
            None => acc.push(PhaseEnergy {
                phase: rec.phase,
                seconds: secs,
                compute: c,
                storage: s,
            }),
        }
    }
    acc.sort_by_key(|r| PHASE_ORDER.iter().position(|&p| p == r.phase));
    let window = timeline
        .records()
        .first()
        .map(|f| (f.start, timeline.records().last().unwrap().end))
        .unwrap_or((SimTime::ZERO, SimTime::ZERO));
    EnergyAttribution {
        rows: acc,
        window,
        metered_compute: compute.energy(),
        metered_storage: storage.energy(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivis_cluster::PhaseRecord;
    use ivis_power::meter::MeterSample;
    use ivis_power::units::Watts;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn profile(samples: &[(u64, f64)]) -> PowerProfile {
        PowerProfile::from_meter_samples(
            SimTime::ZERO,
            samples
                .iter()
                .map(|&(at, w)| MeterSample {
                    at: t(at),
                    avg: Watts(w),
                })
                .collect(),
        )
    }

    fn timeline(recs: &[(JobPhase, u64, u64)]) -> PhaseTimeline {
        let mut tl = PhaseTimeline::new();
        for &(phase, start, end) in recs {
            tl.push(PhaseRecord {
                phase,
                start: t(start),
                end: t(end),
            });
        }
        tl
    }

    #[test]
    fn attribution_conserves_metered_energy() {
        // Compute: 100 W for 60 s then 300 W for 60 s; storage flat 50 W.
        let compute = profile(&[(60, 100.0), (120, 300.0)]);
        let storage = profile(&[(60, 50.0), (120, 50.0)]);
        let tl = timeline(&[
            (JobPhase::Simulate, 0, 40),
            (JobPhase::Visualize, 40, 70),
            (JobPhase::WriteOutput, 70, 120),
        ]);
        let att = attribute(&tl, &compute, &storage);
        assert_eq!(att.rows().len(), 3);
        let diff = att.residual().joules().abs();
        assert!(diff < 1e-6, "residual {diff}");
        // Visualize straddles the 60 s boundary: 20 s at 100 W + 10 s at 300 W.
        let viz = att.get(JobPhase::Visualize).unwrap();
        assert!((viz.compute.joules() - (20.0 * 100.0 + 10.0 * 300.0)).abs() < 1e-9);
        assert!((viz.storage.joules() - 30.0 * 50.0).abs() < 1e-9);
        assert!((viz.seconds - 30.0).abs() < 1e-12);
    }

    #[test]
    fn rows_follow_canonical_order_and_merge_repeats() {
        let compute = profile(&[(100, 10.0)]);
        let storage = profile(&[(100, 1.0)]);
        let tl = timeline(&[
            (JobPhase::Simulate, 0, 20),
            (JobPhase::WriteOutput, 20, 40),
            (JobPhase::Simulate, 40, 80),
            (JobPhase::Idle, 80, 100),
        ]);
        let att = attribute(&tl, &compute, &storage);
        let phases: Vec<JobPhase> = att.rows().iter().map(|r| r.phase).collect();
        assert_eq!(
            phases,
            [JobPhase::Simulate, JobPhase::WriteOutput, JobPhase::Idle]
        );
        let sim = att.get(JobPhase::Simulate).unwrap();
        assert!((sim.seconds - 60.0).abs() < 1e-12);
        assert!((sim.compute.joules() - 600.0).abs() < 1e-9);
        assert!((att.share(JobPhase::Simulate) - 600.0 * 1.1 / 1100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_timeline_attributes_nothing() {
        let compute = profile(&[(10, 100.0)]);
        let storage = profile(&[(10, 10.0)]);
        let att = attribute(&PhaseTimeline::new(), &compute, &storage);
        assert!(att.rows().is_empty());
        assert_eq!(att.attributed_total(), Joules::ZERO);
        assert!((att.residual().joules() - 1100.0).abs() < 1e-9);
    }

    #[test]
    fn render_is_a_fixed_width_table() {
        let compute = profile(&[(100, 10.0)]);
        let storage = profile(&[(100, 1.0)]);
        let tl = timeline(&[(JobPhase::Simulate, 0, 100)]);
        let s = attribute(&tl, &compute, &storage).render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("phase"));
        assert!(lines[1].starts_with("simulate"));
        assert!(lines[2].starts_with("total"));
    }
}
