//! Interop exporters: Chrome trace-event JSON (Perfetto) and Prometheus
//! text exposition.
//!
//! Both formats are emitted deterministically — fixed component/thread
//! numbering, buffer order for spans and events, first-use order for
//! metrics — so exported artifacts are byte-identical across thread
//! counts and can be golden-pinned. [`to_chrome_trace`] produces the
//! legacy Chrome JSON array format, which Perfetto's UI
//! (<https://ui.perfetto.dev>) opens directly; [`to_prometheus`] renders
//! a [`MetricsRegistry`] snapshot in the Prometheus text exposition
//! format, including cumulative `_bucket` lines for histogram metrics.

use std::fmt::Write as _;

use crate::jsonl::{push_attrs, push_escaped, push_f64};
use crate::metrics::{MetricKind, MetricsRegistry};
use crate::recorder::{Component, TraceBuffer};

/// Fixed thread numbering for the Chrome export: every component maps to
/// one synthetic thread, in this order, so tids never depend on which
/// component happened to record first.
const COMPONENTS: [Component; 8] = [
    Component::Campaign,
    Component::Compute,
    Component::Storage,
    Component::Viz,
    Component::Native,
    Component::Fault,
    Component::Transport,
    Component::Serve,
];

fn tid(c: Component) -> usize {
    1 + COMPONENTS
        .iter()
        .position(|&k| k == c)
        .expect("every component is numbered")
}

/// Serialize a [`TraceBuffer`] as Chrome trace-event JSON.
///
/// Spans become complete (`ph:"X"`) events, instantaneous events become
/// instants (`ph:"i"`), and every metric sample becomes a counter
/// (`ph:"C"`) update, all in sim-time microseconds. Open spans (possible
/// only in a buffer exported mid-run) are skipped. One event per line,
/// so goldens diff readably.
pub fn to_chrome_trace(buf: &TraceBuffer) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push_line = |out: &mut String, line: &str| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(line);
    };
    push_line(
        &mut out,
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"insitu-vis\"}}",
    );
    let used: Vec<Component> = COMPONENTS
        .into_iter()
        .filter(|&c| {
            buf.spans().iter().any(|s| s.component == c)
                || buf.events().iter().any(|e| e.component == c)
        })
        .collect();
    for c in &used {
        let line = format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            tid(*c),
            c.label()
        );
        push_line(&mut out, &line);
    }
    for span in buf.spans() {
        let Some(end) = span.end else { continue };
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"",
            tid(span.component),
            span.start.as_micros(),
            (end - span.start).as_micros(),
        );
        push_escaped(&mut line, span.name);
        line.push_str("\",\"cat\":\"");
        push_escaped(&mut line, span.component.label());
        line.push_str("\",\"args\":");
        push_attrs(&mut line, &span.attrs);
        line.push('}');
        push_line(&mut out, &line);
    }
    for ev in buf.events() {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\"s\":\"t\",\"name\":\"",
            tid(ev.component),
            ev.at.as_micros(),
        );
        push_escaped(&mut line, ev.name);
        line.push_str("\",\"cat\":\"");
        push_escaped(&mut line, ev.component.label());
        line.push_str("\",\"args\":");
        push_attrs(&mut line, &ev.attrs);
        line.push('}');
        push_line(&mut out, &line);
    }
    for metric in buf.metrics.iter() {
        let samples: &[(ivis_sim::SimTime, f64)] = match metric.kind() {
            MetricKind::Histogram => metric.observations(),
            _ => metric.series().samples(),
        };
        for &(t, v) in samples {
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\"name\":\"",
                t.as_micros()
            );
            push_escaped(&mut line, metric.name());
            line.push_str("\",\"args\":{\"value\":");
            push_f64(&mut line, v);
            line.push_str("}}");
            push_line(&mut out, &line);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Map a metric name to a legal Prometheus metric name.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn push_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Render a [`MetricsRegistry`] snapshot in the Prometheus text
/// exposition format, in first-use order.
///
/// Counters export their final cumulative total as `<name>_total`,
/// gauges their last value, histograms cumulative `_bucket{le=...}`
/// lines over the deterministic log-bucket grid plus `_sum` and
/// `_count`. This is an end-of-run snapshot: the time dimension lives in
/// the JSONL/Chrome exports, not here.
pub fn to_prometheus(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    for metric in reg.iter() {
        let name = sanitize(metric.name());
        match metric.kind() {
            MetricKind::Counter => {
                let _ = writeln!(out, "# TYPE {name}_total counter");
                let _ = write!(out, "{name}_total ");
                push_value(&mut out, metric.last_value());
                out.push('\n');
            }
            MetricKind::Gauge => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = write!(out, "{name} ");
                push_value(&mut out, metric.last_value());
                out.push('\n');
            }
            MetricKind::Histogram => {
                let h = metric.histogram().expect("histogram kind has a snapshot");
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cum = 0u64;
                for &(bound, count) in &h.buckets {
                    cum += count;
                    let _ = write!(out, "{name}_bucket{{le=\"");
                    push_value(&mut out, bound);
                    let _ = writeln!(out, "\"}} {cum}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = write!(out, "{name}_sum ");
                push_value(&mut out, h.sum);
                out.push('\n');
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{AttrValue, Recorder};
    use ivis_cluster::JobPhase;
    use ivis_sim::SimTime;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn sample_recorder() -> Recorder {
        let rec = Recorder::in_memory();
        let root = rec.span(t(0.0), "campaign", Component::Campaign);
        rec.set_attr(root, "kind", AttrValue::Str("insitu"));
        let phase = rec.phase_span(t(0.0), JobPhase::Simulate, Component::Compute);
        rec.event(
            t(1.5),
            "output_written",
            Component::Storage,
            &[("bytes", AttrValue::U64(42))],
        );
        rec.counter_add(t(1.5), "pfs.bytes_written", 42.0);
        rec.gauge_set(t(1.5), "cluster.power_w", 46_300.0);
        rec.histogram_record(t(1.0), "transport.stall_seconds", 0.375);
        rec.histogram_record(t(1.6), "transport.stall_seconds", 1.375);
        rec.histogram_record(t(1.7), "transport.stall_seconds", 1.25);
        rec.close(t(2.0), phase);
        rec.close(t(2.0), root);
        rec
    }

    #[test]
    fn chrome_trace_shape_is_pinned() {
        let rec = sample_recorder();
        let text = rec.with_buffer(to_chrome_trace).unwrap();
        let expected = "\
{\"displayTimeUnit\":\"ms\",\"traceEvents\":[
{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"insitu-vis\"}},
{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"campaign\"}},
{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"compute\"}},
{\"ph\":\"M\",\"pid\":1,\"tid\":3,\"name\":\"thread_name\",\"args\":{\"name\":\"storage\"}},
{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":2000000,\"name\":\"campaign\",\"cat\":\"campaign\",\"args\":{\"kind\":\"insitu\"}},
{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":0,\"dur\":2000000,\"name\":\"simulate\",\"cat\":\"compute\",\"args\":{}},
{\"ph\":\"i\",\"pid\":1,\"tid\":3,\"ts\":1500000,\"s\":\"t\",\"name\":\"output_written\",\"cat\":\"storage\",\"args\":{\"bytes\":42}},
{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1500000,\"name\":\"pfs.bytes_written\",\"args\":{\"value\":42}},
{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1500000,\"name\":\"cluster.power_w\",\"args\":{\"value\":46300}},
{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1000000,\"name\":\"transport.stall_seconds\",\"args\":{\"value\":0.375}},
{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1600000,\"name\":\"transport.stall_seconds\",\"args\":{\"value\":1.375}},
{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1700000,\"name\":\"transport.stall_seconds\",\"args\":{\"value\":1.25}}
]}
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_snapshot_is_pinned() {
        let rec = sample_recorder();
        let text = rec.with_buffer(|b| to_prometheus(&b.metrics)).unwrap();
        let expected = "\
# TYPE pfs_bytes_written_total counter
pfs_bytes_written_total 42
# TYPE cluster_power_w gauge
cluster_power_w 46300
# TYPE transport_stall_seconds histogram
transport_stall_seconds_bucket{le=\"0.375\"} 1
transport_stall_seconds_bucket{le=\"1.25\"} 2
transport_stall_seconds_bucket{le=\"1.5\"} 3
transport_stall_seconds_bucket{le=\"+Inf\"} 3
transport_stall_seconds_sum 3
transport_stall_seconds_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn open_spans_are_skipped_not_corrupted() {
        let rec = Recorder::in_memory();
        let _open = rec.span(t(0.0), "dangling", Component::Compute);
        let text = rec.with_buffer(to_chrome_trace).unwrap();
        assert!(!text.contains("dangling"));
        assert!(text.contains("thread_name"));
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(sanitize("pfs.bytes-written"), "pfs_bytes_written");
        assert_eq!(sanitize("ok_name3"), "ok_name3");
    }
}
