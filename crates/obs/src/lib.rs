//! Observability for the in-situ visualization pipelines.
//!
//! The paper this workspace reproduces is, at heart, an observability
//! study: it instruments a coupled simulation/visualization job with power
//! meters and phase timelines (Fig. 4) and turns the traces into a cost
//! model (Eq. 4–5). This crate gives the reproduction the same
//! introspection pathway:
//!
//! * [`recorder`] — a **sim-time-aware tracer**: spans open and close on
//!   [`ivis_sim::SimTime`], carry a [`ivis_cluster::JobPhase`]/component
//!   label plus key-value attributes, and nest (campaign → phase →
//!   per-write / per-frame activity). Recording is controlled by a
//!   [`Sink`]: with [`Sink::Off`] every hook is a branch on an enum
//!   discriminant and returns without allocating — no `dyn` dispatch, no
//!   external tracing dependencies.
//! * [`metrics`] — a registry of counters and gauges stored as
//!   [`ivis_sim::TimeSeries`] step functions, so time-weighted integrals,
//!   averages and histograms are exact rather than sampled.
//! * [`metrics`] also carries **log-bucketed histogram metrics**:
//!   HDR-style quarter-octave buckets with boundaries derived from the
//!   value's bit pattern, so distributions (queue depths, retry
//!   latencies, transport stalls) are deterministic across platforms and
//!   merge exactly across per-thread recorders.
//! * [`telemetry`] — **time-resolved power telemetry**: a
//!   [`PowerTimeline`] resamples a harvested power profile (or a phase
//!   timeline joined with a node power model) through [`MeteredPdu`]
//!   interval averaging at a configurable cadence — the paper's
//!   one-sample-per-minute PDU pathway — with exact time-weighted
//!   peak/mean/percentile stats and power-cap-exceedance accounting.
//! * [`jsonl`], [`csv`], [`gantt`], [`exporters`] — sinks: a
//!   stable-schema JSONL trace exporter (one record per line), CSV
//!   renderers that plug into the bench harness's CSV export, an ASCII
//!   Gantt/timeline renderer (the terminal analogue of the paper's
//!   Fig. 4 power-profile plot), plus Chrome trace-event JSON (open it
//!   at <https://ui.perfetto.dev>) and a Prometheus text-exposition
//!   snapshot of the metrics registry.
//! * [`energy`] — the **per-phase energy attribution report**: joins a
//!   phase timeline against the compute/storage [`PowerProfile`]s to
//!   report joules by `JobPhase × {compute, storage}`, making the paper's
//!   §VIII busy-wait-I/O observation (and the `IoWaitPolicy::DeepIdle`
//!   ablation) directly inspectable.
//!
//! [`PowerProfile`]: ivis_power::profile::PowerProfile
//! [`PowerTimeline`]: telemetry::PowerTimeline
//! [`MeteredPdu`]: ivis_power::meter::MeteredPdu

pub mod csv;
pub mod energy;
pub mod exporters;
pub mod gantt;
pub mod jsonl;
pub mod metrics;
pub mod recorder;
pub mod telemetry;

pub use energy::{attribute, EnergyAttribution, PhaseEnergy};
pub use exporters::{to_chrome_trace, to_prometheus};
pub use gantt::{render_fig4, render_timeline};
pub use jsonl::to_jsonl;
pub use metrics::{
    log_bucket_upper, HistogramSnapshot, Metric, MetricKind, MetricsRegistry, TimeWeightedHistogram,
};
pub use recorder::{AttrValue, Component, Event, Recorder, Sink, Span, SpanId, TraceBuffer};
pub use telemetry::{paper_cadence, PowerTimeline, TimelineStats};
