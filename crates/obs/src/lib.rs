//! Observability for the in-situ visualization pipelines.
//!
//! The paper this workspace reproduces is, at heart, an observability
//! study: it instruments a coupled simulation/visualization job with power
//! meters and phase timelines (Fig. 4) and turns the traces into a cost
//! model (Eq. 4–5). This crate gives the reproduction the same
//! introspection pathway:
//!
//! * [`recorder`] — a **sim-time-aware tracer**: spans open and close on
//!   [`ivis_sim::SimTime`], carry a [`ivis_cluster::JobPhase`]/component
//!   label plus key-value attributes, and nest (campaign → phase →
//!   per-write / per-frame activity). Recording is controlled by a
//!   [`Sink`]: with [`Sink::Off`] every hook is a branch on an enum
//!   discriminant and returns without allocating — no `dyn` dispatch, no
//!   external tracing dependencies.
//! * [`metrics`] — a registry of counters and gauges stored as
//!   [`ivis_sim::TimeSeries`] step functions, so time-weighted integrals,
//!   averages and histograms are exact rather than sampled.
//! * [`jsonl`], [`csv`], [`gantt`] — sinks: a stable-schema JSONL trace
//!   exporter (one record per line), CSV renderers that plug into the
//!   bench harness's CSV export, and an ASCII Gantt/timeline renderer (the
//!   terminal analogue of the paper's Fig. 4 power-profile plot).
//! * [`energy`] — the **per-phase energy attribution report**: joins a
//!   phase timeline against the compute/storage [`PowerProfile`]s to
//!   report joules by `JobPhase × {compute, storage}`, making the paper's
//!   §VIII busy-wait-I/O observation (and the `IoWaitPolicy::DeepIdle`
//!   ablation) directly inspectable.
//!
//! [`PowerProfile`]: ivis_power::profile::PowerProfile

pub mod csv;
pub mod energy;
pub mod gantt;
pub mod jsonl;
pub mod metrics;
pub mod recorder;

pub use energy::{attribute, EnergyAttribution, PhaseEnergy};
pub use gantt::{render_fig4, render_timeline};
pub use jsonl::to_jsonl;
pub use metrics::{Metric, MetricKind, MetricsRegistry, TimeWeightedHistogram};
pub use recorder::{AttrValue, Component, Event, Recorder, Sink, Span, SpanId, TraceBuffer};
