//! Sim-time-aware span/event tracer.
//!
//! A [`Recorder`] is the handle instrumented code holds. It wraps a
//! [`Sink`]; with [`Sink::Off`] (the default) every recording method is a
//! single match on the enum discriminant followed by an immediate return —
//! no allocation, no `dyn` dispatch, no locking. With [`Sink::Memory`] the
//! events land in a shared [`TraceBuffer`] that the caller can drain into
//! JSONL/CSV/ASCII sinks or feed to the energy attributor after the run.
//!
//! Spans open and close on [`SimTime`] (not wall clock), so traces from
//! the discrete-event backend line up exactly with the campaign's power
//! meters; the native backend maps its wall-clock measurements onto
//! `SimTime` before recording.

use std::cell::{Ref, RefCell};
use std::rc::Rc;

use ivis_cluster::{JobPhase, PhaseRecord, PhaseTimeline};
use ivis_sim::SimTime;

use crate::metrics::MetricsRegistry;

/// Which layer of the pipeline emitted a span or event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// Campaign-level orchestration (the root span).
    Campaign,
    /// Compute cluster activity (simulate/visualize phases).
    Compute,
    /// Parallel file system / storage rack activity.
    Storage,
    /// Visualization-specific activity.
    Viz,
    /// The native (real computation) backend.
    Native,
    /// Fault injection, retries, and degradation decisions.
    Fault,
    /// The compute→staging transport (queue, link, compression).
    Transport,
    /// The post-hoc query service (requests, batches, cache, shedding).
    Serve,
}

impl Component {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            Component::Campaign => "campaign",
            Component::Compute => "compute",
            Component::Storage => "storage",
            Component::Viz => "viz",
            Component::Native => "native",
            Component::Fault => "fault",
            Component::Transport => "transport",
            Component::Serve => "serve",
        }
    }
}

/// Attribute value attached to a span or event.
///
/// String attributes are `&'static str` so recording never allocates for
/// the key *or* the value; dynamic strings belong in metrics or in the
/// exporter layer, not the hot path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer attribute (counts, byte sizes, indices).
    U64(u64),
    /// Signed integer attribute.
    I64(i64),
    /// Floating-point attribute (watts, seconds, ratios).
    F64(f64),
    /// Static string attribute (labels, policy names).
    Str(&'static str),
}

/// Identifier of a span within one [`TraceBuffer`].
///
/// `SpanId::NONE` is both "no parent" and the id handed out while the
/// sink is off, so instrumented code can thread ids around without
/// checking whether tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u32);

impl SpanId {
    /// Sentinel: no span. Returned by every open call when the sink is
    /// off; ignored by every close call.
    pub const NONE: SpanId = SpanId(u32::MAX);

    /// Whether this id is the [`SpanId::NONE`] sentinel.
    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }
}

/// A closed or still-open interval of sim time.
#[derive(Debug, Clone)]
pub struct Span {
    /// Static name, e.g. `"simulate"` or `"pfs_write"`.
    pub name: &'static str,
    /// Emitting layer.
    pub component: Component,
    /// Job phase this span represents, if it is a phase span.
    pub phase: Option<JobPhase>,
    /// Enclosing span, or [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// Open time.
    pub start: SimTime,
    /// Close time; `None` while the span is open.
    pub end: Option<SimTime>,
    /// Key-value attributes set at open time or via `set_attr`.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// An instantaneous occurrence at a point in sim time.
#[derive(Debug, Clone)]
pub struct Event {
    /// Static name, e.g. `"output_written"`.
    pub name: &'static str,
    /// Emitting layer.
    pub component: Component,
    /// Span open at record time, or [`SpanId::NONE`].
    pub parent: SpanId,
    /// Occurrence time.
    pub at: SimTime,
    /// Key-value attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// In-memory trace storage: spans, events and the metrics registry.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    spans: Vec<Span>,
    events: Vec<Event>,
    stack: Vec<SpanId>,
    /// Counters and gauges recorded alongside the trace.
    pub metrics: MetricsRegistry,
}

impl TraceBuffer {
    /// Open a span at `t`, parented to the innermost open span.
    pub fn open_span(
        &mut self,
        t: SimTime,
        name: &'static str,
        component: Component,
        phase: Option<JobPhase>,
    ) -> SpanId {
        let parent = self.stack.last().copied().unwrap_or(SpanId::NONE);
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(Span {
            name,
            component,
            phase,
            parent,
            start: t,
            end: None,
            attrs: Vec::new(),
        });
        self.stack.push(id);
        id
    }

    /// Close span `id` at `t`. Panics on double close or `t` before open.
    pub fn close_span(&mut self, t: SimTime, id: SpanId) {
        let span = &mut self.spans[id.0 as usize];
        assert!(span.end.is_none(), "span '{}' closed twice", span.name);
        assert!(
            t >= span.start,
            "span '{}' closed at {:?} before its open {:?}",
            span.name,
            t,
            span.start
        );
        span.end = Some(t);
        if let Some(pos) = self.stack.iter().rposition(|&s| s == id) {
            self.stack.remove(pos);
        }
    }

    /// Append an attribute to span `id`.
    pub fn set_attr(&mut self, id: SpanId, key: &'static str, value: AttrValue) {
        self.spans[id.0 as usize].attrs.push((key, value));
    }

    /// Record an instantaneous event at `t` under the innermost open span.
    pub fn record_event(
        &mut self,
        t: SimTime,
        name: &'static str,
        component: Component,
        attrs: &[(&'static str, AttrValue)],
    ) {
        let parent = self.stack.last().copied().unwrap_or(SpanId::NONE);
        self.events.push(Event {
            name,
            component,
            parent,
            at: t,
            attrs: attrs.to_vec(),
        });
    }

    /// All spans, in open order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All events, in record order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Merge per-thread buffers into one, ordered by sim time.
    ///
    /// `TraceBuffer` is `Send` (unlike [`Recorder`], whose sink is an
    /// `Rc`), so concurrent instrumentation gives each worker thread its
    /// own buffer and merges after joining. Spans are reordered by
    /// `(start, part index, open order)` and their parent ids remapped to
    /// the merged numbering; events likewise by `(time, part index, record
    /// order)`; metrics merge via [`MetricsRegistry::merge`]. The result
    /// depends only on the recorded sim times and the order of `parts` —
    /// not on thread scheduling — and satisfies [`Self::phase_timeline`]'s
    /// chronological invariant as long as the parts' phase spans do not
    /// overlap in sim time.
    ///
    /// # Panics
    /// Panics if any part still has an open span.
    pub fn merge(parts: Vec<TraceBuffer>) -> TraceBuffer {
        for (i, part) in parts.iter().enumerate() {
            assert!(
                part.stack.is_empty(),
                "part {i} still has {} open span(s)",
                part.stack.len()
            );
        }
        // Sort span identities by (start, part, open order), then remap.
        let mut span_keys: Vec<(SimTime, usize, usize)> = parts
            .iter()
            .enumerate()
            .flat_map(|(p, part)| {
                part.spans
                    .iter()
                    .enumerate()
                    .map(move |(s, span)| (span.start, p, s))
            })
            .collect();
        span_keys.sort();
        let nspans: Vec<usize> = parts.iter().map(|part| part.spans.len()).collect();
        let mut new_id = vec![SpanId::NONE; nspans.iter().sum()];
        let base: Vec<usize> = nspans
            .iter()
            .scan(0, |acc, &n| {
                let b = *acc;
                *acc += n;
                Some(b)
            })
            .collect();
        for (new, &(_, p, s)) in span_keys.iter().enumerate() {
            new_id[base[p] + s] = SpanId(new as u32);
        }
        let remap = |p: usize, id: SpanId| -> SpanId {
            if id.is_none() {
                SpanId::NONE
            } else {
                new_id[base[p] + id.0 as usize]
            }
        };
        let mut merged = TraceBuffer::default();
        for &(_, p, s) in &span_keys {
            let mut span = parts[p].spans[s].clone();
            span.parent = remap(p, span.parent);
            merged.spans.push(span);
        }
        let mut event_keys: Vec<(SimTime, usize, usize)> = parts
            .iter()
            .enumerate()
            .flat_map(|(p, part)| {
                part.events
                    .iter()
                    .enumerate()
                    .map(move |(e, ev)| (ev.at, p, e))
            })
            .collect();
        event_keys.sort();
        for &(_, p, e) in &event_keys {
            let mut ev = parts[p].events[e].clone();
            ev.parent = remap(p, ev.parent);
            merged.events.push(ev);
        }
        merged.metrics = MetricsRegistry::merge(parts.into_iter().map(|b| b.metrics).collect());
        merged
    }

    /// Rebuild a [`PhaseTimeline`] from the closed phase spans.
    ///
    /// Phase spans are emitted in chronological, non-overlapping order by
    /// both backends, which is exactly the invariant `PhaseTimeline::push`
    /// enforces.
    pub fn phase_timeline(&self) -> PhaseTimeline {
        let mut tl = PhaseTimeline::new();
        for span in &self.spans {
            if let (Some(phase), Some(end)) = (span.phase, span.end) {
                tl.push(PhaseRecord {
                    phase,
                    start: span.start,
                    end,
                });
            }
        }
        tl
    }
}

/// Where trace data goes. Static dispatch: instrumented code matches on
/// the variant inline, so the off case compiles to a predictable branch.
#[derive(Debug, Clone, Default)]
pub enum Sink {
    /// Discard everything. All recording methods return immediately
    /// without allocating.
    #[default]
    Off,
    /// Append to a shared in-memory [`TraceBuffer`].
    Memory(Rc<RefCell<TraceBuffer>>),
}

/// Handle held by instrumented code. Cloning shares the underlying
/// buffer, so a caller can keep one clone and hand another to the
/// pipeline via its config.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    sink: Sink,
}

impl Recorder {
    /// A recorder that discards everything (the default).
    pub fn off() -> Self {
        Recorder { sink: Sink::Off }
    }

    /// A recorder writing to a fresh in-memory buffer.
    pub fn in_memory() -> Self {
        Recorder {
            sink: Sink::Memory(Rc::new(RefCell::new(TraceBuffer::default()))),
        }
    }

    /// The underlying sink.
    pub fn sink(&self) -> &Sink {
        &self.sink
    }

    /// Whether recording is enabled.
    pub fn is_on(&self) -> bool {
        !matches!(self.sink, Sink::Off)
    }

    /// Open a plain (non-phase) span.
    pub fn span(&self, t: SimTime, name: &'static str, component: Component) -> SpanId {
        match &self.sink {
            Sink::Off => SpanId::NONE,
            Sink::Memory(buf) => buf.borrow_mut().open_span(t, name, component, None),
        }
    }

    /// Open a span representing a [`JobPhase`]; its name is the phase label.
    pub fn phase_span(&self, t: SimTime, phase: JobPhase, component: Component) -> SpanId {
        match &self.sink {
            Sink::Off => SpanId::NONE,
            Sink::Memory(buf) => {
                buf.borrow_mut()
                    .open_span(t, phase.label(), component, Some(phase))
            }
        }
    }

    /// Close `id` at `t`. No-op when the sink is off or `id` is
    /// [`SpanId::NONE`].
    pub fn close(&self, t: SimTime, id: SpanId) {
        match &self.sink {
            Sink::Off => {}
            Sink::Memory(buf) => {
                if !id.is_none() {
                    buf.borrow_mut().close_span(t, id);
                }
            }
        }
    }

    /// Attach an attribute to an open or closed span.
    pub fn set_attr(&self, id: SpanId, key: &'static str, value: AttrValue) {
        match &self.sink {
            Sink::Off => {}
            Sink::Memory(buf) => {
                if !id.is_none() {
                    buf.borrow_mut().set_attr(id, key, value);
                }
            }
        }
    }

    /// Record an instantaneous event.
    pub fn event(
        &self,
        t: SimTime,
        name: &'static str,
        component: Component,
        attrs: &[(&'static str, AttrValue)],
    ) {
        match &self.sink {
            Sink::Off => {}
            Sink::Memory(buf) => buf.borrow_mut().record_event(t, name, component, attrs),
        }
    }

    /// Add `delta` to the named counter at `t`.
    pub fn counter_add(&self, t: SimTime, name: &'static str, delta: f64) {
        match &self.sink {
            Sink::Off => {}
            Sink::Memory(buf) => buf.borrow_mut().metrics.counter_add(t, name, delta),
        }
    }

    /// Set the named gauge to `value` at `t`.
    pub fn gauge_set(&self, t: SimTime, name: &'static str, value: f64) {
        match &self.sink {
            Sink::Off => {}
            Sink::Memory(buf) => buf.borrow_mut().metrics.gauge_set(t, name, value),
        }
    }

    /// Record one observation of `value` in the named histogram at `t`.
    pub fn histogram_record(&self, t: SimTime, name: &'static str, value: f64) {
        match &self.sink {
            Sink::Off => {}
            Sink::Memory(buf) => buf.borrow_mut().metrics.histogram_record(t, name, value),
        }
    }

    /// Borrow the buffer, if recording. Panics if the buffer is already
    /// mutably borrowed (i.e. called from inside a recording hook).
    pub fn buffer(&self) -> Option<Ref<'_, TraceBuffer>> {
        match &self.sink {
            Sink::Off => None,
            Sink::Memory(buf) => Some(buf.borrow()),
        }
    }

    /// Run `f` against the buffer, if recording.
    pub fn with_buffer<R>(&self, f: impl FnOnce(&TraceBuffer) -> R) -> Option<R> {
        match &self.sink {
            Sink::Off => None,
            Sink::Memory(buf) => Some(f(&buf.borrow())),
        }
    }

    /// Take sole ownership of the buffer, e.g. to hand it to
    /// [`TraceBuffer::merge`] after a worker finishes. Returns `None` when
    /// the sink is off or other clones of this recorder are still alive.
    pub fn into_buffer(self) -> Option<TraceBuffer> {
        match self.sink {
            Sink::Off => None,
            Sink::Memory(buf) => Rc::try_unwrap(buf).ok().map(RefCell::into_inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn off_sink_returns_sentinels_and_records_nothing() {
        let rec = Recorder::off();
        assert!(!rec.is_on());
        let id = rec.span(t(0.0), "root", Component::Campaign);
        assert!(id.is_none());
        rec.set_attr(id, "k", AttrValue::U64(1));
        rec.event(t(1.0), "e", Component::Compute, &[]);
        rec.counter_add(t(1.0), "c", 1.0);
        rec.gauge_set(t(1.0), "g", 2.0);
        rec.histogram_record(t(1.0), "h", 3.0);
        rec.close(t(2.0), id);
        assert!(rec.buffer().is_none());
    }

    #[test]
    fn spans_nest_and_events_attach_to_innermost() {
        let rec = Recorder::in_memory();
        let root = rec.span(t(0.0), "campaign", Component::Campaign);
        let phase = rec.phase_span(t(0.0), JobPhase::Simulate, Component::Compute);
        rec.event(
            t(0.5),
            "tick",
            Component::Compute,
            &[("k", AttrValue::U64(3))],
        );
        rec.close(t(1.0), phase);
        rec.close(t(1.0), root);

        let buf = rec.buffer().unwrap();
        assert_eq!(buf.spans().len(), 2);
        assert_eq!(buf.spans()[1].parent, root);
        assert_eq!(buf.spans()[1].phase, Some(JobPhase::Simulate));
        assert_eq!(buf.events().len(), 1);
        assert_eq!(buf.events()[0].parent, phase);
        assert_eq!(buf.events()[0].attrs[0], ("k", AttrValue::U64(3)));
    }

    #[test]
    fn phase_timeline_roundtrips_phase_spans() {
        let rec = Recorder::in_memory();
        let root = rec.span(t(0.0), "campaign", Component::Campaign);
        for (phase, start, end) in [
            (JobPhase::Simulate, 0.0, 10.0),
            (JobPhase::Visualize, 10.0, 12.0),
            (JobPhase::WriteOutput, 12.0, 15.0),
        ] {
            let id = rec.phase_span(t(start), phase, Component::Compute);
            rec.close(t(end), id);
        }
        rec.close(t(15.0), root);

        let tl = rec.with_buffer(|b| b.phase_timeline()).unwrap();
        assert_eq!(tl.records().len(), 3);
        assert_eq!(tl.makespan().as_secs_f64(), 15.0);
        assert_eq!(tl.time_in(JobPhase::Visualize).as_secs_f64(), 2.0);
    }

    #[test]
    fn merge_orders_spans_by_sim_time_and_remaps_parents() {
        // Two workers trace disjoint sim-time windows, out of order.
        let late = Recorder::in_memory();
        let root_b = late.span(t(10.0), "window-b", Component::Compute);
        let inner_b = late.phase_span(t(11.0), JobPhase::Visualize, Component::Viz);
        late.event(t(11.5), "tick", Component::Viz, &[]);
        late.close(t(12.0), inner_b);
        late.close(t(15.0), root_b);

        let early = Recorder::in_memory();
        let root_a = early.span(t(0.0), "window-a", Component::Compute);
        let inner_a = early.phase_span(t(1.0), JobPhase::Simulate, Component::Compute);
        early.close(t(5.0), inner_a);
        early.close(t(9.0), root_a);

        let merged = TraceBuffer::merge(vec![
            late.into_buffer().unwrap(),
            early.into_buffer().unwrap(),
        ]);
        let names: Vec<_> = merged.spans().iter().map(|s| s.name).collect();
        assert_eq!(names, ["window-a", "simulate", "window-b", "visualize"]);
        // Parent links survive the renumbering.
        assert_eq!(merged.spans()[1].parent, SpanId(0));
        assert_eq!(merged.spans()[3].parent, SpanId(2));
        assert_eq!(merged.events()[0].parent, SpanId(3));
        // Phase spans land in chronological order, so the timeline builds.
        let tl = merged.phase_timeline();
        assert_eq!(tl.records().len(), 2);
        assert_eq!(tl.time_in(JobPhase::Simulate).as_secs_f64(), 4.0);
    }

    #[test]
    #[should_panic(expected = "open span")]
    fn merge_rejects_open_spans() {
        let rec = Recorder::in_memory();
        let _open = rec.span(t(0.0), "dangling", Component::Compute);
        let _ = TraceBuffer::merge(vec![rec.into_buffer().unwrap()]);
    }

    #[test]
    fn into_buffer_requires_sole_ownership() {
        let rec = Recorder::in_memory();
        let clone = rec.clone();
        assert!(rec.into_buffer().is_none(), "clone still alive");
        assert!(clone.into_buffer().is_some());
        assert!(Recorder::off().into_buffer().is_none());
    }

    #[test]
    fn clones_share_one_buffer() {
        let rec = Recorder::in_memory();
        let clone = rec.clone();
        let id = clone.span(t(0.0), "s", Component::Native);
        clone.close(t(1.0), id);
        assert_eq!(rec.with_buffer(|b| b.spans().len()), Some(1));
    }
}
