//! Time-resolved power telemetry: sampled W(t) timelines.
//!
//! The paper's primary instrument is not an energy total but a **power
//! trace**: the Raritan PDU on the Lustre rack and the Appro cage
//! monitors each emit one interval-averaged watt sample per minute, and
//! every characterization figure is derived from those timelines. A
//! [`PowerTimeline`] reconstructs that signal from what a run records —
//! either a [`PowerProfile`] harvested from the campaign meters or a
//! phase timeline plus a phase→watts model — and replays it through
//! [`MeteredPdu`] interval averaging at a configurable cadence
//! ([`paper_cadence`], one minute, down to one second).
//!
//! Interval averaging moves power *within* a reporting interval but
//! never creates or destroys energy, so the integral of a sampled
//! timeline equals the exact integral of the source signal; the property
//! test at the bottom of this module pins that invariant to 1e-6 against
//! [`PowerProfile::energy_between`], which is what makes the timelines
//! safe to use for attribution-grade accounting and not just plotting.

use ivis_cluster::{JobPhase, PhaseTimeline};
use ivis_power::meter::{MeterSample, MeteredPdu};
use ivis_power::profile::PowerProfile;
use ivis_power::units::{Joules, Watts};
use ivis_sim::{SimDuration, SimTime};

use crate::metrics::MetricsRegistry;

/// The paper's reporting cadence: one interval-averaged sample per minute.
pub fn paper_cadence() -> SimDuration {
    SimDuration::from_mins(1)
}

/// A sampled W(t) signal: interval-averaged power samples at a fixed
/// cadence, labelled by the component they meter.
#[derive(Debug, Clone)]
pub struct PowerTimeline {
    label: String,
    start: SimTime,
    cadence: SimDuration,
    samples: Vec<MeterSample>,
}

/// Rolling-window summary of a [`PowerTimeline`]: peak, time-weighted
/// mean and exact time-weighted percentiles of the sampled signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineStats {
    /// Window length actually covered by samples.
    pub duration: SimDuration,
    /// Highest sample in the window.
    pub peak: Watts,
    /// Time-weighted mean power.
    pub mean: Watts,
    /// Exact time-weighted median.
    pub p50: Watts,
    /// Exact time-weighted 95th percentile.
    pub p95: Watts,
    /// Exact time-weighted 99th percentile.
    pub p99: Watts,
}

impl PowerTimeline {
    /// Resample a harvested [`PowerProfile`] at `cadence`.
    ///
    /// The profile's own interval-averaged samples are replayed as a step
    /// signal into a fresh [`MeteredPdu`] and read back at the requested
    /// cadence — exactly the pathway a physical meter at that cadence
    /// would have seen.
    ///
    /// # Panics
    /// Panics if `cadence` is zero.
    pub fn from_profile(
        label: impl Into<String>,
        profile: &PowerProfile,
        cadence: SimDuration,
    ) -> Self {
        let label = label.into();
        let mut pdu = MeteredPdu::new(label.clone(), cadence, Watts::ZERO);
        let mut prev = profile.start();
        for s in profile.samples() {
            pdu.observe(prev, s.avg);
            prev = s.at;
        }
        let samples = pdu.report(profile.start(), profile.end());
        PowerTimeline {
            label,
            start: profile.start(),
            cadence,
            samples,
        }
    }

    /// Reconstruct a timeline from a phase timeline and a phase→watts
    /// model, e.g. the native backend's wall-clock-mapped spans joined
    /// with a node power model. Gaps between phase records draw
    /// [`JobPhase::Idle`] power.
    ///
    /// # Panics
    /// Panics if `cadence` is zero.
    pub fn from_phases(
        label: impl Into<String>,
        timeline: &PhaseTimeline,
        power: impl Fn(JobPhase) -> Watts,
        cadence: SimDuration,
    ) -> Self {
        let label = label.into();
        let mut pdu = MeteredPdu::new(label.clone(), cadence, power(JobPhase::Idle));
        let records = timeline.records();
        let start = records.first().map_or(SimTime::ZERO, |r| r.start);
        let mut prev_end = start;
        for r in records {
            if r.start > prev_end {
                pdu.observe(prev_end, power(JobPhase::Idle));
            }
            pdu.observe(r.start, power(r.phase));
            prev_end = r.end;
        }
        let samples = pdu.report(start, prev_end);
        PowerTimeline {
            label,
            start,
            cadence,
            samples,
        }
    }

    /// Component label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Sampling cadence.
    pub fn cadence(&self) -> SimDuration {
        self.cadence
    }

    /// Beginning of the sampled window.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// End of the sampled window (start when empty).
    pub fn end(&self) -> SimTime {
        self.samples.last().map_or(self.start, |s| s.at)
    }

    /// The interval-averaged samples; each covers the interval ending at
    /// its `at`.
    pub fn samples(&self) -> &[MeterSample] {
        &self.samples
    }

    /// Whether the window contains no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The timeline as a [`PowerProfile`], for reuse of the attribution
    /// machinery (`energy_between`, `sum`, Fig. 4 rows).
    pub fn as_profile(&self) -> PowerProfile {
        PowerProfile::from_meter_samples(self.start, self.samples.clone())
    }

    /// Exact integral of the sampled signal over the whole window.
    pub fn energy(&self) -> Joules {
        let mut prev = self.start;
        let mut total = Joules::ZERO;
        for s in &self.samples {
            total += s.avg.over(s.at - prev);
            prev = s.at;
        }
        total
    }

    /// Exact integral over `[from, to]`, clipping intervals like
    /// [`PowerProfile::energy_between`].
    pub fn energy_between(&self, from: SimTime, to: SimTime) -> Joules {
        self.as_profile().energy_between(from, to)
    }

    /// `(minutes_since_start, watts)` rows — the shape the paper plots in
    /// Fig. 4 and `phase_power.csv` serializes.
    pub fn rows(&self) -> Vec<(f64, f64)> {
        self.as_profile().as_rows()
    }

    /// `(interval_start, average_watts)` pairs — the step function form
    /// used to publish the timeline as a gauge.
    pub fn gauge_samples(&self) -> Vec<(SimTime, Watts)> {
        let mut prev = self.start;
        let mut out = Vec::with_capacity(self.samples.len());
        for s in &self.samples {
            out.push((prev, s.avg));
            prev = s.at;
        }
        out
    }

    /// Publish the timeline into a [`MetricsRegistry`] as the gauge
    /// `name`, one step per interval (so the Prometheus snapshot carries
    /// the power signal).
    pub fn record_gauges(&self, reg: &mut MetricsRegistry, name: &'static str) {
        for (at, w) in self.gauge_samples() {
            reg.gauge_set(at, name, w.watts());
        }
    }

    /// Clipped `(seconds, watts)` intervals covering `[from, to]`.
    fn clipped(&self, from: SimTime, to: SimTime) -> Vec<(f64, Watts)> {
        assert!(to >= from, "stats window end precedes start");
        let mut prev = self.start;
        let mut out = Vec::new();
        for s in &self.samples {
            let lo = if prev > from { prev } else { from };
            let hi = if s.at < to { s.at } else { to };
            if hi > lo {
                out.push(((hi - lo).as_secs_f64(), s.avg));
            }
            prev = s.at;
            if prev >= to {
                break;
            }
        }
        out
    }

    /// Rolling-window stats over `[from, to]`. Percentiles are exact
    /// time-weighted quantiles of the step signal: the reported value is
    /// the power level below which the signal spent `q` of the window.
    /// All-zero when the window holds no samples.
    ///
    /// # Panics
    /// Panics if `to < from`.
    pub fn stats_over(&self, from: SimTime, to: SimTime) -> TimelineStats {
        let mut intervals = self.clipped(from, to);
        let total: f64 = intervals.iter().map(|&(s, _)| s).sum();
        if total <= 0.0 {
            return TimelineStats {
                duration: SimDuration::ZERO,
                peak: Watts::ZERO,
                mean: Watts::ZERO,
                p50: Watts::ZERO,
                p95: Watts::ZERO,
                p99: Watts::ZERO,
            };
        }
        let peak = intervals
            .iter()
            .map(|&(_, w)| w)
            .fold(Watts::ZERO, |a, b| if b > a { b } else { a });
        let joules: f64 = intervals.iter().map(|&(s, w)| s * w.watts()).sum();
        intervals.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("watt samples are finite"));
        let quantile = |q: f64| -> Watts {
            let target = q * total;
            let mut cum = 0.0;
            for &(secs, w) in &intervals {
                cum += secs;
                if cum >= target {
                    return w;
                }
            }
            intervals.last().expect("window is non-empty").1
        };
        TimelineStats {
            duration: SimDuration::from_secs_f64(total),
            peak,
            mean: Watts(joules / total),
            p50: quantile(0.5),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }

    /// Rolling-window stats over the whole sampled window.
    pub fn stats(&self) -> TimelineStats {
        self.stats_over(self.start, self.end())
    }

    /// Power-cap-exceedance duration: total time in `[from, to]` the
    /// sampled signal sat strictly above `cap`.
    pub fn time_above_over(&self, cap: Watts, from: SimTime, to: SimTime) -> SimDuration {
        let secs: f64 = self
            .clipped(from, to)
            .iter()
            .filter(|&&(_, w)| w > cap)
            .map(|&(s, _)| s)
            .sum();
        SimDuration::from_secs_f64(secs)
    }

    /// Power-cap-exceedance duration over the whole window.
    pub fn time_above(&self, cap: Watts) -> SimDuration {
        self.time_above_over(cap, self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample(at: u64, w: f64) -> MeterSample {
        MeterSample {
            at: t(at),
            avg: Watts(w),
        }
    }

    /// A 3-minute profile at 1-min cadence: 100 W, 300 W, 100 W.
    fn square_profile() -> PowerProfile {
        PowerProfile::from_meter_samples(
            SimTime::ZERO,
            vec![sample(60, 100.0), sample(120, 300.0), sample(180, 100.0)],
        )
    }

    #[test]
    fn resampling_preserves_energy_at_every_cadence() {
        let p = square_profile();
        for secs in [1, 7, 30, 60, 90, 600] {
            let tl = PowerTimeline::from_profile("m", &p, SimDuration::from_secs(secs));
            assert!(
                (tl.energy().joules() - p.energy().joules()).abs() < 1e-6,
                "cadence {secs}s: {} vs {}",
                tl.energy().joules(),
                p.energy().joules()
            );
        }
    }

    #[test]
    fn fine_cadence_reproduces_the_signal() {
        let p = square_profile();
        let tl = PowerTimeline::from_profile("m", &p, SimDuration::from_secs(1));
        assert_eq!(tl.samples().len(), 180);
        assert_eq!(tl.samples()[0].avg, Watts(100.0));
        assert_eq!(tl.samples()[90].avg, Watts(300.0));
        assert_eq!(tl.end(), t(180));
        // Coarse cadence averages across the steps.
        let coarse = PowerTimeline::from_profile("m", &p, SimDuration::from_secs(90));
        assert_eq!(coarse.samples().len(), 2);
        assert!(
            (coarse.samples()[0].avg.watts() - (60.0 * 100.0 + 30.0 * 300.0) / 90.0).abs() < 1e-9
        );
    }

    #[test]
    fn stats_are_exact_time_weighted_quantiles() {
        let p = square_profile();
        let tl = PowerTimeline::from_profile("m", &p, SimDuration::from_secs(60));
        let st = tl.stats();
        assert_eq!(st.duration, SimDuration::from_mins(3));
        assert_eq!(st.peak, Watts(300.0));
        // 2 min at 100 W + 1 min at 300 W.
        assert!((st.mean.watts() - (2.0 * 100.0 + 300.0) / 3.0).abs() < 1e-9);
        assert_eq!(st.p50, Watts(100.0)); // signal is <= 100 W for 2/3 of the time
        assert_eq!(st.p95, Watts(300.0));
        assert_eq!(st.p99, Watts(300.0));
        // Cap exceedance: strictly above 100 W for exactly the middle minute.
        assert_eq!(tl.time_above(Watts(100.0)), SimDuration::from_mins(1));
        assert_eq!(tl.time_above(Watts(300.0)), SimDuration::ZERO);
        assert_eq!(
            tl.time_above_over(Watts(100.0), t(90), t(180)),
            SimDuration::from_secs(30)
        );
    }

    #[test]
    fn empty_profile_gives_empty_timeline_and_zero_stats() {
        let p = PowerProfile::from_meter_samples(t(5), vec![]);
        let tl = PowerTimeline::from_profile("m", &p, SimDuration::from_secs(60));
        assert!(tl.is_empty());
        assert_eq!(tl.energy(), Joules::ZERO);
        let st = tl.stats();
        assert_eq!(st.peak, Watts::ZERO);
        assert_eq!(st.duration, SimDuration::ZERO);
    }

    #[test]
    fn phase_timeline_reconstruction_draws_model_power() {
        use ivis_cluster::PhaseRecord;
        let mut timeline = PhaseTimeline::new();
        for (phase, start, end) in [
            (JobPhase::Simulate, 0, 120),
            (JobPhase::Visualize, 120, 150),
            // 30 s gap, then a write.
            (JobPhase::WriteOutput, 180, 240),
        ] {
            timeline.push(PhaseRecord {
                phase,
                start: t(start),
                end: t(end),
            });
        }
        let power = |p: JobPhase| match p {
            JobPhase::Simulate => Watts(290.0),
            JobPhase::Visualize => Watts(260.0),
            JobPhase::WriteOutput => Watts(110.0),
            _ => Watts(100.0),
        };
        let tl = PowerTimeline::from_phases("node", &timeline, power, SimDuration::from_secs(30));
        // Energy: 120 s×290 + 30 s×260 + 30 s idle×100 + 60 s×110.
        let expect = 120.0 * 290.0 + 30.0 * 260.0 + 30.0 * 100.0 + 60.0 * 110.0;
        assert!((tl.energy().joules() - expect).abs() < 1e-6);
        assert_eq!(tl.stats().peak, Watts(290.0));
    }

    #[test]
    fn gauges_publish_the_step_signal() {
        let p = square_profile();
        let tl = PowerTimeline::from_profile("m", &p, SimDuration::from_secs(60));
        let mut reg = MetricsRegistry::new();
        tl.record_gauges(&mut reg, "power.compute_w");
        let m = reg.get("power.compute_w").unwrap();
        assert_eq!(m.series().value_at(t(30), 0.0), 100.0);
        assert_eq!(m.series().value_at(t(90), 0.0), 300.0);
        assert_eq!(m.last_value(), 100.0);
        // The gauge's time-weighted mean equals the timeline's mean.
        let mean = m.mean_over(SimTime::ZERO, t(180), 0.0);
        assert!((mean - tl.stats().mean.watts()).abs() < 1e-9);
    }

    mod energy_conservation_props {
        use super::*;
        use proptest::prelude::*;

        /// Strategy: a step signal as (dwell seconds, watts) pairs.
        fn signal() -> impl Strategy<Value = Vec<(u32, f64)>> {
            prop::collection::vec(((1u32..600), (0.0f64..50_000.0)), 1..24)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The tentpole invariant: for an arbitrary power signal
            /// metered at an arbitrary interval, resampling the harvested
            /// profile at an arbitrary cadence preserves the integral to
            /// 1e-6 — the sampled W(t) timeline carries exactly the energy
            /// `energy_between` attributes over the same window.
            #[test]
            fn sampled_timeline_integral_matches_energy_between(
                sig in signal(),
                meter_secs in 1u64..120,
                cadence_secs in 1u64..600,
            ) {
                let mut pdu = MeteredPdu::new(
                    "m",
                    SimDuration::from_secs(meter_secs),
                    Watts::ZERO,
                );
                let mut now = SimTime::ZERO;
                for &(dwell, watts) in &sig {
                    pdu.observe(now, Watts(watts));
                    now += SimDuration::from_secs(dwell as u64);
                }
                let profile = pdu.profile(SimTime::ZERO, now);
                let tl = PowerTimeline::from_profile(
                    "m",
                    &profile,
                    SimDuration::from_secs(cadence_secs),
                );
                let got = tl.energy().joules();
                let want = profile
                    .energy_between(profile.start(), profile.end())
                    .joules();
                let tol = 1e-6 * (1.0 + want.abs());
                prop_assert!(
                    (got - want).abs() < tol,
                    "timeline {got} J vs energy_between {want} J"
                );
                // And the timeline's own energy_between tiles: a partition
                // of the window sums back to the total.
                let mid = SimTime::ZERO + SimDuration::from_secs(
                    (tl.end() - tl.start()).as_secs_f64() as u64 / 2,
                );
                let parts = tl.energy_between(tl.start(), mid).joules()
                    + tl.energy_between(mid, tl.end()).joules();
                prop_assert!((parts - got).abs() < tol, "partition {parts} vs {got}");
            }
        }
    }
}
