//! Metrics registry built on [`TimeSeries`] step functions.
//!
//! Counters and gauges are stored as right-continuous step functions in
//! sim time, the same representation the power meters use. That means
//! integrals (`byte-seconds queued`), time-weighted means (`average PFS
//! utilization`) and time-weighted histograms are *exact* over any
//! window — there is no sampling interval to tune and no aliasing.

use std::collections::HashMap;

use ivis_sim::{SimTime, TimeSeries};

/// How a metric's samples are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone cumulative total; each `counter_add` pushes the running sum.
    Counter,
    /// Last-write-wins instantaneous value.
    Gauge,
    /// Distribution of individual observations in deterministic
    /// log-spaced buckets (see [`log_bucket_upper`]); every raw
    /// observation is retained, so merges replay exactly and percentiles
    /// are computed from the data, not from bucket midpoints.
    Histogram,
}

impl MetricKind {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Smallest canonical log-bucket upper bound that is `>= v`.
///
/// The bucket grid is HDR-style: every power of two is subdivided into
/// four quarter-octave buckets, so boundaries are `2^e × (1 + k/4)` for
/// `k ∈ {0..3}` — all exactly representable in an `f64`. The bound is
/// derived purely from the value's bit pattern (no `log2`, no libm), so
/// the grid is identical on every platform and thread count. Values
/// `<= 0`, NaN and subnormals collapse into a single `0.0` bucket;
/// values in the top quarter-octave of the finite range round up to
/// `+inf` (the exporter's `+Inf` bucket).
pub fn log_bucket_upper(v: f64) -> f64 {
    if v <= 0.0 || !v.is_finite() {
        return 0.0;
    }
    let bits = v.to_bits();
    let exp = (bits >> 52) & 0x7ff;
    if exp == 0 {
        // Subnormal: far below any measured duration or depth.
        return 0.0;
    }
    if bits & ((1u64 << 50) - 1) == 0 {
        // Exactly on a quarter-octave boundary: it is its own bound.
        return v;
    }
    let quarter = (bits >> 50) & 0x3;
    let upper_bits = if quarter == 3 {
        (exp + 1) << 52
    } else {
        (exp << 52) | ((quarter + 1) << 50)
    };
    f64::from_bits(upper_bits)
}

/// Count-per-bucket summary of a histogram metric, in ascending bound
/// order, plus the exact aggregates the exporters need.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// `(upper_bound, count)` per occupied bucket, ascending by bound.
    pub buckets: Vec<(f64, u64)>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    fn from_observations(obs: &[(SimTime, f64)]) -> Self {
        let mut buckets: Vec<(f64, u64)> = Vec::new();
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &(_, v) in obs {
            let bound = log_bucket_upper(v);
            match buckets.binary_search_by(|b| b.0.partial_cmp(&bound).expect("bounds are ordered"))
            {
                Ok(i) => buckets[i].1 += 1,
                Err(i) => buckets.insert(i, (bound, 1)),
            }
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        HistogramSnapshot {
            buckets,
            count: obs.len() as u64,
            sum,
            min,
            max,
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One named metric: a step function plus its kind.
#[derive(Debug)]
pub struct Metric {
    name: &'static str,
    kind: MetricKind,
    series: TimeSeries,
    total: f64,
    /// Raw `(time, value)` observations; populated for histograms only.
    observations: Vec<(SimTime, f64)>,
}

impl Metric {
    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Counter or gauge.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// The underlying step function (cumulative total for counters).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Final cumulative total (counters) or last value (gauges).
    pub fn last_value(&self) -> f64 {
        self.total
    }

    /// Time-weighted mean over `[from, to]`, treating the value before
    /// the first sample as `default`.
    pub fn mean_over(&self, from: SimTime, to: SimTime, default: f64) -> f64 {
        self.series.mean_over(from, to, default)
    }

    /// Raw `(time, value)` observations. Empty unless the metric is a
    /// histogram.
    pub fn observations(&self) -> &[(SimTime, f64)] {
        &self.observations
    }

    /// Log-bucketed summary of a histogram metric's observations;
    /// `None` for counters and gauges.
    pub fn histogram(&self) -> Option<HistogramSnapshot> {
        match self.kind {
            MetricKind::Histogram => Some(HistogramSnapshot::from_observations(&self.observations)),
            _ => None,
        }
    }

    /// Exact percentile (`q ∈ [0, 1]`) over a histogram metric's raw
    /// observations; `None` for other kinds or when empty.
    pub fn observation_percentile(&self, q: f64) -> Option<f64> {
        if self.kind != MetricKind::Histogram {
            return None;
        }
        let values: Vec<f64> = self.observations.iter().map(|&(_, v)| v).collect();
        ivis_sim::stats::percentile(&values, q)
    }
}

/// Registry of counters and gauges, addressed by static name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
    index: HashMap<&'static str, usize>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, name: &'static str, kind: MetricKind) -> &mut Metric {
        let idx = *self.index.entry(name).or_insert_with(|| {
            self.metrics.push(Metric {
                name,
                kind,
                series: TimeSeries::new(),
                total: 0.0,
                observations: Vec::new(),
            });
            self.metrics.len() - 1
        });
        let m = &mut self.metrics[idx];
        assert_eq!(
            m.kind, kind,
            "metric '{name}' registered as {:?}, used as {kind:?}",
            m.kind
        );
        m
    }

    /// Add `delta` to the counter `name` at time `t`, recording the new
    /// cumulative total as a step.
    pub fn counter_add(&mut self, t: SimTime, name: &'static str, delta: f64) {
        let m = self.slot(name, MetricKind::Counter);
        m.total += delta;
        let total = m.total;
        m.series.push(t, total);
    }

    /// Set the gauge `name` to `value` at time `t`.
    pub fn gauge_set(&mut self, t: SimTime, name: &'static str, value: f64) {
        let m = self.slot(name, MetricKind::Gauge);
        m.total = value;
        m.series.push(t, value);
    }

    /// Record one observation of `value` in the histogram `name` at time
    /// `t`. The raw sample is retained (merges replay it exactly); the
    /// step-function view tracks the cumulative observation count and
    /// `last_value` the running sum of observed values.
    pub fn histogram_record(&mut self, t: SimTime, name: &'static str, value: f64) {
        let m = self.slot(name, MetricKind::Histogram);
        m.observations.push((t, value));
        m.total += value;
        let count = m.observations.len() as f64;
        m.series.push(t, count);
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.index.get(name).map(|&i| &self.metrics[i])
    }

    /// All metrics, in first-use order.
    pub fn iter(&self) -> impl Iterator<Item = &Metric> {
        self.metrics.iter()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Merge several registries (e.g. one per worker thread) into one by
    /// replaying every update in sim-time order.
    ///
    /// Counter series store cumulative totals, so each part's series is
    /// first converted back to per-update deltas; re-accumulating the
    /// time-sorted deltas yields the cumulative total the union of writers
    /// would have produced. Gauges replay last-write-wins; histograms
    /// replay their raw observations one by one. Ties in time break by
    /// part index, then by each part's own update order, so the result
    /// does not depend on which thread produced which part.
    pub fn merge(parts: Vec<MetricsRegistry>) -> MetricsRegistry {
        let mut updates: Vec<(SimTime, usize, &'static str, MetricKind, f64)> = Vec::new();
        for (part_idx, part) in parts.iter().enumerate() {
            for m in part.iter() {
                match m.kind {
                    MetricKind::Histogram => {
                        for &(t, v) in m.observations() {
                            updates.push((t, part_idx, m.name, m.kind, v));
                        }
                    }
                    MetricKind::Counter | MetricKind::Gauge => {
                        let mut prev = 0.0;
                        for &(t, v) in m.series.samples() {
                            let x = match m.kind {
                                MetricKind::Counter => {
                                    let delta = v - prev;
                                    prev = v;
                                    delta
                                }
                                _ => v,
                            };
                            updates.push((t, part_idx, m.name, m.kind, x));
                        }
                    }
                }
            }
        }
        updates.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut merged = MetricsRegistry::new();
        for (t, _, name, kind, x) in updates {
            match kind {
                MetricKind::Counter => merged.counter_add(t, name, x),
                MetricKind::Gauge => merged.gauge_set(t, name, x),
                MetricKind::Histogram => merged.histogram_record(t, name, x),
            }
        }
        merged
    }
}

/// Time-weighted histogram of a step function over a window.
///
/// Bucket `i` holds the number of seconds the value sat in
/// `(bounds[i-1], bounds[i]]` (bucket 0 is `(-inf, bounds[0]]`, the last
/// bucket is `(bounds.last(), +inf)`). Because the input is a step
/// function, the seconds are exact.
#[derive(Debug, Clone)]
pub struct TimeWeightedHistogram {
    bounds: Vec<f64>,
    seconds: Vec<f64>,
    total_seconds: f64,
}

impl TimeWeightedHistogram {
    /// Build from `series` over `[from, to]`, using `default` for the
    /// value before the first sample and `bounds` as ascending bucket
    /// upper bounds.
    pub fn from_series(
        series: &TimeSeries,
        from: SimTime,
        to: SimTime,
        default: f64,
        bounds: &[f64],
    ) -> Self {
        assert!(to >= from, "histogram window end precedes start");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let mut hist = TimeWeightedHistogram {
            bounds: bounds.to_vec(),
            seconds: vec![0.0; bounds.len() + 1],
            total_seconds: 0.0,
        };
        let mut cursor = from;
        let mut value = series.value_at(from, default);
        for &(t, v) in series.samples() {
            if t <= from {
                continue;
            }
            if t >= to {
                break;
            }
            hist.deposit(value, (t - cursor).as_secs_f64());
            cursor = t;
            value = v;
        }
        hist.deposit(value, (to - cursor).as_secs_f64());
        hist
    }

    fn deposit(&mut self, value: f64, seconds: f64) {
        if seconds <= 0.0 {
            return;
        }
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.seconds[bucket] += seconds;
        self.total_seconds += seconds;
    }

    /// Ascending bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Seconds spent in each bucket (`bounds.len() + 1` entries).
    pub fn bucket_seconds(&self) -> &[f64] {
        &self.seconds
    }

    /// Total seconds covered by the window.
    pub fn total_seconds(&self) -> f64 {
        self.total_seconds
    }

    /// Fraction of the window spent in bucket `i` (0 if the window is empty).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total_seconds > 0.0 {
            self.seconds[i] / self.total_seconds
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn counter_accumulates_cumulative_total() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add(t(0.0), "outputs", 1.0);
        reg.counter_add(t(10.0), "outputs", 1.0);
        reg.counter_add(t(20.0), "outputs", 3.0);
        let m = reg.get("outputs").unwrap();
        assert_eq!(m.kind(), MetricKind::Counter);
        assert_eq!(m.last_value(), 5.0);
        assert_eq!(m.series().value_at(t(15.0), 0.0), 2.0);
    }

    #[test]
    fn gauge_is_last_write_wins_step_function() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set(t(0.0), "util", 0.0);
        reg.gauge_set(t(10.0), "util", 1.0);
        reg.gauge_set(t(30.0), "util", 0.5);
        let m = reg.get("util").unwrap();
        // 10 s at 0.0, 20 s at 1.0, 10 s at 0.5 over [0, 40].
        let mean = m.mean_over(t(0.0), t(40.0), 0.0);
        assert!((mean - (20.0 + 5.0) / 40.0).abs() < 1e-12);
    }

    #[test]
    fn merge_reconstructs_counter_deltas_and_replays_gauges() {
        let mut a = MetricsRegistry::new();
        a.counter_add(t(0.0), "outputs", 1.0);
        a.counter_add(t(20.0), "outputs", 2.0);
        a.gauge_set(t(5.0), "util", 0.25);
        let mut b = MetricsRegistry::new();
        b.counter_add(t(10.0), "outputs", 4.0);
        b.gauge_set(t(15.0), "util", 0.75);
        let merged = MetricsRegistry::merge(vec![a, b]);
        let m = merged.get("outputs").unwrap();
        assert_eq!(m.last_value(), 7.0);
        // Cumulative total interleaves: 1 @0, 5 @10, 7 @20.
        assert_eq!(m.series().value_at(t(15.0), 0.0), 5.0);
        let g = merged.get("util").unwrap();
        assert_eq!(g.last_value(), 0.75);
        assert_eq!(g.series().value_at(t(10.0), 0.0), 0.25);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add(t(0.0), "x", 1.0);
        reg.gauge_set(t(1.0), "x", 2.0);
    }

    #[test]
    fn log_buckets_are_quarter_octaves() {
        // Exact boundaries map to themselves.
        for b in [0.25, 0.5, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.5, 4.0] {
            assert_eq!(log_bucket_upper(b), b, "boundary {b}");
        }
        // Interior values round up to the next quarter-octave.
        assert_eq!(log_bucket_upper(1.1), 1.25);
        assert_eq!(log_bucket_upper(1.3), 1.5);
        assert_eq!(log_bucket_upper(1.9), 2.0);
        assert_eq!(log_bucket_upper(3.9), 4.0);
        assert_eq!(log_bucket_upper(0.3), 0.3125); // 2^-2 × 1.25
        assert_eq!(log_bucket_upper(100.0), 112.0); // 2^6 × 1.75
                                                    // Degenerate inputs share the zero bucket.
        assert_eq!(log_bucket_upper(0.0), 0.0);
        assert_eq!(log_bucket_upper(-4.0), 0.0);
        assert_eq!(log_bucket_upper(f64::NAN), 0.0);
        // The bound is always >= the value and within 25 %.
        for i in 1..2000 {
            let v = i as f64 * 0.0137;
            let b = log_bucket_upper(v);
            assert!(b >= v, "{b} < {v}");
            assert!(b <= v * 1.25 + f64::EPSILON, "{b} > 1.25×{v}");
        }
    }

    #[test]
    fn histogram_metric_records_and_snapshots() {
        let mut reg = MetricsRegistry::new();
        for (at, v) in [(0.0, 1.1), (1.0, 1.2), (2.0, 1.9), (3.0, 8.0)] {
            reg.histogram_record(t(at), "lat", v);
        }
        let m = reg.get("lat").unwrap();
        assert_eq!(m.kind(), MetricKind::Histogram);
        assert_eq!(m.observations().len(), 4);
        // Step view counts observations; last_value sums them.
        assert_eq!(m.series().value_at(t(1.5), 0.0), 2.0);
        assert!((m.last_value() - 12.2).abs() < 1e-12);
        let h = m.histogram().unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets, vec![(1.25, 2), (2.0, 1), (8.0, 1)]);
        assert!((h.sum - 12.2).abs() < 1e-12);
        assert_eq!(h.min, 1.1);
        assert_eq!(h.max, 8.0);
        assert!((m.observation_percentile(0.5).unwrap() - 1.55).abs() < 1e-9);
        // Counters and gauges have no histogram view.
        reg.counter_add(t(0.0), "c", 1.0);
        assert!(reg.get("c").unwrap().histogram().is_none());
        assert!(reg.get("c").unwrap().observation_percentile(0.5).is_none());
    }

    #[test]
    fn merge_replays_histogram_observations_in_time_order() {
        let mut a = MetricsRegistry::new();
        a.histogram_record(t(0.0), "lat", 3.0);
        a.histogram_record(t(20.0), "lat", 5.0);
        let mut b = MetricsRegistry::new();
        b.histogram_record(t(10.0), "lat", 4.0);
        let merged = MetricsRegistry::merge(vec![a, b]);
        let m = merged.get("lat").unwrap();
        assert_eq!(
            m.observations(),
            &[(t(0.0), 3.0), (t(10.0), 4.0), (t(20.0), 5.0)]
        );
        assert_eq!(m.series().value_at(t(15.0), 0.0), 2.0);
        let h = m.histogram().unwrap();
        assert_eq!(h.count, 3);
        assert!((h.sum - 12.0).abs() < 1e-12);
    }

    #[test]
    fn merge_of_histograms_is_thread_count_invariant() {
        // The same observations split across 1, 2 or 3 parts merge to an
        // identical registry — the contract the fault artifacts test
        // exercises end-to-end.
        let obs = [(0.0, 0.5), (1.0, 0.7), (1.0, 0.9), (2.0, 4.0), (5.0, 2.2)];
        let build = |splits: &[usize]| {
            let mut parts: Vec<MetricsRegistry> = Vec::new();
            for chunk in obs.chunks(splits.len().max(1)) {
                let mut r = MetricsRegistry::new();
                for &(at, v) in chunk {
                    r.histogram_record(t(at), "lat", v);
                }
                parts.push(r);
            }
            MetricsRegistry::merge(parts)
        };
        let one = build(&[1]);
        let two = build(&[1, 2]);
        let m1 = one.get("lat").unwrap();
        let m2 = two.get("lat").unwrap();
        assert_eq!(m1.observations(), m2.observations());
        assert_eq!(m1.series().samples(), m2.series().samples());
    }

    #[test]
    fn histogram_weights_by_time_not_samples() {
        let mut s = TimeSeries::new();
        s.push(t(0.0), 0.2);
        s.push(t(1.0), 0.9); // only 1 s at 0.2, then 9 s at 0.9
        let h = TimeWeightedHistogram::from_series(&s, t(0.0), t(10.0), 0.0, &[0.5]);
        assert!((h.bucket_seconds()[0] - 1.0).abs() < 1e-9);
        assert!((h.bucket_seconds()[1] - 9.0).abs() < 1e-9);
        assert!((h.fraction(1) - 0.9).abs() < 1e-9);
        assert!((h.total_seconds() - 10.0).abs() < 1e-9);
    }
}
