//! `Recorder::off()` fast-path audit: with the sink off, every recording
//! hook must be a branch-and-return — no span attr formatting, no event
//! payload construction, no heap traffic at all.
//!
//! Same counting-allocator technique as `ivis-ocean`'s
//! `zero_alloc_step.rs`: a `#[global_allocator]` wrapper counts
//! `alloc`/`realloc` calls, so this file holds exactly ONE test (any
//! other test running concurrently would race the counter).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ivis_cluster::JobPhase;
use ivis_obs::{AttrValue, Component, Recorder};
use ivis_sim::SimTime;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One measured window: 10k iterations over every off-sink hook.
/// Returns the allocation-counter delta.
fn measure(rec: &Recorder) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let t = SimTime::from_secs(i);
        let id = rec.span(t, "span", Component::Compute);
        assert!(id.is_none());
        let phase = rec.phase_span(t, JobPhase::Simulate, Component::Compute);
        rec.set_attr(
            id,
            "bytes",
            AttrValue::U64(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        rec.event(
            t,
            "output_written",
            Component::Storage,
            &[
                ("index", AttrValue::U64(i)),
                ("label", AttrValue::Str("sample")),
                ("seconds", AttrValue::F64(i as f64 * 0.5)),
            ],
        );
        rec.counter_add(t, "pfs.bytes_written", i as f64);
        rec.gauge_set(t, "transport.queue_depth", (i % 4) as f64);
        rec.histogram_record(t, "transport.stall_seconds", i as f64 * 1e-3);
        rec.close(t, phase);
        rec.close(t, id);
        assert!(rec.buffer().is_none());
        assert!(rec.with_buffer(|_| ()).is_none());
    }
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn off_recorder_hooks_never_allocate() {
    let rec = Recorder::off();
    assert!(!rec.is_on());
    // Warm up any lazy runtime state outside the measured windows.
    let _ = rec.span(SimTime::ZERO, "warmup", Component::Campaign);

    // libtest's own service threads may allocate concurrently (progress
    // output, timeout bookkeeping), so measure several windows: a hook
    // that allocates dirties *every* window; background noise does not.
    let deltas: Vec<u64> = (0..5).map(|_| measure(&rec)).collect();
    assert!(
        deltas.contains(&0),
        "Recorder::off() hooks allocated in every window: {deltas:?} \
         allocations over 5×10k iterations"
    );
}
