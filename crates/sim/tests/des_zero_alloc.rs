//! Steady-state allocation audit of the indexed event engine: once the
//! arena, wheel slots and overflow buckets are warmed up, a sustained
//! schedule/cancel/fire cycle must touch the heap zero times.
//!
//! Same counting-allocator technique as `ivis-obs`'s
//! `off_zero_alloc.rs`: a `#[global_allocator]` wrapper counts
//! `alloc`/`realloc` calls, so this file holds exactly ONE test (any
//! other test running concurrently would race the counter).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ivis_sim::{DesEngine, SimDuration, SimTime};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The repeating schedule the steady-state loop drives: a spread of
/// offsets touching every wheel level (same tick, level 0–3 distances)
/// plus a far-future overflow entry, and one cancellation per round.
const OFFSETS_US: [u64; 8] = [
    0,          // same tick as the driving event
    3,          // level 0
    150,        // level 1
    9_000,      // level 2
    400_000,    // level 3
    16_000_000, // level 3, near the epoch edge
    40_000_000, // beyond the 64^4 µs epoch → calendar overflow
    17,         // level 0, cancelled before it fires
];

/// One measured window: `rounds` cycles of schedule-burst + cancel +
/// drain-to-a-deadline. Returns the allocation-counter delta.
fn measure(engine: &mut DesEngine<u64>, fired: &mut u64, rounds: u64) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..rounds {
        let now = engine.now();
        let mut victim = None;
        for (i, &off) in OFFSETS_US.iter().enumerate() {
            let h = engine.schedule_at(now + SimDuration::from_micros(off), i as u64);
            if i == OFFSETS_US.len() - 1 {
                victim = Some(h);
            }
        }
        let cancelled = engine.cancel(victim.expect("victim scheduled"));
        assert!(
            cancelled.is_some(),
            "cancel-then-fire must hit a live event"
        );
        // Fire everything up to just past the level-3 entries, leaving
        // the overflow entry pending so the calendar level stays
        // exercised across rounds.
        let deadline = now + SimDuration::from_micros(16_500_000);
        engine.run_until(
            &mut |_: &mut DesEngine<u64>, _: SimTime, _: u64| {
                *fired += 1;
            },
            deadline,
        );
    }
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn steady_state_event_loop_never_allocates() {
    let mut engine: DesEngine<u64> = DesEngine::with_capacity(OFFSETS_US.len() + 1);
    let mut fired = 0u64;

    // Warm-up: grow the arena free list, every wheel slot vector the
    // schedule will ever touch, the overflow bucket and the cascade
    // scratch buffer. Allocations here are expected and uncounted.
    let _ = measure(&mut engine, &mut fired, 64);

    // libtest's own service threads may allocate concurrently (progress
    // output, timeout bookkeeping), so measure several windows: an
    // engine that allocates in steady state dirties *every* window;
    // background noise does not.
    let deltas: Vec<u64> = (0..5)
        .map(|_| measure(&mut engine, &mut fired, 200))
        .collect();
    assert!(
        deltas.contains(&0),
        "steady-state schedule/cancel/fire loop allocated in every \
         window: {deltas:?} allocations over 5×200 rounds"
    );
    // The loop really did run: 7 live events per round (8 scheduled,
    // 1 cancelled), minus the overflow entries still pending.
    assert!(fired > 5_000, "engine fired only {fired} events");
}
