//! Simulated time: microsecond-resolution instants and durations.
//!
//! All of the machine, storage and pipeline models express time as
//! [`SimTime`] (an instant since simulation start) and [`SimDuration`]
//! (a span). Both wrap a `u64` microsecond count, which gives ~584k years of
//! range — far beyond the 100-simulated-year what-if scenarios in the paper —
//! while staying exactly representable and `Ord`/`Hash`-friendly, unlike
//! `f64` seconds.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant in simulated time, measured from the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to nearest microsecond).
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_micros(s))
    }

    /// Whole microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Span since `earlier`, saturating at zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * MICROS_PER_SEC)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to nearest microsecond).
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_to_micros(s))
    }

    /// Whole microseconds in the span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds in the span.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// `true` iff the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative factor, rounding to the nearest microsecond.
    ///
    /// A silently-saturating scale would corrupt a simulated timeline
    /// (a NaN noise factor quietly zeroing a phase, say), so invalid
    /// factors are rejected loudly instead of coerced. Products beyond
    /// `u64::MAX` microseconds saturate to `u64::MAX` (Rust's defined
    /// float→int `as` conversion) — that is ~584k simulated years, far
    /// past any representable campaign.
    ///
    /// # Panics
    /// Panics if `k` is negative, NaN, or infinite.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(
            k >= 0.0 && k.is_finite(),
            "scale factor must be finite and >= 0, got {k}"
        );
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

fn secs_to_micros(s: f64) -> u64 {
    if !s.is_finite() || s <= 0.0 {
        return 0;
    }
    (s * MICROS_PER_SEC as f64).round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_mins(2).as_micros(), 120_000_000);
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn from_secs_f64_saturates_bad_inputs() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(12), SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(6) / 2, SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(3) * 4, SimDuration::from_secs(12));
        let ratio = SimDuration::from_secs(3) / SimDuration::from_secs(4);
        assert!((ratio - 0.75).abs() < 1e-12);
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(late.duration_since(early), SimDuration::from_secs(1));
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(3);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(2)); // 1.5 rounds to 2
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_secs(1).mul_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn mul_f64_rejects_nan() {
        let _ = SimDuration::from_secs(1).mul_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn mul_f64_rejects_infinity() {
        let _ = SimDuration::from_secs(1).mul_f64(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn mul_f64_rejects_negative_zero_times_infinity_route() {
        // -0.0 is allowed (it is >= 0.0); negative infinity is not.
        assert_eq!(SimDuration::from_secs(1).mul_f64(-0.0), SimDuration::ZERO);
        let _ = SimDuration::from_secs(1).mul_f64(f64::NEG_INFINITY);
    }

    #[test]
    fn mul_f64_saturates_on_overflow() {
        // A finite factor whose product exceeds u64::MAX µs saturates at
        // the documented ceiling instead of wrapping.
        let d = SimDuration::from_micros(u64::MAX / 2);
        assert_eq!(d.mul_f64(1e6).as_micros(), u64::MAX);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_secs(u64::MAX / MICROS_PER_SEC));
        assert_eq!(format!("{}", SimTime::from_secs(1)), "1.000000s");
    }

    #[test]
    fn saturating_sub_duration() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_secs(1));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
