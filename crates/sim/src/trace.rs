//! Time-series recording with step-function semantics.
//!
//! A [`TimeSeries`] holds `(SimTime, f64)` samples interpreted as a
//! right-continuous step function: the value set at time `t` holds until the
//! next sample. This matches how the machine models emit power: "from now on,
//! the node draws P watts". Integration and fixed-interval averaging over
//! this representation are exact, which is what the simulated Raritan/Appro
//! meters rely on.

use crate::time::{SimDuration, SimTime};

/// A right-continuous step-function time series.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries {
            samples: Vec::new(),
        }
    }

    /// Record that the value becomes `value` at time `t`.
    ///
    /// Samples must be pushed in non-decreasing time order. Re-recording at
    /// the same timestamp replaces the previous value (last write wins),
    /// matching "the state changed twice in the same instant".
    ///
    /// # Panics
    /// Panics if `t` precedes the last recorded sample.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&(last_t, last_v)) = self.samples.last() {
            assert!(t >= last_t, "samples must be time-ordered: {t} < {last_t}");
            if t == last_t {
                let n = self.samples.len();
                self.samples[n - 1].1 = value;
                return;
            }
            if last_v == value {
                // Coalesce runs of identical values to keep traces compact.
                return;
            }
        }
        self.samples.push((t, value));
    }

    /// Number of stored change-points.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` iff no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw change-points.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// The value at time `t` (the last change-point at or before `t`).
    /// Returns `default` before the first sample or when empty.
    pub fn value_at(&self, t: SimTime, default: f64) -> f64 {
        match self.samples.partition_point(|&(st, _)| st <= t) {
            0 => default,
            i => self.samples[i - 1].1,
        }
    }

    /// Exact integral of the step function over `[from, to]`.
    ///
    /// The value before the first change-point is taken as `default`.
    /// Units: value-units × seconds (e.g. watts → joules).
    pub fn integrate(&self, from: SimTime, to: SimTime, default: f64) -> f64 {
        assert!(to >= from, "integrate: to < from");
        if from == to {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut cur_t = from;
        let mut cur_v = self.value_at(from, default);
        let start = self.samples.partition_point(|&(st, _)| st <= from);
        for &(st, sv) in &self.samples[start..] {
            if st >= to {
                break;
            }
            acc += cur_v * (st - cur_t).as_secs_f64();
            cur_t = st;
            cur_v = sv;
        }
        acc += cur_v * (to - cur_t).as_secs_f64();
        acc
    }

    /// Time-weighted average over `[from, to]`.
    pub fn mean_over(&self, from: SimTime, to: SimTime, default: f64) -> f64 {
        let span = (to - from).as_secs_f64();
        if span == 0.0 {
            return self.value_at(from, default);
        }
        self.integrate(from, to, default) / span
    }

    /// Resample into fixed-width intervals, each reporting the time-weighted
    /// average of the underlying signal — exactly what a metered PDU that
    /// "makes multiple measurements within the interval and reports an
    /// average" produces. Returns `(interval_end_time, average)` pairs
    /// covering `[from, to]`; a final partial interval is averaged over its
    /// actual width.
    pub fn resample_avg(
        &self,
        from: SimTime,
        to: SimTime,
        interval: SimDuration,
        default: f64,
    ) -> Vec<(SimTime, f64)> {
        assert!(!interval.is_zero(), "interval must be positive");
        let mut out = Vec::new();
        let mut t = from;
        while t < to {
            let end = (t + interval).min(to);
            out.push((end, self.mean_over(t, end, default)));
            t = end;
        }
        out
    }

    /// Merge: the pointwise sum of two step functions (e.g. adding per-cage
    /// power traces into a cluster trace).
    pub fn sum_with(
        &self,
        other: &TimeSeries,
        default_self: f64,
        default_other: f64,
    ) -> TimeSeries {
        let mut out = TimeSeries::new();
        let mut times: Vec<SimTime> = self
            .samples
            .iter()
            .map(|s| s.0)
            .chain(other.samples.iter().map(|s| s.0))
            .collect();
        times.sort_unstable();
        times.dedup();
        for t in times {
            out.push(
                t,
                self.value_at(t, default_self) + other.value_at(t, default_other),
            );
        }
        out
    }

    /// Maximum recorded value (`None` if empty).
    pub fn max_value(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.1)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Time of the last change-point.
    pub fn last_time(&self) -> Option<SimTime> {
        self.samples.last().map(|s| s.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn value_at_steps() {
        let mut ts = TimeSeries::new();
        ts.push(t(1), 10.0);
        ts.push(t(3), 20.0);
        assert_eq!(ts.value_at(t(0), 5.0), 5.0);
        assert_eq!(ts.value_at(t(1), 5.0), 10.0);
        assert_eq!(ts.value_at(t(2), 5.0), 10.0);
        assert_eq!(ts.value_at(t(3), 5.0), 20.0);
        assert_eq!(ts.value_at(t(100), 5.0), 20.0);
    }

    #[test]
    fn integrate_exactly() {
        let mut ts = TimeSeries::new();
        ts.push(t(0), 10.0);
        ts.push(t(2), 30.0);
        ts.push(t(4), 0.0);
        // [0,2): 10*2 = 20, [2,4): 30*2 = 60, [4,6): 0 => 80
        assert!((ts.integrate(t(0), t(6), 0.0) - 80.0).abs() < 1e-9);
        // Sub-interval [1,3): 10*1 + 30*1 = 40
        assert!((ts.integrate(t(1), t(3), 0.0) - 40.0).abs() < 1e-9);
        // Before first sample uses default
        assert!((ts.integrate(t(0), t(2), 99.0) - 20.0).abs() < 1e-9);
        let mut ts2 = TimeSeries::new();
        ts2.push(t(5), 1.0);
        assert!((ts2.integrate(t(0), t(5), 7.0) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn mean_over_window() {
        let mut ts = TimeSeries::new();
        ts.push(t(0), 100.0);
        ts.push(t(1), 200.0);
        assert!((ts.mean_over(t(0), t(2), 0.0) - 150.0).abs() < 1e-9);
        assert_eq!(ts.mean_over(t(1), t(1), 0.0), 200.0);
    }

    #[test]
    fn resample_matches_meter_semantics() {
        let mut ts = TimeSeries::new();
        ts.push(t(0), 0.0);
        ts.push(t(30), 100.0); // half a minute at 0, half at 100
        let samples = ts.resample_avg(t(0), t(120), SimDuration::from_mins(1), 0.0);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].0, t(60));
        assert!((samples[0].1 - 50.0).abs() < 1e-9);
        assert!((samples[1].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn resample_partial_final_interval() {
        let mut ts = TimeSeries::new();
        ts.push(t(0), 10.0);
        let samples = ts.resample_avg(t(0), t(90), SimDuration::from_mins(1), 0.0);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].0, t(90));
        assert!((samples[1].1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn coalesces_identical_values() {
        let mut ts = TimeSeries::new();
        ts.push(t(0), 5.0);
        ts.push(t(1), 5.0);
        ts.push(t(2), 5.0);
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn same_time_overwrites() {
        let mut ts = TimeSeries::new();
        ts.push(t(1), 5.0);
        ts.push(t(1), 9.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.value_at(t(1), 0.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(t(2), 1.0);
        ts.push(t(1), 2.0);
    }

    #[test]
    fn sum_with_combines_pointwise() {
        let mut a = TimeSeries::new();
        a.push(t(0), 1.0);
        a.push(t(2), 3.0);
        let mut b = TimeSeries::new();
        b.push(t(1), 10.0);
        let s = a.sum_with(&b, 0.0, 0.0);
        assert_eq!(s.value_at(t(0), 0.0), 1.0);
        assert_eq!(s.value_at(t(1), 0.0), 11.0);
        assert_eq!(s.value_at(t(2), 0.0), 13.0);
    }

    #[test]
    fn max_value_and_last_time() {
        let mut ts = TimeSeries::new();
        assert_eq!(ts.max_value(), None);
        ts.push(t(0), 2.0);
        ts.push(t(1), 7.0);
        ts.push(t(2), 4.0);
        assert_eq!(ts.max_value(), Some(7.0));
        assert_eq!(ts.last_time(), Some(t(2)));
    }
}
