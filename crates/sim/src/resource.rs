//! Analytic queueing servers used by the storage and cluster models.
//!
//! * [`FairShareServer`] — an exact processor-sharing (PS) server: all active
//!   jobs share the capacity equally. This models a bandwidth-shared object
//!   storage server (OSS): N clients writing concurrently each see `C/N`
//!   bytes/s, and the aggregate never exceeds `C`.
//! * [`FcfsServer`] — a single first-come-first-served server with explicit
//!   per-request service times. This models a metadata server (MDS) handling
//!   opens/creates serially.
//!
//! Both servers track their cumulative busy time so callers can compute
//! utilization over any window, which the power models consume.

use crate::time::{SimDuration, SimTime};

/// Identifier of a job inside a server. Unique per server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// A completion record returned when draining a server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Which job completed.
    pub job: JobId,
    /// When it completed.
    pub at: SimTime,
}

#[derive(Debug, Clone)]
struct PsJob {
    id: JobId,
    /// Remaining work, in abstract units (e.g. bytes).
    remaining: f64,
}

/// An exact processor-sharing server with capacity `capacity` work-units/sec.
///
/// ```
/// use ivis_sim::resource::FairShareServer;
/// use ivis_sim::SimTime;
///
/// // 100 units/s; two jobs of 100 units submitted together share the
/// // capacity, so both finish at t = 2 s.
/// let mut srv = FairShareServer::new(100.0);
/// let a = srv.submit(SimTime::ZERO, 100.0);
/// let b = srv.submit(SimTime::ZERO, 100.0);
/// let done = srv.drain_until(SimTime::from_secs(10));
/// assert_eq!(done.len(), 2);
/// assert_eq!(done[0].at, SimTime::from_secs(2));
/// assert_eq!(done[1].at, SimTime::from_secs(2));
/// assert!(done.iter().any(|c| c.job == a) && done.iter().any(|c| c.job == b));
/// ```
#[derive(Debug, Clone)]
pub struct FairShareServer {
    capacity: f64,
    clock: SimTime,
    next_id: u64,
    active: Vec<PsJob>,
    pending: Vec<Completion>,
    busy: SimDuration,
    work_done: f64,
}

impl FairShareServer {
    /// Create a server with the given capacity (work units per second).
    ///
    /// # Panics
    /// Panics if `capacity` is not finite and positive.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive, got {capacity}"
        );
        FairShareServer {
            capacity,
            clock: SimTime::ZERO,
            next_id: 0,
            active: Vec::new(),
            pending: Vec::new(),
            busy: SimDuration::ZERO,
            work_done: 0.0,
        }
    }

    /// The configured capacity in work units per second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of jobs currently in service.
    pub fn active_jobs(&self) -> usize {
        self.active.len()
    }

    /// Total time the server has spent with at least one active job,
    /// up to its internal clock.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Total work completed so far.
    pub fn work_done(&self) -> f64 {
        self.work_done
    }

    /// Internal clock (the latest time the server state reflects).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Instantaneous aggregate service rate: `capacity` if busy, else 0.
    pub fn current_rate(&self) -> f64 {
        if self.active.is_empty() {
            0.0
        } else {
            self.capacity
        }
    }

    /// Change the service capacity at time `t` — e.g. a bandwidth brownout
    /// (or its recovery) injected by a fault plan.
    ///
    /// The server first advances to `t` under the old capacity, so work
    /// served before the change is unaffected; everything still queued is
    /// served at the new rate from `t` on. This keeps the processor-sharing
    /// arithmetic exact across the change.
    ///
    /// # Panics
    /// Panics if `new_capacity` is not finite and positive, or if `t`
    /// precedes the server clock.
    pub fn set_capacity(&mut self, t: SimTime, new_capacity: f64) {
        assert!(
            new_capacity.is_finite() && new_capacity > 0.0,
            "capacity must be positive, got {new_capacity}"
        );
        assert!(
            t >= self.clock,
            "set_capacity at {t} precedes server clock {}",
            self.clock
        );
        self.advance(t);
        self.capacity = new_capacity;
    }

    /// Submit a job of `work` units at time `now`.
    ///
    /// Jobs that complete strictly before `now` are buffered and surfaced by
    /// the next [`drain_until`](Self::drain_until) call; the arithmetic is
    /// exact regardless of interleaving.
    ///
    /// # Panics
    /// Panics if `now` precedes the server clock or `work` is not positive.
    pub fn submit(&mut self, now: SimTime, work: f64) -> JobId {
        assert!(work.is_finite() && work > 0.0, "work must be positive");
        assert!(
            now >= self.clock,
            "submit at {now} precedes server clock {}",
            self.clock
        );
        self.advance(now);
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.active.push(PsJob {
            id,
            remaining: work,
        });
        id
    }

    /// Earliest pending completion time, if any job is active.
    ///
    /// The delta is rounded *up* to the next microsecond: rounding to
    /// nearest could leave a sub-microsecond residue of work that never
    /// completes, stalling the drain loops. Ceiling guarantees that
    /// advancing to the returned time retires at least the smallest job.
    pub fn next_completion_at(&self) -> Option<SimTime> {
        let min_rem = self
            .active
            .iter()
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        if min_rem.is_finite() {
            let n = self.active.len() as f64;
            let dt = min_rem * n / self.capacity;
            let micros = (dt * 1e6).ceil().max(1.0) as u64;
            Some(self.clock + SimDuration::from_micros(micros))
        } else {
            None
        }
    }

    /// Advance the server to `t` and return every completion at or before
    /// `t` (including any buffered by intervening [`submit`](Self::submit)
    /// calls), with exact completion times, in completion order.
    pub fn drain_until(&mut self, t: SimTime) -> Vec<Completion> {
        self.advance(t);
        let mut out = std::mem::take(&mut self.pending);
        out.sort_by_key(|c| (c.at, c.job));
        out
    }

    /// Time at which all currently queued work completes, assuming no new
    /// arrivals. Returns the server clock if idle.
    pub fn drained_at(&self) -> SimTime {
        let total: f64 = self.active.iter().map(|j| j.remaining).sum();
        self.clock + SimDuration::from_secs_f64(total / self.capacity)
    }

    /// Advance the processor-sharing state to `t`, buffering completions.
    fn advance(&mut self, t: SimTime) {
        while let Some(at) = self.next_completion_at() {
            if at > t {
                break;
            }
            self.consume(at);
            // Remove all jobs whose remaining hit ~0 (ties complete together).
            let mut i = 0;
            while i < self.active.len() {
                if self.active[i].remaining <= 1e-9 {
                    let job = self.active.swap_remove(i);
                    self.pending.push(Completion { job: job.id, at });
                } else {
                    i += 1;
                }
            }
        }
        self.consume(t);
    }

    /// Consume work between the internal clock and `t` assuming the active
    /// set does not change in between. Callers guarantee no completion occurs
    /// strictly inside the interval.
    fn consume(&mut self, t: SimTime) {
        if t <= self.clock {
            return;
        }
        let dt = (t - self.clock).as_secs_f64();
        let n = self.active.len();
        if n > 0 {
            let per_job = self.capacity * dt / n as f64;
            for j in &mut self.active {
                let used = per_job.min(j.remaining);
                j.remaining -= per_job.min(j.remaining);
                self.work_done += used;
            }
            self.busy += t - self.clock;
        }
        self.clock = t;
    }
}

#[derive(Debug, Clone, Copy)]
struct FcfsJob {
    id: JobId,
    completes_at: SimTime,
}

/// A single FCFS server: requests are served one at a time in arrival order.
#[derive(Debug, Clone)]
pub struct FcfsServer {
    clock: SimTime,
    next_id: u64,
    /// Time at which the server becomes free of all queued work.
    free_at: SimTime,
    pending: Vec<FcfsJob>,
    busy: SimDuration,
    served: u64,
}

impl Default for FcfsServer {
    fn default() -> Self {
        Self::new()
    }
}

impl FcfsServer {
    /// Create an idle server with its clock at zero.
    pub fn new() -> Self {
        FcfsServer {
            clock: SimTime::ZERO,
            next_id: 0,
            free_at: SimTime::ZERO,
            pending: Vec::new(),
            busy: SimDuration::ZERO,
            served: 0,
        }
    }

    /// Submit a request at `now` requiring `service` time. Returns the job id
    /// and the time at which the request will complete (after queueing).
    ///
    /// # Panics
    /// Panics if `now` precedes the server clock.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> (JobId, SimTime) {
        assert!(
            now >= self.clock,
            "submit at {now} precedes server clock {}",
            self.clock
        );
        self.clock = now;
        let start = self.free_at.max(now);
        let completes_at = start + service;
        self.free_at = completes_at;
        self.busy += service;
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.pending.push(FcfsJob { id, completes_at });
        (id, completes_at)
    }

    /// Collect completions up to and including `t`, in completion order.
    pub fn drain_until(&mut self, t: SimTime) -> Vec<Completion> {
        self.clock = self.clock.max(t);
        let mut done: Vec<Completion> = self
            .pending
            .iter()
            .filter(|j| j.completes_at <= t)
            .map(|j| Completion {
                job: j.id,
                at: j.completes_at,
            })
            .collect();
        done.sort_by_key(|c| c.at);
        self.pending.retain(|j| j.completes_at > t);
        self.served += done.len() as u64;
        done
    }

    /// The time at which all queued work completes.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Cumulative busy (service) time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Requests fully served so far (i.e. drained).
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Requests submitted but not yet drained.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_runs_at_full_capacity() {
        let mut srv = FairShareServer::new(50.0);
        srv.submit(SimTime::ZERO, 100.0);
        let done = srv.drain_until(SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, SimTime::from_secs(2));
        assert_eq!(srv.busy_time(), SimDuration::from_secs(2));
    }

    #[test]
    fn equal_jobs_finish_together() {
        let mut srv = FairShareServer::new(100.0);
        for _ in 0..4 {
            srv.submit(SimTime::ZERO, 25.0);
        }
        let done = srv.drain_until(SimTime::from_secs(10));
        assert_eq!(done.len(), 4);
        for c in &done {
            assert_eq!(c.at, SimTime::from_secs(1)); // 100 units total / 100 per sec
        }
    }

    #[test]
    fn unequal_jobs_processor_sharing_order() {
        // Jobs of 10 and 30 units, capacity 10/s. Shared: each gets 5/s.
        // Small job done at t=2 (10/5). Then big has 30-10=20 left at 10/s,
        // done at t=2+2=4.
        let mut srv = FairShareServer::new(10.0);
        let small = srv.submit(SimTime::ZERO, 10.0);
        let big = srv.submit(SimTime::ZERO, 30.0);
        let done = srv.drain_until(SimTime::from_secs(10));
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].job, small);
        assert_eq!(done[0].at, SimTime::from_secs(2));
        assert_eq!(done[1].job, big);
        assert_eq!(done[1].at, SimTime::from_secs(4));
    }

    #[test]
    fn late_arrival_shares_remaining_capacity() {
        // Capacity 10/s. Job A = 40 units at t=0. At t=2, A has 20 left.
        // Job B = 10 units arrives at t=2; both run at 5/s. B done at t=4;
        // A then has 10 left at 10/s, done at t=5.
        let mut srv = FairShareServer::new(10.0);
        let a = srv.submit(SimTime::ZERO, 40.0);
        let b = srv.submit(SimTime::from_secs(2), 10.0);
        let done = srv.drain_until(SimTime::from_secs(10));
        assert_eq!(done[0].job, b);
        assert_eq!(done[0].at, SimTime::from_secs(4));
        assert_eq!(done[1].job, a);
        assert_eq!(done[1].at, SimTime::from_secs(5));
    }

    #[test]
    fn aggregate_rate_never_exceeds_capacity() {
        let mut srv = FairShareServer::new(160.0);
        for _ in 0..64 {
            srv.submit(SimTime::ZERO, 10.0);
        }
        // 640 units at 160/s => all done at t=4, not earlier.
        let done = srv.drain_until(SimTime::from_secs(100));
        let last = done.iter().map(|c| c.at).max().unwrap();
        assert_eq!(last, SimTime::from_secs(4));
        assert!((srv.work_done() - 640.0).abs() < 1e-6);
    }

    #[test]
    fn drained_at_matches_total_work() {
        let mut srv = FairShareServer::new(8.0);
        srv.submit(SimTime::ZERO, 16.0);
        srv.submit(SimTime::ZERO, 8.0);
        assert_eq!(srv.drained_at(), SimTime::from_secs(3));
    }

    #[test]
    fn busy_time_excludes_idle_gaps() {
        let mut srv = FairShareServer::new(10.0);
        srv.submit(SimTime::ZERO, 10.0); // busy [0,1]
        srv.drain_until(SimTime::from_secs(5)); // idle (1,5]
        srv.submit(SimTime::from_secs(5), 20.0); // busy [5,7]
        srv.drain_until(SimTime::from_secs(10));
        assert_eq!(srv.busy_time(), SimDuration::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = FairShareServer::new(0.0);
    }

    #[test]
    fn capacity_change_is_exact_mid_job() {
        // 100 units at 10/s. At t=5, 50 units remain; halving the capacity
        // to 5/s means the rest takes 10 more seconds: done at t=15.
        let mut srv = FairShareServer::new(10.0);
        srv.submit(SimTime::ZERO, 100.0);
        srv.set_capacity(SimTime::from_secs(5), 5.0);
        assert_eq!(srv.capacity(), 5.0);
        assert_eq!(srv.drained_at(), SimTime::from_secs(15));
        let done = srv.drain_until(SimTime::from_secs(20));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, SimTime::from_secs(15));
    }

    #[test]
    fn capacity_restore_recovers_full_rate() {
        let mut srv = FairShareServer::new(10.0);
        srv.submit(SimTime::ZERO, 100.0);
        srv.set_capacity(SimTime::from_secs(2), 2.0); // 80 left at 2/s
        srv.set_capacity(SimTime::from_secs(7), 10.0); // 70 left at 10/s
        assert_eq!(srv.drained_at(), SimTime::from_secs(14));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn set_capacity_rejects_zero() {
        let mut srv = FairShareServer::new(10.0);
        srv.set_capacity(SimTime::from_secs(1), 0.0);
    }

    #[test]
    fn fcfs_serializes_requests() {
        let mut srv = FcfsServer::new();
        let (_, t1) = srv.submit(SimTime::ZERO, SimDuration::from_secs(2));
        let (_, t2) = srv.submit(SimTime::ZERO, SimDuration::from_secs(3));
        assert_eq!(t1, SimTime::from_secs(2));
        assert_eq!(t2, SimTime::from_secs(5));
        let done = srv.drain_until(SimTime::from_secs(4));
        assert_eq!(done.len(), 1);
        assert_eq!(srv.pending(), 1);
        let done = srv.drain_until(SimTime::from_secs(5));
        assert_eq!(done.len(), 1);
        assert_eq!(srv.served(), 2);
    }

    #[test]
    fn fcfs_idle_gap_then_new_request() {
        let mut srv = FcfsServer::new();
        srv.submit(SimTime::ZERO, SimDuration::from_secs(1));
        srv.drain_until(SimTime::from_secs(10));
        let (_, t) = srv.submit(SimTime::from_secs(10), SimDuration::from_secs(1));
        assert_eq!(t, SimTime::from_secs(11));
        assert_eq!(srv.busy_time(), SimDuration::from_secs(2));
    }
}
