//! Online statistics: Welford accumulators, percentiles, histograms.
//!
//! Used throughout the workspace to summarize power samples, phase
//! durations, eddy censuses and benchmark outputs.

/// Numerically stable online mean/variance accumulator (Welford's method).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add every item of an iterator.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile of a slice using linear interpolation between order statistics.
///
/// `q` is in `[0, 1]`. The input need not be sorted (a sorted copy is made).
/// Returns `None` for an empty slice or when any observation is NaN — a
/// percentile over unordered data has no defined value, and callers
/// summarizing measured samples should treat it like missing data rather
/// than crash mid-campaign.
///
/// # Panics
/// Panics if `q` itself is outside `[0, 1]` (a caller bug, not a data
/// problem).
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered above"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// A fixed-bin histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "hi must exceed lo");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Total observations recorded, including out-of-range.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        s.extend(xs.iter().copied());
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        whole.extend(xs.iter().copied());
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        a.extend(xs[..37].iter().copied());
        b.extend(xs[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.extend([1.0, 2.0, 3.0]);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 3);
    }

    #[test]
    fn percentile_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&xs, 0.5), Some(5.0));
    }

    #[test]
    fn percentile_nan_input_is_none_not_panic() {
        assert_eq!(percentile(&[1.0, f64::NAN, 3.0], 0.5), None);
        assert_eq!(percentile(&[f64::NAN], 0.0), None);
        // Infinities are ordered and fine.
        assert_eq!(
            percentile(&[f64::NEG_INFINITY, 0.0, f64::INFINITY], 1.0),
            Some(f64::INFINITY)
        );
    }

    #[test]
    #[should_panic(expected = "q must be in [0,1]")]
    fn percentile_rejects_bad_q() {
        let _ = percentile(&[1.0], 1.5);
    }

    mod percentile_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// For *any* float slice (NaN and infinities included) and any
            /// valid `q`, `percentile` never panics; it returns `Some` iff
            /// the input is non-empty and NaN-free, and the value is then
            /// bracketed by the slice's min and max.
            #[test]
            fn percentile_total_over_arbitrary_floats(
                xs in prop::collection::vec(
                    prop_oneof![
                        any::<f64>(),
                        (0u8..1).prop_map(|_| f64::NAN),
                        (0u8..1).prop_map(|_| f64::INFINITY),
                        (0u8..1).prop_map(|_| f64::NEG_INFINITY),
                    ],
                    0..32,
                ),
                q in 0.0f64..1.0,
            ) {
                let got = percentile(&xs, q);
                let clean = !xs.is_empty() && xs.iter().all(|x| !x.is_nan());
                prop_assert_eq!(got.is_some(), clean);
                // Interpolating between -inf and +inf order statistics is
                // the one case a NaN-free input can still produce NaN.
                if let Some(v) = got.filter(|v| !v.is_nan()) {
                    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
                    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    prop_assert!(v >= lo && v <= hi, "{v} outside [{lo}, {hi}]");
                }
            }
        }
    }

    #[test]
    fn histogram_counts() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(10.0);
        for i in 0..10 {
            assert_eq!(h.bin(i), 1, "bin {i}");
        }
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.total(), 12);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }
}
