//! Component DAGs: pipelines described as graphs of event-emitting
//! components, executed on the [`DesEngine`].
//!
//! A [`Dag`] names the stages of an in-situ pipeline (solver, adaptor,
//! render, encode, transport, storage, fault session) and wires them
//! with directed edges. The executors in the core crate each declare
//! their wiring as one of these graphs; [`replay`] is the generic
//! driver used by tests to prove the engine's total order is a pure
//! function of the plan — tokens injected into source components flow
//! along the edges as scheduled events, and the resulting
//! `(time, component, token)` firing sequence is bit-identical across
//! runs, hosts and thread counts.

use crate::engine::DesEngine;
use crate::time::{SimDuration, SimTime};

/// The kinds of pipeline components a DAG can wire together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// Numerical solver producing raw simulation state.
    Solver,
    /// In-situ adaptor handing solver state to the visualization side.
    Adaptor,
    /// Renderer turning state into images.
    Render,
    /// Image/stream encoder (PNG, compression).
    Encode,
    /// Interconnect transport (staging hand-off, links).
    Transport,
    /// Persistent storage (parallel file system, burst buffer).
    Storage,
    /// Fault session injecting failures and degradations.
    Fault,
}

impl ComponentKind {
    /// Stable lowercase label (used in traces and `Display`).
    pub fn label(self) -> &'static str {
        match self {
            ComponentKind::Solver => "solver",
            ComponentKind::Adaptor => "adaptor",
            ComponentKind::Render => "render",
            ComponentKind::Encode => "encode",
            ComponentKind::Transport => "transport",
            ComponentKind::Storage => "storage",
            ComponentKind::Fault => "fault",
        }
    }
}

impl std::fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Index of a component inside its [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub u32);

/// Errors from [`Dag::validate`] and wiring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge references a component that was never added.
    UnknownComponent(ComponentId),
    /// An edge would connect a component to itself.
    SelfLoop(ComponentId),
    /// The graph contains a cycle through the named component.
    Cycle(ComponentId),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::UnknownComponent(c) => write!(f, "unknown component id {}", c.0),
            DagError::SelfLoop(c) => write!(f, "self loop on component id {}", c.0),
            DagError::Cycle(c) => write!(f, "cycle through component id {}", c.0),
        }
    }
}

impl std::error::Error for DagError {}

struct Node {
    kind: ComponentKind,
    name: String,
    successors: Vec<ComponentId>,
}

/// A directed acyclic graph of pipeline components.
#[derive(Default)]
pub struct Dag {
    nodes: Vec<Node>,
}

impl Dag {
    /// An empty graph.
    pub fn new() -> Self {
        Dag::default()
    }

    /// Add a component; the returned id is its wiring address.
    pub fn add(&mut self, kind: ComponentKind, name: impl Into<String>) -> ComponentId {
        let id = ComponentId(u32::try_from(self.nodes.len()).expect("too many components"));
        self.nodes.push(Node {
            kind,
            name: name.into(),
            successors: Vec::new(),
        });
        id
    }

    /// Wire a directed edge `from → to`. Duplicate edges collapse.
    pub fn connect(&mut self, from: ComponentId, to: ComponentId) -> Result<(), DagError> {
        if from == to {
            return Err(DagError::SelfLoop(from));
        }
        for id in [from, to] {
            if id.0 as usize >= self.nodes.len() {
                return Err(DagError::UnknownComponent(id));
            }
        }
        let succ = &mut self.nodes[from.0 as usize].successors;
        if !succ.contains(&to) {
            succ.push(to);
        }
        Ok(())
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the graph has no components.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The component's kind.
    pub fn kind(&self, id: ComponentId) -> ComponentKind {
        self.nodes[id.0 as usize].kind
    }

    /// The component's name.
    pub fn name(&self, id: ComponentId) -> &str {
        &self.nodes[id.0 as usize].name
    }

    /// Downstream neighbors in wiring order.
    pub fn successors(&self, id: ComponentId) -> &[ComponentId] {
        &self.nodes[id.0 as usize].successors
    }

    /// All component ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = ComponentId> + '_ {
        (0..self.nodes.len() as u32).map(ComponentId)
    }

    /// Check acyclicity (Kahn's algorithm). Returns the first component
    /// found on a cycle otherwise.
    pub fn validate(&self) -> Result<(), DagError> {
        self.topo_order().map(|_| ())
    }

    /// A topological order of the components (deterministic: smallest
    /// ready id first), or the first component on a cycle.
    pub fn topo_order(&self) -> Result<Vec<ComponentId>, DagError> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for node in &self.nodes {
            for s in &node.successors {
                indegree[s.0 as usize] += 1;
            }
        }
        let mut order = Vec::with_capacity(n);
        // Ready set kept sorted by scanning ascending ids each round;
        // n is small (pipeline stages), determinism matters more than
        // asymptotics here.
        let mut done = vec![false; n];
        while order.len() < n {
            let mut advanced = false;
            for i in 0..n {
                if !done[i] && indegree[i] == 0 {
                    done[i] = true;
                    advanced = true;
                    order.push(ComponentId(i as u32));
                    for s in &self.nodes[i].successors {
                        indegree[s.0 as usize] -= 1;
                    }
                }
            }
            if !advanced {
                let stuck = (0..n).find(|&i| !done[i]).expect("cycle must have a node");
                return Err(DagError::Cycle(ComponentId(stuck as u32)));
            }
        }
        Ok(order)
    }
}

/// One firing in a [`replay`]: token `token` arrived at `component` at
/// `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Firing {
    /// When the token arrived.
    pub at: SimTime,
    /// Where it arrived.
    pub component: ComponentId,
    /// Which injected token it descends from.
    pub token: u64,
}

/// Deterministic per-hop service delay: a pure function of the
/// destination component and the token, so a replay's schedule depends
/// on nothing but the plan.
pub fn service_delay(component: ComponentId, token: u64) -> SimDuration {
    let h = (u64::from(component.0))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(token.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    SimDuration::from_micros(1 + (h >> 32) % 1_000)
}

/// Drive `injections` (token sources) through the DAG on a fresh
/// [`DesEngine`], recording every firing. Each firing forwards its token
/// to every successor after [`service_delay`]. The returned sequence is
/// the engine's total order — a pure function of `(dag, injections)`.
///
/// # Panics
/// Panics if the graph fails [`Dag::validate`] (a cyclic graph would
/// replay forever).
pub fn replay(dag: &Dag, injections: &[(ComponentId, SimTime)]) -> Vec<Firing> {
    dag.validate().expect("replay requires an acyclic graph");
    let mut engine: DesEngine<Firing> = DesEngine::new();
    for (token, &(component, at)) in injections.iter().enumerate() {
        engine.schedule_at(
            at,
            Firing {
                at,
                component,
                token: token as u64,
            },
        );
    }
    let mut firings = Vec::new();
    engine.run(
        &mut |eng: &mut DesEngine<Firing>, at: SimTime, ev: Firing| {
            firings.push(Firing { at, ..ev });
            for &succ in dag.successors(ev.component) {
                let delay = service_delay(succ, ev.token);
                eng.schedule_in(
                    delay,
                    Firing {
                        at: at + delay,
                        component: succ,
                        token: ev.token,
                    },
                );
            }
        },
    );
    firings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_pipeline() -> (Dag, Vec<ComponentId>) {
        let mut dag = Dag::new();
        let ids = vec![
            dag.add(ComponentKind::Solver, "solver"),
            dag.add(ComponentKind::Adaptor, "adaptor"),
            dag.add(ComponentKind::Render, "render"),
            dag.add(ComponentKind::Encode, "encode"),
            dag.add(ComponentKind::Storage, "pfs"),
        ];
        for w in ids.windows(2) {
            dag.connect(w[0], w[1]).unwrap();
        }
        (dag, ids)
    }

    #[test]
    fn wiring_and_validation() {
        let (dag, ids) = linear_pipeline();
        assert_eq!(dag.len(), 5);
        assert_eq!(dag.kind(ids[0]), ComponentKind::Solver);
        assert_eq!(dag.name(ids[4]), "pfs");
        assert_eq!(dag.successors(ids[1]), &[ids[2]]);
        assert!(dag.validate().is_ok());
        assert_eq!(dag.topo_order().unwrap(), ids);
    }

    #[test]
    fn rejects_bad_edges_and_cycles() {
        let mut dag = Dag::new();
        let a = dag.add(ComponentKind::Solver, "a");
        let b = dag.add(ComponentKind::Render, "b");
        assert_eq!(dag.connect(a, a), Err(DagError::SelfLoop(a)));
        assert_eq!(
            dag.connect(a, ComponentId(9)),
            Err(DagError::UnknownComponent(ComponentId(9)))
        );
        dag.connect(a, b).unwrap();
        dag.connect(b, a).unwrap();
        assert!(matches!(dag.validate(), Err(DagError::Cycle(_))));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut dag = Dag::new();
        let a = dag.add(ComponentKind::Transport, "t");
        let b = dag.add(ComponentKind::Storage, "s");
        dag.connect(a, b).unwrap();
        dag.connect(a, b).unwrap();
        assert_eq!(dag.successors(a), &[b]);
    }

    #[test]
    fn replay_covers_every_reachable_hop() {
        let (dag, ids) = linear_pipeline();
        let firings = replay(&dag, &[(ids[0], SimTime::ZERO)]);
        // One token through a 5-stage chain = 5 firings, in stage order.
        assert_eq!(firings.len(), 5);
        let visited: Vec<ComponentId> = firings.iter().map(|f| f.component).collect();
        assert_eq!(visited, ids);
        assert!(firings.windows(2).all(|w| w[0].at <= w[1].at));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Build an arbitrary DAG: edges only from lower to higher ids,
        /// so acyclicity holds by construction.
        fn arb_dag(rng_words: &[u64], nodes: usize) -> Dag {
            const KINDS: [ComponentKind; 7] = [
                ComponentKind::Solver,
                ComponentKind::Adaptor,
                ComponentKind::Render,
                ComponentKind::Encode,
                ComponentKind::Transport,
                ComponentKind::Storage,
                ComponentKind::Fault,
            ];
            let mut dag = Dag::new();
            let ids: Vec<ComponentId> = (0..nodes)
                .map(|i| dag.add(KINDS[i % KINDS.len()], format!("c{i}")))
                .collect();
            let mut w = 0;
            for i in 0..nodes {
                for j in (i + 1)..nodes {
                    let word = rng_words[w % rng_words.len()];
                    w += 1;
                    if word % 3 == 0 {
                        dag.connect(ids[i], ids[j]).unwrap();
                    }
                }
            }
            dag
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Any randomly generated component DAG schedules its events
            /// in a total order that is a pure function of the plan: the
            /// replay is identical run-to-run, and identical to the
            /// closure-calendar `Simulation` executing the same plan.
            #[test]
            fn replay_order_is_a_pure_function_of_the_plan(
                edge_words in prop::collection::vec(0u64..1_000, 1..64),
                nodes in 2usize..8,
                inject_times in prop::collection::vec(0u64..100_000, 1..6),
            ) {
                let dag = arb_dag(&edge_words, nodes);
                prop_assert!(dag.validate().is_ok());
                let injections: Vec<(ComponentId, SimTime)> = inject_times
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| {
                        (ComponentId((i % nodes) as u32), SimTime::from_micros(t))
                    })
                    .collect();

                let a = replay(&dag, &injections);
                let b = replay(&dag, &injections);
                prop_assert_eq!(&a, &b, "replay differs run-to-run");

                // Differential model: the boxed-closure calendar engine
                // must produce the same total order.
                let model = model_replay(&dag, &injections);
                prop_assert_eq!(&a, &model, "indexed engine diverged from the model calendar");

                // The order really is total and time-monotone.
                for w in a.windows(2) {
                    prop_assert!(w[0].at <= w[1].at);
                }
            }
        }

        /// The same token-forwarding semantics on the legacy
        /// `Simulation` closure calendar.
        fn model_replay(dag: &Dag, injections: &[(ComponentId, SimTime)]) -> Vec<Firing> {
            use crate::event::Simulation;
            use std::cell::RefCell;
            use std::rc::Rc;

            struct World {
                firings: Vec<Firing>,
            }
            let dag = Rc::new(RefCell::new({
                // Clone the wiring into an owned table the closures can
                // share without borrowing `dag`.
                let succ: Vec<Vec<ComponentId>> =
                    dag.ids().map(|id| dag.successors(id).to_vec()).collect();
                succ
            }));
            let mut sim: Simulation<World> = Simulation::new();
            let mut world = World {
                firings: Vec::new(),
            };
            fn fire(
                sim: &mut Simulation<World>,
                world: &mut World,
                succ: Rc<RefCell<Vec<Vec<ComponentId>>>>,
                component: ComponentId,
                token: u64,
            ) {
                let at = sim.now();
                world.firings.push(Firing {
                    at,
                    component,
                    token,
                });
                let next: Vec<ComponentId> = succ.borrow()[component.0 as usize].clone();
                for s in next {
                    let succ = Rc::clone(&succ);
                    sim.schedule_in(service_delay(s, token), move |sim, world| {
                        fire(sim, world, succ, s, token);
                    });
                }
            }
            for (token, &(component, at)) in injections.iter().enumerate() {
                let succ = Rc::clone(&dag);
                let token = token as u64;
                sim.schedule_at(at, move |sim, world| {
                    fire(sim, world, succ, component, token);
                });
            }
            sim.run(&mut world);
            world.firings
        }
    }
}
