//! # ivis-sim — discrete-event simulation engine
//!
//! A small, deterministic discrete-event simulation (DES) substrate used by
//! the cluster, storage and pipeline models of the `insitu-vis` workspace.
//!
//! The engine is deliberately minimal but complete:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time.
//! * [`Simulation`] — an event calendar whose events are closures acting on a
//!   caller-supplied world type `W`. Determinism is guaranteed by a
//!   monotonically increasing sequence number that breaks timestamp ties in
//!   insertion order.
//! * [`DesEngine`] — the indexed engine for hot paths: events are plain
//!   values in an [`arena::EventArena`] popped from a hierarchical
//!   [`wheel::TimerWheel`] (calendar-queue overflow level for far-future
//!   entries), with O(1) lazy cancellation via [`EventHandle`]s. Same
//!   `(time, seq)` determinism contract as [`Simulation`], which is kept
//!   as the model queue the wheel is property-tested against.
//! * [`dag`] — pipelines as component DAGs ([`ComponentKind`], [`Dag`])
//!   replayed on the engine; the executors in the core crate declare
//!   their wiring with these.
//! * [`resource`] — analytic queueing servers: a processor-sharing
//!   [`resource::FairShareServer`] (models bandwidth-shared storage servers)
//!   and a FIFO [`resource::FcfsServer`] (models metadata servers).
//! * [`rng`] — a small, dependency-free deterministic PRNG
//!   (SplitMix64-seeded xoshiro256++) with normal/lognormal samplers, so
//!   simulated measurements are reproducible across runs and platforms.
//! * [`stats`] — online statistics (Welford), percentiles, histograms.
//! * [`trace`] — time-series recording with step-function integration and
//!   fixed-interval resampling (this is what the simulated power meters use).
//!
//! The engine contains no I/O and no global state; every simulation is a
//! value.

pub mod arena;
pub mod dag;
pub mod engine;
pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod wheel;

pub use arena::{EventArena, EventHandle};
pub use dag::{ComponentId, ComponentKind, Dag, DagError};
pub use engine::{DesEngine, EventHandler};
pub use event::Simulation;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::TimeSeries;
pub use wheel::TimerWheel;
