//! # ivis-sim — discrete-event simulation engine
//!
//! A small, deterministic discrete-event simulation (DES) substrate used by
//! the cluster, storage and pipeline models of the `insitu-vis` workspace.
//!
//! The engine is deliberately minimal but complete:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time.
//! * [`Simulation`] — an event calendar whose events are closures acting on a
//!   caller-supplied world type `W`. Determinism is guaranteed by a
//!   monotonically increasing sequence number that breaks timestamp ties in
//!   insertion order.
//! * [`resource`] — analytic queueing servers: a processor-sharing
//!   [`resource::FairShareServer`] (models bandwidth-shared storage servers)
//!   and a FIFO [`resource::FcfsServer`] (models metadata servers).
//! * [`rng`] — a small, dependency-free deterministic PRNG
//!   (SplitMix64-seeded xoshiro256++) with normal/lognormal samplers, so
//!   simulated measurements are reproducible across runs and platforms.
//! * [`stats`] — online statistics (Welford), percentiles, histograms.
//! * [`trace`] — time-series recording with step-function integration and
//!   fixed-interval resampling (this is what the simulated power meters use).
//!
//! The engine contains no I/O and no global state; every simulation is a
//! value.

pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::Simulation;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::TimeSeries;
