//! The event calendar: a deterministic closure-based discrete-event engine.
//!
//! Events are `FnOnce(&mut Simulation<W>, &mut W)` closures, so any component
//! of the world can schedule follow-up work. Ties in the timestamp are broken
//! by insertion order (a monotonically increasing sequence number), which
//! makes runs bit-for-bit reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

type Action<W> = Box<dyn FnOnce(&mut Simulation<W>, &mut W)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event simulation over a world type `W`.
///
/// The simulation owns only the clock and the event calendar; all domain
/// state lives in `W`, which is threaded through every event by `&mut`.
///
/// ```
/// use ivis_sim::{Simulation, SimDuration};
///
/// let mut sim = Simulation::new();
/// let mut hits: Vec<u64> = Vec::new();
/// sim.schedule_in(SimDuration::from_secs(2), |sim, world: &mut Vec<u64>| {
///     world.push(sim.now().as_micros());
/// });
/// sim.schedule_in(SimDuration::from_secs(1), |sim, world: &mut Vec<u64>| {
///     world.push(sim.now().as_micros());
/// });
/// sim.run(&mut hits);
/// assert_eq!(hits, vec![1_000_000, 2_000_000]);
/// ```
pub struct Simulation<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    queue: BinaryHeap<Scheduled<W>>,
}

impl<W> Default for Simulation<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Simulation<W> {
    /// Create an empty simulation with the clock at zero.
    pub fn new() -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an event at an absolute time.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the current clock).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut Simulation<W>, &mut W) + 'static,
    ) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedule an event `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Simulation<W>, &mut W) + 'static,
    ) {
        self.schedule_at(self.now + delay, action);
    }

    /// Run until the calendar is empty. Returns the final clock value.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        self.run_until(world, SimTime::MAX)
    }

    /// Run until the calendar is empty or the next event lies beyond
    /// `deadline`. The clock is left at the last executed event (or at
    /// `deadline` if events beyond it remain pending).
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                self.now = deadline;
                return self.now;
            }
            let ev = self.queue.pop().expect("peeked event must pop");
            debug_assert!(ev.at >= self.now, "event calendar went backwards");
            self.now = ev.at;
            self.executed += 1;
            (ev.action)(self, world);
        }
        self.now
    }

    /// Execute at most one pending event. Returns `false` if the calendar is
    /// empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.queue.pop() {
            None => false,
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "event calendar went backwards");
                self.now = ev.at;
                self.executed += 1;
                (ev.action)(self, world);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new();
        let mut out = Vec::new();
        sim.schedule_at(SimTime::from_secs(3), |_, w| w.push(3));
        sim.schedule_at(SimTime::from_secs(1), |_, w| w.push(1));
        sim.schedule_at(SimTime::from_secs(2), |_, w| w.push(2));
        let end = sim.run(&mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(end, SimTime::from_secs(3));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new();
        let mut out = Vec::new();
        for i in 0..10 {
            sim.schedule_at(SimTime::from_secs(5), move |_, w: &mut Vec<u32>| w.push(i));
        }
        sim.run(&mut out);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Simulation<Vec<u64>> = Simulation::new();
        let mut out = Vec::new();
        fn tick(sim: &mut Simulation<Vec<u64>>, w: &mut Vec<u64>) {
            w.push(sim.now().as_micros());
            if w.len() < 5 {
                sim.schedule_in(SimDuration::from_secs(1), tick);
            }
        }
        sim.schedule_at(SimTime::ZERO, tick);
        sim.run(&mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(out[4], 4_000_000);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new();
        let mut out = Vec::new();
        sim.schedule_at(SimTime::from_secs(1), |_, w| w.push(1));
        sim.schedule_at(SimTime::from_secs(10), |_, w| w.push(10));
        let t = sim.run_until(&mut out, SimTime::from_secs(5));
        assert_eq!(out, vec![1]);
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(sim.events_pending(), 1);
        // Resuming picks up the remaining event.
        sim.run(&mut out);
        assert_eq!(out, vec![1, 10]);
    }

    #[test]
    fn step_executes_one_event() {
        let mut sim: Simulation<u32> = Simulation::new();
        let mut w = 0;
        sim.schedule_at(SimTime::from_secs(1), |_, w| *w += 1);
        sim.schedule_at(SimTime::from_secs(2), |_, w| *w += 1);
        assert!(sim.step(&mut w));
        assert_eq!(w, 1);
        assert!(sim.step(&mut w));
        assert!(!sim.step(&mut w));
        assert_eq!(w, 2);
    }

    #[test]
    fn step_after_deadline_advance_upholds_time_order() {
        // Regression: `step` used to skip the no-time-travel invariant
        // `run_until` enforces. After a deadline advances the clock past a
        // still-pending event's schedule point minus slack, stepping must
        // keep the clock monotone (and must not trip the debug assert for
        // legitimately future events).
        let mut sim: Simulation<Vec<u32>> = Simulation::new();
        let mut out = Vec::new();
        sim.schedule_at(SimTime::from_secs(10), |_, w| w.push(10));
        let t = sim.run_until(&mut out, SimTime::from_secs(5));
        assert_eq!(t, SimTime::from_secs(5)); // clock moved, event pending
        assert!(sim.step(&mut out));
        assert_eq!(out, vec![10]);
        assert_eq!(sim.now(), SimTime::from_secs(10));
        assert!(sim.now() >= t, "step moved the clock backwards");
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.schedule_at(SimTime::from_secs(5), |sim, _| {
            sim.schedule_at(SimTime::from_secs(1), |_, _| {});
        });
        sim.run(&mut ());
    }

    #[test]
    fn deterministic_across_runs() {
        fn run_once() -> Vec<u32> {
            let mut sim: Simulation<Vec<u32>> = Simulation::new();
            let mut out = Vec::new();
            for i in 0..100u32 {
                let t = SimTime::from_micros(((i as u64 * 7919) % 50) * 10);
                sim.schedule_at(t, move |_, w: &mut Vec<u32>| w.push(i));
            }
            sim.run(&mut out);
            out
        }
        assert_eq!(run_once(), run_once());
    }
}
