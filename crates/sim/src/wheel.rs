//! The indexed event queue: a hierarchical timer wheel with a
//! calendar-queue overflow level.
//!
//! The wheel holds `(time, seq, handle)` index entries — event payloads
//! live in the [`EventArena`](crate::arena::EventArena) — and pops them
//! in `(time, seq)` order, which is the engine's determinism contract:
//! ties in the timestamp break in insertion order, exactly like the
//! closure-calendar [`Simulation`](crate::event::Simulation) it indexes
//! faster than.
//!
//! # Structure
//!
//! * **Wheel**: [`LEVELS`] = 4 levels of [`SLOTS`] = 64 slots at a 1 µs
//!   tick, tokio-style. Level `L` slot width is `64^L` ticks, so the
//!   wheel spans one *epoch* of `64^4` µs ≈ 16.8 simulated seconds. An
//!   entry's level is the highest 6-bit digit in which its tick differs
//!   from the wheel's `base`; per-level `u64` occupancy bitmaps make
//!   "next pending slot" a `trailing_zeros`. Because entries at level
//!   `L` agree with `base` on every digit above `L` and sort after it
//!   at digit `L`, the first occupied slot of the lowest occupied level
//!   is always the global wheel minimum — no cross-level comparison.
//! * **Cascade**: popping into a level-`L` slot (`L > 0`) advances
//!   `base` to the slot's start and re-files the slot's entries, which
//!   land at strictly lower levels; repeated until the minimum sits at
//!   level 0. Level-0 slots hold entries of exactly one tick, so the
//!   FIFO tie-break is a min-`seq` scan of that one slot.
//! * **Overflow**: entries beyond the current epoch go to a calendar
//!   queue — [`OVERFLOW_BUCKETS`] buckets keyed by `epoch %
//!   OVERFLOW_BUCKETS`, each with a cached minimum. Epochs are disjoint
//!   and ordered, so every wheel entry precedes every overflow entry;
//!   when the wheel drains, the bucket holding the global overflow
//!   minimum is promoted (entries of other epochs stay behind).
//!
//! Slot vectors, bucket vectors and the cascade scratch buffer all keep
//! their capacity across reuse, so a steady-state schedule/pop cycle
//! allocates nothing once warmed up (`tests/des_zero_alloc.rs`).
//!
//! Cancellation is lazy and lives a layer up: the
//! [`DesEngine`](crate::engine::DesEngine) removes the payload from the
//! arena and simply skips wheel entries whose handle no longer resolves.

use crate::arena::EventHandle;
use crate::time::SimTime;

/// Bits per wheel digit (6 ⇒ 64 slots per level).
const SLOT_BITS: u32 = 6;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; the wheel spans `64^LEVELS` ticks (one epoch).
pub const LEVELS: usize = 4;
/// Bits covered by the whole wheel: ticks sharing these low bits' prefix
/// (i.e. the same value above them) are in the same epoch.
const EPOCH_BITS: u32 = SLOT_BITS * LEVELS as u32;
/// Calendar-queue buckets for beyond-epoch entries.
pub const OVERFLOW_BUCKETS: usize = 64;

const SLOT_MASK: u64 = SLOTS as u64 - 1;

/// An index entry: when to fire, the insertion-order tie-break, and the
/// arena handle of the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WheelEntry {
    /// Absolute fire time.
    pub at: SimTime,
    /// Insertion sequence number; ties in `at` pop in `seq` order.
    pub seq: u64,
    /// Arena handle of the event payload (may be stale if cancelled).
    pub handle: EventHandle,
}

struct Bucket {
    entries: Vec<WheelEntry>,
    /// Smallest tick in the bucket, `u64::MAX` when empty.
    min: u64,
}

/// Hierarchical timer wheel + calendar overflow. See the module docs.
pub struct TimerWheel {
    /// Current position in ticks; every resident entry fires at or after
    /// this, and every wheel-level entry shares its epoch.
    base: u64,
    /// Per-level slot-occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// `LEVELS × SLOTS` slot vectors, row-major by level.
    slots: Vec<Vec<WheelEntry>>,
    overflow: Vec<Bucket>,
    /// Smallest tick anywhere in `overflow`. Meaningful only while
    /// `overflow_len > 0` (a real entry at `SimTime::MAX` also reads
    /// `u64::MAX`, so emptiness is tracked by count, not sentinel).
    overflow_min: u64,
    overflow_len: usize,
    len: usize,
    /// Reused cascade/promotion buffer (capacity persists).
    scratch: Vec<WheelEntry>,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheel {
    /// An empty wheel positioned at tick 0.
    pub fn new() -> Self {
        TimerWheel {
            base: 0,
            occupied: [0; LEVELS],
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            overflow: (0..OVERFLOW_BUCKETS)
                .map(|_| Bucket {
                    entries: Vec::new(),
                    min: u64::MAX,
                })
                .collect(),
            overflow_min: u64::MAX,
            overflow_len: 0,
            len: 0,
            scratch: Vec::new(),
        }
    }

    /// Pending entries (including lazily-cancelled ones not yet skipped).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no entry is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current wheel position in ticks (diagnostics).
    pub fn base_tick(&self) -> u64 {
        self.base
    }

    /// File an entry. `seq` is the caller's insertion counter; entries
    /// with equal `at` pop in ascending `seq` order.
    ///
    /// Inserting before the current position is legal (it happens after
    /// a deadline-bounded run parked the position past a later entry)
    /// and triggers a rebase of the resident entries.
    pub fn insert(&mut self, at: SimTime, seq: u64, handle: EventHandle) {
        let tick = at.as_micros();
        if tick < self.base {
            self.rebase(tick);
        }
        self.len += 1;
        let entry = WheelEntry { at, seq, handle };
        if tick >> EPOCH_BITS == self.base >> EPOCH_BITS {
            self.insert_wheel(entry);
        } else {
            self.insert_overflow(entry);
        }
    }

    /// Remove and return the `(at, seq)`-minimal entry.
    pub fn pop(&mut self) -> Option<WheelEntry> {
        'position: loop {
            for level in 0..LEVELS {
                let cursor = (self.base >> (SLOT_BITS * level as u32)) & SLOT_MASK;
                let pending = self.occupied[level] & (!0u64 << cursor);
                if pending == 0 {
                    continue;
                }
                let slot = pending.trailing_zeros() as usize;
                if level == 0 {
                    let tick = (self.base & !SLOT_MASK) | slot as u64;
                    debug_assert!(tick >= self.base, "level-0 slot behind the cursor");
                    self.base = tick;
                    let v = &mut self.slots[slot];
                    let mut best = 0;
                    for i in 1..v.len() {
                        if v[i].seq < v[best].seq {
                            best = i;
                        }
                    }
                    let entry = v.swap_remove(best);
                    if v.is_empty() {
                        self.occupied[0] &= !(1 << slot);
                    }
                    self.len -= 1;
                    debug_assert_eq!(entry.at.as_micros(), tick, "entry filed in the wrong slot");
                    return Some(entry);
                }
                self.cascade(level, slot);
                continue 'position;
            }
            debug_assert!(
                self.occupied.iter().all(|&b| b == 0),
                "occupied slot behind the cursor"
            );
            if self.overflow_len == 0 {
                debug_assert_eq!(self.len, 0);
                return None;
            }
            self.promote();
        }
    }

    /// File within the current epoch. The entry's tick must share the
    /// wheel's epoch and be `>= base`.
    fn insert_wheel(&mut self, entry: WheelEntry) {
        let tick = entry.at.as_micros();
        debug_assert!(tick >= self.base);
        debug_assert_eq!(tick >> EPOCH_BITS, self.base >> EPOCH_BITS);
        // Highest differing 6-bit digit picks the level; the low OR makes
        // tick == base resolve to level 0 instead of leading_zeros(0) UB.
        let masked = (tick ^ self.base) | SLOT_MASK;
        let level = ((63 - masked.leading_zeros()) / SLOT_BITS) as usize;
        debug_assert!(level < LEVELS, "same-epoch entry above the top level");
        let slot = ((tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.occupied[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push(entry);
    }

    fn insert_overflow(&mut self, entry: WheelEntry) {
        let tick = entry.at.as_micros();
        let bucket = ((tick >> EPOCH_BITS) % OVERFLOW_BUCKETS as u64) as usize;
        let b = &mut self.overflow[bucket];
        b.entries.push(entry);
        b.min = b.min.min(tick);
        self.overflow_min = self.overflow_min.min(tick);
        self.overflow_len += 1;
    }

    /// Advance `base` to the start of level-`level` slot `slot` and
    /// re-file its entries; they land at strictly lower levels.
    fn cascade(&mut self, level: usize, slot: usize) {
        let shift = SLOT_BITS * level as u32;
        let slot_start =
            ((self.base >> (shift + SLOT_BITS)) << (shift + SLOT_BITS)) | ((slot as u64) << shift);
        debug_assert!(slot_start >= self.base, "cascade moved the wheel backwards");
        self.base = slot_start;
        self.occupied[level] &= !(1 << slot);
        let mut scratch = std::mem::take(&mut self.scratch);
        std::mem::swap(&mut self.slots[level * SLOTS + slot], &mut scratch);
        for entry in scratch.drain(..) {
            self.insert_wheel(entry);
        }
        self.scratch = scratch;
    }

    /// Wheel is empty: jump to the earliest overflow entry and pull its
    /// whole epoch in. Entries of other epochs sharing the bucket stay.
    fn promote(&mut self) {
        let min = self.overflow_min;
        let epoch = min >> EPOCH_BITS;
        self.base = min;
        let bucket = (epoch % OVERFLOW_BUCKETS as u64) as usize;
        let mut scratch = std::mem::take(&mut self.scratch);
        std::mem::swap(&mut self.overflow[bucket].entries, &mut scratch);
        let mut kept_min = u64::MAX;
        for entry in scratch.drain(..) {
            let tick = entry.at.as_micros();
            if tick >> EPOCH_BITS == epoch {
                self.overflow_len -= 1;
                self.insert_wheel(entry);
            } else {
                kept_min = kept_min.min(tick);
                self.overflow[bucket].entries.push(entry);
            }
        }
        self.scratch = scratch;
        self.overflow[bucket].min = kept_min;
        self.overflow_min = self
            .overflow
            .iter()
            .map(|b| b.min)
            .min()
            .unwrap_or(u64::MAX);
    }

    /// An insert landed before `base`: pull every resident entry out,
    /// move `base` back, and re-file (epoch membership may change).
    fn rebase(&mut self, new_base: u64) {
        let mut scratch = std::mem::take(&mut self.scratch);
        for level in 0..LEVELS {
            while self.occupied[level] != 0 {
                let slot = self.occupied[level].trailing_zeros() as usize;
                self.occupied[level] &= !(1 << slot);
                scratch.append(&mut self.slots[level * SLOTS + slot]);
            }
        }
        self.base = new_base;
        for entry in scratch.drain(..) {
            if entry.at.as_micros() >> EPOCH_BITS == new_base >> EPOCH_BITS {
                self.insert_wheel(entry);
            } else {
                self.insert_overflow(entry);
            }
        }
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::EventArena;

    /// Drive the wheel with payload-free handles from a real arena so
    /// handles are unique and live.
    struct Harness {
        wheel: TimerWheel,
        arena: EventArena<u64>,
        seq: u64,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                wheel: TimerWheel::new(),
                arena: EventArena::new(),
                seq: 0,
            }
        }

        fn insert(&mut self, at_us: u64, tag: u64) {
            let h = self.arena.insert(tag);
            let seq = self.seq;
            self.seq += 1;
            self.wheel.insert(SimTime::from_micros(at_us), seq, h);
        }

        fn pop(&mut self) -> Option<(u64, u64)> {
            let e = self.wheel.pop()?;
            let tag = self.arena.remove(e.handle).expect("live entry");
            Some((e.at.as_micros(), tag))
        }

        fn drain(&mut self) -> Vec<(u64, u64)> {
            let mut out = Vec::new();
            while let Some(x) = self.pop() {
                out.push(x);
            }
            out
        }
    }

    #[test]
    fn pops_in_time_order_within_level_zero() {
        let mut h = Harness::new();
        for &t in &[30u64, 5, 17, 0, 63] {
            h.insert(t, t);
        }
        let out = h.drain();
        assert_eq!(out, vec![(0, 0), (5, 5), (17, 17), (30, 30), (63, 63)]);
    }

    #[test]
    fn same_timestamp_pops_in_fifo_insertion_order() {
        let mut h = Harness::new();
        // Interleave two timestamps; each timestamp's tags must come out
        // in insertion order even after swap_remove churn in the slot.
        for i in 0..20u64 {
            h.insert(1_000, 100 + i);
            h.insert(999, 200 + i);
        }
        let out = h.drain();
        let at_999: Vec<u64> = out.iter().filter(|e| e.0 == 999).map(|e| e.1).collect();
        let at_1000: Vec<u64> = out.iter().filter(|e| e.0 == 1_000).map(|e| e.1).collect();
        assert_eq!(at_999, (200..220).collect::<Vec<_>>());
        assert_eq!(at_1000, (100..120).collect::<Vec<_>>());
        assert!(out.iter().position(|e| e.0 == 1_000).unwrap() == 20);
    }

    #[test]
    fn rollover_cascades_across_levels() {
        let mut h = Harness::new();
        // Entries straddling every level boundary: 64 (level 1), 64^2
        // (level 2), 64^3 (level 3), plus neighbors that force cascades.
        let times = [
            1u64,
            63,
            64,
            65,
            64 * 64 - 1,
            64 * 64,
            64 * 64 + 7,
            64 * 64 * 64 - 1,
            64 * 64 * 64,
            64 * 64 * 64 + 123,
        ];
        for (i, &t) in times.iter().enumerate() {
            h.insert(t, i as u64);
        }
        let out = h.drain();
        let popped: Vec<u64> = out.iter().map(|e| e.0).collect();
        let mut expect = times.to_vec();
        expect.sort_unstable();
        assert_eq!(popped, expect);
    }

    #[test]
    fn far_future_entries_take_the_overflow_level_and_return() {
        let mut h = Harness::new();
        let epoch = 1u64 << EPOCH_BITS;
        // Same bucket, different epochs (bucket = epoch % 64): the
        // promotion must pull only the due epoch and keep the rest.
        h.insert(3 * epoch + 5, 1);
        h.insert((3 + OVERFLOW_BUCKETS as u64) * epoch + 9, 2);
        h.insert(10, 0);
        h.insert(u64::MAX, 3); // SimTime::MAX sentinel still files fine
        let out = h.drain();
        assert_eq!(
            out,
            vec![
                (10, 0),
                (3 * epoch + 5, 1),
                ((3 + OVERFLOW_BUCKETS as u64) * epoch + 9, 2),
                (u64::MAX, 3),
            ]
        );
    }

    #[test]
    fn insert_behind_base_rebases_and_stays_ordered() {
        let mut h = Harness::new();
        h.insert(1_000_000, 1);
        // Popping advances base to 1_000_000.
        assert_eq!(h.pop(), Some((1_000_000, 1)));
        h.insert(2_000_000, 2);
        // Park far in the future, then file behind the parked base —
        // exactly what a deadline-bounded engine run produces.
        h.insert(1_500_000, 3);
        h.insert(1_200_000, 4);
        let out = h.drain();
        assert_eq!(out, vec![(1_200_000, 4), (1_500_000, 3), (2_000_000, 2)]);
    }

    #[test]
    fn interleaved_pop_and_insert_keeps_global_order() {
        let mut h = Harness::new();
        h.insert(10, 0);
        h.insert(50, 1);
        assert_eq!(h.pop(), Some((10, 0)));
        // now base = 10; inserting at 10 again is same-tick FIFO
        h.insert(10, 2);
        h.insert(12, 3);
        assert_eq!(h.pop(), Some((10, 2)));
        assert_eq!(h.pop(), Some((12, 3)));
        assert_eq!(h.pop(), Some((50, 1)));
        assert_eq!(h.pop(), None);
        assert!(h.wheel.is_empty());
    }

    #[test]
    fn len_tracks_inserts_and_pops() {
        let mut h = Harness::new();
        assert!(h.wheel.is_empty());
        for t in 0..100u64 {
            h.insert(t * 977, t);
        }
        assert_eq!(h.wheel.len(), 100);
        for _ in 0..100 {
            assert!(h.pop().is_some());
        }
        assert_eq!(h.wheel.len(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The wheel pops in exactly the order a sorted-Vec model
            /// queue does, for arbitrary schedules across all levels and
            /// the overflow, including interleaved pops.
            #[test]
            fn matches_sorted_vec_model(
                times in prop::collection::vec(0u64..(1u64 << 30), 1..200),
                pop_every in 1usize..8,
            ) {
                let mut h = Harness::new();
                let mut model: Vec<(u64, u64)> = Vec::new(); // (at, seq)
                let mut out_wheel = Vec::new();
                let mut out_model = Vec::new();
                let mut floor = 0u64; // wheel position only moves forward on pops
                for (i, &t) in times.iter().enumerate() {
                    // Keep schedules legal for a forward-running clock.
                    let at = floor.saturating_add(t % (1u64 << 26));
                    h.insert(at, i as u64);
                    model.push((at, i as u64));
                    if i % pop_every == 0 {
                        if let Some((at, tag)) = h.pop() {
                            out_wheel.push((at, tag));
                            let best = model
                                .iter()
                                .enumerate()
                                .min_by_key(|(_, &(a, s))| (a, s))
                                .map(|(idx, _)| idx)
                                .unwrap();
                            let (a, s) = model.remove(best);
                            out_model.push((a, s));
                            floor = a;
                        }
                    }
                }
                while let Some(x) = h.pop() {
                    out_wheel.push(x);
                    let best = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(a, s))| (a, s))
                        .map(|(idx, _)| idx)
                        .unwrap();
                    out_model.push(model.remove(best));
                }
                prop_assert!(model.is_empty());
                prop_assert_eq!(out_wheel, out_model);
            }
        }
    }
}
