//! The indexed discrete-event engine: arena-allocated events popped from
//! the hierarchical timer wheel.
//!
//! [`DesEngine`] is the successor of the closure-calendar
//! [`Simulation`](crate::event::Simulation) for hot paths: events are
//! plain values of a caller-chosen type `E` (no per-event `Box`), the
//! queue is the [`TimerWheel`] index instead of a `BinaryHeap`, and
//! scheduling returns an [`EventHandle`] that supports O(1) cancellation.
//! The determinism contract is identical — events fire in `(time, seq)`
//! order where `seq` is the insertion counter, so a run is a pure
//! function of the schedule regardless of host, thread count or wall
//! clock — and `tests/des_identity.rs` plus the DAG proptest in
//! [`crate::dag`] hold the two engines to the same total order.
//!
//! Dispatch goes through [`EventHandler`] (implemented for free by
//! `FnMut(&mut DesEngine<E>, SimTime, E)` closures), which receives the
//! engine mutably so handlers can schedule and cancel follow-up events.

use crate::arena::{EventArena, EventHandle};
use crate::time::{SimDuration, SimTime};
use crate::wheel::TimerWheel;

/// Receives fired events. The world/handler owns all domain state; the
/// engine owns only the clock and the queue.
pub trait EventHandler<E> {
    /// Called once per live event, in `(time, seq)` order, with the
    /// engine clock already advanced to `at`.
    fn handle(&mut self, engine: &mut DesEngine<E>, at: SimTime, event: E);
}

impl<E, F: FnMut(&mut DesEngine<E>, SimTime, E)> EventHandler<E> for F {
    fn handle(&mut self, engine: &mut DesEngine<E>, at: SimTime, event: E) {
        self(engine, at, event)
    }
}

/// An indexed discrete-event engine over event type `E`.
///
/// ```
/// use ivis_sim::{DesEngine, SimDuration, SimTime};
///
/// let mut engine: DesEngine<&str> = DesEngine::new();
/// engine.schedule_in(SimDuration::from_secs(2), "late");
/// let tok = engine.schedule_in(SimDuration::from_secs(1), "cancelled");
/// engine.schedule_in(SimDuration::from_secs(1), "early");
/// assert_eq!(engine.cancel(tok), Some("cancelled"));
/// let mut seen = Vec::new();
/// engine.run(&mut |_: &mut DesEngine<&str>, at: SimTime, ev| seen.push((at, ev)));
/// assert_eq!(
///     seen,
///     vec![
///         (SimTime::from_secs(1), "early"),
///         (SimTime::from_secs(2), "late"),
///     ]
/// );
/// ```
pub struct DesEngine<E> {
    now: SimTime,
    seq: u64,
    executed: u64,
    arena: EventArena<E>,
    wheel: TimerWheel,
}

impl<E> Default for DesEngine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> DesEngine<E> {
    /// An empty engine with the clock at zero.
    pub fn new() -> Self {
        DesEngine {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            arena: EventArena::new(),
            wheel: TimerWheel::new(),
        }
    }

    /// An engine whose arena is pre-sized for `cap` concurrent events.
    pub fn with_capacity(cap: usize) -> Self {
        DesEngine {
            arena: EventArena::with_capacity(cap),
            ..DesEngine::new()
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events fired so far (cancelled events never count).
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Live (scheduled, not yet fired or cancelled) events.
    pub fn events_pending(&self) -> usize {
        self.arena.len()
    }

    /// Schedule `event` at absolute time `at`; the returned handle
    /// cancels it.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let handle = self.arena.insert(event);
        let seq = self.seq;
        self.seq += 1;
        self.wheel.insert(at, seq, handle);
        handle
    }

    /// Schedule `event` a `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancel a scheduled event, returning its payload, or `None` if it
    /// already fired or was already cancelled. O(1): the wheel keeps its
    /// index entry and skips it lazily at pop time.
    pub fn cancel(&mut self, handle: EventHandle) -> Option<E> {
        self.arena.remove(handle)
    }

    /// Whether `handle` refers to a still-pending event.
    pub fn is_pending(&self, handle: EventHandle) -> bool {
        self.arena.contains(handle)
    }

    /// Run until no live event remains. Returns the final clock value.
    pub fn run<H: EventHandler<E>>(&mut self, handler: &mut H) -> SimTime {
        self.run_until(handler, SimTime::MAX)
    }

    /// Run until no live event remains or the next one lies beyond
    /// `deadline`; in the latter case the clock parks at `deadline` and
    /// the event stays queued (with its original sequence number, so
    /// resuming preserves FIFO ties).
    pub fn run_until<H: EventHandler<E>>(&mut self, handler: &mut H, deadline: SimTime) -> SimTime {
        while let Some(entry) = self.wheel.pop() {
            if entry.at > deadline {
                self.wheel.insert(entry.at, entry.seq, entry.handle);
                if deadline > self.now {
                    self.now = deadline;
                }
                return self.now;
            }
            let Some(event) = self.arena.remove(entry.handle) else {
                continue; // cancelled: stale index entry
            };
            debug_assert!(entry.at >= self.now, "event queue went backwards");
            self.now = entry.at;
            self.executed += 1;
            handler.handle(self, entry.at, event);
        }
        self.now
    }

    /// Fire at most one live event. Returns `false` if none remains.
    pub fn step<H: EventHandler<E>>(&mut self, handler: &mut H) -> bool {
        while let Some(entry) = self.wheel.pop() {
            let Some(event) = self.arena.remove(entry.handle) else {
                continue;
            };
            debug_assert!(entry.at >= self.now, "event queue went backwards");
            self.now = entry.at;
            self.executed += 1;
            handler.handle(self, entry.at, event);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(engine: &mut DesEngine<u32>) -> Vec<(u64, u32)> {
        let mut seen = Vec::new();
        engine.run(&mut |_: &mut DesEngine<u32>, at: SimTime, ev: u32| {
            seen.push((at.as_micros(), ev));
        });
        seen
    }

    #[test]
    fn fires_in_time_then_insertion_order() {
        let mut engine = DesEngine::new();
        engine.schedule_at(SimTime::from_micros(50), 1);
        engine.schedule_at(SimTime::from_micros(10), 2);
        engine.schedule_at(SimTime::from_micros(50), 3);
        assert_eq!(collect(&mut engine), vec![(10, 2), (50, 1), (50, 3)]);
        assert_eq!(engine.events_executed(), 3);
    }

    #[test]
    fn cancel_then_fire_skips_only_the_cancelled_event() {
        let mut engine = DesEngine::new();
        let a = engine.schedule_at(SimTime::from_micros(10), 1);
        engine.schedule_at(SimTime::from_micros(10), 2);
        let c = engine.schedule_at(SimTime::from_micros(20), 3);
        engine.schedule_at(SimTime::from_micros(30), 4);
        assert_eq!(engine.cancel(a), Some(1));
        assert_eq!(engine.cancel(c), Some(3));
        assert_eq!(engine.cancel(c), None, "double cancel is a no-op");
        assert_eq!(engine.events_pending(), 2);
        assert_eq!(collect(&mut engine), vec![(10, 2), (30, 4)]);
        assert_eq!(engine.events_executed(), 2, "cancelled events never fire");
    }

    #[test]
    fn handlers_schedule_and_cancel_follow_ups() {
        let mut engine: DesEngine<u32> = DesEngine::new();
        engine.schedule_at(SimTime::from_micros(5), 0);
        let mut fired = Vec::new();
        let mut victim: Option<crate::arena::EventHandle> = None;
        engine.run(&mut |eng: &mut DesEngine<u32>, at: SimTime, ev: u32| {
            fired.push((at.as_micros(), ev));
            if ev == 0 {
                // Chain two follow-ups, then cancel the second from the
                // first — cancel-then-fire across handler invocations.
                eng.schedule_in(SimDuration::from_micros(1), 1);
                victim = Some(eng.schedule_in(SimDuration::from_micros(2), 99));
            } else if ev == 1 {
                assert_eq!(eng.cancel(victim.take().unwrap()), Some(99));
                eng.schedule_in(SimDuration::from_micros(5), 2);
            }
        });
        assert_eq!(fired, vec![(5, 0), (6, 1), (11, 2)]);
    }

    #[test]
    fn run_until_parks_and_resumes_with_fifo_ties_intact() {
        let mut engine = DesEngine::new();
        engine.schedule_at(SimTime::from_micros(100), 1);
        engine.schedule_at(SimTime::from_micros(100), 2);
        engine.schedule_at(SimTime::from_micros(10), 0);
        let mut seen = Vec::new();
        let t = engine.run_until(
            &mut |_: &mut DesEngine<u32>, at: SimTime, ev: u32| seen.push((at.as_micros(), ev)),
            SimTime::from_micros(50),
        );
        assert_eq!(t, SimTime::from_micros(50));
        assert_eq!(seen, vec![(10, 0)]);
        assert_eq!(engine.events_pending(), 2);
        // Scheduling between the parked clock and the future events is
        // the wheel's rebase path; order must survive.
        engine.schedule_at(SimTime::from_micros(60), 5);
        engine.run(&mut |_: &mut DesEngine<u32>, at: SimTime, ev: u32| {
            seen.push((at.as_micros(), ev));
        });
        assert_eq!(seen, vec![(10, 0), (60, 5), (100, 1), (100, 2)]);
    }

    #[test]
    fn step_fires_exactly_one_live_event() {
        let mut engine = DesEngine::new();
        let a = engine.schedule_at(SimTime::from_micros(1), 1);
        engine.schedule_at(SimTime::from_micros(2), 2);
        engine.cancel(a);
        let mut seen = Vec::new();
        let mut h = |_: &mut DesEngine<u32>, at: SimTime, ev: u32| seen.push((at.as_micros(), ev));
        assert!(engine.step(&mut h));
        assert!(!engine.step(&mut h));
        assert_eq!(seen, vec![(2, 2)]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut engine: DesEngine<u32> = DesEngine::new();
        engine.schedule_at(SimTime::from_micros(10), 0);
        engine.run(&mut |eng: &mut DesEngine<u32>, _: SimTime, _: u32| {
            eng.schedule_at(SimTime::from_micros(5), 1);
        });
    }

    #[test]
    fn deterministic_across_runs_and_handle_reuse_patterns() {
        fn run_once(prewarm: usize) -> Vec<(u64, u32)> {
            let mut engine = DesEngine::with_capacity(prewarm);
            // Different arena histories (slot indices, generations) must
            // not leak into the fire order.
            let warm: Vec<_> = (0..prewarm as u32)
                .map(|i| engine.schedule_at(SimTime::from_micros(1), i))
                .collect();
            for h in warm {
                engine.cancel(h);
            }
            for i in 0..200u32 {
                let t = (u64::from(i) * 7919) % 4096;
                engine.schedule_at(SimTime::from_micros(t), i);
            }
            let mut seen = Vec::new();
            engine.run(&mut |_: &mut DesEngine<u32>, at: SimTime, ev: u32| {
                seen.push((at.as_micros(), ev));
            });
            seen
        }
        assert_eq!(run_once(0), run_once(0));
        assert_eq!(run_once(0), run_once(64));
    }
}
