//! Deterministic pseudo-random numbers for reproducible simulations.
//!
//! The engine uses its own small PRNG (xoshiro256++ seeded via SplitMix64)
//! rather than `rand` so that simulated "measurements" are reproducible
//! bit-for-bit across platforms and dependency upgrades. The statistical
//! quality is far beyond what the noise models here need.

/// A deterministic PRNG: xoshiro256++ with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second normal deviate from Box-Muller.
    spare_normal: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seed the generator. Any seed (including 0) yields a good stream.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi >= lo, "uniform_range requires hi >= lo");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // rejection zone: retry if low < n and low < (2^64 mod n)
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Standard normal deviate (Box-Muller, with caching of the pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid u == 0 so ln is finite.
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let v = self.uniform();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be >= 0");
        mean + std_dev * self.standard_normal()
    }

    /// A multiplicative noise factor `max(floor, 1 + N(0, rel))`.
    ///
    /// This is the shape of measurement noise applied to simulated phase
    /// durations: relative jitter that can never drive a duration negative.
    pub fn noise_factor(&mut self, rel_std_dev: f64) -> f64 {
        let f = 1.0 + self.standard_normal() * rel_std_dev;
        f.max(0.05)
    }

    /// Fork an independent child stream (for per-component noise).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = SimRng::new(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let x = rng.below(10);
            assert!(x < 10);
            counts[x as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} too skewed");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn noise_factor_bounded_below() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let f = rng.noise_factor(0.5);
            assert!(f >= 0.05);
        }
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = SimRng::new(1234);
        let mut child = parent.fork();
        // Child stream should not be a shifted copy of parent's.
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }
}
