//! Arena allocation for in-flight events.
//!
//! The [`DesEngine`](crate::engine::DesEngine) keeps every pending event's
//! payload in an [`EventArena`]: a slab of reusable slots threaded on an
//! intrusive free list. Scheduling an event is a free-list pop (or a `Vec`
//! push while the arena is still warming up); completing or cancelling one
//! is a free-list push. After warm-up the steady-state schedule/fire loop
//! touches no allocator at all — the `des_zero_alloc` integration test
//! pins that with a counting global allocator.
//!
//! Slots are addressed by [`EventHandle`]s carrying a generation counter:
//! a handle to a slot that has since been freed (the event fired, or was
//! cancelled) is detected instead of aliasing the slot's next tenant,
//! which is what makes O(1) *lazy* cancellation safe — the timer wheel
//! keeps its (time, seq, handle) entry and the engine simply skips stale
//! handles on pop.

/// A generation-checked reference to an arena slot.
///
/// Handles are plain data: copying one does not extend the payload's
/// lifetime, and a handle outliving its slot's tenancy simply stops
/// resolving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    index: u32,
    generation: u32,
}

impl EventHandle {
    /// A handle that never resolves (generation 0 is never live).
    pub const DANGLING: EventHandle = EventHandle {
        index: u32::MAX,
        generation: 0,
    };

    /// The slot index (for diagnostics).
    pub fn index(self) -> u32 {
        self.index
    }
}

enum Slot<T> {
    /// Free; `next` is the next free slot index (`u32::MAX` = end).
    Vacant {
        next: u32,
    },
    Occupied(T),
}

struct Entry<T> {
    /// Odd while occupied, even while vacant; bumped on every transition.
    generation: u32,
    slot: Slot<T>,
}

/// A slab of event payloads with O(1) insert/remove and generation-checked
/// handles. See the module docs for the role it plays in the engine.
pub struct EventArena<T> {
    entries: Vec<Entry<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Default for EventArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventArena<T> {
    /// An empty arena (no slots reserved yet).
    pub fn new() -> Self {
        EventArena {
            entries: Vec::new(),
            free_head: u32::MAX,
            len: 0,
        }
    }

    /// An arena with `cap` slots pre-reserved, so the first `cap`
    /// concurrent events never grow the slab.
    pub fn with_capacity(cap: usize) -> Self {
        let mut a = EventArena::new();
        a.entries.reserve(cap);
        a
    }

    /// Live payload count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no payload is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots (live + free) the arena has ever grown to.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Store `value`, returning its handle.
    ///
    /// # Panics
    /// Panics if the arena would exceed `u32::MAX - 1` slots.
    pub fn insert(&mut self, value: T) -> EventHandle {
        self.len += 1;
        if self.free_head != u32::MAX {
            let index = self.free_head;
            let entry = &mut self.entries[index as usize];
            match entry.slot {
                Slot::Vacant { next } => self.free_head = next,
                Slot::Occupied(_) => unreachable!("free list points at an occupied slot"),
            }
            entry.generation = entry.generation.wrapping_add(1); // even → odd
            entry.slot = Slot::Occupied(value);
            return EventHandle {
                index,
                generation: entry.generation,
            };
        }
        let index = u32::try_from(self.entries.len()).expect("event arena exhausted u32 indices");
        assert!(index < u32::MAX, "event arena exhausted u32 indices");
        self.entries.push(Entry {
            generation: 1,
            slot: Slot::Occupied(value),
        });
        EventHandle {
            index,
            generation: 1,
        }
    }

    /// Take the payload behind `handle`, freeing its slot. Returns `None`
    /// if the handle is stale (already fired or cancelled) — never panics,
    /// which is what lazy cancellation relies on.
    pub fn remove(&mut self, handle: EventHandle) -> Option<T> {
        let entry = self.entries.get_mut(handle.index as usize)?;
        if entry.generation != handle.generation || !matches!(entry.slot, Slot::Occupied(_)) {
            return None;
        }
        entry.generation = entry.generation.wrapping_add(1); // odd → even
        let slot = std::mem::replace(
            &mut entry.slot,
            Slot::Vacant {
                next: self.free_head,
            },
        );
        self.free_head = handle.index;
        self.len -= 1;
        match slot {
            Slot::Occupied(v) => Some(v),
            Slot::Vacant { .. } => unreachable!("checked occupied above"),
        }
    }

    /// Whether `handle` still refers to a live payload.
    pub fn contains(&self, handle: EventHandle) -> bool {
        self.entries.get(handle.index as usize).is_some_and(|e| {
            e.generation == handle.generation && matches!(e.slot, Slot::Occupied(_))
        })
    }

    /// Read the payload behind `handle` without removing it.
    pub fn get(&self, handle: EventHandle) -> Option<&T> {
        match self.entries.get(handle.index as usize) {
            Some(e) if e.generation == handle.generation => match &e.slot {
                Slot::Occupied(v) => Some(v),
                Slot::Vacant { .. } => None,
            },
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = EventArena::new();
        let h1 = a.insert("one");
        let h2 = a.insert("two");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(h1), Some(&"one"));
        assert_eq!(a.remove(h2), Some("two"));
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
        assert_eq!(a.remove(h1), Some("one"));
        assert!(a.is_empty());
    }

    #[test]
    fn stale_handles_never_resolve() {
        let mut a = EventArena::new();
        let h = a.insert(7u64);
        assert_eq!(a.remove(h), Some(7));
        // Slot is reused by the next insert...
        let h2 = a.insert(8u64);
        assert_eq!(h2.index(), h.index());
        // ...but the old handle is dead: no read, no double-free.
        assert!(!a.contains(h));
        assert_eq!(a.get(h), None);
        assert_eq!(a.remove(h), None);
        assert_eq!(a.remove(h2), Some(8));
    }

    #[test]
    fn dangling_handle_is_inert() {
        let mut a: EventArena<u32> = EventArena::new();
        assert!(!a.contains(EventHandle::DANGLING));
        assert_eq!(a.remove(EventHandle::DANGLING), None);
    }

    #[test]
    fn slots_recycle_without_growth() {
        let mut a = EventArena::with_capacity(4);
        let mut handles = Vec::new();
        for round in 0..100u32 {
            for i in 0..4u32 {
                handles.push(a.insert(round * 4 + i));
            }
            assert_eq!(a.capacity(), 4, "steady-state churn must not grow slots");
            for h in handles.drain(..) {
                assert!(a.remove(h).is_some());
            }
        }
    }

    #[test]
    fn generation_distinguishes_many_reuses() {
        let mut a = EventArena::new();
        let mut old = Vec::new();
        for i in 0..50u32 {
            let h = a.insert(i);
            old.push(h);
            a.remove(h);
        }
        let live = a.insert(999);
        for h in old {
            assert!(!a.contains(h));
        }
        assert_eq!(a.get(live), Some(&999));
    }
}
