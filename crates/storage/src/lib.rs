//! # ivis-storage — the Lustre-like storage substrate
//!
//! The paper's cluster writes to a private Lustre rack: one master node, two
//! metadata servers (MDS), two object storage servers (OSS), 7.7 TB of
//! capacity and ≈160 MB/s of aggregate bandwidth. This crate models that
//! subsystem end to end:
//!
//! * [`layout`] — Lustre-style striping: files are striped over OSTs in
//!   fixed-size stripes.
//! * [`pfs`] — the parallel filesystem: a namespace with capacity
//!   accounting, MDS open/create costs (FCFS queueing) and OSS data
//!   transfers (processor-sharing bandwidth), returning exact completion
//!   times for every operation.
//! * [`power`] — the rack's power model: 2273 W idle → 2302 W at full
//!   bandwidth (the paper's measured, nearly-flat curve) with a
//!   Raritan-style meter attached.
//! * [`ncdf`] — *ncdf-lite*, a real self-describing array file format
//!   (magic, dimensions, attributes, typed variables) standing in for
//!   netCDF; its encoded size drives the S_io term of the paper's model.
//! * [`pio`] — a PIO-like collective writer: compute ranks funnel their
//!   slabs through aggregator ranks, which write striped files.

pub mod burst_buffer;
pub mod layout;
pub mod ncdf;
pub mod pfs;
pub mod pio;
pub mod power;

pub use layout::StripeLayout;
pub use ncdf::{DataType, NcFile, NcVariable};
pub use pfs::{ParallelFileSystem, PfsConfig, PfsError};
pub use power::StoragePowerModel;
