//! The parallel filesystem: namespace, capacity, MDS and OSS queueing.
//!
//! Operations are *timed*: every call takes the submission time and returns
//! the completion time, computed from the MDS FCFS queues and the OSS
//! processor-sharing bandwidth servers. The PFS also records every data
//! transfer so a Raritan-style rack meter trace can be reconstructed for any
//! window ([`ParallelFileSystem::rack_meter`]).
//!
//! ### Completion semantics
//!
//! [`ParallelFileSystem::write`] and [`ParallelFileSystem::read`] return the
//! time at which the operation completes **given the traffic submitted so
//! far**. Under processor sharing a *later* submission would extend earlier
//! jobs; the coupled pipelines in this workspace always submit I/O in
//! barrier-synchronized batches (all ranks write, then everyone waits), for
//! which these semantics are exact. [`ParallelFileSystem::batch_write`] is
//! the batch form used by the pipeline executors.

use std::collections::HashMap;

use ivis_power::meter::MeteredPdu;
use ivis_sim::resource::{FairShareServer, FcfsServer};
use ivis_sim::{SimDuration, SimTime};

use crate::layout::StripeLayout;
use crate::power::StoragePowerModel;

/// Errors returned by filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfsError {
    /// Not enough free capacity for the write.
    NoSpace {
        /// Bytes the operation needed.
        needed: u64,
        /// Bytes actually free.
        free: u64,
    },
    /// The path does not exist.
    NotFound(String),
    /// The path already exists.
    AlreadyExists(String),
    /// A transient I/O failure: the operation did not start and left no
    /// trace in the namespace or the queues — retrying it is safe. Raised
    /// by the fault-injection hooks
    /// ([`ParallelFileSystem::arm_transient_failures`]); a real deployment
    /// would surface dropped RPCs or OST evictions this way.
    Io {
        /// Which operation failed (`"write"`, `"read"`, `"batch_write"`).
        op: &'static str,
        /// The path (or first path of a batch) the operation targeted.
        path: String,
    },
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfsError::NoSpace { needed, free } => {
                write!(f, "no space: need {needed} B, {free} B free")
            }
            PfsError::NotFound(p) => write!(f, "not found: {p}"),
            PfsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            PfsError::Io { op, path } => write!(f, "transient I/O failure: {op} {path}"),
        }
    }
}

impl std::error::Error for PfsError {}

/// Static configuration of the storage cluster.
#[derive(Debug, Clone)]
pub struct PfsConfig {
    /// Number of object storage servers.
    pub num_oss: usize,
    /// Per-OSS bandwidth, bytes/second.
    pub oss_bandwidth_bps: f64,
    /// Number of metadata servers.
    pub num_mds: usize,
    /// Service time of one metadata operation (create/open).
    pub mds_op_time: SimDuration,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Default striping for new files.
    pub stripe: StripeLayout,
    /// Rack power model.
    pub power: StoragePowerModel,
}

impl PfsConfig {
    /// The paper's Lustre rack: 2 OSS sharing ≈159 MB/s aggregate (the
    /// effective rate implied by the calibrated α = 6.3 s/GB), 2 MDS,
    /// 7.7 TB, 1 MiB striping, and the measured 2273→2302 W power curve.
    pub fn caddy_lustre() -> Self {
        // α = 6.3 s/GB ⇒ 1e9 / 6.3 ≈ 158.73 MB/s aggregate.
        let aggregate_bps = 1e9 / 6.3;
        PfsConfig {
            num_oss: 2,
            oss_bandwidth_bps: aggregate_bps / 2.0,
            num_mds: 2,
            mds_op_time: SimDuration::from_millis(1),
            capacity_bytes: 7_700_000_000_000,
            stripe: StripeLayout::lustre_default(2),
            power: StoragePowerModel::paper_lustre_rack(),
        }
    }

    /// Aggregate bandwidth across all OSS.
    pub fn aggregate_bandwidth_bps(&self) -> f64 {
        self.oss_bandwidth_bps * self.num_oss as f64
    }
}

#[derive(Debug, Clone)]
struct FileMeta {
    size: u64,
    created_at: SimTime,
}

/// One recorded data transfer (for power reconstruction).
#[derive(Debug, Clone, Copy)]
struct Transfer {
    start: SimTime,
    end: SimTime,
}

/// The simulated parallel filesystem.
#[derive(Debug, Clone)]
pub struct ParallelFileSystem {
    config: PfsConfig,
    oss: Vec<FairShareServer>,
    mds: Vec<FcfsServer>,
    files: HashMap<String, FileMeta>,
    used: u64,
    transfers: Vec<Transfer>,
    bytes_written: u64,
    bytes_read: u64,
    /// Current OSS bandwidth derating (fault injection; 1.0 = nominal).
    oss_scale: f64,
    /// Extra latency added to every metadata operation (fault injection).
    mds_surcharge: SimDuration,
    /// Capacity withheld from [`free_bytes`](Self::free_bytes) to model
    /// full-disk pressure (fault injection).
    reserved: u64,
    /// Pending injected transient failures (fault injection).
    armed_failures: u32,
}

impl ParallelFileSystem {
    /// Create a filesystem from a configuration.
    ///
    /// # Panics
    /// Panics if the configuration has zero servers or bandwidth.
    pub fn new(config: PfsConfig) -> Self {
        assert!(config.num_oss > 0, "need at least one OSS");
        assert!(config.num_mds > 0, "need at least one MDS");
        let oss = (0..config.num_oss)
            .map(|_| FairShareServer::new(config.oss_bandwidth_bps))
            .collect();
        let mds = (0..config.num_mds).map(|_| FcfsServer::new()).collect();
        ParallelFileSystem {
            config,
            oss,
            mds,
            files: HashMap::new(),
            used: 0,
            transfers: Vec::new(),
            bytes_written: 0,
            bytes_read: 0,
            oss_scale: 1.0,
            mds_surcharge: SimDuration::ZERO,
            reserved: 0,
            armed_failures: 0,
        }
    }

    /// The paper's rack, ready to use.
    pub fn caddy_lustre() -> Self {
        ParallelFileSystem::new(PfsConfig::caddy_lustre())
    }

    /// The active configuration.
    pub fn config(&self) -> &PfsConfig {
        &self.config
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Bytes still free (net of any reserved full-disk-pressure capacity).
    pub fn free_bytes(&self) -> u64 {
        (self.config.capacity_bytes - self.used).saturating_sub(self.reserved)
    }

    // ------------------------------------------------------------------
    // Fault-injection hooks (driven by `ivis-fault`). All of them default
    // to the nominal, no-fault behavior and leave every other code path
    // untouched, so a filesystem with no hooks engaged is bit-identical
    // to one that never heard of faults.
    // ------------------------------------------------------------------

    /// Derate (or restore) every OSS to `scale ×` its configured bandwidth
    /// at time `now` — an OSS bandwidth *brownout*. Exact under processor
    /// sharing: work served before `now` is unaffected, everything still
    /// queued drains at the new rate. `scale = 1.0` restores nominal.
    ///
    /// # Panics
    /// Panics if `scale` is not finite and positive.
    pub fn set_oss_bandwidth_scale(&mut self, now: SimTime, scale: f64) {
        assert!(
            scale.is_finite() && scale > 0.0,
            "bandwidth scale must be positive, got {scale}"
        );
        if scale == self.oss_scale {
            return;
        }
        for oss in &mut self.oss {
            oss.set_capacity(now, self.config.oss_bandwidth_bps * scale);
        }
        self.oss_scale = scale;
    }

    /// The OSS bandwidth derating currently in force (1.0 = nominal).
    pub fn oss_bandwidth_scale(&self) -> f64 {
        self.oss_scale
    }

    /// Add `surcharge` to the service time of every subsequent metadata
    /// operation — an MDS stall. [`SimDuration::ZERO`] restores nominal.
    pub fn set_mds_surcharge(&mut self, surcharge: SimDuration) {
        self.mds_surcharge = surcharge;
    }

    /// The extra metadata latency currently in force.
    pub fn mds_surcharge(&self) -> SimDuration {
        self.mds_surcharge
    }

    /// Withhold `bytes` of capacity from [`free_bytes`](Self::free_bytes)
    /// — full-disk pressure (e.g. a neighboring tenant filling the rack).
    /// Writes that no longer fit fail with [`PfsError::NoSpace`]; existing
    /// files are untouched. Zero restores nominal.
    pub fn set_reserved_bytes(&mut self, bytes: u64) {
        self.reserved = bytes;
    }

    /// Capacity currently withheld by full-disk pressure.
    pub fn reserved_bytes(&self) -> u64 {
        self.reserved
    }

    /// Arm the next `n` data operations (`write`, `read`, or one whole
    /// `batch_write`) to fail with [`PfsError::Io`] *before* mutating any
    /// state — the failed operation consumes no capacity, creates no file
    /// and queues no transfer, so retrying it is always safe.
    pub fn arm_transient_failures(&mut self, n: u32) {
        self.armed_failures += n;
    }

    /// Injected failures still pending.
    pub fn armed_failures(&self) -> u32 {
        self.armed_failures
    }

    /// Consume one armed failure, if any: the entry gate of every data op.
    fn take_armed(&mut self, op: &'static str, path: &str) -> Result<(), PfsError> {
        if self.armed_failures > 0 {
            self.armed_failures -= 1;
            return Err(PfsError::Io {
                op,
                path: path.to_string(),
            });
        }
        Ok(())
    }

    /// Total bytes ever written / read (traffic counters).
    pub fn traffic(&self) -> (u64, u64) {
        (self.bytes_written, self.bytes_read)
    }

    /// Number of files present.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Size of `path` in bytes.
    pub fn size_of(&self, path: &str) -> Result<u64, PfsError> {
        self.files
            .get(path)
            .map(|m| m.size)
            .ok_or_else(|| PfsError::NotFound(path.to_string()))
    }

    fn mds_for(&self, path: &str) -> usize {
        // Stable cheap hash (FNV-1a) to pick an MDS.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h % self.config.num_mds as u64) as usize
    }

    /// Create an empty file. Returns the completion time of the metadata
    /// operation.
    pub fn create(&mut self, now: SimTime, path: &str) -> Result<SimTime, PfsError> {
        if self.files.contains_key(path) {
            return Err(PfsError::AlreadyExists(path.to_string()));
        }
        let mds = self.mds_for(path);
        let service = self.config.mds_op_time + self.mds_surcharge;
        let (_, done) = self.mds[mds].submit(now, service);
        self.files.insert(
            path.to_string(),
            FileMeta {
                size: 0,
                created_at: now,
            },
        );
        Ok(done)
    }

    /// Append `bytes` to `path` (creating it if absent), returning the time
    /// the data is durable on the OSTs.
    pub fn write(&mut self, now: SimTime, path: &str, bytes: u64) -> Result<SimTime, PfsError> {
        self.take_armed("write", path)?;
        let free = self.free_bytes();
        if bytes > free {
            return Err(PfsError::NoSpace {
                needed: bytes,
                free,
            });
        }
        let mds_done = if self.files.contains_key(path) {
            now
        } else {
            self.create(now, path)?
        };
        let meta = self.files.get_mut(path).expect("file just ensured");
        let offset = meta.size;
        meta.size += bytes;
        self.used += bytes;
        self.bytes_written += bytes;
        if bytes == 0 {
            return Ok(mds_done);
        }
        let per_ost = self.config.stripe.distribute(offset, bytes);
        let mut done = mds_done;
        for (ost, &b) in per_ost.iter().enumerate() {
            if b == 0 {
                continue;
            }
            self.oss[ost].submit(mds_done, b as f64);
            done = done.max(self.oss[ost].drained_at());
        }
        self.transfers.push(Transfer {
            start: mds_done,
            end: done,
        });
        Ok(done)
    }

    /// Read the whole of `path`, returning the completion time.
    pub fn read(&mut self, now: SimTime, path: &str) -> Result<SimTime, PfsError> {
        self.take_armed("read", path)?;
        let size = self.size_of(path)?;
        self.bytes_read += size;
        if size == 0 {
            return Ok(now);
        }
        let per_ost = self.config.stripe.distribute(0, size);
        let mut done = now;
        for (ost, &b) in per_ost.iter().enumerate() {
            if b == 0 {
                continue;
            }
            self.oss[ost].submit(now, b as f64);
            done = done.max(self.oss[ost].drained_at());
        }
        self.transfers.push(Transfer {
            start: now,
            end: done,
        });
        Ok(done)
    }

    /// Submit many writes at once and return the barrier completion time
    /// (when *all* of them are durable). This is how the PIO-style
    /// collective output path uses the rack.
    ///
    /// The batch is atomic with respect to failure: total capacity is
    /// validated up front and one armed transient failure fails the whole
    /// batch at its entry gate, so an `Err` never leaves a prefix of the
    /// batch applied — the executors rely on this to retry batches safely
    /// instead of assuming success.
    pub fn batch_write(
        &mut self,
        now: SimTime,
        writes: &[(String, u64)],
    ) -> Result<SimTime, PfsError> {
        let first = writes.first().map(|w| w.0.as_str()).unwrap_or("");
        self.take_armed("batch_write", first)?;
        let total: u64 = writes.iter().map(|w| w.1).sum();
        let free = self.free_bytes();
        if total > free {
            return Err(PfsError::NoSpace {
                needed: total,
                free,
            });
        }
        let mut done = now;
        for (path, bytes) in writes {
            done = done.max(self.write(now, path, *bytes)?);
        }
        Ok(done)
    }

    /// Delete a file, freeing its space. Metadata-only cost.
    pub fn delete(&mut self, now: SimTime, path: &str) -> Result<SimTime, PfsError> {
        let meta = self
            .files
            .remove(path)
            .ok_or_else(|| PfsError::NotFound(path.to_string()))?;
        self.used -= meta.size;
        let mds = self.mds_for(path);
        let (_, done) = self.mds[mds].submit(now, self.config.mds_op_time);
        Ok(done)
    }

    /// Age of a file (time since creation).
    pub fn age_of(&self, now: SimTime, path: &str) -> Result<SimDuration, PfsError> {
        self.files
            .get(path)
            .map(|m| now - m.created_at)
            .ok_or_else(|| PfsError::NotFound(path.to_string()))
    }

    /// Seconds of already-queued write/read work remaining at `now`: the
    /// drain horizon of the most-backlogged OSS. Zero when every transfer
    /// submitted so far has completed — e.g. after a synchronous
    /// [`ParallelFileSystem::write`] returns. Non-zero while a burst
    /// buffer drains in the background.
    pub fn queued_write_seconds(&self, now: SimTime) -> f64 {
        self.oss
            .iter()
            .map(|o| {
                let drained = o.drained_at();
                if drained > now {
                    (drained - now).as_secs_f64()
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }

    /// Fraction of OSS with transfers still in flight at `now` — the
    /// instantaneous bandwidth-utilization gauge exported to the tracer.
    pub fn bandwidth_utilization(&self, now: SimTime) -> f64 {
        let busy = self.oss.iter().filter(|o| o.drained_at() > now).count();
        busy as f64 / self.oss.len() as f64
    }

    /// Number of object-transfer records accumulated so far.
    pub fn transfer_count(&self) -> usize {
        self.transfers.len()
    }

    /// Reconstruct the rack's power meter: full-load power while any
    /// transfer is in flight, idle power otherwise, averaged per minute
    /// exactly like the Raritan PDU (apply a window via
    /// [`MeteredPdu::report`]).
    pub fn rack_meter(&self) -> MeteredPdu {
        let mut meter = MeteredPdu::raritan_rack("lustre-rack", self.config.power.idle());
        // Sweep the union of transfer intervals.
        let mut events: Vec<(SimTime, i32)> = Vec::with_capacity(self.transfers.len() * 2);
        for tr in &self.transfers {
            events.push((tr.start, 1));
            events.push((tr.end, -1));
        }
        events.sort_by_key(|e| (e.0, -e.1));
        let mut depth = 0;
        for (t, delta) in events {
            let was_busy = depth > 0;
            depth += delta;
            let is_busy = depth > 0;
            if was_busy != is_busy {
                let u = if is_busy { 1.0 } else { 0.0 };
                meter.observe(t, self.config.power.power(u));
            }
        }
        meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivis_power::units::Watts;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn test_config() -> PfsConfig {
        PfsConfig {
            num_oss: 2,
            oss_bandwidth_bps: 50.0, // 100 B/s aggregate: easy arithmetic
            num_mds: 2,
            mds_op_time: SimDuration::ZERO,
            capacity_bytes: 10_000,
            stripe: StripeLayout::new(10, 2),
            power: StoragePowerModel::paper_lustre_rack(),
        }
    }

    #[test]
    fn write_time_matches_bandwidth() {
        let mut fs = ParallelFileSystem::new(test_config());
        // 1000 B striped evenly over 2 OSS at 50 B/s each => 10 s.
        let done = fs.write(SimTime::ZERO, "/a", 1000).unwrap();
        assert_eq!(done, t(10));
        assert_eq!(fs.used_bytes(), 1000);
        assert_eq!(fs.size_of("/a").unwrap(), 1000);
    }

    #[test]
    fn observability_gauges_track_backlog() {
        let mut fs = ParallelFileSystem::new(test_config());
        assert_eq!(fs.queued_write_seconds(SimTime::ZERO), 0.0);
        assert_eq!(fs.bandwidth_utilization(SimTime::ZERO), 0.0);
        assert_eq!(fs.transfer_count(), 0);
        // 1000 B striped over 2 OSS at 50 B/s each => drains at t = 10 s.
        let done = fs.write(SimTime::ZERO, "/a", 1000).unwrap();
        assert_eq!(done, t(10));
        // Mid-flight (from the gauges' point of view) the backlog is visible.
        assert_eq!(fs.bandwidth_utilization(t(4)), 1.0);
        assert!((fs.queued_write_seconds(t(4)) - 6.0).abs() < 1e-9);
        // Once the transfer drains, both gauges return to zero.
        assert_eq!(fs.queued_write_seconds(done), 0.0);
        assert_eq!(fs.bandwidth_utilization(done), 0.0);
        assert_eq!(fs.transfer_count(), 1);
    }

    #[test]
    fn caddy_write_matches_alpha() {
        let mut fs = ParallelFileSystem::caddy_lustre();
        // 1 GB should take ~6.3 s (the calibrated α) plus 1 ms MDS time.
        let done = fs.write(SimTime::ZERO, "/out.nc", 1_000_000_000).unwrap();
        let secs = done.as_secs_f64();
        assert!((secs - 6.301).abs() < 0.01, "1 GB write took {secs}");
    }

    #[test]
    fn no_space_is_reported_not_partially_applied() {
        let mut fs = ParallelFileSystem::new(test_config());
        fs.write(SimTime::ZERO, "/a", 9_000).unwrap();
        let err = fs.write(t(100), "/b", 2_000).unwrap_err();
        assert_eq!(
            err,
            PfsError::NoSpace {
                needed: 2_000,
                free: 1_000
            }
        );
        assert_eq!(fs.used_bytes(), 9_000);
        assert!(!fs.exists("/b"));
    }

    #[test]
    fn create_then_duplicate_create_fails() {
        let mut fs = ParallelFileSystem::new(test_config());
        fs.create(SimTime::ZERO, "/x").unwrap();
        assert!(matches!(
            fs.create(t(1), "/x"),
            Err(PfsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn read_missing_file_fails() {
        let mut fs = ParallelFileSystem::new(test_config());
        assert!(matches!(fs.read(t(0), "/nope"), Err(PfsError::NotFound(_))));
    }

    #[test]
    fn read_takes_symmetric_time() {
        let mut fs = ParallelFileSystem::new(test_config());
        let wrote = fs.write(SimTime::ZERO, "/a", 1000).unwrap();
        let read_done = fs.read(wrote, "/a").unwrap();
        assert_eq!(read_done - wrote, SimDuration::from_secs(10));
        assert_eq!(fs.traffic(), (1000, 1000));
    }

    #[test]
    fn batch_write_barrier_semantics() {
        let mut fs = ParallelFileSystem::new(test_config());
        // Two 500-B files concurrently: 1000 B total over 100 B/s => 10 s.
        let writes = vec![("/r0".to_string(), 500), ("/r1".to_string(), 500)];
        let done = fs.batch_write(SimTime::ZERO, &writes).unwrap();
        assert_eq!(done, t(10));
        assert_eq!(fs.num_files(), 2);
    }

    #[test]
    fn batch_write_checks_total_size_upfront() {
        let mut fs = ParallelFileSystem::new(test_config());
        let writes = vec![("/r0".to_string(), 6_000), ("/r1".to_string(), 6_000)];
        assert!(matches!(
            fs.batch_write(SimTime::ZERO, &writes),
            Err(PfsError::NoSpace { .. })
        ));
        assert_eq!(fs.used_bytes(), 0, "failed batch must not consume space");
    }

    #[test]
    fn delete_frees_space() {
        let mut fs = ParallelFileSystem::new(test_config());
        fs.write(SimTime::ZERO, "/a", 4_000).unwrap();
        fs.delete(t(100), "/a").unwrap();
        assert_eq!(fs.used_bytes(), 0);
        assert!(!fs.exists("/a"));
        assert!(matches!(
            fs.delete(t(101), "/a"),
            Err(PfsError::NotFound(_))
        ));
    }

    #[test]
    fn mds_latency_delays_first_byte() {
        let mut cfg = test_config();
        cfg.mds_op_time = SimDuration::from_secs(1);
        let mut fs = ParallelFileSystem::new(cfg);
        let done = fs.write(SimTime::ZERO, "/a", 1000).unwrap();
        assert_eq!(done, t(11)); // 1 s create + 10 s data
    }

    #[test]
    fn rack_meter_shows_flat_power() {
        let mut fs = ParallelFileSystem::new(test_config());
        let _done = fs.write(SimTime::ZERO, "/a", 6_000).unwrap(); // 60 s busy
        let meter = fs.rack_meter();
        let samples = meter.report(SimTime::ZERO, t(120));
        assert_eq!(samples.len(), 2);
        // Busy minute: 2302 W; idle minute: 2273 W.
        assert!((samples[0].avg.watts() - 2302.0).abs() < 1e-6);
        assert!((samples[1].avg.watts() - 2273.0).abs() < 1e-6);
        // Dynamic range stays tiny — the paper's point.
        let range = samples[0].avg - samples[1].avg;
        assert!(range < Watts(30.0));
    }

    #[test]
    fn overlapping_transfers_share_bandwidth() {
        let mut fs = ParallelFileSystem::new(test_config());
        // Two 1000-B writes submitted together: 2000 B at 100 B/s => 20 s.
        let d1 = fs.write(SimTime::ZERO, "/a", 1000).unwrap();
        let d2 = fs.write(SimTime::ZERO, "/b", 1000).unwrap();
        assert_eq!(d1.max(d2), t(20));
    }

    #[test]
    fn oss_brownout_slows_inflight_and_new_writes() {
        let mut fs = ParallelFileSystem::new(test_config());
        // 1000 B at 100 B/s aggregate would finish at t=10; halving the
        // bandwidth at t=4 leaves 600 B at 50 B/s => done at t=16.
        fs.write(SimTime::ZERO, "/a", 1000).unwrap();
        fs.set_oss_bandwidth_scale(t(4), 0.5);
        assert!((fs.queued_write_seconds(t(4)) - 12.0).abs() < 1e-9);
        // A later write queues behind the derated drain.
        let done = fs.write(t(16), "/b", 500).unwrap();
        assert_eq!(done, t(26)); // 500 B at 50 B/s
                                 // Restoring the scale recovers nominal service.
        fs.set_oss_bandwidth_scale(t(26), 1.0);
        let done = fs.write(t(26), "/c", 1000).unwrap();
        assert_eq!(done, t(36));
        assert_eq!(fs.oss_bandwidth_scale(), 1.0);
    }

    #[test]
    fn mds_stall_surcharges_metadata_ops() {
        let mut fs = ParallelFileSystem::new(test_config());
        fs.set_mds_surcharge(SimDuration::from_secs(3));
        // Data time is 10 s; the create now costs 3 s up front.
        let done = fs.write(SimTime::ZERO, "/a", 1000).unwrap();
        assert_eq!(done, t(13));
        fs.set_mds_surcharge(SimDuration::ZERO);
        // Appends skip the create; no surcharge applies.
        let done = fs.write(done, "/a", 1000).unwrap();
        assert_eq!(done, t(23));
    }

    #[test]
    fn disk_pressure_reserves_capacity() {
        let mut fs = ParallelFileSystem::new(test_config());
        fs.set_reserved_bytes(9_500);
        assert_eq!(fs.free_bytes(), 500);
        let err = fs.write(SimTime::ZERO, "/a", 1_000).unwrap_err();
        assert_eq!(
            err,
            PfsError::NoSpace {
                needed: 1_000,
                free: 500
            }
        );
        fs.set_reserved_bytes(0);
        fs.write(SimTime::ZERO, "/a", 1_000).unwrap();
        assert_eq!(fs.used_bytes(), 1_000);
    }

    #[test]
    fn armed_failure_fails_cleanly_then_clears() {
        let mut fs = ParallelFileSystem::new(test_config());
        fs.arm_transient_failures(1);
        let err = fs.write(SimTime::ZERO, "/a", 1000).unwrap_err();
        assert_eq!(
            err,
            PfsError::Io {
                op: "write",
                path: "/a".to_string()
            }
        );
        // Nothing happened: no file, no space, no transfer queued.
        assert!(!fs.exists("/a"));
        assert_eq!(fs.used_bytes(), 0);
        assert_eq!(fs.transfer_count(), 0);
        assert_eq!(fs.armed_failures(), 0);
        // The retry succeeds at full speed.
        let done = fs.write(SimTime::ZERO, "/a", 1000).unwrap();
        assert_eq!(done, t(10));
    }

    #[test]
    fn armed_failure_fails_whole_batch_atomically() {
        let mut fs = ParallelFileSystem::new(test_config());
        fs.arm_transient_failures(1);
        let writes = vec![("/r0".to_string(), 500), ("/r1".to_string(), 500)];
        let err = fs.batch_write(SimTime::ZERO, &writes).unwrap_err();
        assert!(matches!(
            err,
            PfsError::Io {
                op: "batch_write",
                ..
            }
        ));
        assert_eq!(fs.num_files(), 0, "failed batch must apply nothing");
        assert_eq!(fs.used_bytes(), 0);
        // One armed failure fails exactly one batch.
        let done = fs.batch_write(SimTime::ZERO, &writes).unwrap();
        assert_eq!(done, t(10));
    }

    #[test]
    fn armed_failure_fails_reads_too() {
        let mut fs = ParallelFileSystem::new(test_config());
        fs.write(SimTime::ZERO, "/a", 1000).unwrap();
        fs.arm_transient_failures(1);
        assert!(matches!(
            fs.read(t(10), "/a"),
            Err(PfsError::Io { op: "read", .. })
        ));
        assert_eq!(fs.traffic(), (1000, 0), "failed read moves no bytes");
        fs.read(t(10), "/a").unwrap();
        assert_eq!(fs.traffic(), (1000, 1000));
    }

    #[test]
    fn zero_byte_write_is_metadata_only() {
        let mut fs = ParallelFileSystem::new(test_config());
        let done = fs.write(t(5), "/empty", 0).unwrap();
        assert_eq!(done, t(5));
        assert_eq!(fs.size_of("/empty").unwrap(), 0);
    }
}
