//! Lustre-style file striping.
//!
//! A file is divided into fixed-size stripes distributed round-robin over a
//! set of object storage targets (OSTs). The layout determines how many
//! bytes of a given write land on each OST — the unit of parallelism the
//! [`crate::pfs`] bandwidth model operates on.

/// A striping layout: `stripe_count` OSTs, `stripe_size` bytes per stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeLayout {
    /// Bytes per stripe (Lustre default: 1 MiB).
    pub stripe_size: u64,
    /// Number of OSTs the file is striped over.
    pub stripe_count: usize,
}

impl StripeLayout {
    /// Create a layout.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(stripe_size: u64, stripe_count: usize) -> Self {
        assert!(stripe_size > 0, "stripe size must be positive");
        assert!(stripe_count > 0, "stripe count must be positive");
        StripeLayout {
            stripe_size,
            stripe_count,
        }
    }

    /// The Lustre default on the paper's rack: 1 MiB stripes over both OSSes.
    pub fn lustre_default(num_osts: usize) -> Self {
        StripeLayout::new(1 << 20, num_osts)
    }

    /// Which OST index holds the stripe containing byte `offset`.
    pub fn ost_of(&self, offset: u64) -> usize {
        ((offset / self.stripe_size) % self.stripe_count as u64) as usize
    }

    /// Bytes of the range `[offset, offset+len)` that land on each OST.
    ///
    /// Returns a vector of length `stripe_count`; entries sum to `len`.
    pub fn distribute(&self, offset: u64, len: u64) -> Vec<u64> {
        let mut per_ost = vec![0u64; self.stripe_count];
        if len == 0 {
            return per_ost;
        }
        // Walk whole stripes; cheap because we aggregate full cycles first.
        let cycle = self.stripe_size * self.stripe_count as u64;
        let full_cycles = len / cycle;
        if full_cycles > 0 {
            for slot in per_ost.iter_mut() {
                *slot += full_cycles * self.stripe_size;
            }
        }
        let mut rem = len - full_cycles * cycle;
        let mut pos = offset + full_cycles * cycle;
        while rem > 0 {
            let within = pos % self.stripe_size;
            let take = (self.stripe_size - within).min(rem);
            per_ost[self.ost_of(pos)] += take;
            pos += take;
            rem -= take;
        }
        per_ost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_assignment() {
        let l = StripeLayout::new(100, 3);
        assert_eq!(l.ost_of(0), 0);
        assert_eq!(l.ost_of(99), 0);
        assert_eq!(l.ost_of(100), 1);
        assert_eq!(l.ost_of(250), 2);
        assert_eq!(l.ost_of(300), 0);
    }

    #[test]
    fn distribute_sums_to_len() {
        let l = StripeLayout::new(64, 4);
        for (off, len) in [(0u64, 1000u64), (13, 777), (64, 64), (5, 0), (250, 3)] {
            let d = l.distribute(off, len);
            assert_eq!(d.iter().sum::<u64>(), len, "off={off} len={len}");
        }
    }

    #[test]
    fn aligned_full_cycle_balances_exactly() {
        let l = StripeLayout::new(100, 2);
        let d = l.distribute(0, 1000);
        assert_eq!(d, vec![500, 500]);
    }

    #[test]
    fn unaligned_write_distributes_correctly() {
        // stripe_size=100, 2 OSTs. Range [50, 250): 50 bytes on OST0 (stripe
        // 0), 100 on OST1 (stripe 1), 50 on OST0 (stripe 2).
        let l = StripeLayout::new(100, 2);
        let d = l.distribute(50, 200);
        assert_eq!(d, vec![100, 100]);
        // Range [50, 200): 50 on OST0, 100 on OST1.
        let d = l.distribute(50, 150);
        assert_eq!(d, vec![50, 100]);
    }

    #[test]
    fn single_ost_gets_everything() {
        let l = StripeLayout::new(1 << 20, 1);
        let d = l.distribute(123, 999_999);
        assert_eq!(d, vec![999_999]);
    }

    #[test]
    fn large_write_over_default_layout_is_balanced() {
        let l = StripeLayout::lustre_default(2);
        let gb = 1u64 << 30;
        let d = l.distribute(0, gb);
        assert_eq!(d.len(), 2);
        let imbalance = d[0].abs_diff(d[1]);
        assert!(imbalance <= l.stripe_size, "imbalance {imbalance}");
    }

    #[test]
    #[should_panic(expected = "stripe count must be positive")]
    fn zero_count_rejected() {
        let _ = StripeLayout::new(100, 0);
    }
}
