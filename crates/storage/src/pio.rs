//! A PIO-like collective writer.
//!
//! The paper's post-processing pipeline writes netCDF through PIO, which
//! rearranges data from all compute ranks onto a small set of **aggregator
//! ranks** that issue the actual filesystem writes. This module models that
//! two-stage path: a gather stage (bounded by the aggregation network
//! funnel) followed by a striped batch write to the
//! [`ParallelFileSystem`].

use ivis_sim::{SimDuration, SimTime};

use crate::pfs::{ParallelFileSystem, PfsError};

/// Configuration of the collective output path.
#[derive(Debug, Clone)]
pub struct PioConfig {
    /// Number of aggregator ranks issuing filesystem writes.
    pub num_aggregators: usize,
    /// Bandwidth of the funnel into each aggregator, bytes/second
    /// (interconnect-limited, far above the filesystem rate in practice).
    pub aggregator_bandwidth_bps: f64,
}

impl PioConfig {
    /// PIO defaults on the paper's system: 4 aggregators fed at IB QDR rate.
    pub fn caddy_default() -> Self {
        PioConfig {
            num_aggregators: 4,
            aggregator_bandwidth_bps: 3.2e9,
        }
    }
}

/// Outcome of one collective write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PioWriteReport {
    /// When the gather (rank → aggregator rearrangement) finished.
    pub gather_done: SimTime,
    /// When the data was durable on the filesystem.
    pub write_done: SimTime,
    /// Total bytes written.
    pub bytes: u64,
}

impl PioWriteReport {
    /// Total wall time from submission to durability.
    pub fn total_time(&self, submitted: SimTime) -> SimDuration {
        self.write_done - submitted
    }
}

/// The collective writer.
#[derive(Debug, Clone)]
pub struct CollectiveWriter {
    config: PioConfig,
}

impl CollectiveWriter {
    /// Create a writer.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate.
    pub fn new(config: PioConfig) -> Self {
        assert!(config.num_aggregators > 0, "need at least one aggregator");
        assert!(
            config.aggregator_bandwidth_bps > 0.0,
            "aggregator bandwidth must be positive"
        );
        CollectiveWriter { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PioConfig {
        &self.config
    }

    /// Collectively write `rank_bytes[i]` bytes from rank `i` into `path` on
    /// `fs`, starting at `now`.
    ///
    /// The ranks' data is distributed round-robin over the aggregators; the
    /// gather finishes when the most-loaded aggregator has received its
    /// share, after which aggregators issue one striped write each.
    pub fn write(
        &self,
        fs: &mut ParallelFileSystem,
        now: SimTime,
        path: &str,
        rank_bytes: &[u64],
    ) -> Result<PioWriteReport, PfsError> {
        let total: u64 = rank_bytes.iter().sum();
        if total == 0 {
            let done = fs.write(now, path, 0)?;
            return Ok(PioWriteReport {
                gather_done: now,
                write_done: done,
                bytes: 0,
            });
        }
        // Round-robin rank → aggregator assignment.
        let mut per_agg = vec![0u64; self.config.num_aggregators];
        for (i, &b) in rank_bytes.iter().enumerate() {
            per_agg[i % self.config.num_aggregators] += b;
        }
        let max_agg = *per_agg.iter().max().expect("non-empty aggregators");
        let gather =
            SimDuration::from_secs_f64(max_agg as f64 / self.config.aggregator_bandwidth_bps);
        let gather_done = now + gather;
        // Aggregators write their shares into the shared file concurrently;
        // with processor sharing the barrier completion equals one combined
        // write of the total size.
        let write_done = fs.write(gather_done, path, total)?;
        Ok(PioWriteReport {
            gather_done,
            write_done,
            bytes: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::StripeLayout;
    use crate::pfs::PfsConfig;
    use crate::power::StoragePowerModel;

    fn fast_gather_fs() -> ParallelFileSystem {
        ParallelFileSystem::new(PfsConfig {
            num_oss: 2,
            oss_bandwidth_bps: 50.0,
            num_mds: 1,
            mds_op_time: SimDuration::ZERO,
            capacity_bytes: 1_000_000,
            stripe: StripeLayout::new(10, 2),
            power: StoragePowerModel::paper_lustre_rack(),
        })
    }

    #[test]
    fn gather_then_write() {
        let mut fs = fast_gather_fs();
        let writer = CollectiveWriter::new(PioConfig {
            num_aggregators: 2,
            aggregator_bandwidth_bps: 100.0,
        });
        // 4 ranks × 100 B: aggregators receive 200 B each at 100 B/s ⇒ 2 s
        // gather; 400 B written at 100 B/s aggregate ⇒ 4 s write.
        let report = writer
            .write(&mut fs, SimTime::ZERO, "/out", &[100, 100, 100, 100])
            .unwrap();
        assert_eq!(report.gather_done, SimTime::from_secs(2));
        assert_eq!(report.write_done, SimTime::from_secs(6));
        assert_eq!(report.bytes, 400);
        assert_eq!(report.total_time(SimTime::ZERO), SimDuration::from_secs(6));
        assert_eq!(fs.size_of("/out").unwrap(), 400);
    }

    #[test]
    fn fast_network_makes_fs_the_bottleneck() {
        let mut fs = fast_gather_fs();
        let writer = CollectiveWriter::new(PioConfig {
            num_aggregators: 4,
            aggregator_bandwidth_bps: 1e12,
        });
        let report = writer
            .write(&mut fs, SimTime::ZERO, "/out", &[250; 4])
            .unwrap();
        // Gather is instantaneous at this rate; write dominates: 1000 B at
        // 100 B/s = 10 s.
        assert!(report.gather_done.as_secs_f64() < 1e-6);
        assert_eq!(report.write_done, SimTime::from_secs(10));
    }

    #[test]
    fn uneven_ranks_bound_by_most_loaded_aggregator() {
        let mut fs = fast_gather_fs();
        let writer = CollectiveWriter::new(PioConfig {
            num_aggregators: 2,
            aggregator_bandwidth_bps: 100.0,
        });
        // Ranks 0,2 → agg0 (600 B); rank 1 → agg1 (100 B). Gather = 6 s.
        let report = writer
            .write(&mut fs, SimTime::ZERO, "/out", &[300, 100, 300])
            .unwrap();
        assert_eq!(report.gather_done, SimTime::from_secs(6));
    }

    #[test]
    fn zero_total_is_metadata_only() {
        let mut fs = fast_gather_fs();
        let writer = CollectiveWriter::new(PioConfig::caddy_default());
        let report = writer
            .write(&mut fs, SimTime::from_secs(3), "/empty", &[0, 0])
            .unwrap();
        assert_eq!(report.bytes, 0);
        assert_eq!(report.write_done, SimTime::from_secs(3));
    }

    #[test]
    fn no_space_propagates() {
        let mut fs = fast_gather_fs();
        let writer = CollectiveWriter::new(PioConfig {
            num_aggregators: 1,
            aggregator_bandwidth_bps: 1e9,
        });
        let err = writer
            .write(&mut fs, SimTime::ZERO, "/big", &[2_000_000])
            .unwrap_err();
        assert!(matches!(err, PfsError::NoSpace { .. }));
    }

    #[test]
    fn armed_failure_propagates_and_collective_retry_succeeds() {
        let mut fs = fast_gather_fs();
        let writer = CollectiveWriter::new(PioConfig {
            num_aggregators: 2,
            aggregator_bandwidth_bps: 100.0,
        });
        fs.arm_transient_failures(1);
        let err = writer
            .write(&mut fs, SimTime::ZERO, "/out", &[100, 100, 100, 100])
            .unwrap_err();
        assert!(matches!(err, PfsError::Io { .. }));
        // The failed collective mutated nothing: no file, no space, no
        // queued transfer — so the retry lands exactly like a fresh write.
        assert!(fs.size_of("/out").is_err());
        assert_eq!(fs.used_bytes(), 0);
        let report = writer
            .write(&mut fs, SimTime::ZERO, "/out", &[100, 100, 100, 100])
            .unwrap();
        assert_eq!(report.write_done, SimTime::from_secs(6));
        assert_eq!(fs.size_of("/out").unwrap(), 400);
    }

    #[test]
    fn brownout_slows_the_collective_write_stage() {
        let mut fs = fast_gather_fs();
        let writer = CollectiveWriter::new(PioConfig {
            num_aggregators: 2,
            aggregator_bandwidth_bps: 100.0,
        });
        // Halve OSS bandwidth: the gather is network-bound and unaffected,
        // the filesystem stage doubles (4 s → 8 s).
        fs.set_oss_bandwidth_scale(SimTime::ZERO, 0.5);
        let report = writer
            .write(&mut fs, SimTime::ZERO, "/out", &[100, 100, 100, 100])
            .unwrap();
        assert_eq!(report.gather_done, SimTime::from_secs(2));
        assert_eq!(report.write_done, SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "at least one aggregator")]
    fn zero_aggregators_rejected() {
        let _ = CollectiveWriter::new(PioConfig {
            num_aggregators: 0,
            aggregator_bandwidth_bps: 1.0,
        });
    }
}
