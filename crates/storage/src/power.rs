//! The storage rack's power model.
//!
//! The paper benchmarked the Lustre rack: **2273 W idle, 2302 W at maximum
//! I/O bandwidth** — a 1.3 % dynamic range. The rack's power is therefore a
//! nearly flat affine function of bandwidth utilization. This module
//! provides that curve plus helpers for the §VIII ablations (what if the
//! rack *were* proportional?).

use ivis_power::proportionality::Proportionality;
use ivis_power::units::Watts;

/// Affine storage-rack power model: `P(u) = idle + (full − idle) · u` where
/// `u` is bandwidth utilization.
#[derive(Debug, Clone, Copy)]
pub struct StoragePowerModel {
    idle: Watts,
    full: Watts,
}

impl StoragePowerModel {
    /// Create a model from idle and full-load wall power.
    ///
    /// # Panics
    /// Panics if `full < idle`.
    pub fn new(idle: Watts, full: Watts) -> Self {
        assert!(
            full.watts() >= idle.watts(),
            "full-load power below idle power"
        );
        StoragePowerModel { idle, full }
    }

    /// The paper's measured rack: 2273 W idle, 2302 W at full bandwidth.
    pub fn paper_lustre_rack() -> Self {
        StoragePowerModel::new(Watts(2273.0), Watts(2302.0))
    }

    /// A hypothetical rack with the same peak but a different proportional
    /// fraction `f ∈ [0, 1]`: `idle = (1 − f) · full`. Used by the
    /// `ablation_storage_proportionality` bench.
    pub fn with_proportional_fraction(full: Watts, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0,1]");
        StoragePowerModel::new(full * (1.0 - f), full)
    }

    /// Power at bandwidth utilization `u ∈ [0, 1]`.
    pub fn power(&self, u: f64) -> Watts {
        let u = if u.is_nan() { 0.0 } else { u.clamp(0.0, 1.0) };
        self.idle + (self.full - self.idle) * u
    }

    /// Idle power.
    pub fn idle(&self) -> Watts {
        self.idle
    }

    /// Full-load power.
    pub fn full(&self) -> Watts {
        self.full
    }

    /// The proportionality characterization of this rack.
    pub fn proportionality(&self) -> Proportionality {
        Proportionality::new(self.idle, self.full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rack_endpoints() {
        let m = StoragePowerModel::paper_lustre_rack();
        assert_eq!(m.power(0.0), Watts(2273.0));
        assert_eq!(m.power(1.0), Watts(2302.0));
        assert!((m.proportionality().dynamic_range_pct() - 1.2758).abs() < 0.01);
    }

    #[test]
    fn interpolation_and_clamping() {
        let m = StoragePowerModel::paper_lustre_rack();
        assert!((m.power(0.5).watts() - 2287.5).abs() < 1e-9);
        assert_eq!(m.power(-1.0), m.power(0.0));
        assert_eq!(m.power(9.0), m.power(1.0));
        assert_eq!(m.power(f64::NAN), m.power(0.0));
    }

    #[test]
    fn hypothetical_proportional_rack() {
        let m = StoragePowerModel::with_proportional_fraction(Watts(2302.0), 0.8);
        assert!((m.idle().watts() - 460.4).abs() < 1e-9);
        assert_eq!(m.full(), Watts(2302.0));
    }

    #[test]
    fn fully_proportional_rack_idles_at_zero() {
        let m = StoragePowerModel::with_proportional_fraction(Watts(1000.0), 1.0);
        assert_eq!(m.idle(), Watts(0.0));
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn bad_fraction_rejected() {
        let _ = StoragePowerModel::with_proportional_fraction(Watts(1.0), 1.5);
    }
}
