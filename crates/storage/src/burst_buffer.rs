//! An NVRAM burst-buffer tier in front of the parallel filesystem.
//!
//! The paper's related work (Gamell et al., deep memory hierarchies)
//! explores absorbing checkpoint/analysis output in node-local NVRAM and
//! draining it to the parallel filesystem asynchronously. This module models
//! that tier: writes complete at NVRAM speed if the buffer has room, and the
//! buffered data drains through the (slow) Lustre model in the background.
//! The `ablation_burst_buffer` experiment uses it to ask: *does a burst
//! buffer rescue post-processing?* (Answer: it hides the write latency while
//! the buffer lasts, but the storage footprint — and the eventual drain — is
//! unchanged, so the in-situ advantage in capacity and energy persists.)

use ivis_sim::{SimDuration, SimTime};

use crate::pfs::{ParallelFileSystem, PfsError};

/// Burst-buffer configuration.
#[derive(Debug, Clone)]
pub struct BurstBufferConfig {
    /// NVRAM capacity, bytes.
    pub capacity_bytes: u64,
    /// Absorb (client→NVRAM) bandwidth, bytes/s.
    pub absorb_bandwidth_bps: f64,
}

impl BurstBufferConfig {
    /// A modest 2 TB tier absorbing at 10 GB/s.
    pub fn two_tb_nvram() -> Self {
        BurstBufferConfig {
            capacity_bytes: 2_000_000_000_000,
            absorb_bandwidth_bps: 1.0e10,
        }
    }
}

/// One in-flight drain.
#[derive(Debug, Clone, Copy)]
struct Drain {
    completes_at: SimTime,
    bytes: u64,
}

/// The burst buffer, bound to a backing filesystem at call time.
#[derive(Debug, Clone)]
pub struct BurstBuffer {
    config: BurstBufferConfig,
    drains: Vec<Drain>,
    bytes_absorbed: u64,
}

impl BurstBuffer {
    /// Create an empty buffer.
    ///
    /// # Panics
    /// Panics on a degenerate configuration.
    pub fn new(config: BurstBufferConfig) -> Self {
        assert!(config.capacity_bytes > 0, "capacity must be positive");
        assert!(
            config.absorb_bandwidth_bps > 0.0,
            "absorb bandwidth must be positive"
        );
        BurstBuffer {
            config,
            drains: Vec::new(),
            bytes_absorbed: 0,
        }
    }

    /// Bytes still occupied (absorbed but not yet drained) at `now`.
    pub fn occupied_at(&self, now: SimTime) -> u64 {
        self.drains
            .iter()
            .filter(|d| d.completes_at > now)
            .map(|d| d.bytes)
            .sum()
    }

    /// Free NVRAM at `now`.
    pub fn free_at(&self, now: SimTime) -> u64 {
        self.config.capacity_bytes - self.occupied_at(now)
    }

    /// Total bytes ever absorbed.
    pub fn bytes_absorbed(&self) -> u64 {
        self.bytes_absorbed
    }

    /// When the last scheduled drain finishes (or `now` if none pending).
    pub fn drained_at(&self, now: SimTime) -> SimTime {
        self.drains
            .iter()
            .map(|d| d.completes_at)
            .max()
            .map_or(now, |t| t.max(now))
    }

    /// Write `bytes` to `path` through the buffer at `now`, draining to
    /// `fs` in the background.
    ///
    /// Returns the time the *caller* is unblocked (absorb completion) — the
    /// drain proceeds asynchronously and its completion is visible through
    /// [`drained_at`](Self::drained_at). Writes larger than the whole buffer
    /// bypass it and go straight to the filesystem.
    pub fn write(
        &mut self,
        fs: &mut ParallelFileSystem,
        now: SimTime,
        path: &str,
        bytes: u64,
    ) -> Result<SimTime, PfsError> {
        if bytes > self.config.capacity_bytes {
            return fs.write(now, path, bytes);
        }
        // Wait (if needed) until enough earlier data has drained.
        let mut start = now;
        if bytes > self.free_at(start) {
            let mut deadlines: Vec<SimTime> = self
                .drains
                .iter()
                .filter(|d| d.completes_at > now)
                .map(|d| d.completes_at)
                .collect();
            deadlines.sort_unstable();
            for t in deadlines {
                if bytes <= self.free_at(t) {
                    start = t;
                    break;
                }
            }
            debug_assert!(
                bytes <= self.free_at(start),
                "free space must open once all drains land"
            );
        }
        let absorb_done =
            start + SimDuration::from_secs_f64(bytes as f64 / self.config.absorb_bandwidth_bps);
        // The drain begins once the data is in NVRAM; the PFS write models
        // the back-end transfer and capacity accounting.
        let drain_done = fs.write(absorb_done, path, bytes)?;
        self.drains.push(Drain {
            completes_at: drain_done,
            bytes,
        });
        self.bytes_absorbed += bytes;
        Ok(absorb_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::StripeLayout;
    use crate::pfs::PfsConfig;
    use crate::power::StoragePowerModel;

    fn slow_fs() -> ParallelFileSystem {
        // 100 B/s backing store, tiny MDS cost.
        ParallelFileSystem::new(PfsConfig {
            num_oss: 2,
            oss_bandwidth_bps: 50.0,
            num_mds: 1,
            mds_op_time: SimDuration::ZERO,
            capacity_bytes: 1_000_000,
            stripe: StripeLayout::new(10, 2),
            power: StoragePowerModel::paper_lustre_rack(),
        })
    }

    fn bb(capacity: u64, absorb: f64) -> BurstBuffer {
        BurstBuffer::new(BurstBufferConfig {
            capacity_bytes: capacity,
            absorb_bandwidth_bps: absorb,
        })
    }

    #[test]
    fn absorb_is_fast_drain_is_slow() {
        let mut fs = slow_fs();
        let mut buf = bb(10_000, 1_000.0);
        let unblocked = buf.write(&mut fs, SimTime::ZERO, "/a", 1_000).unwrap();
        // Caller unblocked after 1 s (1000 B at 1000 B/s)...
        assert_eq!(unblocked, SimTime::from_secs(1));
        // ...but the backing store needs 10 more seconds.
        assert_eq!(buf.drained_at(unblocked), SimTime::from_secs(11));
        assert_eq!(fs.size_of("/a").unwrap(), 1_000);
    }

    #[test]
    fn occupancy_tracks_drains() {
        let mut fs = slow_fs();
        let mut buf = bb(10_000, 1_000.0);
        buf.write(&mut fs, SimTime::ZERO, "/a", 1_000).unwrap();
        assert_eq!(buf.occupied_at(SimTime::from_secs(5)), 1_000);
        assert_eq!(buf.occupied_at(SimTime::from_secs(12)), 0);
        assert_eq!(buf.free_at(SimTime::from_secs(5)), 9_000);
        assert_eq!(buf.bytes_absorbed(), 1_000);
    }

    #[test]
    fn full_buffer_stalls_the_writer() {
        let mut fs = slow_fs();
        let mut buf = bb(1_000, 1_000_000.0); // absorbs instantly, tiny capacity
                                              // First write fills the buffer; drains at 100 B/s ⇒ done at t=10.
        let t1 = buf.write(&mut fs, SimTime::ZERO, "/a", 1_000).unwrap();
        assert!(t1.as_secs_f64() < 0.01);
        // Second write must wait for the drain to free space.
        let t2 = buf.write(&mut fs, t1, "/b", 1_000).unwrap();
        assert!(
            t2 >= SimTime::from_secs(10),
            "writer should stall until the drain lands: {t2}"
        );
    }

    #[test]
    fn oversized_write_bypasses_buffer() {
        let mut fs = slow_fs();
        let mut buf = bb(500, 1e9);
        let done = buf.write(&mut fs, SimTime::ZERO, "/big", 1_000).unwrap();
        // Straight to the 100 B/s store: 10 s, and no NVRAM occupancy.
        assert_eq!(done, SimTime::from_secs(10));
        assert_eq!(buf.occupied_at(SimTime::from_secs(1)), 0);
    }

    #[test]
    fn backing_capacity_errors_propagate() {
        let mut fs = slow_fs();
        let mut buf = bb(1_000_000, 1e9);
        // The PFS holds 1 MB; first fill it, then overflow through the buffer.
        buf.write(&mut fs, SimTime::ZERO, "/a", 900_000).unwrap();
        let err = buf
            .write(&mut fs, SimTime::from_secs(1), "/b", 200_000)
            .unwrap_err();
        assert!(matches!(err, PfsError::NoSpace { .. }));
    }

    #[test]
    fn burst_of_writes_amortizes() {
        // Ten bursts that individually fit: caller sees only absorb time as
        // long as the aggregate stays under capacity.
        let mut fs = slow_fs();
        let mut buf = bb(100_000, 10_000.0);
        let mut now = SimTime::ZERO;
        for k in 0..10 {
            now = buf.write(&mut fs, now, &format!("/f{k}"), 1_000).unwrap();
        }
        // 10 kB at 10 kB/s absorb = 1 s of caller-visible time.
        assert!((now.as_secs_f64() - 1.0).abs() < 0.01, "now = {now}");
        // Backing store needs 100 s total.
        assert!(buf.drained_at(now) >= SimTime::from_secs(100));
    }

    #[test]
    fn armed_failure_propagates_without_absorbing() {
        let mut fs = slow_fs();
        let mut buf = bb(10_000, 1_000.0);
        fs.arm_transient_failures(1);
        let err = buf.write(&mut fs, SimTime::ZERO, "/a", 1_000).unwrap_err();
        assert!(matches!(err, PfsError::Io { .. }));
        // The failed write left no drain and absorbed nothing, so a retry
        // behaves exactly like a first attempt.
        assert_eq!(buf.bytes_absorbed(), 0);
        assert_eq!(buf.occupied_at(SimTime::from_secs(5)), 0);
        let unblocked = buf.write(&mut fs, SimTime::ZERO, "/a", 1_000).unwrap();
        assert_eq!(unblocked, SimTime::from_secs(1));
        assert_eq!(fs.size_of("/a").unwrap(), 1_000);
    }

    #[test]
    fn brownout_slows_the_background_drain_not_the_absorb() {
        let mut fs = slow_fs();
        let mut buf = bb(10_000, 1_000.0);
        fs.set_oss_bandwidth_scale(SimTime::ZERO, 0.5);
        let unblocked = buf.write(&mut fs, SimTime::ZERO, "/a", 1_000).unwrap();
        // NVRAM absorb is unaffected by the OSS brownout...
        assert_eq!(unblocked, SimTime::from_secs(1));
        // ...but the 10 s backing drain doubles to 20 s (done at t = 21).
        assert_eq!(buf.drained_at(unblocked), SimTime::from_secs(21));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BurstBuffer::new(BurstBufferConfig {
            capacity_bytes: 0,
            absorb_bandwidth_bps: 1.0,
        });
    }
}
