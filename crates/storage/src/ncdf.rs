//! *ncdf-lite*: a real, self-describing array file format.
//!
//! The paper's post-processing pipeline writes the Okubo-Weiss field as
//! netCDF through PIO. We stand in a compact but genuine format with the
//! same essentials — named dimensions, global attributes, typed
//! multi-dimensional variables — and byte-exact serialization, so the
//! storage sizes that drive the paper's `S_io` term come from actually
//! encoded files rather than made-up numbers.
//!
//! ### Wire format (little-endian)
//!
//! ```text
//! magic   "NCDL"            4 B
//! version u16               currently 1
//! flags   u16               reserved, 0
//! dims    u32 count, then per dim:  name(u16 len + utf8), size u64
//! attrs   u32 count, then per attr: name, value (both u16 len + utf8)
//! vars    u32 count, then per var:  name, dtype u8, ndims u8,
//!                                   dim indices u32 × ndims,
//!                                   element count u64, raw LE data
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes identifying an ncdf-lite file.
pub const MAGIC: &[u8; 4] = b"NCDL";
/// Current format version.
pub const VERSION: u16 = 1;

/// Element type of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// Raw bytes.
    U8,
}

impl DataType {
    fn code(self) -> u8 {
        match self {
            DataType::F32 => 0,
            DataType::F64 => 1,
            DataType::I32 => 2,
            DataType::U8 => 3,
        }
    }

    fn from_code(c: u8) -> Result<Self, NcError> {
        Ok(match c {
            0 => DataType::F32,
            1 => DataType::F64,
            2 => DataType::I32,
            3 => DataType::U8,
            other => return Err(NcError::BadDataType(other)),
        })
    }

    /// Bytes per element.
    pub fn size(self) -> usize {
        match self {
            DataType::F32 | DataType::I32 => 4,
            DataType::F64 => 8,
            DataType::U8 => 1,
        }
    }
}

/// Typed variable payload.
#[derive(Debug, Clone, PartialEq)]
pub enum VarData {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit signed integers.
    I32(Vec<i32>),
    /// Raw bytes.
    U8(Vec<u8>),
}

impl VarData {
    /// The element type of this payload.
    pub fn dtype(&self) -> DataType {
        match self {
            VarData::F32(_) => DataType::F32,
            VarData::F64(_) => DataType::F64,
            VarData::I32(_) => DataType::I32,
            VarData::U8(_) => DataType::U8,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            VarData::F32(v) => v.len(),
            VarData::F64(v) => v.len(),
            VarData::I32(v) => v.len(),
            VarData::U8(v) => v.len(),
        }
    }

    /// `true` iff there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A variable: a named, typed array over a subset of the file's dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct NcVariable {
    /// Variable name.
    pub name: String,
    /// Indices into the file's dimension table, slowest-varying first.
    pub dims: Vec<usize>,
    /// The payload.
    pub data: VarData,
}

/// Errors from encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NcError {
    /// Not an ncdf-lite file.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// Unknown data-type code.
    BadDataType(u8),
    /// Input ended prematurely.
    Truncated,
    /// A name was not valid UTF-8.
    BadName,
    /// Variable shape does not match its data length.
    ShapeMismatch {
        /// Variable name.
        name: String,
        /// Elements implied by the dimensions.
        expected: u64,
        /// Elements actually present.
        actual: u64,
    },
    /// A variable references a dimension index that does not exist.
    BadDimIndex(usize),
}

impl std::fmt::Display for NcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NcError::BadMagic => write!(f, "bad magic"),
            NcError::BadVersion(v) => write!(f, "unsupported version {v}"),
            NcError::BadDataType(c) => write!(f, "unknown dtype code {c}"),
            NcError::Truncated => write!(f, "truncated input"),
            NcError::BadName => write!(f, "invalid UTF-8 in name"),
            NcError::ShapeMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "variable {name}: shape implies {expected} elements, got {actual}"
            ),
            NcError::BadDimIndex(i) => write!(f, "dimension index {i} out of range"),
        }
    }
}

impl std::error::Error for NcError {}

/// An in-memory ncdf-lite file.
///
/// ```
/// use ivis_storage::ncdf::{NcFile, VarData};
///
/// let mut f = NcFile::new();
/// let cells = f.add_dim("cells", 4);
/// f.add_attr("title", "okubo-weiss");
/// f.add_var("W", vec![cells], VarData::F64(vec![-1.0, 0.5, 2.0, -0.2])).unwrap();
/// let bytes = f.encode();
/// assert_eq!(bytes.len() as u64, f.encoded_size());
/// assert_eq!(NcFile::decode(&bytes).unwrap(), f);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NcFile {
    /// Named dimensions.
    pub dims: Vec<(String, u64)>,
    /// Global attributes.
    pub attrs: Vec<(String, String)>,
    /// Variables.
    pub vars: Vec<NcVariable>,
}

impl NcFile {
    /// An empty file.
    pub fn new() -> Self {
        NcFile::default()
    }

    /// Add a dimension, returning its index.
    pub fn add_dim(&mut self, name: impl Into<String>, size: u64) -> usize {
        self.dims.push((name.into(), size));
        self.dims.len() - 1
    }

    /// Add a global attribute.
    pub fn add_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.attrs.push((name.into(), value.into()));
    }

    /// Add a variable, validating its shape against the dimension table.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        dims: Vec<usize>,
        data: VarData,
    ) -> Result<(), NcError> {
        let name = name.into();
        let mut expected: u64 = 1;
        for &d in &dims {
            let (_, size) = self.dims.get(d).ok_or(NcError::BadDimIndex(d))?;
            expected = expected.saturating_mul(*size);
        }
        if dims.is_empty() {
            expected = data.len() as u64; // scalar/opaque variables
        }
        if expected != data.len() as u64 {
            return Err(NcError::ShapeMismatch {
                name,
                expected,
                actual: data.len() as u64,
            });
        }
        self.vars.push(NcVariable { name, dims, data });
        Ok(())
    }

    /// Find a variable by name.
    pub fn var(&self, name: &str) -> Option<&NcVariable> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Find an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Exact encoded size in bytes, without encoding.
    pub fn encoded_size(&self) -> u64 {
        let mut n = 4 + 2 + 2; // magic + version + flags
        n += 4;
        for (name, _) in &self.dims {
            n += 2 + name.len() + 8;
        }
        n += 4;
        for (name, value) in &self.attrs {
            n += 2 + name.len() + 2 + value.len();
        }
        n += 4;
        for v in &self.vars {
            n += 2 + v.name.len() + 1 + 1 + 4 * v.dims.len() + 8;
            n += v.data.len() * v.data.dtype().size();
        }
        n as u64
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_size() as usize);
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        buf.put_u32_le(self.dims.len() as u32);
        for (name, size) in &self.dims {
            put_name(&mut buf, name);
            buf.put_u64_le(*size);
        }
        buf.put_u32_le(self.attrs.len() as u32);
        for (name, value) in &self.attrs {
            put_name(&mut buf, name);
            put_name(&mut buf, value);
        }
        buf.put_u32_le(self.vars.len() as u32);
        for v in &self.vars {
            put_name(&mut buf, &v.name);
            buf.put_u8(v.data.dtype().code());
            buf.put_u8(v.dims.len() as u8);
            for &d in &v.dims {
                buf.put_u32_le(d as u32);
            }
            buf.put_u64_le(v.data.len() as u64);
            match &v.data {
                VarData::F32(xs) => xs.iter().for_each(|x| buf.put_f32_le(*x)),
                VarData::F64(xs) => xs.iter().for_each(|x| buf.put_f64_le(*x)),
                VarData::I32(xs) => xs.iter().for_each(|x| buf.put_i32_le(*x)),
                VarData::U8(xs) => buf.put_slice(xs),
            }
        }
        buf.freeze()
    }

    /// Parse from bytes.
    pub fn decode(mut input: &[u8]) -> Result<NcFile, NcError> {
        let buf = &mut input;
        let magic = take(buf, 4)?;
        if magic != MAGIC {
            return Err(NcError::BadMagic);
        }
        let version = get_u16(buf)?;
        if version != VERSION {
            return Err(NcError::BadVersion(version));
        }
        let _flags = get_u16(buf)?;
        let mut file = NcFile::new();
        let ndims = get_u32(buf)? as usize;
        for _ in 0..ndims {
            let name = get_name(buf)?;
            let size = get_u64(buf)?;
            file.dims.push((name, size));
        }
        let nattrs = get_u32(buf)? as usize;
        for _ in 0..nattrs {
            let name = get_name(buf)?;
            let value = get_name(buf)?;
            file.attrs.push((name, value));
        }
        let nvars = get_u32(buf)? as usize;
        for _ in 0..nvars {
            let name = get_name(buf)?;
            let dtype = DataType::from_code(get_u8(buf)?)?;
            let nd = get_u8(buf)? as usize;
            let mut dims = Vec::with_capacity(nd);
            for _ in 0..nd {
                let d = get_u32(buf)? as usize;
                if d >= file.dims.len() {
                    return Err(NcError::BadDimIndex(d));
                }
                dims.push(d);
            }
            let count = get_u64(buf)? as usize;
            let raw = take(buf, count * dtype.size())?;
            let data = match dtype {
                DataType::F32 => VarData::F32(
                    raw.chunks_exact(4)
                        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
                        .collect(),
                ),
                DataType::F64 => VarData::F64(
                    raw.chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
                        .collect(),
                ),
                DataType::I32 => VarData::I32(
                    raw.chunks_exact(4)
                        .map(|c| i32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
                        .collect(),
                ),
                DataType::U8 => VarData::U8(raw.to_vec()),
            };
            file.vars.push(NcVariable { name, dims, data });
        }
        Ok(file)
    }
}

fn put_name(buf: &mut BytesMut, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "name too long");
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], NcError> {
    if buf.len() < n {
        return Err(NcError::Truncated);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, NcError> {
    if buf.remaining() < 1 {
        return Err(NcError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut &[u8]) -> Result<u16, NcError> {
    if buf.remaining() < 2 {
        return Err(NcError::Truncated);
    }
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, NcError> {
    if buf.remaining() < 4 {
        return Err(NcError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, NcError> {
    if buf.remaining() < 8 {
        return Err(NcError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn get_name(buf: &mut &[u8]) -> Result<String, NcError> {
    let len = get_u16(buf)? as usize;
    let raw = take(buf, len)?;
    String::from_utf8(raw.to_vec()).map_err(|_| NcError::BadName)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> NcFile {
        let mut f = NcFile::new();
        let lat = f.add_dim("lat", 3);
        let lon = f.add_dim("lon", 4);
        f.add_attr("title", "okubo-weiss");
        f.add_attr("units", "1/s^2");
        let data: Vec<f64> = (0..12).map(|i| i as f64 * 0.5 - 3.0).collect();
        f.add_var("W", vec![lat, lon], VarData::F64(data)).unwrap();
        f.add_var("mask", vec![lat, lon], VarData::U8(vec![1; 12]))
            .unwrap();
        f
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let f = sample_file();
        let encoded = f.encode();
        let decoded = NcFile::decode(&encoded).unwrap();
        assert_eq!(f, decoded);
    }

    #[test]
    fn encoded_size_is_exact() {
        let f = sample_file();
        assert_eq!(f.encode().len() as u64, f.encoded_size());
        let empty = NcFile::new();
        assert_eq!(empty.encode().len() as u64, empty.encoded_size());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut f = NcFile::new();
        let d = f.add_dim("x", 10);
        let err = f
            .add_var("v", vec![d], VarData::F32(vec![0.0; 5]))
            .unwrap_err();
        assert_eq!(
            err,
            NcError::ShapeMismatch {
                name: "v".into(),
                expected: 10,
                actual: 5
            }
        );
    }

    #[test]
    fn bad_dim_index_rejected() {
        let mut f = NcFile::new();
        let err = f
            .add_var("v", vec![3], VarData::F32(vec![0.0]))
            .unwrap_err();
        assert_eq!(err, NcError::BadDimIndex(3));
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(NcFile::decode(b"XXXX\x01\x00"), Err(NcError::BadMagic));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let encoded = sample_file().encode();
        // Chop the file at a few dozen places; every prefix must fail
        // cleanly, never panic.
        for cut in (0..encoded.len() - 1).step_by(7) {
            let r = NcFile::decode(&encoded[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes should fail");
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut raw = sample_file().encode().to_vec();
        raw[4] = 9; // bump version field
        assert_eq!(NcFile::decode(&raw), Err(NcError::BadVersion(9)));
    }

    #[test]
    fn lookup_helpers() {
        let f = sample_file();
        assert_eq!(f.attr("title"), Some("okubo-weiss"));
        assert_eq!(f.attr("missing"), None);
        assert!(f.var("W").is_some());
        assert!(f.var("nope").is_none());
        assert_eq!(f.var("W").unwrap().data.len(), 12);
    }

    #[test]
    fn f32_and_i32_roundtrip() {
        let mut f = NcFile::new();
        let d = f.add_dim("n", 4);
        f.add_var(
            "a",
            vec![d],
            VarData::F32(vec![1.5, -2.5, f32::MAX, f32::MIN_POSITIVE]),
        )
        .unwrap();
        f.add_var("b", vec![d], VarData::I32(vec![i32::MIN, -1, 0, i32::MAX]))
            .unwrap();
        let back = NcFile::decode(&f.encode()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn scalar_variable_without_dims() {
        let mut f = NcFile::new();
        f.add_var("t", vec![], VarData::F64(vec![42.0])).unwrap();
        let back = NcFile::decode(&f.encode()).unwrap();
        assert_eq!(back.var("t").unwrap().data, VarData::F64(vec![42.0]));
    }

    #[test]
    fn field_file_size_scales_with_grid() {
        // A 60 km global grid (~649k cells in MPAS-O). One f64 variable
        // should dominate the encoded size.
        let mut f = NcFile::new();
        let n = 10_000;
        let d = f.add_dim("cells", n);
        f.add_var("W", vec![d], VarData::F64(vec![0.0; n as usize]))
            .unwrap();
        let size = f.encoded_size();
        assert!(size >= 8 * n && size < 8 * n + 200, "size={size}");
    }
}
