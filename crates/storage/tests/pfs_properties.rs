//! Property-based tests of the parallel-filesystem model: random operation
//! sequences must preserve the accounting invariants no matter how they
//! interleave.

use ivis_sim::{SimDuration, SimTime};
use ivis_storage::layout::StripeLayout;
use ivis_storage::pfs::{ParallelFileSystem, PfsConfig, PfsError};
use ivis_storage::StoragePowerModel;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write { file: u8, bytes: u32 },
    Read { file: u8 },
    Delete { file: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, 1u32..200_000).prop_map(|(file, bytes)| Op::Write { file, bytes }),
        (0u8..8).prop_map(|file| Op::Read { file }),
        (0u8..8).prop_map(|file| Op::Delete { file }),
    ]
}

fn small_fs() -> ParallelFileSystem {
    ParallelFileSystem::new(PfsConfig {
        num_oss: 2,
        oss_bandwidth_bps: 1.0e6,
        num_mds: 2,
        mds_op_time: SimDuration::from_millis(1),
        capacity_bytes: 1_000_000, // 1 MB so NoSpace paths get exercised
        stripe: StripeLayout::new(4_096, 2),
        power: StoragePowerModel::paper_lustre_rack(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accounting_invariants_hold_under_random_ops(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut fs = small_fs();
        let mut now = SimTime::ZERO;
        // Shadow model: file -> size.
        let mut shadow: std::collections::HashMap<u8, u64> = std::collections::HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            now += SimDuration::from_millis(i as u64 + 1);
            match op {
                Op::Write { file, bytes } => {
                    let path = format!("/f{file}");
                    match fs.write(now, &path, *bytes as u64) {
                        Ok(done) => {
                            prop_assert!(done >= now, "completion before submission");
                            *shadow.entry(*file).or_insert(0) += *bytes as u64;
                            now = done;
                        }
                        Err(PfsError::NoSpace { needed, free }) => {
                            prop_assert_eq!(needed, *bytes as u64);
                            prop_assert!(free < *bytes as u64);
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Op::Read { file } => {
                    let path = format!("/f{file}");
                    match fs.read(now, &path) {
                        Ok(done) => {
                            prop_assert!(shadow.contains_key(file));
                            prop_assert!(done >= now);
                            now = done;
                        }
                        Err(PfsError::NotFound(_)) => {
                            prop_assert!(!shadow.contains_key(file));
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Op::Delete { file } => {
                    let path = format!("/f{file}");
                    match fs.delete(now, &path) {
                        Ok(_) => {
                            prop_assert!(shadow.remove(file).is_some());
                        }
                        Err(PfsError::NotFound(_)) => {
                            prop_assert!(!shadow.contains_key(file));
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
            }
            // Core invariants after every operation.
            let expected_used: u64 = shadow.values().sum();
            prop_assert_eq!(fs.used_bytes(), expected_used);
            prop_assert_eq!(fs.num_files(), shadow.len());
            prop_assert!(fs.used_bytes() <= fs.config().capacity_bytes);
            prop_assert_eq!(
                fs.free_bytes(),
                fs.config().capacity_bytes - expected_used
            );
        }
        // Per-file sizes match the shadow model at the end.
        for (file, size) in &shadow {
            prop_assert_eq!(fs.size_of(&format!("/f{file}")).unwrap(), *size);
        }
    }

    #[test]
    fn rack_meter_power_always_within_band(ops in prop::collection::vec((1u32..500_000, 1u64..100), 1..30)) {
        let mut fs = small_fs();
        let mut now = SimTime::ZERO;
        for (i, (bytes, gap)) in ops.iter().enumerate() {
            now += SimDuration::from_millis(*gap);
            if let Ok(done) = fs.write(now, &format!("/w{i}"), *bytes as u64) {
                now = done;
            }
        }
        let meter = fs.rack_meter();
        for s in meter.report(SimTime::ZERO, now + SimDuration::from_mins(2)) {
            prop_assert!(
                s.avg.watts() >= 2273.0 - 1e-9 && s.avg.watts() <= 2302.0 + 1e-9,
                "rack power {} outside its physical band",
                s.avg
            );
        }
    }

    #[test]
    fn write_time_matches_striping_exactly(bytes in 10_000u64..500_000) {
        // The completion time is governed by the most-loaded OST under the
        // configured striping (plus the 1 ms MDS term) — check it exactly,
        // including the stripe-granularity imbalance.
        let mut fs = small_fs();
        let done = fs.write(SimTime::ZERO, "/a", bytes).unwrap();
        let per_ost = StripeLayout::new(4_096, 2).distribute(0, bytes);
        let max_ost = *per_ost.iter().max().unwrap() as f64;
        let expected = 0.001 + max_ost / 1.0e6;
        prop_assert!(
            (done.as_secs_f64() - expected).abs() < 1e-5,
            "done {} vs expected {expected}",
            done.as_secs_f64()
        );
    }
}
