//! Simulated power meters.
//!
//! The paper's instrumentation reports **one averaged power sample per
//! minute**: the Raritan metered PDU on the Lustre rack and the Appro
//! cage-level monitors on the compute cluster both integrate the true signal
//! within each interval and emit its average. [`MeteredPdu`] reproduces that
//! pathway: models write the *true* (instantaneous) power signal into the
//! meter; reading it back yields interval-averaged samples, from which
//! derived metrics (energy, average power) are computed exactly as the paper
//! computes them.

use ivis_sim::{SimDuration, SimTime, TimeSeries};

use crate::profile::PowerProfile;
use crate::units::{Joules, Watts};

/// One reported meter sample: the average power over the interval ending at
/// `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeterSample {
    /// End of the averaging interval.
    pub at: SimTime,
    /// Average power over the interval.
    pub avg: Watts,
}

/// A metered PDU that observes a continuous power signal and reports
/// interval-averaged samples.
#[derive(Debug, Clone)]
pub struct MeteredPdu {
    label: String,
    interval: SimDuration,
    signal: TimeSeries,
    baseline: Watts,
}

impl MeteredPdu {
    /// Create a meter reporting at the given interval. `baseline` is the
    /// power assumed before the first observation (meters on always-on
    /// equipment never see zero).
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn new(label: impl Into<String>, interval: SimDuration, baseline: Watts) -> Self {
        assert!(!interval.is_zero(), "meter interval must be positive");
        MeteredPdu {
            label: label.into(),
            interval,
            signal: TimeSeries::new(),
            baseline,
        }
    }

    /// A Raritan-style rack meter: one sample per minute.
    pub fn raritan_rack(label: impl Into<String>, baseline: Watts) -> Self {
        MeteredPdu::new(label, SimDuration::from_mins(1), baseline)
    }

    /// An Appro cage monitor: one sample per minute.
    pub fn appro_cage(label: impl Into<String>, baseline: Watts) -> Self {
        MeteredPdu::new(label, SimDuration::from_mins(1), baseline)
    }

    /// Human-readable meter label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The reporting interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Record that the observed equipment draws `power` from time `t`
    /// onward (until the next observation).
    pub fn observe(&mut self, t: SimTime, power: Watts) {
        self.signal.push(t, power.watts());
    }

    /// The true (unquantized) signal — available in simulation, not in the
    /// real world; used to validate that metering loses little information.
    pub fn true_signal(&self) -> &TimeSeries {
        &self.signal
    }

    /// Interval-averaged samples covering `[from, to]`, as the physical
    /// meter would report them.
    pub fn report(&self, from: SimTime, to: SimTime) -> Vec<MeterSample> {
        self.signal
            .resample_avg(from, to, self.interval, self.baseline.watts())
            .into_iter()
            .map(|(at, avg)| MeterSample {
                at,
                avg: Watts(avg),
            })
            .collect()
    }

    /// A [`PowerProfile`] built from the reported (quantized) samples.
    pub fn profile(&self, from: SimTime, to: SimTime) -> PowerProfile {
        PowerProfile::from_meter_samples(from, self.report(from, to))
    }

    /// Energy over `[from, to]` computed from reported samples (the paper's
    /// method: average power × interval, summed).
    pub fn energy_from_samples(&self, from: SimTime, to: SimTime) -> Joules {
        let mut total = Joules::ZERO;
        let mut prev = from;
        for s in self.report(from, to) {
            total += s.avg.over(s.at - prev);
            prev = s.at;
        }
        total
    }

    /// Exact energy over `[from, to]` from the true signal.
    pub fn true_energy(&self, from: SimTime, to: SimTime) -> Joules {
        Joules(self.signal.integrate(from, to, self.baseline.watts()))
    }
}

/// Sums several meters' true signals into one aggregate meter (e.g. the 15
/// cage monitors covering all 150 *Caddy* nodes).
pub fn aggregate(label: impl Into<String>, meters: &[MeteredPdu]) -> MeteredPdu {
    assert!(!meters.is_empty(), "cannot aggregate zero meters");
    let interval = meters[0].interval;
    let baseline = Watts(meters.iter().map(|m| m.baseline.watts()).sum());
    let mut signal = meters[0].signal.clone();
    let mut base_acc = meters[0].baseline.watts();
    for m in &meters[1..] {
        assert_eq!(
            m.interval, interval,
            "aggregated meters must share an interval"
        );
        signal = signal.sum_with(&m.signal, base_acc, m.baseline.watts());
        base_acc += m.baseline.watts();
    }
    MeteredPdu {
        label: label.into(),
        interval,
        signal,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn minute_averaging_matches_paper_semantics() {
        let mut pdu = MeteredPdu::raritan_rack("lustre", Watts(2273.0));
        // Load ramps to full for 30s inside the first minute.
        pdu.observe(t(15), Watts(2302.0));
        pdu.observe(t(45), Watts(2273.0));
        let samples = pdu.report(SimTime::ZERO, t(60));
        assert_eq!(samples.len(), 1);
        // 15s idle + 30s full + 15s idle => avg = 2273 + 29*0.5 = 2287.5
        assert!((samples[0].avg.watts() - 2287.5).abs() < 1e-9);
    }

    #[test]
    fn report_covers_whole_window() {
        let mut pdu = MeteredPdu::appro_cage("cage0", Watts(1000.0));
        pdu.observe(SimTime::ZERO, Watts(2000.0));
        let samples = pdu.report(SimTime::ZERO, t(330));
        // 5 full minutes + one 30s partial.
        assert_eq!(samples.len(), 6);
        assert_eq!(samples[5].at, t(330));
        for s in &samples {
            assert_eq!(s.avg, Watts(2000.0));
        }
    }

    #[test]
    fn energy_from_samples_equals_true_energy_for_aligned_signal() {
        // When power changes only at minute boundaries, metering is lossless.
        let mut pdu = MeteredPdu::raritan_rack("m", Watts(100.0));
        pdu.observe(t(0), Watts(100.0));
        pdu.observe(t(60), Watts(200.0));
        pdu.observe(t(120), Watts(100.0));
        let e_meter = pdu.energy_from_samples(t(0), t(180));
        let e_true = pdu.true_energy(t(0), t(180));
        assert!((e_meter.joules() - e_true.joules()).abs() < 1e-6);
        assert!((e_true.joules() - (100.0 * 120.0 + 200.0 * 60.0)).abs() < 1e-6);
    }

    #[test]
    fn energy_from_samples_equals_true_energy_even_when_quantized() {
        // Interval averaging preserves the integral exactly (it only loses
        // the shape within the interval).
        let mut pdu = MeteredPdu::raritan_rack("m", Watts(0.0));
        pdu.observe(t(10), Watts(500.0));
        pdu.observe(t(70), Watts(0.0));
        pdu.observe(t(95), Watts(300.0));
        let e_meter = pdu.energy_from_samples(t(0), t(180));
        let e_true = pdu.true_energy(t(0), t(180));
        assert!((e_meter.joules() - e_true.joules()).abs() < 1e-6);
    }

    #[test]
    fn baseline_applies_before_first_observation() {
        let pdu = MeteredPdu::raritan_rack("idle-rack", Watts(2273.0));
        let samples = pdu.report(SimTime::ZERO, t(120));
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].avg, Watts(2273.0));
    }

    #[test]
    fn aggregate_sums_signals() {
        let mut a = MeteredPdu::appro_cage("cage0", Watts(1000.0));
        let mut b = MeteredPdu::appro_cage("cage1", Watts(1000.0));
        a.observe(t(0), Watts(2933.0));
        b.observe(t(60), Watts(2933.0));
        let agg = aggregate("cluster", &[a, b]);
        let samples = agg.report(SimTime::ZERO, t(120));
        assert!((samples[0].avg.watts() - 3933.0).abs() < 1e-9);
        assert!((samples[1].avg.watts() - 5866.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = MeteredPdu::new("bad", SimDuration::ZERO, Watts::ZERO);
    }

    #[test]
    #[should_panic(expected = "cannot aggregate zero meters")]
    fn aggregate_empty_rejected() {
        let _ = aggregate("x", &[]);
    }
}
