//! Dimensional newtypes for power and energy.
//!
//! Keeping watts and joules as distinct types catches the classic modeling
//! bug (adding a power to an energy) at compile time, and makes
//! `P × Δt = E` explicit at every call site.

use ivis_sim::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Instantaneous power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(pub f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Construct from kilowatts.
    pub fn from_kilowatts(kw: f64) -> Self {
        Watts(kw * 1_000.0)
    }

    /// Value in kilowatts.
    pub fn kilowatts(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Value in watts.
    pub fn watts(self) -> f64 {
        self.0
    }

    /// Energy dissipated at this power over `d`.
    pub fn over(self, d: SimDuration) -> Joules {
        Joules(self.0 * d.as_secs_f64())
    }

    /// Clamp to a non-negative value (power models never emit negative draw).
    pub fn clamp_non_negative(self) -> Watts {
        Watts(self.0.max(0.0))
    }
}

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Value in joules.
    pub fn joules(self) -> f64 {
        self.0
    }

    /// Value in kilowatt-hours (the billing unit behind the paper's
    /// "energy bills" framing).
    pub fn kilowatt_hours(self) -> f64 {
        self.0 / 3.6e6
    }

    /// Value in megajoules.
    pub fn megajoules(self) -> f64 {
        self.0 / 1e6
    }

    /// Average power if this energy was spent over `d`.
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn average_over(self, d: SimDuration) -> Watts {
        assert!(!d.is_zero(), "cannot average energy over a zero duration");
        Watts(self.0 / d.as_secs_f64())
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}
impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}
impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}
impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}
impl Div<f64> for Watts {
    type Output = Watts;
    fn div(self, rhs: f64) -> Watts {
        Watts(self.0 / rhs)
    }
}
impl Div<Watts> for Watts {
    type Output = f64;
    fn div(self, rhs: Watts) -> f64 {
        self.0 / rhs.0
    }
}
impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts(iter.map(|w| w.0).sum())
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}
impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}
impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}
impl Mul<f64> for Joules {
    type Output = Joules;
    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}
impl Div<Joules> for Joules {
    type Output = f64;
    fn div(self, rhs: Joules) -> f64 {
        self.0 / rhs.0
    }
}
impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        Joules(iter.map(|j| j.0).sum())
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1_000.0 {
            write!(f, "{:.2} kW", self.0 / 1_000.0)
        } else {
            write!(f, "{:.1} W", self.0)
        }
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e6 {
            write!(f, "{:.2} MJ", self.0 / 1e6)
        } else if self.0.abs() >= 1e3 {
            write!(f, "{:.2} kJ", self.0 / 1e3)
        } else {
            write!(f, "{:.1} J", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts(100.0).over(SimDuration::from_secs(60));
        assert_eq!(e, Joules(6_000.0));
        assert_eq!(e.average_over(SimDuration::from_secs(60)), Watts(100.0));
    }

    #[test]
    fn kilowatt_conversions() {
        assert_eq!(Watts::from_kilowatts(44.0).watts(), 44_000.0);
        assert!((Watts(2302.0).kilowatts() - 2.302).abs() < 1e-12);
    }

    #[test]
    fn kwh_conversion() {
        let e = Watts(1_000.0).over(SimDuration::from_hours(1));
        assert!((e.kilowatt_hours() - 1.0).abs() < 1e-12);
        assert!((e.megajoules() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: Watts = [Watts(1.0), Watts(2.0), Watts(3.0)].into_iter().sum();
        assert_eq!(total, Watts(6.0));
        assert_eq!(Watts(5.0) - Watts(2.0), Watts(3.0));
        assert_eq!(Watts(5.0) * 2.0, Watts(10.0));
        assert_eq!(Watts(10.0) / 2.0, Watts(5.0));
        assert!((Watts(10.0) / Watts(4.0) - 2.5).abs() < 1e-12);
        let e: Joules = [Joules(1.0), Joules(2.0)].into_iter().sum();
        assert_eq!(e, Joules(3.0));
        assert!((Joules(10.0) / Joules(4.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn clamp_non_negative() {
        assert_eq!(Watts(-3.0).clamp_non_negative(), Watts::ZERO);
        assert_eq!(Watts(3.0).clamp_non_negative(), Watts(3.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Watts(2302.0)), "2.30 kW");
        assert_eq!(format!("{}", Watts(29.0)), "29.0 W");
        assert_eq!(format!("{}", Joules(4.2e6)), "4.20 MJ");
        assert_eq!(format!("{}", Joules(4200.0)), "4.20 kJ");
        assert_eq!(format!("{}", Joules(42.0)), "42.0 J");
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn average_over_zero_panics() {
        let _ = Joules(1.0).average_over(SimDuration::ZERO);
    }
}
