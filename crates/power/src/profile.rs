//! Power profiles: the paper's Fig. 4 artifact.
//!
//! A [`PowerProfile`] is a sequence of interval-averaged power samples over a
//! window, as reported by a meter, with the derived metrics the paper uses:
//! time-weighted **average power** (Fig. 5), **energy** `E = P̄·t` (Fig. 6)
//! and peak power.

use ivis_sim::{SimDuration, SimTime};

use crate::meter::MeterSample;
use crate::units::{Joules, Watts};

/// An interval-averaged power profile over `[start, end]`.
#[derive(Debug, Clone)]
pub struct PowerProfile {
    start: SimTime,
    samples: Vec<MeterSample>,
}

impl PowerProfile {
    /// Build a profile from meter samples. `start` is the beginning of the
    /// first averaging interval.
    ///
    /// # Panics
    /// Panics if samples are not strictly time-ordered or start before
    /// `start`.
    pub fn from_meter_samples(start: SimTime, samples: Vec<MeterSample>) -> Self {
        let mut prev = start;
        for s in &samples {
            assert!(s.at > prev, "meter samples must be strictly time-ordered");
            prev = s.at;
        }
        PowerProfile { start, samples }
    }

    /// Beginning of the profile window.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// End of the profile window (start when empty).
    pub fn end(&self) -> SimTime {
        self.samples.last().map_or(self.start, |s| s.at)
    }

    /// Window length.
    pub fn duration(&self) -> SimDuration {
        self.end() - self.start
    }

    /// The raw samples.
    pub fn samples(&self) -> &[MeterSample] {
        &self.samples
    }

    /// Exact energy implied by the samples (Σ avg·interval).
    pub fn energy(&self) -> Joules {
        let mut prev = self.start;
        let mut total = Joules::ZERO;
        for s in &self.samples {
            total += s.avg.over(s.at - prev);
            prev = s.at;
        }
        total
    }

    /// Exact energy over the sub-window `[from, to]`, clipping each
    /// averaging interval to the window. Summing `energy_between` over a
    /// partition of the profile window reproduces [`PowerProfile::energy`],
    /// which is what makes per-phase energy attribution conservative.
    ///
    /// # Panics
    /// Panics if `to < from`.
    pub fn energy_between(&self, from: SimTime, to: SimTime) -> Joules {
        assert!(to >= from, "energy window end precedes start");
        let mut prev = self.start;
        let mut total = Joules::ZERO;
        for s in &self.samples {
            let lo = if prev > from { prev } else { from };
            let hi = if s.at < to { s.at } else { to };
            if hi > lo {
                total += s.avg.over(hi - lo);
            }
            prev = s.at;
            if prev >= to {
                break;
            }
        }
        total
    }

    /// Total energy over a set of disjoint windows: the sum of
    /// [`energy_between`](Self::energy_between) over each. The fault layer
    /// uses this to attribute the energy spent inside retry/backoff
    /// intervals of a degraded run.
    ///
    /// # Panics
    /// Panics if any window's end precedes its start.
    pub fn energy_over(&self, windows: &[(SimTime, SimTime)]) -> Joules {
        windows.iter().fold(Joules::ZERO, |acc, &(from, to)| {
            acc + self.energy_between(from, to)
        })
    }

    /// Time-weighted average power over the window.
    ///
    /// Returns zero power for an empty profile.
    pub fn average_power(&self) -> Watts {
        let d = self.duration();
        if d.is_zero() {
            return Watts::ZERO;
        }
        self.energy().average_over(d)
    }

    /// Highest sample.
    pub fn peak(&self) -> Watts {
        self.samples
            .iter()
            .map(|s| s.avg)
            .fold(Watts::ZERO, |a, b| if b > a { b } else { a })
    }

    /// Lowest sample (zero for an empty profile).
    pub fn floor(&self) -> Watts {
        self.samples
            .iter()
            .map(|s| s.avg)
            .fold(None, |acc: Option<Watts>, b| {
                Some(match acc {
                    None => b,
                    Some(a) => {
                        if b < a {
                            b
                        } else {
                            a
                        }
                    }
                })
            })
            .unwrap_or(Watts::ZERO)
    }

    /// Pointwise sum of two profiles over the same window — e.g. adding the
    /// compute and storage profiles into the total the paper plots.
    ///
    /// # Panics
    /// Panics if the windows or sampling instants differ.
    pub fn sum(&self, other: &PowerProfile) -> PowerProfile {
        assert_eq!(self.start, other.start, "profile windows differ");
        assert_eq!(
            self.samples.len(),
            other.samples.len(),
            "profile sample counts differ"
        );
        let samples = self
            .samples
            .iter()
            .zip(&other.samples)
            .map(|(a, b)| {
                assert_eq!(a.at, b.at, "profile sampling instants differ");
                MeterSample {
                    at: a.at,
                    avg: a.avg + b.avg,
                }
            })
            .collect();
        PowerProfile {
            start: self.start,
            samples,
        }
    }

    /// Render the profile as `(minutes_since_start, watts)` rows, the shape
    /// plotted in the paper's Fig. 4.
    pub fn as_rows(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| ((s.at - self.start).as_secs_f64() / 60.0, s.avg.watts()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample(at: u64, w: f64) -> MeterSample {
        MeterSample {
            at: t(at),
            avg: Watts(w),
        }
    }

    #[test]
    fn energy_and_average() {
        let p = PowerProfile::from_meter_samples(
            SimTime::ZERO,
            vec![sample(60, 100.0), sample(120, 300.0)],
        );
        assert_eq!(p.duration(), SimDuration::from_mins(2));
        assert!((p.energy().joules() - (100.0 * 60.0 + 300.0 * 60.0)).abs() < 1e-9);
        assert_eq!(p.average_power(), Watts(200.0));
        assert_eq!(p.peak(), Watts(300.0));
        assert_eq!(p.floor(), Watts(100.0));
    }

    #[test]
    fn energy_between_clips_intervals_and_tiles_exactly() {
        let p = PowerProfile::from_meter_samples(
            SimTime::ZERO,
            vec![sample(60, 100.0), sample(120, 300.0)],
        );
        // Window straddling the sample boundary: 30 s at 100 W + 30 s at 300 W.
        let mid = p.energy_between(t(30), t(90));
        assert!((mid.joules() - (100.0 * 30.0 + 300.0 * 30.0)).abs() < 1e-9);
        // A partition of the full window sums back to energy().
        let parts = p.energy_between(t(0), t(45)).joules()
            + p.energy_between(t(45), t(100)).joules()
            + p.energy_between(t(100), t(120)).joules();
        assert!((parts - p.energy().joules()).abs() < 1e-9);
        // Windows outside the profile contribute nothing.
        assert_eq!(p.energy_between(t(120), t(500)), Joules::ZERO);
        assert_eq!(p.energy_between(t(7), t(7)), Joules::ZERO);
    }

    #[test]
    fn empty_profile_is_zero() {
        let p = PowerProfile::from_meter_samples(t(5), vec![]);
        assert_eq!(p.energy(), Joules::ZERO);
        assert_eq!(p.average_power(), Watts::ZERO);
        assert_eq!(p.duration(), SimDuration::ZERO);
        assert_eq!(p.end(), t(5));
    }

    #[test]
    fn uneven_intervals_weighted_correctly() {
        // 60s at 100W then a 30s partial interval at 400W.
        let p = PowerProfile::from_meter_samples(
            SimTime::ZERO,
            vec![sample(60, 100.0), sample(90, 400.0)],
        );
        let e = 100.0 * 60.0 + 400.0 * 30.0;
        assert!((p.energy().joules() - e).abs() < 1e-9);
        assert!((p.average_power().watts() - e / 90.0).abs() < 1e-9);
    }

    #[test]
    fn sum_profiles() {
        let a = PowerProfile::from_meter_samples(
            SimTime::ZERO,
            vec![sample(60, 44_000.0), sample(120, 15_000.0)],
        );
        let b = PowerProfile::from_meter_samples(
            SimTime::ZERO,
            vec![sample(60, 2_300.0), sample(120, 2_273.0)],
        );
        let s = a.sum(&b);
        assert_eq!(s.samples()[0].avg, Watts(46_300.0));
        assert_eq!(s.samples()[1].avg, Watts(17_273.0));
    }

    #[test]
    #[should_panic(expected = "windows differ")]
    fn sum_rejects_mismatched_windows() {
        let a = PowerProfile::from_meter_samples(SimTime::ZERO, vec![sample(60, 1.0)]);
        let b = PowerProfile::from_meter_samples(t(1), vec![sample(61, 1.0)]);
        let _ = a.sum(&b);
    }

    #[test]
    #[should_panic(expected = "strictly time-ordered")]
    fn unordered_samples_rejected() {
        let _ =
            PowerProfile::from_meter_samples(SimTime::ZERO, vec![sample(60, 1.0), sample(60, 2.0)]);
    }

    #[test]
    fn rows_in_minutes() {
        let p = PowerProfile::from_meter_samples(t(60), vec![sample(120, 10.0), sample(180, 20.0)]);
        let rows = p.as_rows();
        assert_eq!(rows.len(), 2);
        assert!((rows[0].0 - 1.0).abs() < 1e-12);
        assert!((rows[1].0 - 2.0).abs() < 1e-12);
        assert_eq!(rows[1].1, 20.0);
    }
}
