//! Per-component power models.
//!
//! Every component maps a utilization level `u ∈ [0, 1]` to a power draw.
//! The CPU model uses the empirical sub-linear curve
//! `P(u) = P_idle + (P_max − P_idle) · u^γ` with `γ < 1`, which matches SPEC
//! power measurements of Sandy-Bridge-class servers (power rises steeply at
//! low utilization, then flattens). All other components use affine models.

use crate::units::Watts;

/// A component that converts utilization into power draw.
pub trait PowerComponent {
    /// Power at utilization `u` (clamped into `[0, 1]`).
    fn power(&self, u: f64) -> Watts;

    /// Idle power (`u = 0`).
    fn idle(&self) -> Watts {
        self.power(0.0)
    }

    /// Peak power (`u = 1`).
    fn peak(&self) -> Watts {
        self.power(1.0)
    }
}

fn clamp_unit(u: f64) -> f64 {
    if u.is_nan() {
        0.0
    } else {
        u.clamp(0.0, 1.0)
    }
}

/// CPU socket power: `P = idle + (max − idle) · u^gamma`.
#[derive(Debug, Clone)]
pub struct CpuPower {
    idle: Watts,
    max: Watts,
    gamma: f64,
}

impl CpuPower {
    /// Create a CPU power curve.
    ///
    /// # Panics
    /// Panics if `max < idle` or `gamma <= 0`.
    pub fn new(idle: Watts, max: Watts, gamma: f64) -> Self {
        assert!(max.watts() >= idle.watts(), "max power below idle power");
        assert!(gamma > 0.0, "gamma must be positive");
        CpuPower { idle, max, gamma }
    }

    /// An Intel E5-2670 (Sandy Bridge EP, 115 W TDP) socket: ~18 W idle,
    /// ~110 W fully loaded, with the usual sub-linear knee.
    pub fn e5_2670() -> Self {
        CpuPower::new(Watts(18.0), Watts(110.0), 0.66)
    }
}

impl PowerComponent for CpuPower {
    fn power(&self, u: f64) -> Watts {
        let u = clamp_unit(u);
        self.idle + (self.max - self.idle) * u.powf(self.gamma)
    }
}

/// DRAM power: affine in access intensity.
#[derive(Debug, Clone)]
pub struct DramPower {
    idle: Watts,
    max: Watts,
}

impl DramPower {
    /// Create an affine DRAM model.
    pub fn new(idle: Watts, max: Watts) -> Self {
        assert!(max.watts() >= idle.watts(), "max power below idle power");
        DramPower { idle, max }
    }

    /// 64 GB of DDR3 (8 × 8 GB RDIMMs): ~12 W idle, ~30 W at full streaming.
    pub fn ddr3_64gb() -> Self {
        DramPower::new(Watts(12.0), Watts(30.0))
    }
}

impl PowerComponent for DramPower {
    fn power(&self, u: f64) -> Watts {
        let u = clamp_unit(u);
        self.idle + (self.max - self.idle) * u
    }
}

/// NIC/HCA power: nearly flat (InfiniBand QDR HCAs idle hot).
#[derive(Debug, Clone)]
pub struct NicPower {
    idle: Watts,
    max: Watts,
}

impl NicPower {
    /// Create an affine NIC model.
    pub fn new(idle: Watts, max: Watts) -> Self {
        assert!(max.watts() >= idle.watts(), "max power below idle power");
        NicPower { idle, max }
    }

    /// QLogic InfiniBand QDR HCA: ~8 W idle, ~11 W at line rate.
    pub fn ib_qdr() -> Self {
        NicPower::new(Watts(8.0), Watts(11.0))
    }
}

impl PowerComponent for NicPower {
    fn power(&self, u: f64) -> Watts {
        let u = clamp_unit(u);
        self.idle + (self.max - self.idle) * u
    }
}

/// Spinning-disk power: dominated by rotation, nearly load-independent.
///
/// This is the root cause of the paper's Finding 2: the disks spin whether
/// or not the pipeline writes, so an in-situ pipeline cannot save storage
/// power.
#[derive(Debug, Clone)]
pub struct DiskPower {
    idle: Watts,
    max: Watts,
}

impl DiskPower {
    /// Create an affine disk model.
    pub fn new(idle: Watts, max: Watts) -> Self {
        assert!(max.watts() >= idle.watts(), "max power below idle power");
        DiskPower { idle, max }
    }

    /// 7.2k RPM nearline SAS drive: ~8 W spinning idle, ~11 W seeking.
    pub fn nearline_sas() -> Self {
        DiskPower::new(Watts(8.0), Watts(11.0))
    }
}

impl PowerComponent for DiskPower {
    fn power(&self, u: f64) -> Watts {
        let u = clamp_unit(u);
        self.idle + (self.max - self.idle) * u
    }
}

/// A fixed overhead (fans, VRMs, boards) plus a PSU conversion-loss factor
/// applied to the sum of all downstream components.
#[derive(Debug, Clone)]
pub struct PsuOverhead {
    /// Constant platform draw: fans, baseboard, voltage regulators.
    pub fixed: Watts,
    /// PSU efficiency in `(0, 1]`; wall power = dc power / efficiency.
    pub efficiency: f64,
}

impl PsuOverhead {
    /// Create a PSU overhead model.
    ///
    /// # Panics
    /// Panics if efficiency is not in `(0, 1]`.
    pub fn new(fixed: Watts, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0,1]"
        );
        PsuOverhead { fixed, efficiency }
    }

    /// Wall power needed to deliver `dc` to the components.
    pub fn wall_power(&self, dc: Watts) -> Watts {
        (dc + self.fixed) / self.efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_curve_endpoints() {
        let cpu = CpuPower::e5_2670();
        assert_eq!(cpu.idle(), Watts(18.0));
        assert_eq!(cpu.peak(), Watts(110.0));
    }

    #[test]
    fn cpu_curve_is_sublinear() {
        let cpu = CpuPower::e5_2670();
        // At 50% utilization power should exceed the linear midpoint.
        let half = cpu.power(0.5).watts();
        let linear_mid = (18.0 + 110.0) / 2.0;
        assert!(half > linear_mid, "half={half} linear_mid={linear_mid}");
    }

    #[test]
    fn cpu_curve_monotone() {
        let cpu = CpuPower::e5_2670();
        let mut prev = -1.0;
        for i in 0..=100 {
            let p = cpu.power(i as f64 / 100.0).watts();
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn utilization_clamped() {
        let cpu = CpuPower::e5_2670();
        assert_eq!(cpu.power(-0.5), cpu.power(0.0));
        assert_eq!(cpu.power(1.5), cpu.power(1.0));
        assert_eq!(cpu.power(f64::NAN), cpu.power(0.0));
    }

    #[test]
    fn affine_models_interpolate() {
        let d = DramPower::new(Watts(10.0), Watts(30.0));
        assert_eq!(d.power(0.5), Watts(20.0));
        let n = NicPower::new(Watts(8.0), Watts(12.0));
        assert_eq!(n.power(0.25), Watts(9.0));
        let k = DiskPower::new(Watts(8.0), Watts(10.0));
        assert_eq!(k.power(1.0), Watts(10.0));
    }

    #[test]
    fn disk_dynamic_range_is_small() {
        let d = DiskPower::nearline_sas();
        let range = (d.peak().watts() - d.idle().watts()) / d.idle().watts();
        assert!(range < 0.5, "disks must be power-disproportional");
    }

    #[test]
    fn psu_overhead() {
        let psu = PsuOverhead::new(Watts(20.0), 0.9);
        let wall = psu.wall_power(Watts(70.0));
        assert!((wall.watts() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn psu_rejects_bad_efficiency() {
        let _ = PsuOverhead::new(Watts(0.0), 1.5);
    }

    #[test]
    #[should_panic(expected = "max power below idle")]
    fn inverted_range_rejected() {
        let _ = DramPower::new(Watts(30.0), Watts(10.0));
    }
}
