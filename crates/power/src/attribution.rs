//! Per-component and per-phase energy attribution (RAPL-style).
//!
//! The rack meters in the paper see only wall power. To reason about *where*
//! the energy goes — the §VIII discussion of storage-side CPUs and I/O-wait
//! states — we attribute node energy to components (sockets, DRAM, NIC,
//! platform overhead) the way RAPL energy counters would, and accumulate it
//! per workload phase.

use ivis_sim::SimDuration;

use crate::component::{CpuPower, DramPower, NicPower, PowerComponent, PsuOverhead};
use crate::node::NodeLoad;
use crate::units::Joules;

/// Energy split of one node over one interval.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// CPU sockets.
    pub cpu: Joules,
    /// DRAM.
    pub dram: Joules,
    /// NIC/HCA.
    pub nic: Joules,
    /// Fans, boards, VRMs and PSU conversion loss.
    pub platform: Joules,
}

impl EnergyBreakdown {
    /// Total of all components.
    pub fn total(&self) -> Joules {
        self.cpu + self.dram + self.nic + self.platform
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.cpu += other.cpu;
        self.dram += other.dram;
        self.nic += other.nic;
        self.platform += other.platform;
    }

    /// Fraction of the total drawn by the CPU sockets.
    pub fn cpu_fraction(&self) -> f64 {
        let t = self.total().joules();
        if t == 0.0 {
            0.0
        } else {
            self.cpu.joules() / t
        }
    }
}

/// A RAPL-like attributor: knows the component curves and splits wall energy.
#[derive(Debug, Clone)]
pub struct EnergyAttributor {
    cpu: CpuPower,
    sockets: usize,
    dram: DramPower,
    nic: NicPower,
    psu: PsuOverhead,
}

impl EnergyAttributor {
    /// Build from component models.
    pub fn new(
        cpu: CpuPower,
        sockets: usize,
        dram: DramPower,
        nic: NicPower,
        psu: PsuOverhead,
    ) -> Self {
        assert!(sockets > 0, "need at least one socket");
        EnergyAttributor {
            cpu,
            sockets,
            dram,
            nic,
            psu,
        }
    }

    /// The Caddy node's components.
    pub fn caddy() -> Self {
        EnergyAttributor::new(
            CpuPower::e5_2670(),
            2,
            DramPower::ddr3_64gb(),
            NicPower::ib_qdr(),
            PsuOverhead::new(crate::units::Watts(24.0), 0.88),
        )
    }

    /// Attribute one node's energy over `d` at load `load`.
    pub fn attribute(&self, load: NodeLoad, d: SimDuration) -> EnergyBreakdown {
        let cpu_w = self.cpu.power(load.cpu).watts() * self.sockets as f64;
        let dram_w = self.dram.power(load.mem).watts();
        let nic_w = self.nic.power(load.nic).watts();
        let dc = cpu_w + dram_w + nic_w;
        let wall = self.psu.wall_power(crate::units::Watts(dc)).watts();
        let platform_w = wall - dc;
        let secs = d.as_secs_f64();
        EnergyBreakdown {
            cpu: Joules(cpu_w * secs),
            dram: Joules(dram_w * secs),
            nic: Joules(nic_w * secs),
            platform: Joules(platform_w * secs),
        }
    }
}

/// Accumulates energy per labeled phase (e.g. "simulate", "write").
#[derive(Debug, Clone, Default)]
pub struct PhaseEnergyLedger {
    entries: Vec<(String, EnergyBreakdown)>,
}

impl PhaseEnergyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        PhaseEnergyLedger::default()
    }

    /// Charge `breakdown` to `phase`.
    pub fn charge(&mut self, phase: &str, breakdown: EnergyBreakdown) {
        if let Some((_, acc)) = self.entries.iter_mut().find(|(p, _)| p == phase) {
            acc.add(&breakdown);
        } else {
            self.entries.push((phase.to_string(), breakdown));
        }
    }

    /// Energy charged to `phase` so far.
    pub fn phase(&self, phase: &str) -> EnergyBreakdown {
        self.entries
            .iter()
            .find(|(p, _)| p == phase)
            .map(|(_, b)| *b)
            .unwrap_or_default()
    }

    /// All phases in first-charge order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, &EnergyBreakdown)> {
        self.entries.iter().map(|(p, b)| (p.as_str(), b))
    }

    /// Grand total.
    pub fn total(&self) -> Joules {
        self.entries.iter().map(|(_, b)| b.total()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Watts;

    #[test]
    fn breakdown_sums_to_wall_energy() {
        let attr = EnergyAttributor::caddy();
        let b = attr.attribute(NodeLoad::COMPUTE, SimDuration::from_secs(100));
        let wall = {
            let cpu = CpuPower::e5_2670().power(1.0).watts() * 2.0;
            let dram = DramPower::ddr3_64gb().power(0.8).watts();
            let nic = NicPower::ib_qdr().power(0.4).watts();
            PsuOverhead::new(Watts(24.0), 0.88)
                .wall_power(Watts(cpu + dram + nic))
                .watts()
        };
        assert!((b.total().joules() - wall * 100.0).abs() < 1e-6);
    }

    #[test]
    fn cpu_dominates_under_compute_load() {
        let attr = EnergyAttributor::caddy();
        let b = attr.attribute(NodeLoad::COMPUTE, SimDuration::from_secs(10));
        assert!(b.cpu_fraction() > 0.5, "cpu fraction {}", b.cpu_fraction());
        assert!(b.dram > Joules::ZERO && b.nic > Joules::ZERO && b.platform > Joules::ZERO);
    }

    #[test]
    fn idle_platform_share_is_larger() {
        let attr = EnergyAttributor::caddy();
        let busy = attr.attribute(NodeLoad::COMPUTE, SimDuration::from_secs(10));
        let idle = attr.attribute(NodeLoad::IDLE, SimDuration::from_secs(10));
        let platform_share = |b: &EnergyBreakdown| b.platform.joules() / b.total().joules();
        assert!(platform_share(&idle) > platform_share(&busy));
    }

    #[test]
    fn busy_wait_io_burns_cpu_energy() {
        // The §V explanation: I/O waits that spin keep CPU energy high.
        let attr = EnergyAttributor::caddy();
        let spin = attr.attribute(NodeLoad::IO_BUSY_WAIT, SimDuration::from_secs(10));
        let sleep = attr.attribute(NodeLoad::IO_DEEP_IDLE, SimDuration::from_secs(10));
        assert!(spin.cpu.joules() > 2.0 * sleep.cpu.joules());
    }

    #[test]
    fn ledger_accumulates_per_phase() {
        let attr = EnergyAttributor::caddy();
        let mut ledger = PhaseEnergyLedger::new();
        ledger.charge(
            "simulate",
            attr.attribute(NodeLoad::COMPUTE, SimDuration::from_secs(10)),
        );
        ledger.charge(
            "write",
            attr.attribute(NodeLoad::IO_BUSY_WAIT, SimDuration::from_secs(4)),
        );
        ledger.charge(
            "simulate",
            attr.attribute(NodeLoad::COMPUTE, SimDuration::from_secs(10)),
        );
        let sim = ledger.phase("simulate");
        let write = ledger.phase("write");
        assert!(sim.total() > write.total());
        assert_eq!(ledger.phases().count(), 2);
        assert!((ledger.total().joules() - (sim.total() + write.total()).joules()).abs() < 1e-9);
        assert_eq!(ledger.phase("missing"), EnergyBreakdown::default());
    }

    #[test]
    fn zero_duration_zero_energy() {
        let attr = EnergyAttributor::caddy();
        let b = attr.attribute(NodeLoad::COMPUTE, SimDuration::ZERO);
        assert_eq!(b.total(), Joules::ZERO);
        assert_eq!(b.cpu_fraction(), 0.0);
    }
}
