//! Node-level power models.
//!
//! A [`NodePowerModel`] composes two CPU sockets, DRAM, a NIC and PSU
//! overhead, then applies an affine calibration so its endpoints match
//! published wall-plug measurements. The [`NodePowerModel::caddy`] preset is
//! calibrated to the paper's *Caddy* cluster: 150 nodes drew **15 kW idle**
//! and **44 kW under the MPAS-O workload**, i.e. 100 W and ≈293.3 W per node.

use crate::component::{CpuPower, DramPower, NicPower, PowerComponent, PsuOverhead};
use crate::units::Watts;

/// Utilization of the major node components, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLoad {
    /// CPU utilization across all cores.
    pub cpu: f64,
    /// Memory-bandwidth utilization.
    pub mem: f64,
    /// Network utilization.
    pub nic: f64,
}

impl NodeLoad {
    /// Fully idle node.
    pub const IDLE: NodeLoad = NodeLoad {
        cpu: 0.0,
        mem: 0.0,
        nic: 0.0,
    };

    /// A compute-bound HPC load (CPU saturated, heavy memory traffic,
    /// moderate interconnect use).
    pub const COMPUTE: NodeLoad = NodeLoad {
        cpu: 1.0,
        mem: 0.8,
        nic: 0.4,
    };

    /// I/O wait implemented as busy-wait polling inside MPI/PIO collectives:
    /// cores spin at high utilization while moving little data. This is the
    /// mechanism behind the paper's flat power profiles (§V, Power).
    pub const IO_BUSY_WAIT: NodeLoad = NodeLoad {
        cpu: 0.92,
        mem: 0.10,
        nic: 0.30,
    };

    /// I/O wait with the CPUs placed in a low-power idle state — the
    /// *hypothetical* policy discussed in the paper's §VIII. Used by the
    /// ablation benchmarks.
    pub const IO_DEEP_IDLE: NodeLoad = NodeLoad {
        cpu: 0.05,
        mem: 0.05,
        nic: 0.30,
    };

    /// Rendering load (rasterization is CPU- and memory-intensive).
    pub const RENDER: NodeLoad = NodeLoad {
        cpu: 0.95,
        mem: 0.7,
        nic: 0.2,
    };

    /// Uniform load `u` on every component.
    pub fn uniform(u: f64) -> NodeLoad {
        NodeLoad {
            cpu: u,
            mem: u,
            nic: u,
        }
    }
}

/// A calibrated whole-node power model.
#[derive(Debug, Clone)]
pub struct NodePowerModel {
    cpu: CpuPower,
    sockets: usize,
    dram: DramPower,
    nic: NicPower,
    psu: PsuOverhead,
    /// Affine calibration `wall' = a·wall + b` fixing the endpoints to
    /// measured values.
    cal_a: f64,
    cal_b: f64,
}

impl NodePowerModel {
    /// Build an uncalibrated model (calibration is the identity).
    pub fn from_components(
        cpu: CpuPower,
        sockets: usize,
        dram: DramPower,
        nic: NicPower,
        psu: PsuOverhead,
    ) -> Self {
        assert!(sockets > 0, "a node needs at least one socket");
        NodePowerModel {
            cpu,
            sockets,
            dram,
            nic,
            psu,
            cal_a: 1.0,
            cal_b: 0.0,
        }
    }

    /// Affine-calibrate the model so that `power(IDLE) = idle_target` and
    /// `power(COMPUTE) = loaded_target`.
    ///
    /// # Panics
    /// Panics if the raw model is degenerate (idle and loaded raw powers
    /// equal) or targets are inverted.
    pub fn calibrated(mut self, idle_target: Watts, loaded_target: Watts) -> Self {
        assert!(
            loaded_target.watts() > idle_target.watts(),
            "loaded target must exceed idle target"
        );
        self.cal_a = 1.0;
        self.cal_b = 0.0;
        let raw_idle = self.power(NodeLoad::IDLE).watts();
        let raw_loaded = self.power(NodeLoad::COMPUTE).watts();
        assert!(
            raw_loaded > raw_idle,
            "raw model must be load-sensitive to calibrate"
        );
        let a = (loaded_target.watts() - idle_target.watts()) / (raw_loaded - raw_idle);
        let b = idle_target.watts() - a * raw_idle;
        self.cal_a = a;
        self.cal_b = b;
        self
    }

    /// The *Caddy* compute node: 2 × Intel E5-2670 (Sandy Bridge), 64 GB
    /// DDR3, InfiniBand QDR, calibrated to 100 W idle / 293.33 W loaded
    /// (matching the paper's 15 kW / 44 kW for 150 nodes).
    pub fn caddy() -> Self {
        NodePowerModel::from_components(
            CpuPower::e5_2670(),
            2,
            DramPower::ddr3_64gb(),
            NicPower::ib_qdr(),
            PsuOverhead::new(Watts(24.0), 0.88),
        )
        .calibrated(Watts(100.0), Watts(44_000.0 / 150.0))
    }

    /// Wall power at the given load.
    pub fn power(&self, load: NodeLoad) -> Watts {
        let dc = self.cpu.power(load.cpu) * self.sockets as f64
            + self.dram.power(load.mem)
            + self.nic.power(load.nic);
        let wall = self.psu.wall_power(dc);
        Watts(self.cal_a * wall.watts() + self.cal_b).clamp_non_negative()
    }

    /// Idle wall power.
    pub fn idle(&self) -> Watts {
        self.power(NodeLoad::IDLE)
    }

    /// Wall power under the compute-bound load.
    pub fn loaded(&self) -> Watts {
        self.power(NodeLoad::COMPUTE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caddy_matches_paper_endpoints() {
        let node = NodePowerModel::caddy();
        // 150 nodes: 15 kW idle, 44 kW loaded.
        let idle_cluster = node.idle().watts() * 150.0;
        let loaded_cluster = node.loaded().watts() * 150.0;
        assert!((idle_cluster - 15_000.0).abs() < 1.0, "idle={idle_cluster}");
        assert!(
            (loaded_cluster - 44_000.0).abs() < 1.0,
            "loaded={loaded_cluster}"
        );
    }

    #[test]
    fn caddy_dynamic_range_matches_paper() {
        // Paper: compute cluster rises 193% from idle to loaded.
        let node = NodePowerModel::caddy();
        let rise = (node.loaded().watts() - node.idle().watts()) / node.idle().watts();
        assert!((rise - 1.9333).abs() < 0.01, "rise={rise}");
    }

    #[test]
    fn io_busy_wait_power_is_near_loaded() {
        // Busy-wait I/O keeps CPUs hot: power within ~15% of the loaded level.
        let node = NodePowerModel::caddy();
        let busy = node.power(NodeLoad::IO_BUSY_WAIT).watts();
        let loaded = node.loaded().watts();
        assert!(busy > 0.80 * loaded, "busy={busy} loaded={loaded}");
        assert!(busy <= loaded);
    }

    #[test]
    fn io_deep_idle_power_is_near_idle() {
        let node = NodePowerModel::caddy();
        let deep = node.power(NodeLoad::IO_DEEP_IDLE).watts();
        assert!(
            deep < 1.5 * node.idle().watts(),
            "deep-idle draw {deep} should approach idle {}",
            node.idle().watts()
        );
    }

    #[test]
    fn power_is_monotone_in_uniform_load() {
        let node = NodePowerModel::caddy();
        let mut prev = 0.0;
        for i in 0..=10 {
            let p = node.power(NodeLoad::uniform(i as f64 / 10.0)).watts();
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn calibration_is_exact_at_endpoints() {
        let node = NodePowerModel::from_components(
            CpuPower::e5_2670(),
            2,
            DramPower::ddr3_64gb(),
            NicPower::ib_qdr(),
            PsuOverhead::new(Watts(24.0), 0.88),
        )
        .calibrated(Watts(80.0), Watts(250.0));
        assert!((node.idle().watts() - 80.0).abs() < 1e-9);
        assert!((node.loaded().watts() - 250.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "loaded target must exceed idle")]
    fn inverted_calibration_rejected() {
        let _ = NodePowerModel::caddy().calibrated(Watts(200.0), Watts(100.0));
    }

    #[test]
    fn render_load_draws_close_to_compute() {
        let node = NodePowerModel::caddy();
        let render = node.power(NodeLoad::RENDER).watts();
        assert!(render > 0.85 * node.loaded().watts());
    }
}
