//! Power-proportionality metrics.
//!
//! The paper's central negative result (Finding 2) rests on the storage
//! subsystem's lack of power proportionality: 2273 W idle vs 2302 W at full
//! load — a **1.3 %** dynamic range — against the compute cluster's **193 %**.
//! This module provides the metrics used to characterize subsystems that way
//! and to sweep proportionality in the ablation benchmarks.

use crate::units::Watts;

/// One point on a load/power curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPowerPoint {
    /// Offered load in `[0, 1]` (e.g. fraction of peak bandwidth).
    pub load: f64,
    /// Measured power at that load.
    pub power: Watts,
}

/// Summary of an idle/full-load characterization, the shape of the paper's
/// storage-rack and compute-cluster benchmarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportionality {
    /// Power at zero load.
    pub idle: Watts,
    /// Power at full load.
    pub full: Watts,
}

impl Proportionality {
    /// Characterize a subsystem from its idle and full-load draw.
    ///
    /// # Panics
    /// Panics if `full < idle` or `idle` is non-positive.
    pub fn new(idle: Watts, full: Watts) -> Self {
        assert!(idle.watts() > 0.0, "idle power must be positive");
        assert!(
            full.watts() >= idle.watts(),
            "full-load power below idle power"
        );
        Proportionality { idle, full }
    }

    /// The paper's Lustre storage rack: 2273 W idle, 2302 W at maximum I/O
    /// bandwidth.
    pub fn paper_storage_rack() -> Self {
        Proportionality::new(Watts(2273.0), Watts(2302.0))
    }

    /// The paper's 150-node compute cluster: 15 kW idle, 44 kW under load.
    pub fn paper_compute_cluster() -> Self {
        Proportionality::new(Watts(15_000.0), Watts(44_000.0))
    }

    /// Dynamic range as a percentage increase over idle
    /// (the paper's "1.3 %" / "193 %" numbers).
    pub fn dynamic_range_pct(&self) -> f64 {
        (self.full.watts() - self.idle.watts()) / self.idle.watts() * 100.0
    }

    /// Fraction of peak power that is load-dependent:
    /// `(full − idle) / full`. 1.0 is perfectly proportional, 0.0 is a
    /// constant draw.
    pub fn proportional_fraction(&self) -> f64 {
        (self.full.watts() - self.idle.watts()) / self.full.watts()
    }

    /// The affine power estimate at load `u ∈ [0,1]`.
    pub fn power_at(&self, u: f64) -> Watts {
        let u = u.clamp(0.0, 1.0);
        self.idle + (self.full - self.idle) * u
    }

    /// Maximum power saving available from eliminating the load entirely —
    /// what an in-situ pipeline could at best save on this subsystem.
    pub fn max_saving(&self) -> Watts {
        self.full - self.idle
    }
}

/// Barroso–Hölzle-style proportionality index over a measured load/power
/// curve: `1 − mean(|P(u) − u·P_peak|) / P_peak`, where 1.0 means power
/// tracks load perfectly and lower values mean energy is wasted at partial
/// load.
///
/// # Panics
/// Panics if the curve is empty or peak power is non-positive.
pub fn proportionality_index(curve: &[LoadPowerPoint]) -> f64 {
    assert!(!curve.is_empty(), "empty load/power curve");
    let peak = curve
        .iter()
        .map(|p| p.power.watts())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(peak > 0.0, "peak power must be positive");
    let mean_dev = curve
        .iter()
        .map(|p| (p.power.watts() - p.load.clamp(0.0, 1.0) * peak).abs())
        .sum::<f64>()
        / curve.len() as f64;
    1.0 - mean_dev / peak
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_storage_rack_numbers() {
        let p = Proportionality::paper_storage_rack();
        assert!((p.dynamic_range_pct() - 1.2758).abs() < 0.01);
        assert_eq!(p.max_saving(), Watts(29.0));
    }

    #[test]
    fn paper_compute_cluster_numbers() {
        let p = Proportionality::paper_compute_cluster();
        assert!((p.dynamic_range_pct() - 193.33).abs() < 0.01);
    }

    #[test]
    fn proportional_fraction_bounds() {
        let storage = Proportionality::paper_storage_rack();
        let compute = Proportionality::paper_compute_cluster();
        assert!(storage.proportional_fraction() < 0.02);
        assert!(compute.proportional_fraction() > 0.6);
    }

    #[test]
    fn power_at_interpolates_and_clamps() {
        let p = Proportionality::new(Watts(100.0), Watts(200.0));
        assert_eq!(p.power_at(0.5), Watts(150.0));
        assert_eq!(p.power_at(-1.0), Watts(100.0));
        assert_eq!(p.power_at(2.0), Watts(200.0));
    }

    #[test]
    fn index_perfectly_proportional() {
        let curve: Vec<LoadPowerPoint> = (0..=10)
            .map(|i| LoadPowerPoint {
                load: i as f64 / 10.0,
                power: Watts(100.0 * i as f64 / 10.0),
            })
            .collect();
        assert!((proportionality_index(&curve) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn index_constant_draw_is_poor() {
        let curve: Vec<LoadPowerPoint> = (0..=10)
            .map(|i| LoadPowerPoint {
                load: i as f64 / 10.0,
                power: Watts(100.0),
            })
            .collect();
        // Mean |100 - u*100| over u=0..1 is 50 ⇒ index 0.5.
        assert!((proportionality_index(&curve) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn storage_rack_index_is_terrible() {
        let p = Proportionality::paper_storage_rack();
        let curve: Vec<LoadPowerPoint> = (0..=10)
            .map(|i| {
                let u = i as f64 / 10.0;
                LoadPowerPoint {
                    load: u,
                    power: p.power_at(u),
                }
            })
            .collect();
        let idx = proportionality_index(&curve);
        assert!(idx < 0.55, "storage rack should score poorly, got {idx}");
    }

    #[test]
    #[should_panic(expected = "full-load power below idle")]
    fn inverted_rejected() {
        let _ = Proportionality::new(Watts(200.0), Watts(100.0));
    }

    #[test]
    #[should_panic(expected = "empty load/power curve")]
    fn empty_curve_rejected() {
        let _ = proportionality_index(&[]);
    }
}
