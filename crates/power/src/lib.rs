//! # ivis-power — power & energy modeling and metering
//!
//! This crate provides the power side of the paper's measurement apparatus:
//!
//! * [`units`] — `Watts` / `Joules` newtypes with dimensional arithmetic
//!   (`P × Δt = E`).
//! * [`component`] — per-component power models (CPU with a
//!   utilization→power curve, DRAM, NIC, disk, PSU overhead) composable into
//!   a node model.
//! * [`node`] — node-level power models, including the calibrated *Caddy*
//!   compute node (150 nodes ⇒ 15 kW idle, 44 kW at full load, the paper's
//!   published endpoints).
//! * [`meter`] — simulated metered PDUs: they observe a continuous power
//!   signal and report **one averaged sample per minute**, exactly like the
//!   Raritan rack meter and the Appro cage monitors in the paper.
//! * [`profile`] — power profiles (the paper's Fig. 4): energy integration,
//!   time-weighted average power, peaks.
//! * [`proportionality`] — power-proportionality metrics: dynamic range,
//!   the idle/full-load ratios the paper reports (storage: +1.3 %,
//!   compute: +193 %).

pub mod attribution;
pub mod component;
pub mod cost;
pub mod meter;
pub mod node;
pub mod profile;
pub mod proportionality;
pub mod units;

pub use meter::MeteredPdu;
pub use node::NodePowerModel;
pub use profile::PowerProfile;
pub use units::{Joules, Watts};
