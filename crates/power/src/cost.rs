//! Dollar-cost models for power and energy.
//!
//! The paper's framing: "a typical estimate of one million dollars per
//! megawatt[-year] means that over 40% of the acquisition cost of a
//! supercomputer goes towards paying energy bills". This module turns the
//! measured joules into the operating-cost numbers a facility planner uses.

use ivis_sim::SimDuration;

use crate::units::{Joules, Watts};

/// Electricity pricing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyPrice {
    /// Dollars per kilowatt-hour.
    pub dollars_per_kwh: f64,
}

impl EnergyPrice {
    /// Create a price.
    ///
    /// # Panics
    /// Panics on a non-finite or negative price.
    pub fn per_kwh(dollars: f64) -> Self {
        assert!(dollars.is_finite() && dollars >= 0.0, "bad price");
        EnergyPrice {
            dollars_per_kwh: dollars,
        }
    }

    /// The paper's rule of thumb: $1M per MW-year ⇒ ≈ $0.114/kWh.
    pub fn paper_rule_of_thumb() -> Self {
        // 1 MW for a year = 8_766_000 kWh ⇒ 1e6 / 8.766e6 $/kWh.
        EnergyPrice::per_kwh(1.0e6 / (1_000.0 * 24.0 * 365.25))
    }

    /// Cost of an amount of energy.
    pub fn cost_of(&self, e: Joules) -> f64 {
        e.kilowatt_hours() * self.dollars_per_kwh
    }

    /// Annual cost of a constant draw `p`.
    pub fn annual_cost(&self, p: Watts) -> f64 {
        self.cost_of(p.over(SimDuration::from_hours(24 * 365)))
    }
}

/// Cost of supercomputer *time* (node-hours), for trade-offs where a faster
/// pipeline frees machine time worth money.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineTimePrice {
    /// Dollars per node-hour.
    pub dollars_per_node_hour: f64,
    /// Nodes in the allocation.
    pub nodes: usize,
}

impl MachineTimePrice {
    /// Cost of occupying the allocation for `d`.
    pub fn cost_of(&self, d: SimDuration) -> f64 {
        self.dollars_per_node_hour * self.nodes as f64 * d.as_secs_f64() / 3_600.0
    }
}

/// Combined workflow cost: energy bill plus machine occupancy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkflowCost {
    /// Energy bill, dollars.
    pub energy_dollars: f64,
    /// Machine-time cost, dollars.
    pub machine_dollars: f64,
}

impl WorkflowCost {
    /// Total dollars.
    pub fn total(&self) -> f64 {
        self.energy_dollars + self.machine_dollars
    }
}

/// Price a workflow given its energy and duration.
pub fn workflow_cost(
    energy: Joules,
    duration: SimDuration,
    energy_price: EnergyPrice,
    machine_price: MachineTimePrice,
) -> WorkflowCost {
    WorkflowCost {
        energy_dollars: energy_price.cost_of(energy),
        machine_dollars: machine_price.cost_of(duration),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_of_thumb_matches_headline() {
        // 1 MW for a year should cost ~$1M under the paper's rule.
        let price = EnergyPrice::paper_rule_of_thumb();
        let annual = price.annual_cost(Watts::from_kilowatts(1_000.0));
        assert!((annual - 1.0e6).abs() / 1.0e6 < 0.01, "annual = {annual}");
    }

    #[test]
    fn kwh_pricing() {
        let price = EnergyPrice::per_kwh(0.10);
        let e = Watts(1_000.0).over(SimDuration::from_hours(10)); // 10 kWh
        assert!((price.cost_of(e) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn caddy_campaign_cost_scale() {
        // A 46 kW machine for 2700 s ≈ 34.5 kWh ≈ $3.9 at the paper's rate —
        // small per run, large over a 100-year campaign (≈ 1300× more).
        let price = EnergyPrice::paper_rule_of_thumb();
        let e = Watts(46_000.0).over(SimDuration::from_secs(2_700));
        let per_run = price.cost_of(e);
        assert!((3.0..5.5).contains(&per_run), "per run ${per_run:.2}");
    }

    #[test]
    fn machine_time_pricing() {
        let price = MachineTimePrice {
            dollars_per_node_hour: 0.5,
            nodes: 150,
        };
        let c = price.cost_of(SimDuration::from_hours(2));
        assert!((c - 150.0).abs() < 1e-9);
    }

    #[test]
    fn workflow_cost_combines() {
        let wc = workflow_cost(
            Watts(46_000.0).over(SimDuration::from_secs(3_600)),
            SimDuration::from_secs(3_600),
            EnergyPrice::per_kwh(0.1),
            MachineTimePrice {
                dollars_per_node_hour: 0.5,
                nodes: 150,
            },
        );
        assert!((wc.energy_dollars - 4.6).abs() < 1e-9);
        assert!((wc.machine_dollars - 75.0).abs() < 1e-9);
        assert!((wc.total() - 79.6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bad price")]
    fn negative_price_rejected() {
        let _ = EnergyPrice::per_kwh(-1.0);
    }
}
