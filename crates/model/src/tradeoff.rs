//! Pipeline selection under dollar constraints.
//!
//! The paper closes §VII with "we envision our model being used in an
//! automated framework to decide the sampling rate and the pipeline
//! automatically depending on a given set of constraints". This module is
//! that framework: given energy and machine-time prices, pick the cheapest
//! `(pipeline, rate)` that satisfies storage/time/energy constraints.

use ivis_core::PipelineKind;
use ivis_ocean::{ProblemSpec, SamplingRate};
use ivis_power::cost::{workflow_cost, EnergyPrice, MachineTimePrice};
use ivis_sim::SimDuration;

use crate::whatif::WhatIfAnalyzer;

/// Constraints on a campaign.
#[derive(Debug, Clone, Copy)]
pub struct Constraints {
    /// Maximum storage footprint, bytes.
    pub max_storage_bytes: Option<u64>,
    /// Maximum wall time, seconds.
    pub max_seconds: Option<f64>,
    /// Minimum sampling rate (largest acceptable interval, hours) — the
    /// *scientific* requirement (e.g. daily for eddy tracking).
    pub max_interval_hours: f64,
}

/// One evaluated plan.
#[derive(Debug, Clone, Copy)]
pub struct Plan {
    /// The pipeline.
    pub kind: PipelineKind,
    /// The sampling interval, hours.
    pub interval_hours: f64,
    /// Predicted wall time, seconds.
    pub seconds: f64,
    /// Predicted storage, bytes.
    pub storage_bytes: u64,
    /// Total dollars (energy + machine time).
    pub dollars: f64,
}

/// The planner.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Underlying what-if engine.
    pub analyzer: WhatIfAnalyzer,
    /// Electricity price.
    pub energy_price: EnergyPrice,
    /// Machine-time price.
    pub machine_price: MachineTimePrice,
}

impl Planner {
    /// A planner with the paper's model and rule-of-thumb prices
    /// ($1M/MW-year electricity; $0.5 per node-hour machine time).
    pub fn paper() -> Self {
        Planner {
            analyzer: WhatIfAnalyzer::paper(),
            energy_price: EnergyPrice::paper_rule_of_thumb(),
            machine_price: MachineTimePrice {
                dollars_per_node_hour: 0.5,
                nodes: 150,
            },
        }
    }

    /// Evaluate one `(kind, interval)` plan for `spec`.
    pub fn evaluate(&self, kind: PipelineKind, spec: &ProblemSpec, interval_hours: f64) -> Plan {
        let rate = SamplingRate::every_hours(interval_hours);
        let seconds = self.analyzer.execution_seconds(kind, spec, rate);
        let storage_bytes = self.analyzer.storage_bytes(kind, spec, rate);
        let energy = self.analyzer.energy(kind, spec, rate);
        let cost = workflow_cost(
            energy,
            SimDuration::from_secs_f64(seconds),
            self.energy_price,
            self.machine_price,
        );
        Plan {
            kind,
            interval_hours,
            seconds,
            storage_bytes,
            dollars: cost.total(),
        }
    }

    /// Pick the cheapest feasible plan over both pipelines and a candidate
    /// set of sampling intervals at or finer than the scientific
    /// requirement. Returns `None` if nothing is feasible.
    pub fn cheapest_feasible(
        &self,
        spec: &ProblemSpec,
        candidates_hours: &[f64],
        constraints: &Constraints,
    ) -> Option<Plan> {
        let mut best: Option<Plan> = None;
        for kind in [PipelineKind::InSitu, PipelineKind::PostProcessing] {
            for &h in candidates_hours {
                if h > constraints.max_interval_hours {
                    continue; // too coarse for the science
                }
                let plan = self.evaluate(kind, spec, h);
                if let Some(max_s) = constraints.max_storage_bytes {
                    if plan.storage_bytes > max_s {
                        continue;
                    }
                }
                if let Some(max_t) = constraints.max_seconds {
                    if plan.seconds > max_t {
                        continue;
                    }
                }
                if best.as_ref().is_none_or(|b| plan.dollars < b.dollars) {
                    best = Some(plan);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CANDIDATES: [f64; 6] = [1.0, 6.0, 12.0, 24.0, 72.0, 168.0];
    const TB: u64 = 1_000_000_000_000;

    #[test]
    fn insitu_is_always_cheaper_at_equal_rate() {
        let p = Planner::paper();
        let spec = ProblemSpec::paper_100yr();
        for h in CANDIDATES {
            let a = p.evaluate(PipelineKind::InSitu, &spec, h);
            let b = p.evaluate(PipelineKind::PostProcessing, &spec, h);
            assert!(
                a.dollars < b.dollars,
                "at {h} h: {} vs {}",
                a.dollars,
                b.dollars
            );
        }
    }

    #[test]
    fn planner_picks_insitu_daily_for_eddy_science() {
        // Science demands daily sampling; 2 TB storage; no time limit.
        let p = Planner::paper();
        let spec = ProblemSpec::paper_100yr();
        let plan = p
            .cheapest_feasible(
                &spec,
                &CANDIDATES,
                &Constraints {
                    max_storage_bytes: Some(2 * TB),
                    max_seconds: None,
                    max_interval_hours: 24.0,
                },
            )
            .expect("in-situ daily is feasible");
        assert_eq!(plan.kind, PipelineKind::InSitu);
        // Cheapest feasible is the coarsest allowed interval.
        assert_eq!(plan.interval_hours, 24.0);
        // Post-processing daily blows the 2 TB budget, so it cannot win.
        let post = p.evaluate(PipelineKind::PostProcessing, &spec, 24.0);
        assert!(post.storage_bytes > 2 * TB);
    }

    #[test]
    fn infeasible_constraints_return_none() {
        let p = Planner::paper();
        let spec = ProblemSpec::paper_100yr();
        let plan = p.cheapest_feasible(
            &spec,
            &CANDIDATES,
            &Constraints {
                max_storage_bytes: Some(1_000), // 1 kB: nothing fits
                max_seconds: None,
                max_interval_hours: 24.0,
            },
        );
        assert!(plan.is_none());
    }

    #[test]
    fn time_budget_forces_coarser_sampling_or_insitu() {
        let p = Planner::paper();
        let spec = ProblemSpec::paper_100yr();
        // Budget just above in-situ hourly but far below post hourly.
        let insitu_hourly = p.evaluate(PipelineKind::InSitu, &spec, 1.0).seconds;
        let plan = p
            .cheapest_feasible(
                &spec,
                &[1.0],
                &Constraints {
                    max_storage_bytes: None,
                    max_seconds: Some(insitu_hourly * 1.05),
                    max_interval_hours: 1.0,
                },
            )
            .expect("in-situ fits the time budget");
        assert_eq!(plan.kind, PipelineKind::InSitu);
    }

    #[test]
    fn dollars_scale_with_time() {
        let p = Planner::paper();
        let spec = ProblemSpec::paper_100yr();
        let fine = p.evaluate(PipelineKind::PostProcessing, &spec, 1.0);
        let coarse = p.evaluate(PipelineKind::PostProcessing, &spec, 168.0);
        assert!(fine.dollars > coarse.dollars);
        assert!(fine.seconds > coarse.seconds);
    }
}
