//! Uncertainty quantification for the calibrated model.
//!
//! The paper reports point estimates (t_sim = 603, α = 6.3, β = 1.2) from
//! one set of measurements. Real meters are noisy; this module propagates
//! that noise through the calibration by parametric bootstrap: re-sample the
//! measured times with the meter's noise level, re-solve Eq. 5, and report
//! percentile intervals on the constants and on downstream what-if
//! predictions. This answers "how many digits of the paper's constants are
//! meaningful?" — a question the paper leaves open.

use ivis_sim::SimRng;

use crate::calibrate::{calibrate_exact, CalibrationPoint};

/// A percentile interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Point estimate (from the unperturbed fit).
    pub point: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Whether `x` lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Half-width relative to the point estimate.
    pub fn rel_halfwidth(&self) -> f64 {
        (self.hi - self.lo) / 2.0 / self.point.abs()
    }
}

/// Bootstrap result for the three calibration constants.
#[derive(Debug, Clone)]
pub struct CalibrationUncertainty {
    /// Simulation-time constant, seconds.
    pub t_sim: Interval,
    /// α, s/GB.
    pub alpha: Interval,
    /// β, s/image.
    pub beta: Interval,
    /// Bootstrap replicates that produced a solvable system.
    pub replicates: usize,
}

/// Same contract as `ivis_sim::stats::percentile`: `None` for an empty
/// slice or when any observation is NaN, so a single poisoned bootstrap
/// replicate can never silently corrupt a quantile.
fn percentile_of(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || sorted.iter().any(|x| x.is_nan()) {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    Some(if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    })
}

fn interval(mut samples: Vec<f64>, point: f64, level: f64) -> Interval {
    // A NaN replicate is a degenerate perturbed fit; drop it like the
    // singular systems `calibrate_exact` already rejects, rather than
    // letting it poison the sort and both bounds.
    samples.retain(|x| !x.is_nan());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaNs removed above"));
    let tail = (1.0 - level) / 2.0;
    match (
        percentile_of(&samples, tail),
        percentile_of(&samples, 1.0 - tail),
    ) {
        (Some(lo), Some(hi)) => Interval { lo, point, hi },
        // No usable replicates: degrade to a zero-width interval at the
        // point estimate instead of panicking.
        _ => Interval {
            lo: point,
            point,
            hi: point,
        },
    }
}

/// Parametric bootstrap of the Eq. 5 calibration.
///
/// Each replicate perturbs every measured time by multiplicative Gaussian
/// noise with relative std-dev `noise_rel`, re-solves the 3×3 system, and
/// collects the constants. `level` is the confidence level (e.g. 0.95).
///
/// # Panics
/// Panics if inputs are degenerate (no replicates, bad level).
pub fn bootstrap_calibration(
    points: &[CalibrationPoint; 3],
    iter_ref: u64,
    noise_rel: f64,
    replicates: usize,
    level: f64,
    seed: u64,
) -> CalibrationUncertainty {
    assert!(replicates >= 10, "need a sensible replicate count");
    assert!((0.5..1.0).contains(&level), "level must be in [0.5, 1)");
    assert!(noise_rel >= 0.0, "noise must be non-negative");
    let point_fit = calibrate_exact(points, iter_ref).expect("base calibration must be solvable");
    let mut rng = SimRng::new(seed);
    let mut t_sims = Vec::with_capacity(replicates);
    let mut alphas = Vec::with_capacity(replicates);
    let mut betas = Vec::with_capacity(replicates);
    for _ in 0..replicates {
        let perturbed = [
            perturb(points[0], &mut rng, noise_rel),
            perturb(points[1], &mut rng, noise_rel),
            perturb(points[2], &mut rng, noise_rel),
        ];
        if let Ok(fit) = calibrate_exact(&perturbed, iter_ref) {
            t_sims.push(fit.t_sim_ref);
            alphas.push(fit.alpha);
            betas.push(fit.beta);
        }
    }
    let n = t_sims.len();
    assert!(n >= replicates / 2, "too many singular replicates");
    CalibrationUncertainty {
        t_sim: interval(t_sims, point_fit.t_sim_ref, level),
        alpha: interval(alphas, point_fit.alpha, level),
        beta: interval(betas, point_fit.beta, level),
        replicates: n,
    }
}

fn perturb(p: CalibrationPoint, rng: &mut SimRng, noise_rel: f64) -> CalibrationPoint {
    CalibrationPoint {
        t_seconds: p.t_seconds * rng.noise_factor(noise_rel),
        ..p
    }
}

/// Propagate calibration uncertainty into a what-if prediction: the interval
/// on the predicted execution time at `(iter, s_gb, n_viz)` under the same
/// bootstrap.
#[allow(clippy::too_many_arguments)]
pub fn bootstrap_prediction(
    points: &[CalibrationPoint; 3],
    iter_ref: u64,
    noise_rel: f64,
    replicates: usize,
    level: f64,
    seed: u64,
    iter: u64,
    s_gb: f64,
    n_viz: f64,
) -> Interval {
    let point_fit = calibrate_exact(points, iter_ref).expect("base calibration must be solvable");
    let mut rng = SimRng::new(seed);
    let mut preds = Vec::with_capacity(replicates);
    for _ in 0..replicates {
        let perturbed = [
            perturb(points[0], &mut rng, noise_rel),
            perturb(points[1], &mut rng, noise_rel),
            perturb(points[2], &mut rng, noise_rel),
        ];
        if let Ok(fit) = calibrate_exact(&perturbed, iter_ref) {
            preds.push(fit.predict_seconds(iter, s_gb, n_viz));
        }
    }
    interval(preds, point_fit.predict_seconds(iter, s_gb, n_viz), level)
}

/// Convenience: uncertainty of the paper's own calibration at its meter
/// noise level (±0.3 %).
pub fn paper_uncertainty() -> CalibrationUncertainty {
    bootstrap_calibration(
        &crate::calibrate::paper_points(),
        8_640,
        0.003,
        400,
        0.95,
        0xB007,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::paper_points;

    #[test]
    fn intervals_cover_the_point_estimates() {
        let u = paper_uncertainty();
        assert!(u.t_sim.contains(u.t_sim.point));
        assert!(u.alpha.contains(u.alpha.point));
        assert!(u.beta.contains(u.beta.point));
        assert!(u.replicates >= 200);
    }

    #[test]
    fn paper_constants_are_well_determined_except_alpha_tail() {
        // 0.3 % time noise: t_sim and β are tightly pinned (they dominate
        // two equations each); α is looser because only one calibration
        // point carries real I/O volume.
        let u = paper_uncertainty();
        assert!(
            u.t_sim.rel_halfwidth() < 0.02,
            "t_sim ± {:.3}",
            u.t_sim.rel_halfwidth()
        );
        assert!(
            u.beta.rel_halfwidth() < 0.05,
            "beta ± {:.3}",
            u.beta.rel_halfwidth()
        );
        assert!(
            u.alpha.rel_halfwidth() < 0.10,
            "alpha ± {:.3}",
            u.alpha.rel_halfwidth()
        );
        // And the paper's published constants fall inside the intervals.
        assert!(u.t_sim.contains(603.0));
        assert!(u.alpha.contains(6.3));
        assert!(u.beta.contains(1.2));
    }

    #[test]
    fn zero_noise_collapses_the_interval() {
        let u = bootstrap_calibration(&paper_points(), 8_640, 0.0, 50, 0.95, 1);
        assert!(u.alpha.hi - u.alpha.lo < 1e-9);
        assert!(u.t_sim.hi - u.t_sim.lo < 1e-9);
    }

    #[test]
    fn more_noise_widens_intervals() {
        let narrow = bootstrap_calibration(&paper_points(), 8_640, 0.002, 300, 0.95, 7);
        let wide = bootstrap_calibration(&paper_points(), 8_640, 0.02, 300, 0.95, 7);
        assert!(
            wide.alpha.rel_halfwidth() > 2.0 * narrow.alpha.rel_halfwidth(),
            "wide {} vs narrow {}",
            wide.alpha.rel_halfwidth(),
            narrow.alpha.rel_halfwidth()
        );
    }

    #[test]
    fn prediction_interval_brackets_post_8h() {
        // Predict the held-out post @8 h configuration with uncertainty.
        let iv = bootstrap_prediction(
            &paper_points(),
            8_640,
            0.003,
            300,
            0.95,
            42,
            8_640,
            230.0,
            540.0,
        );
        assert!(iv.contains(iv.point));
        // The model's point prediction is ~2700 s; the interval must be a
        // few percent wide, not degenerate and not huge.
        assert!((iv.point - 2700.0).abs() < 15.0);
        assert!(iv.rel_halfwidth() > 0.001 && iv.rel_halfwidth() < 0.15);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = bootstrap_calibration(&paper_points(), 8_640, 0.005, 100, 0.9, 3);
        let b = bootstrap_calibration(&paper_points(), 8_640, 0.005, 100, 0.9, 3);
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.t_sim, b.t_sim);
    }

    #[test]
    #[should_panic(expected = "sensible replicate count")]
    fn tiny_replicate_count_rejected() {
        let _ = bootstrap_calibration(&paper_points(), 8_640, 0.01, 2, 0.95, 0);
    }

    #[test]
    fn nan_replicates_are_dropped_not_poisonous() {
        // One poisoned replicate used to panic the sort (and, before
        // that, silently corrupt both bounds). Now it is filtered and
        // the interval comes from the surviving finite samples.
        let iv = interval(vec![1.0, f64::NAN, 2.0, 3.0, 4.0], 2.5, 0.5);
        assert!(iv.lo.is_finite() && iv.hi.is_finite());
        assert!(iv.lo >= 1.0 && iv.hi <= 4.0 && iv.lo <= iv.hi);
    }

    #[test]
    fn all_nan_replicates_degrade_to_point() {
        let iv = interval(vec![f64::NAN, f64::NAN], 7.0, 0.95);
        assert_eq!((iv.lo, iv.point, iv.hi), (7.0, 7.0, 7.0));
    }

    #[test]
    fn percentile_of_matches_sim_stats_contract() {
        assert_eq!(percentile_of(&[], 0.5), None);
        assert_eq!(percentile_of(&[1.0, f64::NAN], 0.5), None);
        assert_eq!(percentile_of(&[1.0, 2.0, 3.0], 0.5), Some(2.0));
    }

    mod percentile_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Mirrors `ivis_sim::stats::percentile`'s property suite:
            /// for *any* float slice (NaN and infinities included) and
            /// any valid `q`, `percentile_of` never panics; it returns
            /// `Some` iff the input is non-empty and NaN-free, and the
            /// value is then bracketed by the slice's min and max.
            #[test]
            fn percentile_of_total_over_arbitrary_floats(
                xs in prop::collection::vec(
                    prop_oneof![
                        any::<f64>(),
                        (0u8..1).prop_map(|_| f64::NAN),
                        (0u8..1).prop_map(|_| f64::INFINITY),
                        (0u8..1).prop_map(|_| f64::NEG_INFINITY),
                    ],
                    0..32,
                ),
                q in 0.0f64..1.0,
            ) {
                let clean = !xs.is_empty() && xs.iter().all(|x: &f64| !x.is_nan());
                let mut sorted = xs.clone();
                if clean {
                    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
                }
                let got = percentile_of(&sorted, q);
                prop_assert_eq!(got.is_some(), clean);
                // Interpolating between -inf and +inf order statistics is
                // the one case a NaN-free input can still produce NaN.
                if let Some(v) = got.filter(|v| !v.is_nan()) {
                    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
                    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    prop_assert!(v >= lo && v <= hi, "{} outside [{}, {}]", v, lo, hi);
                }
            }

            /// `interval` is total over arbitrary replicate vectors: it
            /// never panics and, whenever at least one finite sample
            /// survives, returns ordered finite-or-infinite bounds.
            #[test]
            fn interval_total_over_arbitrary_floats(
                xs in prop::collection::vec(
                    prop_oneof![
                        any::<f64>(),
                        (0u8..1).prop_map(|_| f64::NAN),
                    ],
                    0..32,
                ),
                level in 0.5f64..0.99,
            ) {
                let iv = interval(xs.clone(), 1.0, level);
                prop_assert!(!iv.lo.is_nan() && !iv.hi.is_nan());
                prop_assert!(iv.lo <= iv.hi, "lo {} > hi {}", iv.lo, iv.hi);
            }
        }
    }
}
