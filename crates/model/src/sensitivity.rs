//! Sensitivity analysis of the calibrated model.
//!
//! The what-if engine answers point questions; planners also want to know
//! *which knob matters*: if α (storage bandwidth) improved 2×, how much
//! faster does post-processing get? If β (render cost) doubled, does in-situ
//! still win? This module computes elasticities — the relative change of the
//! predicted time per relative change of each parameter — and break-even
//! points between the pipelines.

use rayon::prelude::*;

use crate::perf::PerfModel;

/// Elasticities of the predicted execution time at a given workload point:
/// `∂ln t / ∂ln p` for each model parameter `p`. They sum to 1 for this
/// model (t is a sum of terms each linear in exactly one parameter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Elasticities {
    /// Sensitivity to `t_sim_ref` (simulation speed).
    pub t_sim: f64,
    /// Sensitivity to `α` (storage bandwidth).
    pub alpha: f64,
    /// Sensitivity to `β` (render cost).
    pub beta: f64,
}

/// Elasticities of `t = scale·t_sim + α·S + β·N` at `(iter, s_gb, n)`.
pub fn elasticities(model: &PerfModel, iter: u64, s_gb: f64, n: f64) -> Elasticities {
    let (t_sim, t_io, t_viz) = model.decompose(iter, s_gb, n);
    let t = t_sim + t_io + t_viz;
    assert!(t > 0.0, "degenerate workload");
    Elasticities {
        t_sim: t_sim / t,
        alpha: t_io / t,
        beta: t_viz / t,
    }
}

/// The α (s/GB) at which post-processing matches in-situ execution time,
/// holding everything else fixed. Post-processing writes `s_post_gb`,
/// in-situ writes `s_insitu_gb`; both render `n` images. Returns `None` if
/// no positive α achieves the break-even (in-situ always/never wins).
pub fn alpha_breakeven(
    model: &PerfModel,
    iter: u64,
    s_post_gb: f64,
    s_insitu_gb: f64,
    n: f64,
) -> Option<f64> {
    // t_post(α) − t_insitu(α) = α·(s_post − s_insitu); both also share
    // t_sim and β·n, so they are equal only when α·Δs = 0.
    // The interesting break-even is against a *different* in-situ β or extra
    // in-situ work; with the shared-β model the difference is α·Δs, which is
    // zero only at α = 0.
    let _ = (model, iter, n);
    let ds = s_post_gb - s_insitu_gb;
    if ds.abs() < 1e-12 {
        None
    } else {
        Some(0.0)
    }
}

/// More useful break-even: the per-output raw size (GB) below which
/// post-processing beats in-situ *given an in-situ rendering overhead*
/// `insitu_extra_beta` (s/image) that post-processing does not pay (e.g.
/// tightly-coupled rendering slowing the simulation).
pub fn raw_size_breakeven_gb(model: &PerfModel, insitu_extra_beta: f64) -> f64 {
    assert!(insitu_extra_beta >= 0.0, "overhead must be non-negative");
    // Per output: post pays α·raw, in-situ pays extra_beta. Equal when
    // raw = extra_beta / α.
    insitu_extra_beta / model.alpha
}

/// Elasticities over a grid of `(s_gb, n)` workload points — the
/// sensitivity analogue of the what-if curves, one entry per point in
/// input order. Points are independent, so the grid evaluates in parallel.
pub fn elasticity_grid(model: &PerfModel, iter: u64, points: &[(f64, f64)]) -> Vec<Elasticities> {
    points
        .par_iter()
        .map(|&(s_gb, n)| elasticities(model, iter, s_gb, n))
        .collect()
}

/// `perturb_alpha` over a grid of scale factors, in input order — how the
/// predicted time responds as storage bandwidth degrades or improves.
/// Returns `(factor, exact, first_order)` triples, evaluated in parallel.
pub fn alpha_perturbation_grid(
    model: &PerfModel,
    iter: u64,
    s_gb: f64,
    n: f64,
    factors: &[f64],
) -> Vec<(f64, f64, f64)> {
    factors
        .par_iter()
        .map(|&factor| {
            let (exact, first_order) = perturb_alpha(model, iter, s_gb, n, factor);
            (factor, exact, first_order)
        })
        .collect()
}

/// Finite-difference check of the model's linearity: predicted time after
/// scaling a parameter by `factor` versus the elasticity-based first-order
/// estimate. Returns `(exact, first_order)` for testing and documentation.
pub fn perturb_alpha(model: &PerfModel, iter: u64, s_gb: f64, n: f64, factor: f64) -> (f64, f64) {
    let base = model.predict_seconds(iter, s_gb, n);
    let mut scaled = *model;
    scaled.alpha *= factor;
    let exact = scaled.predict_seconds(iter, s_gb, n);
    let el = elasticities(model, iter, s_gb, n);
    let first_order = base * (1.0 + el.alpha * (factor - 1.0));
    (exact, first_order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elasticities_sum_to_one() {
        let m = PerfModel::paper();
        let e = elasticities(&m, 8640, 230.0, 540.0);
        assert!((e.t_sim + e.alpha + e.beta - 1.0).abs() < 1e-12);
        // Post @8h is I/O-dominated.
        assert!(e.alpha > e.t_sim && e.alpha > e.beta, "{e:?}");
    }

    #[test]
    fn insitu_is_viz_and_sim_dominated() {
        let m = PerfModel::paper();
        let e = elasticities(&m, 8640, 0.6, 540.0);
        assert!(e.alpha < 0.01, "storage barely matters in-situ: {e:?}");
        assert!(e.beta > 0.4);
    }

    #[test]
    fn alpha_perturbation_is_exactly_first_order() {
        // The model is linear in α, so the first-order estimate is exact.
        let m = PerfModel::paper();
        let (exact, fo) = perturb_alpha(&m, 8640, 80.0, 180.0, 2.0);
        assert!((exact - fo).abs() < 1e-9);
        // Doubling α adds exactly α·S seconds.
        let base = m.predict_seconds(8640, 80.0, 180.0);
        assert!((exact - base - 6.3 * 80.0).abs() < 1e-9);
    }

    #[test]
    fn grids_match_pointwise_calls() {
        let m = PerfModel::paper();
        let points: Vec<(f64, f64)> = (1..40).map(|i| (i as f64 * 7.3, i as f64 * 11.0)).collect();
        let grid = elasticity_grid(&m, 8640, &points);
        assert_eq!(grid.len(), points.len());
        for (e, &(s, n)) in grid.iter().zip(&points) {
            assert_eq!(*e, elasticities(&m, 8640, s, n));
        }
        let factors: Vec<f64> = (1..30).map(|i| 0.25 * i as f64).collect();
        let pg = alpha_perturbation_grid(&m, 8640, 80.0, 180.0, &factors);
        for (row, &f) in pg.iter().zip(&factors) {
            let (exact, fo) = perturb_alpha(&m, 8640, 80.0, 180.0, f);
            assert_eq!(*row, (f, exact, fo));
        }
    }

    #[test]
    fn raw_size_breakeven() {
        let m = PerfModel::paper();
        // If in-situ rendering cost 0.63 s/image extra, post-processing wins
        // whenever a raw output is under 0.1 GB.
        let b = raw_size_breakeven_gb(&m, 0.63);
        assert!((b - 0.1).abs() < 1e-9);
        // The paper's raw outputs are 0.426 GB ⇒ in-situ wins there.
        assert!(0.426 > b);
        assert_eq!(raw_size_breakeven_gb(&m, 0.0), 0.0);
    }

    #[test]
    fn alpha_breakeven_degenerate() {
        let m = PerfModel::paper();
        assert_eq!(alpha_breakeven(&m, 8640, 80.0, 80.0, 180.0), None);
        assert_eq!(alpha_breakeven(&m, 8640, 80.0, 0.2, 180.0), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "degenerate workload")]
    fn zero_workload_rejected() {
        let m = PerfModel {
            t_sim_ref: 0.0,
            iter_ref: 1,
            alpha: 1.0,
            beta: 1.0,
        };
        let _ = elasticities(&m, 0, 0.0, 0.0);
    }
}
