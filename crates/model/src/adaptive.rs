//! Adaptive-rate extension of the §VII what-if engine.
//!
//! Eq. 6/7 treat the sampling rate as a fixed *input*. The adaptive
//! trigger (`ivis-trigger` + the native adaptive executor) makes it a
//! dynamic *output*: a campaign's effective rate is whatever the
//! hysteresis controller converged to. This module closes the loop —
//! a [`MeasuredRate`] harvested from an adaptive run is fed back into
//! the calibrated model, so the paper's storage and energy predictions
//! extend to campaigns the original formulation could not express:
//!
//! ```text
//! t = (iter/iter_ref)·t_sim_ref + α·S(rate_eff) + β·(N(rate_eff) + κ·C·A)
//! ```
//!
//! where `rate_eff` is the *measured* effective rate, `C` the candidate
//! count, `A` the number of analyses, and `κ` the cost of one low-res
//! candidate evaluation relative to a full β-cost render. With `κ = 0`
//! and `rate_eff` equal to a fixed rate, the prediction degenerates to
//! [`WhatIfAnalyzer::execution_seconds`] exactly.

use ivis_ocean::{ProblemSpec, SamplingRate};
use ivis_power::units::Joules;

use crate::whatif::WhatIfAnalyzer;

/// The effective sampling rate an adaptive campaign actually realized,
/// expressed resolution-independently as steps per emitted frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredRate {
    /// Mean simulation steps between emitted frames.
    pub steps_per_output: f64,
}

impl MeasuredRate {
    /// From raw campaign counts: `total_steps` simulated, `frames`
    /// emitted. A campaign that emitted nothing measures as one output
    /// per whole run (the sparsest expressible rate), not a division by
    /// zero.
    pub fn from_counts(total_steps: u64, frames: u64) -> Self {
        assert!(total_steps > 0, "campaign must have simulated something");
        MeasuredRate {
            steps_per_output: total_steps as f64 / frames.max(1) as f64,
        }
    }

    /// The measured interval in `spec`'s simulated hours.
    pub fn effective_hours(&self, spec: &ProblemSpec) -> f64 {
        self.steps_per_output * spec.step_minutes / 60.0
    }

    /// The measured rate as an Eq. 6/7 [`SamplingRate`].
    pub fn as_sampling_rate(&self, spec: &ProblemSpec) -> SamplingRate {
        SamplingRate::every_hours(self.effective_hours(spec))
    }

    /// Outputs a `spec`-sized campaign emits at this rate.
    pub fn outputs_for(&self, spec: &ProblemSpec) -> f64 {
        spec.total_steps() as f64 / self.steps_per_output
    }
}

/// The adaptive campaign's cost knobs, mirroring `TriggerConfig` at the
/// model's level of abstraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePlan {
    /// Cadence of trigger analyses, simulated hours.
    pub analysis_every_hours: f64,
    /// Candidate viewpoints evaluated per analysis.
    pub candidates: usize,
    /// Cost of one low-resolution candidate evaluation relative to a
    /// full-resolution β-cost render (`0.0` = free, `1.0` = as
    /// expensive as an output frame). Evaluation renders are typically
    /// 10–100× smaller than output frames, so κ ≪ 1.
    pub candidate_cost_ratio: f64,
}

impl AdaptivePlan {
    /// A plan with `candidates` cameras analyzed every `hours`, at the
    /// default κ = 0.02 (a 48×32 evaluation render against the paper's
    /// ~1 MP output frame).
    pub fn new(hours: f64, candidates: usize) -> Self {
        AdaptivePlan {
            analysis_every_hours: hours,
            candidates: candidates.max(1),
            candidate_cost_ratio: 0.02,
        }
    }

    /// Analyses a `spec`-sized campaign performs.
    pub fn analyses_for(&self, spec: &ProblemSpec) -> f64 {
        spec.duration_hours / self.analysis_every_hours
    }

    /// The β-equivalent render count the candidate sweep adds.
    pub fn overhead_renders(&self, spec: &ProblemSpec) -> f64 {
        self.candidate_cost_ratio * self.candidates as f64 * self.analyses_for(spec)
    }
}

impl WhatIfAnalyzer {
    /// Predicted execution time of an adaptive in-situ campaign, seconds:
    /// Eq. 4 with the *measured* effective rate driving S and N, plus the
    /// candidate sweep's κ·C·A render-equivalents.
    pub fn predict_adaptive_seconds(
        &self,
        spec: &ProblemSpec,
        measured: MeasuredRate,
        plan: &AdaptivePlan,
    ) -> f64 {
        let n_emit = measured.outputs_for(spec);
        let s_gb = n_emit * self.image_bytes_per_output as f64 / 1e9;
        let n_viz = n_emit + plan.overhead_renders(spec);
        self.model.predict_seconds(spec.total_steps(), s_gb, n_viz)
    }

    /// Predicted energy of an adaptive campaign (Fig. 10 extended).
    pub fn adaptive_energy(
        &self,
        spec: &ProblemSpec,
        measured: MeasuredRate,
        plan: &AdaptivePlan,
    ) -> Joules {
        Joules(self.power.watts() * self.predict_adaptive_seconds(spec, measured, plan))
    }

    /// Predicted storage of an adaptive campaign (Fig. 9 extended):
    /// only emitted frames hit the image database.
    pub fn adaptive_storage_bytes(&self, spec: &ProblemSpec, measured: MeasuredRate) -> u64 {
        (measured.outputs_for(spec) * self.image_bytes_per_output as f64).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivis_core::PipelineKind;

    #[test]
    fn free_candidates_at_fixed_rate_degenerate_to_eq67() {
        // κ = 0 and a measured rate equal to the fixed 24 h rate must
        // reproduce the fixed-rate prediction exactly.
        let a = WhatIfAnalyzer::paper();
        let spec = ProblemSpec::paper_100yr();
        let rate = SamplingRate::every_hours(24.0);
        let spp = spec.steps_per_output(rate);
        let measured = MeasuredRate {
            steps_per_output: spp as f64,
        };
        let mut plan = AdaptivePlan::new(24.0, 10);
        plan.candidate_cost_ratio = 0.0;
        let adaptive = a.predict_adaptive_seconds(&spec, measured, &plan);
        let fixed = a.execution_seconds(PipelineKind::InSitu, &spec, rate);
        assert!(
            (adaptive - fixed).abs() / fixed < 1e-9,
            "adaptive {adaptive} vs fixed {fixed}"
        );
    }

    #[test]
    fn candidate_sweep_costs_show_up() {
        let a = WhatIfAnalyzer::paper();
        let spec = ProblemSpec::paper_100yr();
        let measured = MeasuredRate {
            steps_per_output: 48.0, // daily
        };
        let cheap = AdaptivePlan {
            candidate_cost_ratio: 0.0,
            ..AdaptivePlan::new(24.0, 10)
        };
        let real = AdaptivePlan::new(24.0, 10);
        let t0 = a.predict_adaptive_seconds(&spec, measured, &cheap);
        let t1 = a.predict_adaptive_seconds(&spec, measured, &real);
        assert!(t1 > t0, "candidate evaluations cost time");
        // κ·C·A β-renders, exactly.
        let expected = a.model.beta * real.overhead_renders(&spec);
        assert!(((t1 - t0) - expected).abs() < 1e-6);
    }

    #[test]
    fn relaxed_measured_rate_saves_energy_and_storage() {
        // An adaptive campaign that coasted to 3× the fixed interval
        // must predict below the fixed 24 h campaign on both axes.
        let a = WhatIfAnalyzer::paper();
        let spec = ProblemSpec::paper_100yr();
        let fixed_rate = SamplingRate::every_hours(24.0);
        let measured = MeasuredRate {
            steps_per_output: 3.0 * spec.steps_per_output(fixed_rate) as f64,
        };
        let plan = AdaptivePlan::new(24.0, 5);
        let e_adaptive = a.adaptive_energy(&spec, measured, &plan);
        let e_fixed = a.energy(PipelineKind::InSitu, &spec, fixed_rate);
        assert!(e_adaptive < e_fixed);
        let s_adaptive = a.adaptive_storage_bytes(&spec, measured);
        let s_fixed = a.storage_bytes(PipelineKind::InSitu, &spec, fixed_rate);
        assert!(s_adaptive < s_fixed);
    }

    #[test]
    fn measured_rate_roundtrips_through_sampling_rate() {
        let spec = ProblemSpec::paper_60km();
        let measured = MeasuredRate::from_counts(spec.total_steps(), 60);
        // 8640 steps / 60 frames = 144 steps/output = 72 h.
        let rate = measured.as_sampling_rate(&spec);
        assert!((rate.every_hours - 72.0).abs() < 1e-9);
        assert!((measured.outputs_for(&spec) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn zero_frames_measures_as_one_output_per_run() {
        let m = MeasuredRate::from_counts(1000, 0);
        assert_eq!(m.steps_per_output, 1000.0);
    }
}
