//! Staging-sweep what-if: provisioning the in-transit transport.
//!
//! §VII of the paper asks what-if questions of the calibrated model
//! (Figs. 9 & 10: storage and energy vs sampling rate). The staged
//! transport adds three more knobs — staging partition size, transport
//! depth and wire compression — and the same Eq. 4/6/7 machinery answers
//! them analytically:
//!
//! * the simulation term of Eq. 4 rescales to the shrunken compute
//!   partition (`N/(N−staging)`);
//! * the per-image render cost is Eq. 7's β scaled by the staging share
//!   (`β · N/staging`), and the per-image write cost Eq. 3's `α·S`;
//! * output counts and payloads scale with the sampling rate exactly as
//!   Eq. 6/7 prescribe (they come from the spec's rate arithmetic);
//! * the transport couples the two partitions: at depth 1 the hand-off
//!   serializes into *both* pipelines, at depth ≥ 2 it overlaps, so the
//!   predicted makespan is the slower of the compute track and the
//!   staging service chain.
//!
//! [`StagingSweep::run`] measures every grid point on the simulated
//! machine (in parallel — points are independent) and carries the
//! analytic prediction alongside, so the sweep doubles as a §VI-style
//! validation of the transport model.

use ivis_core::campaign::Campaign;
use ivis_core::intransit::{reported_kind, InTransitConfig};
use ivis_core::{
    per_node_payload, CompressionConfig, PipelineConfig, PipelineKind, TransportConfig,
};
use rayon::prelude::*;

use crate::perf::PerfModel;

/// Nodes in the paper's Caddy machine (15 cages × 10).
const CADDY_NODES: usize = 150;

/// One evaluated `(staging, depth, ratio)` grid point.
#[derive(Debug, Clone)]
pub struct StagingPoint {
    /// Staging partition size.
    pub staging_nodes: usize,
    /// Transport queue depth.
    pub depth: usize,
    /// Wire compression ratio (1.0 = compression off).
    pub compression_ratio: f64,
    /// Simulated makespan, seconds.
    pub measured_seconds: f64,
    /// Analytic Eq. 4/6/7 prediction, seconds.
    pub predicted_seconds: f64,
    /// Compute time blocked on a full transport queue, seconds.
    pub stall_seconds: f64,
    /// Total measured energy, joules.
    pub energy_joules: f64,
    /// Bytes placed on the wire across the whole run.
    pub wire_bytes: u64,
}

impl StagingPoint {
    /// Relative model error, `|measured − predicted| / measured`.
    pub fn rel_error(&self) -> f64 {
        (self.measured_seconds - self.predicted_seconds).abs() / self.measured_seconds
    }
}

/// A measured-and-predicted sweep over the transport's provisioning grid.
#[derive(Debug, Clone)]
pub struct StagingSweep {
    /// Sampling interval, hours.
    pub rate_hours: f64,
    /// Every grid point, in `(staging, depth, ratio)` input order.
    pub points: Vec<StagingPoint>,
}

impl StagingSweep {
    /// Measure `stagings × depths × ratios` at the `hours` sampling rate.
    ///
    /// `make` constructs a fresh campaign per point (the campaign's
    /// recorder is thread-local, exactly as in the bench harness's
    /// parallel matrix); points evaluate in parallel and the output order
    /// is the deterministic input order, so the sweep is bit-stable at
    /// any thread count.
    pub fn run(
        make: impl Fn() -> Campaign + Sync,
        hours: f64,
        stagings: &[usize],
        depths: &[usize],
        ratios: &[f64],
    ) -> Self {
        let grid: Vec<(usize, usize, f64)> = stagings
            .iter()
            .flat_map(|&s| {
                depths
                    .iter()
                    .flat_map(move |&d| ratios.iter().map(move |&r| (s, d, r)))
            })
            .collect();
        let model = PerfModel::paper();
        let points = grid
            .par_iter()
            .map(|&(staging_nodes, depth, ratio)| {
                let campaign = make();
                let mut pc = PipelineConfig::paper(PipelineKind::InSitu, hours);
                pc.kind = reported_kind();
                let mut transport = TransportConfig::pipelined(depth);
                if ratio > 1.0 {
                    transport = transport.with_compression(CompressionConfig {
                        ratio,
                        ..CompressionConfig::zfp_like()
                    });
                }
                let it = InTransitConfig {
                    staging_nodes,
                    transport,
                    ..InTransitConfig::caddy_default()
                };
                let predicted_seconds = predict_staged_seconds(
                    &model,
                    &pc,
                    &it,
                    CADDY_NODES,
                    campaign.config.image_bytes_per_output,
                );
                let (m, stats) = campaign.run_intransit_with_stats(&pc, &it);
                StagingPoint {
                    staging_nodes,
                    depth,
                    compression_ratio: ratio,
                    measured_seconds: m.execution_time.as_secs_f64(),
                    predicted_seconds,
                    stall_seconds: stats.stall_time.as_secs_f64(),
                    energy_joules: m.energy_total().joules(),
                    wire_bytes: stats.bytes_shipped,
                }
            })
            .collect();
        StagingSweep {
            rate_hours: hours,
            points,
        }
    }

    /// The fastest measured provisioning.
    pub fn best(&self) -> &StagingPoint {
        self.points
            .iter()
            .min_by(|a, b| {
                a.measured_seconds
                    .partial_cmp(&b.measured_seconds)
                    .expect("makespans are finite")
            })
            .expect("sweep is non-empty")
    }

    /// Worst relative model error across the grid.
    pub fn max_rel_error(&self) -> f64 {
        self.points
            .iter()
            .map(StagingPoint::rel_error)
            .fold(0.0, f64::max)
    }
}

/// Predict the staged in-transit makespan from the Eq. 4/6/7 terms.
///
/// The compute track runs `n` chunks of the partition-rescaled simulation
/// plus per-sample compression (and, synchronously at depth 1, the
/// hand-off); the staging chain serves `n` samples of decompress + render
/// (`β·N/staging`) + image write (`α·S`) after the first arrival. Deeper
/// queues decouple the hand-off from both tracks; the makespan is the
/// slower track.
pub fn predict_staged_seconds(
    model: &PerfModel,
    pc: &PipelineConfig,
    it: &InTransitConfig,
    total_nodes: usize,
    image_bytes: u64,
) -> f64 {
    let spec = &pc.spec;
    let n = spec.num_outputs(pc.rate) as f64;
    let compute = (total_nodes - it.staging_nodes) as f64;
    let staging = it.staging_nodes as f64;
    // Eq. 4 simulation term, rescaled to the shrunken compute partition.
    let t_sim = spec.total_steps() as f64 / model.iter_ref as f64
        * model.t_sim_ref
        * (total_nodes as f64 / compute);
    let raw = spec.raw_output_bytes();
    let (wire, compress_s, decompress_s) = match &it.transport.compression {
        Some(c) => (
            c.wire_bytes(raw),
            raw as f64 / (c.compress_node_bps * compute),
            raw as f64 / (c.decompress_node_bps * staging),
        ),
        None => (raw, 0.0, 0.0),
    };
    let per_node = per_node_payload(wire, it.staging_nodes as u64);
    let transfer =
        it.interconnect.latency.as_secs_f64() + per_node as f64 / it.interconnect.bandwidth_bps;
    let write_s = model.alpha * image_bytes as f64 / 1e9; // Eq. 3: α·S
    let render_s = model.beta * total_nodes as f64 / staging; // Eq. 7 share
    let sync = it.transport.is_synchronous();
    let chunk = t_sim / n;
    let compute_period = chunk + compress_s + if sync { transfer } else { 0.0 };
    let service = decompress_s + render_s + write_s + if sync { transfer } else { 0.0 };
    // Compute-bound: n periods plus the last sample draining through
    // staging. Staging-bound: first arrival plus the n-sample chain.
    let t_compute = n * compute_period + service;
    let t_staging = (chunk + compress_s + transfer) + n * service;
    t_compute.max(t_staging)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_8h() -> StagingSweep {
        StagingSweep::run(Campaign::paper, 8.0, &[10, 25, 50], &[1, 4], &[1.0, 4.0])
    }

    #[test]
    fn sweep_covers_the_grid_in_input_order() {
        let sweep = sweep_8h();
        assert_eq!(sweep.points.len(), 3 * 2 * 2);
        assert_eq!(sweep.points[0].staging_nodes, 10);
        assert_eq!(sweep.points[0].depth, 1);
        assert_eq!(sweep.points[0].compression_ratio, 1.0);
        assert_eq!(sweep.points[11].staging_nodes, 50);
        assert_eq!(sweep.points[11].depth, 4);
        assert_eq!(sweep.points[11].compression_ratio, 4.0);
    }

    #[test]
    fn model_tracks_measurement_across_the_grid() {
        let sweep = sweep_8h();
        assert!(
            sweep.max_rel_error() < 0.15,
            "Eq. 4/6/7 transport model drifted: max rel error {:.3}",
            sweep.max_rel_error()
        );
        // Strongly staging-bound points are essentially closed-form: the
        // chain of transfer + render + write repeats 540 times.
        let bound = sweep
            .points
            .iter()
            .find(|p| p.staging_nodes == 10 && p.depth == 1 && p.compression_ratio == 1.0)
            .unwrap();
        assert!(
            bound.rel_error() < 0.02,
            "staging-bound prediction off by {:.3}",
            bound.rel_error()
        );
    }

    #[test]
    fn deeper_and_compressed_never_measure_slower() {
        let sweep = sweep_8h();
        for s in [10usize, 25, 50] {
            for r in [1.0f64, 4.0] {
                let at = |d: usize| {
                    sweep
                        .points
                        .iter()
                        .find(|p| p.staging_nodes == s && p.depth == d && p.compression_ratio == r)
                        .unwrap()
                        .measured_seconds
                };
                assert!(
                    at(4) <= at(1),
                    "depth 4 slower than depth 1 at staging {s}, ratio {r}"
                );
            }
        }
        // The analytic model agrees on the direction of the depth lever.
        let pred = |d: usize| {
            sweep
                .points
                .iter()
                .find(|p| p.staging_nodes == 10 && p.depth == d && p.compression_ratio == 1.0)
                .unwrap()
                .predicted_seconds
        };
        assert!(pred(4) < pred(1));
    }

    #[test]
    fn best_point_trades_staging_nodes_for_overlap() {
        // At the 8 h rate, 10 staging nodes are render-bound and 50 keep
        // up: the best measured provisioning uses the larger partition.
        let sweep = sweep_8h();
        assert_eq!(sweep.best().staging_nodes, 50);
        // Even the best 8 h point is render-bound (3.6 s/image vs 1.7 s
        // chunks), but the worst provisioning stalls far longer.
        let worst = sweep
            .points
            .iter()
            .max_by(|a, b| a.measured_seconds.partial_cmp(&b.measured_seconds).unwrap())
            .unwrap();
        assert!(worst.stall_seconds > 1_000.0);
        assert!(sweep.best().stall_seconds < worst.stall_seconds / 2.0);
    }

    #[test]
    fn compression_quarters_the_wire_bytes() {
        let sweep = sweep_8h();
        let raw = sweep
            .points
            .iter()
            .find(|p| p.staging_nodes == 25 && p.depth == 1 && p.compression_ratio == 1.0)
            .unwrap();
        let zfp = sweep
            .points
            .iter()
            .find(|p| p.staging_nodes == 25 && p.depth == 1 && p.compression_ratio == 4.0)
            .unwrap();
        assert!(zfp.wire_bytes * 3 < raw.wire_bytes);
    }
}
