//! The §VII scenario engine: what-if analysis over sampling rates.
//!
//! With the calibrated model, one short measured run answers questions like
//! the paper's Figs. 9 and 10: how much storage / energy does a
//! 100-simulated-year campaign need at a given output rate, which pipeline
//! fits a 2 TB storage reservation, and what is the largest sampling rate an
//! energy or time budget allows?

use ivis_core::PipelineKind;
use ivis_ocean::{ProblemSpec, SamplingRate};
use ivis_power::units::{Joules, Watts};
use rayon::prelude::*;

use crate::perf::PerfModel;

/// The analyzer: model + per-output byte constants + the constant average
/// power (the paper's Finding: power is pipeline-independent).
///
/// ```
/// use ivis_model::WhatIfAnalyzer;
/// use ivis_ocean::{ProblemSpec, SamplingRate};
///
/// let a = WhatIfAnalyzer::paper();
/// let spec = ProblemSpec::paper_100yr();
/// // The paper's Fig. 10: daily sampling saves ~38 % of workflow energy.
/// let saving = a.energy_saving_pct(&spec, SamplingRate::daily());
/// assert!((saving - 38.0).abs() < 1.5);
/// ```
#[derive(Debug, Clone)]
pub struct WhatIfAnalyzer {
    /// Calibrated performance model.
    pub model: PerfModel,
    /// Average total power during a run.
    pub power: Watts,
    /// Raw bytes per post-processing output.
    pub raw_bytes_per_output: u64,
    /// Image bytes per in-situ output.
    pub image_bytes_per_output: u64,
}

impl WhatIfAnalyzer {
    /// The paper's constants: published model, ≈46.3 kW total average power
    /// (44 kW compute + 2.3 kW storage), 426 MB raw / 1.11 MB images per
    /// output.
    pub fn paper() -> Self {
        WhatIfAnalyzer {
            model: PerfModel::paper(),
            power: Watts(46_300.0),
            raw_bytes_per_output: ProblemSpec::paper_60km().raw_output_bytes(),
            image_bytes_per_output: 1_111_111,
        }
    }

    /// Bytes per output for a pipeline kind.
    pub fn bytes_per_output(&self, kind: PipelineKind) -> u64 {
        match kind {
            PipelineKind::InSitu => self.image_bytes_per_output,
            PipelineKind::PostProcessing => self.raw_bytes_per_output,
        }
    }

    /// Storage needed by `spec` at `rate` for `kind` (Fig. 9's y-axis).
    pub fn storage_bytes(&self, kind: PipelineKind, spec: &ProblemSpec, rate: SamplingRate) -> u64 {
        spec.num_outputs(rate) * self.bytes_per_output(kind)
    }

    /// Predicted execution time, seconds.
    pub fn execution_seconds(
        &self,
        kind: PipelineKind,
        spec: &ProblemSpec,
        rate: SamplingRate,
    ) -> f64 {
        let n = spec.num_outputs(rate);
        let s_gb = (n * self.bytes_per_output(kind)) as f64 / 1e9;
        self.model
            .predict_seconds(spec.total_steps(), s_gb, n as f64)
    }

    /// Predicted energy (Fig. 10's y-axis).
    pub fn energy(&self, kind: PipelineKind, spec: &ProblemSpec, rate: SamplingRate) -> Joules {
        Joules(self.power.watts() * self.execution_seconds(kind, spec, rate))
    }

    /// Energy saving of in-situ over post-processing at `rate`, percent.
    pub fn energy_saving_pct(&self, spec: &ProblemSpec, rate: SamplingRate) -> f64 {
        let e_in = self.energy(PipelineKind::InSitu, spec, rate).joules();
        let e_post = self
            .energy(PipelineKind::PostProcessing, spec, rate)
            .joules();
        (e_post - e_in) / e_post * 100.0
    }

    /// A `(hours, storage_bytes)` curve over sampling intervals — Fig. 9.
    /// Each grid point is independent, so the curve evaluates in parallel.
    pub fn storage_curve(
        &self,
        kind: PipelineKind,
        spec: &ProblemSpec,
        hours: &[f64],
    ) -> Vec<(f64, u64)> {
        hours
            .par_iter()
            .map(|&h| {
                (
                    h,
                    self.storage_bytes(kind, spec, SamplingRate::every_hours(h)),
                )
            })
            .collect()
    }

    /// A `(hours, joules)` curve over sampling intervals — Fig. 10.
    /// Each grid point is independent, so the curve evaluates in parallel.
    pub fn energy_curve(
        &self,
        kind: PipelineKind,
        spec: &ProblemSpec,
        hours: &[f64],
    ) -> Vec<(f64, Joules)> {
        hours
            .par_iter()
            .map(|&h| (h, self.energy(kind, spec, SamplingRate::every_hours(h))))
            .collect()
    }

    /// The most frequent sampling (smallest interval, hours) whose storage
    /// fits `budget_bytes` — the paper's "2 TB reservation" analysis.
    pub fn max_rate_under_storage_budget(
        &self,
        kind: PipelineKind,
        spec: &ProblemSpec,
        budget_bytes: u64,
    ) -> f64 {
        let per_output = self.bytes_per_output(kind);
        let max_outputs = budget_bytes / per_output;
        if max_outputs == 0 {
            return f64::INFINITY;
        }
        // outputs = duration / interval ⇒ interval = duration / outputs.
        spec.duration_hours / max_outputs as f64
    }

    /// The most frequent sampling (smallest interval, hours) whose energy
    /// fits `budget` for `kind`.
    pub fn max_rate_under_energy_budget(
        &self,
        kind: PipelineKind,
        spec: &ProblemSpec,
        budget: Joules,
    ) -> Option<f64> {
        // E(h) = P · (t_sim + (α·bytes/1e9 + β) · duration/h), monotone in
        // 1/h — solve in closed form.
        let t_sim = spec.total_steps() as f64 / self.model.iter_ref as f64 * self.model.t_sim_ref;
        let budget_secs = budget.joules() / self.power.watts();
        if budget_secs <= t_sim {
            return None; // even zero outputs blow the budget
        }
        let per_output_secs =
            self.model.alpha * self.bytes_per_output(kind) as f64 / 1e9 + self.model.beta;
        let max_outputs = (budget_secs - t_sim) / per_output_secs;
        Some(spec.duration_hours / max_outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TB: u64 = 1_000_000_000_000;

    #[test]
    fn fig9_post_processing_needs_8_day_sampling_for_2tb() {
        let a = WhatIfAnalyzer::paper();
        let spec = ProblemSpec::paper_100yr();
        let min_interval =
            a.max_rate_under_storage_budget(PipelineKind::PostProcessing, &spec, 2 * TB);
        let days = min_interval / 24.0;
        assert!(
            (days - 8.0).abs() < 0.5,
            "paper: once every ~8 days; got {days:.2} days"
        );
    }

    #[test]
    fn fig9_insitu_fits_hourly_in_2tb() {
        let a = WhatIfAnalyzer::paper();
        let spec = ProblemSpec::paper_100yr();
        let hourly = a.storage_bytes(PipelineKind::InSitu, &spec, SamplingRate::every_hours(1.0));
        assert!(
            hourly < 2 * TB,
            "hourly in-situ for 100 years = {} GB, fits 2 TB",
            hourly / 1_000_000_000
        );
        let daily = a.storage_bytes(PipelineKind::InSitu, &spec, SamplingRate::daily());
        assert!(daily < 100_000_000_000, "daily images are ~41 GB");
    }

    #[test]
    fn fig9_post_daily_exceeds_budget() {
        let a = WhatIfAnalyzer::paper();
        let spec = ProblemSpec::paper_100yr();
        let daily = a.storage_bytes(PipelineKind::PostProcessing, &spec, SamplingRate::daily());
        assert!(daily > 15 * TB, "paper: ~15.5 TB; got {daily}");
    }

    #[test]
    fn fig10_energy_savings_match_paper() {
        let a = WhatIfAnalyzer::paper();
        let spec = ProblemSpec::paper_100yr();
        // Paper: 67.2 % hourly, ~49 % at 12 h, ~38 % daily.
        let s1 = a.energy_saving_pct(&spec, SamplingRate::every_hours(1.0));
        let s12 = a.energy_saving_pct(&spec, SamplingRate::every_hours(12.0));
        let s24 = a.energy_saving_pct(&spec, SamplingRate::every_hours(24.0));
        assert!((s1 - 67.2).abs() < 1.5, "hourly saving {s1:.1} %");
        assert!((s12 - 49.0).abs() < 1.5, "12 h saving {s12:.1} %");
        assert!((s24 - 38.0).abs() < 1.5, "daily saving {s24:.1} %");
    }

    #[test]
    fn storage_curve_is_monotone_in_rate() {
        let a = WhatIfAnalyzer::paper();
        let spec = ProblemSpec::paper_100yr();
        let curve = a.storage_curve(
            PipelineKind::PostProcessing,
            &spec,
            &[1.0, 6.0, 24.0, 96.0, 192.0],
        );
        for w in curve.windows(2) {
            assert!(w[0].1 > w[1].1, "less frequent sampling stores less");
        }
    }

    #[test]
    fn energy_curve_converges_to_t_sim_floor() {
        let a = WhatIfAnalyzer::paper();
        let spec = ProblemSpec::paper_100yr();
        let sparse = a.energy(
            PipelineKind::PostProcessing,
            &spec,
            SamplingRate::every_hours(8760.0),
        );
        let t_sim_energy = a.power.watts() * (spec.total_steps() as f64 / 8640.0 * 603.0);
        let ratio = sparse.joules() / t_sim_energy;
        assert!(
            ratio < 1.05,
            "sparse sampling approaches the sim-only floor"
        );
    }

    #[test]
    fn energy_budget_solver_inverts_energy() {
        let a = WhatIfAnalyzer::paper();
        let spec = ProblemSpec::paper_100yr();
        let rate = SamplingRate::every_hours(12.0);
        let e = a.energy(PipelineKind::PostProcessing, &spec, rate);
        let h = a
            .max_rate_under_energy_budget(PipelineKind::PostProcessing, &spec, e)
            .unwrap();
        assert!((h - 12.0).abs() < 0.05, "solver should invert: {h}");
        // An impossible budget returns None.
        assert!(a
            .max_rate_under_energy_budget(PipelineKind::PostProcessing, &spec, Joules(1.0))
            .is_none());
    }

    #[test]
    fn insitu_always_cheaper_than_post() {
        let a = WhatIfAnalyzer::paper();
        let spec = ProblemSpec::paper_100yr();
        for h in [1.0, 4.0, 24.0, 168.0] {
            let r = SamplingRate::every_hours(h);
            assert!(
                a.energy(PipelineKind::InSitu, &spec, r)
                    < a.energy(PipelineKind::PostProcessing, &spec, r)
            );
            assert!(
                a.storage_bytes(PipelineKind::InSitu, &spec, r)
                    < a.storage_bytes(PipelineKind::PostProcessing, &spec, r)
            );
        }
    }
}
