//! Eqs. 1–4: the performance and energy model.

use ivis_power::units::{Joules, Watts};

/// The calibrated performance model (Eq. 4):
/// `t = (iter_any / iter_ref) · t_sim_ref + α·S_io + β·N_viz`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    /// Simulation-phase seconds in the reference run.
    pub t_sim_ref: f64,
    /// Timesteps in the reference run.
    pub iter_ref: u64,
    /// Seconds to read/write 1 GB (decimal) — the paper's α.
    pub alpha: f64,
    /// Seconds to produce one image set — the paper's β.
    pub beta: f64,
}

impl PerfModel {
    /// The paper's published calibration: t_sim = 603 s for 8640 steps,
    /// α = 6.3 s/GB, β = 1.2 s/image.
    pub fn paper() -> Self {
        PerfModel {
            t_sim_ref: 603.0,
            iter_ref: 8_640,
            alpha: 6.3,
            beta: 1.2,
        }
    }

    /// Predicted execution time (seconds) for a run with `iter_any`
    /// timesteps writing `s_io_gb` GB and producing `n_viz` image sets
    /// (Eq. 4).
    pub fn predict_seconds(&self, iter_any: u64, s_io_gb: f64, n_viz: f64) -> f64 {
        assert!(s_io_gb >= 0.0 && n_viz >= 0.0, "negative workload");
        let scale = iter_any as f64 / self.iter_ref as f64;
        scale * self.t_sim_ref + self.alpha * s_io_gb + self.beta * n_viz
    }

    /// Predicted energy (Eq. 1) under constant average power `p` — the
    /// paper's observation that P is pipeline-independent makes this valid.
    pub fn predict_energy(&self, p: Watts, iter_any: u64, s_io_gb: f64, n_viz: f64) -> Joules {
        Joules(p.watts() * self.predict_seconds(iter_any, s_io_gb, n_viz))
    }

    /// The three-way decomposition (Eq. 2/3) of a prediction:
    /// `(t_sim, t_io, t_viz)` seconds.
    pub fn decompose(&self, iter_any: u64, s_io_gb: f64, n_viz: f64) -> (f64, f64, f64) {
        (
            iter_any as f64 / self.iter_ref as f64 * self.t_sim_ref,
            self.alpha * s_io_gb,
            self.beta * n_viz,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_reproduces_eq5_rows() {
        let m = PerfModel::paper();
        // in-situ @72h: 0.1 GB, 60 images → 676 s.
        assert!((m.predict_seconds(8640, 0.1, 60.0) - 675.6).abs() < 1.0);
        // in-situ @8h: 0.6 GB, 540 images → 1255 s (measured 1261).
        assert!((m.predict_seconds(8640, 0.6, 540.0) - 1254.8).abs() < 1.0);
        // post @24h: 80 GB, 180 images → 1323 s (measured 1322).
        assert!((m.predict_seconds(8640, 80.0, 180.0) - 1323.0).abs() < 1.0);
    }

    #[test]
    fn simulation_scales_with_iterations() {
        let m = PerfModel::paper();
        let six_months = m.predict_seconds(8640, 0.0, 0.0);
        let hundred_years = m.predict_seconds(1_752_000, 0.0, 0.0);
        assert!((six_months - 603.0).abs() < 1e-9);
        assert!((hundred_years / six_months - 1_752_000.0 / 8_640.0).abs() < 1e-9);
    }

    #[test]
    fn decomposition_sums_to_prediction() {
        let m = PerfModel::paper();
        let (s, io, viz) = m.decompose(8640, 80.0, 180.0);
        assert!((s + io + viz - m.predict_seconds(8640, 80.0, 180.0)).abs() < 1e-9);
        assert!((io - 504.0).abs() < 1e-9);
        assert!((viz - 216.0).abs() < 1e-9);
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = PerfModel::paper();
        let e = m.predict_energy(Watts(46_000.0), 8640, 0.6, 540.0);
        let t = m.predict_seconds(8640, 0.6, 540.0);
        assert!((e.joules() - 46_000.0 * t).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "negative workload")]
    fn negative_inputs_rejected() {
        let _ = PerfModel::paper().predict_seconds(1, -1.0, 0.0);
    }
}
