//! Model validation (Fig. 8): predicted vs measured execution time.

use crate::calibrate::CalibrationPoint;
use crate::perf::PerfModel;

/// One validation row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationRow {
    /// The measured point.
    pub measured: CalibrationPoint,
    /// The model's prediction, seconds.
    pub predicted_seconds: f64,
    /// Signed relative error `(pred − meas) / meas`.
    pub rel_error: f64,
}

/// Validation summary over a set of measured configurations.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Per-point rows.
    pub rows: Vec<ValidationRow>,
}

impl ValidationReport {
    /// Largest absolute relative error (the paper reports < 0.5 %).
    pub fn max_abs_rel_error(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.rel_error.abs())
            .fold(0.0, f64::max)
    }

    /// Mean absolute relative error.
    pub fn mean_abs_rel_error(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.rel_error.abs()).sum::<f64>() / self.rows.len() as f64
    }
}

/// Validate `model` against measured points taken at `iter_any` timesteps.
pub fn validate(model: &PerfModel, points: &[CalibrationPoint], iter_any: u64) -> ValidationReport {
    let rows = points
        .iter()
        .map(|&measured| {
            let predicted_seconds =
                model.predict_seconds(iter_any, measured.s_io_gb, measured.n_viz);
            ValidationRow {
                measured,
                predicted_seconds,
                rel_error: (predicted_seconds - measured.t_seconds) / measured.t_seconds,
            }
        })
        .collect();
    ValidationReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::{calibrate_exact, paper_points};

    #[test]
    fn calibration_points_validate_exactly() {
        let model = calibrate_exact(&paper_points(), 8640).unwrap();
        let report = validate(&model, &paper_points(), 8640);
        assert!(report.max_abs_rel_error() < 1e-9);
    }

    #[test]
    fn held_out_points_validate_well() {
        // The paper's Fig. 8 evaluates the model on the other three
        // configurations; with the published constants the errors are tiny.
        let model = calibrate_exact(&paper_points(), 8640).unwrap();
        let held_out = [
            // in-situ @24 h: 0.2 GB, 180 images; model ⇒ ~820 s.
            CalibrationPoint::new(820.0, 0.2, 180.0),
            // post @8 h: 230 GB, 540 images; model ⇒ ~2700 s.
            CalibrationPoint::new(2700.0, 230.0, 540.0),
            // post @72 h: 26.6 GB, 60 images; model ⇒ ~843 s.
            CalibrationPoint::new(843.0, 26.6, 60.0),
        ];
        let report = validate(&model, &held_out, 8640);
        assert!(
            report.max_abs_rel_error() < 0.005,
            "max error {:.4}",
            report.max_abs_rel_error()
        );
    }

    #[test]
    fn report_statistics() {
        let model = PerfModel::paper();
        let pts = [
            CalibrationPoint::new(700.0, 0.1, 60.0),
            CalibrationPoint::new(1300.0, 0.6, 540.0),
        ];
        let report = validate(&model, &pts, 8640);
        assert_eq!(report.rows.len(), 2);
        assert!(report.mean_abs_rel_error() <= report.max_abs_rel_error());
        assert!(report.rows[0].rel_error < 0.0, "model under-predicts 700");
    }

    #[test]
    fn empty_report_is_zero() {
        let model = PerfModel::paper();
        let report = validate(&model, &[], 8640);
        assert_eq!(report.max_abs_rel_error(), 0.0);
        assert_eq!(report.mean_abs_rel_error(), 0.0);
    }
}
