//! Small dense linear algebra: Gaussian elimination and least squares.
//!
//! The paper solves a 3×3 system (Eq. 5) with "a linear solver" and notes
//! that "regression techniques may be used" with more data; both live here.

/// Errors from the solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The system matrix is singular (to working precision).
    Singular,
    /// Dimensions do not line up.
    DimensionMismatch,
    /// Fewer rows than unknowns.
    Underdetermined,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "singular matrix"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
            LinalgError::Underdetermined => write!(f, "underdetermined system"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solve `A x = b` for square `A` (row-major, `n × n`) by Gaussian
/// elimination with partial pivoting. `A` and `b` are consumed as copies.
pub fn solve(a: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.len();
    if b.len() != n || a.iter().any(|row| row.len() != n) {
        return Err(LinalgError::DimensionMismatch);
    }
    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .expect("finite entries")
            })
            .expect("non-empty range");
        if m[pivot][col].abs() < 1e-12 {
            return Err(LinalgError::Singular);
        }
        m.swap(col, pivot);
        rhs.swap(col, pivot);
        for row in col + 1..n {
            let factor = m[row][col] / m[col][col];
            if factor == 0.0 {
                continue;
            }
            // Two rows of `m` are read/written together; split the borrow.
            let (head, tail) = m.split_at_mut(row);
            let pivot_row = &head[col];
            for (k, cell) in tail[0].iter_mut().enumerate().skip(col) {
                *cell -= factor * pivot_row[k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in row + 1..n {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Ok(x)
}

/// Least squares `min ‖A x − b‖₂` via the normal equations `AᵀA x = Aᵀb`.
/// `A` is `m × n` with `m ≥ n`.
pub fn least_squares(a: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let m = a.len();
    if m == 0 || b.len() != m {
        return Err(LinalgError::DimensionMismatch);
    }
    let n = a[0].len();
    if a.iter().any(|row| row.len() != n) {
        return Err(LinalgError::DimensionMismatch);
    }
    if m < n {
        return Err(LinalgError::Underdetermined);
    }
    let mut ata = vec![vec![0.0; n]; n];
    let mut atb = vec![0.0; n];
    for row in 0..m {
        for i in 0..n {
            atb[i] += a[row][i] * b[row];
            for j in 0..n {
                ata[i][j] += a[row][i] * a[row][j];
            }
        }
    }
    solve(&ata, &atb)
}

/// Residuals `A x − b`.
pub fn residuals(a: &[Vec<f64>], x: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter()
        .zip(b)
        .map(|(row, &bi)| row.iter().zip(x).map(|(aij, xj)| aij * xj).sum::<f64>() - bi)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(&a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_paper_eq5() {
        // t_sim + 0.1α + 60β = 676
        // t_sim + 0.6α + 540β = 1261
        // t_sim + 80α + 180β = 1322
        let a = vec![
            vec![1.0, 0.1, 60.0],
            vec![1.0, 0.6, 540.0],
            vec![1.0, 80.0, 180.0],
        ];
        let x = solve(&a, &[676.0, 1261.0, 1322.0]).unwrap();
        // The paper's stated solution (with α/β as its symbol table defines
        // them): t_sim ≈ 603, α ≈ 6.3 s/GB, β ≈ 1.2 s/image.
        assert!((x[0] - 603.0).abs() < 2.0, "t_sim = {}", x[0]);
        assert!((x[1] - 6.3).abs() < 0.15, "alpha = {}", x[1]);
        assert!((x[2] - 1.2).abs() < 0.05, "beta = {}", x[2]);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(&a, &[2.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = vec![vec![1.0, 2.0]];
        assert_eq!(solve(&a, &[1.0]), Err(LinalgError::DimensionMismatch));
    }

    #[test]
    fn least_squares_recovers_exact_fit() {
        // y = 2 + 3x sampled exactly.
        let a: Vec<Vec<f64>> = (0..5).map(|i| vec![1.0, i as f64]).collect();
        let b: Vec<f64> = (0..5).map(|i| 2.0 + 3.0 * i as f64).collect();
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        let r = residuals(&a, &x, &b);
        assert!(r.iter().all(|ri| ri.abs() < 1e-9));
    }

    #[test]
    fn least_squares_averages_noise() {
        // y = 10 with symmetric noise: fit must be ~10.
        let a: Vec<Vec<f64>> = (0..6).map(|_| vec![1.0]).collect();
        let b = vec![9.0, 11.0, 9.5, 10.5, 9.8, 10.2];
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_rejects_underdetermined() {
        let a = vec![vec![1.0, 2.0]];
        assert_eq!(least_squares(&a, &[1.0]), Err(LinalgError::Underdetermined));
    }

    #[test]
    fn solve_3x3_matches_substitution() {
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let x = solve(&a, &[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 1.0).abs() < 1e-9);
    }
}
