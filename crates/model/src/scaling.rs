//! Eqs. 6 & 7: rate scaling of storage and image counts.
//!
//! Both the output size and the image count scale linearly with the
//! sampling rate relative to a reference configuration.

use ivis_ocean::SamplingRate;

/// Eq. 6: `S_any = S_ref · rate_any / rate_ref`.
pub fn scale_storage_bytes(s_ref: u64, rate_ref: SamplingRate, rate_any: SamplingRate) -> u64 {
    (s_ref as f64 * rate_any.relative_to(rate_ref)).round() as u64
}

/// Eq. 7: `N_any = N_ref · rate_any / rate_ref`.
pub fn scale_image_count(n_ref: u64, rate_ref: SamplingRate, rate_any: SamplingRate) -> u64 {
    (n_ref as f64 * rate_any.relative_to(rate_ref)).round() as u64
}

/// Scale both duration and rate: counts over a longer run at a different
/// rate, starting from a reference `(duration_hours_ref, rate_ref, n_ref)`.
pub fn scale_count_full(
    n_ref: u64,
    duration_hours_ref: f64,
    rate_ref: SamplingRate,
    duration_hours_any: f64,
    rate_any: SamplingRate,
) -> u64 {
    let rate_factor = rate_any.relative_to(rate_ref);
    let dur_factor = duration_hours_any / duration_hours_ref;
    (n_ref as f64 * rate_factor * dur_factor).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_rate_doubles_storage() {
        let r24 = SamplingRate::every_hours(24.0);
        let r12 = SamplingRate::every_hours(12.0);
        assert_eq!(scale_storage_bytes(80_000, r24, r12), 160_000);
        assert_eq!(scale_storage_bytes(80_000, r24, r24), 80_000);
    }

    #[test]
    fn fig7_consistency() {
        // Paper Fig. 7: 230 GB at 8 h ⇒ ~76.7 GB at 24 h ⇒ ~25.6 GB at 72 h.
        let r8 = SamplingRate::every_hours(8.0);
        let s24 = scale_storage_bytes(230_000_000_000, r8, SamplingRate::every_hours(24.0));
        let s72 = scale_storage_bytes(230_000_000_000, r8, SamplingRate::every_hours(72.0));
        assert!((s24 as f64 / 1e9 - 76.7).abs() < 0.1);
        assert!((s72 as f64 / 1e9 - 25.6).abs() < 0.1);
    }

    #[test]
    fn image_count_scales_like_eq7() {
        let r8 = SamplingRate::every_hours(8.0);
        let r24 = SamplingRate::every_hours(24.0);
        assert_eq!(scale_image_count(540, r8, r24), 180);
        assert_eq!(scale_image_count(180, r24, r8), 540);
    }

    #[test]
    fn full_scaling_combines_rate_and_duration() {
        // 540 outputs in 6 months @8 h ⇒ daily over 100 years = 36 500.
        let n = scale_count_full(
            540,
            4_320.0,
            SamplingRate::every_hours(8.0),
            876_000.0,
            SamplingRate::every_hours(24.0),
        );
        assert_eq!(n, 36_500);
    }
}
