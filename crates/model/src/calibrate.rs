//! Model calibration from measured runs (Eq. 5).
//!
//! Three measured configurations give an exact 3×3 solve for
//! `(t_sim, α, β)`; more give a least-squares fit. Inputs are
//! `(t_seconds, s_io_gb, n_viz)` triples, all taken at the *reference*
//! iteration count.

use crate::linalg::{least_squares, solve, LinalgError};
use crate::perf::PerfModel;

/// One measured configuration at the reference iteration count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationPoint {
    /// Measured execution time, seconds.
    pub t_seconds: f64,
    /// Data written, GB (decimal).
    pub s_io_gb: f64,
    /// Image sets produced.
    pub n_viz: f64,
}

impl CalibrationPoint {
    /// Convenience constructor.
    pub fn new(t_seconds: f64, s_io_gb: f64, n_viz: f64) -> Self {
        CalibrationPoint {
            t_seconds,
            s_io_gb,
            n_viz,
        }
    }
}

/// The paper's three calibration rows (Eq. 5): in-situ @72 h, in-situ @8 h,
/// post-processing @24 h.
pub fn paper_points() -> [CalibrationPoint; 3] {
    [
        CalibrationPoint::new(676.0, 0.1, 60.0),
        CalibrationPoint::new(1261.0, 0.6, 540.0),
        CalibrationPoint::new(1322.0, 80.0, 180.0),
    ]
}

fn design(points: &[CalibrationPoint]) -> (Vec<Vec<f64>>, Vec<f64>) {
    let a = points
        .iter()
        .map(|p| vec![1.0, p.s_io_gb, p.n_viz])
        .collect();
    let b = points.iter().map(|p| p.t_seconds).collect();
    (a, b)
}

fn model_from(x: &[f64], iter_ref: u64) -> PerfModel {
    PerfModel {
        t_sim_ref: x[0],
        iter_ref,
        alpha: x[1],
        beta: x[2],
    }
}

/// Exact calibration from exactly three points (the paper's linear solver).
pub fn calibrate_exact(
    points: &[CalibrationPoint; 3],
    iter_ref: u64,
) -> Result<PerfModel, LinalgError> {
    let (a, b) = design(points);
    Ok(model_from(&solve(&a, &b)?, iter_ref))
}

/// Least-squares calibration from three or more points (the paper's
/// "alternatively, regression techniques may be used").
pub fn calibrate_least_squares(
    points: &[CalibrationPoint],
    iter_ref: u64,
) -> Result<PerfModel, LinalgError> {
    let (a, b) = design(points);
    Ok(model_from(&least_squares(&a, &b)?, iter_ref))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_recovers_published_constants() {
        let model = calibrate_exact(&paper_points(), 8640).unwrap();
        assert!(
            (model.t_sim_ref - 603.0).abs() < 2.0,
            "t_sim = {}",
            model.t_sim_ref
        );
        assert!((model.alpha - 6.3).abs() < 0.15, "alpha = {}", model.alpha);
        assert!((model.beta - 1.2).abs() < 0.05, "beta = {}", model.beta);
    }

    #[test]
    fn exact_calibration_interpolates_its_inputs() {
        let pts = paper_points();
        let model = calibrate_exact(&pts, 8640).unwrap();
        for p in &pts {
            let pred = model.predict_seconds(8640, p.s_io_gb, p.n_viz);
            assert!(
                (pred - p.t_seconds).abs() < 1e-6,
                "exact fit must pass through inputs"
            );
        }
    }

    #[test]
    fn least_squares_equals_exact_for_three_points() {
        let pts = paper_points();
        let a = calibrate_exact(&pts, 8640).unwrap();
        let b = calibrate_least_squares(&pts, 8640).unwrap();
        assert!((a.t_sim_ref - b.t_sim_ref).abs() < 1e-6);
        assert!((a.alpha - b.alpha).abs() < 1e-9);
        assert!((a.beta - b.beta).abs() < 1e-9);
    }

    #[test]
    fn least_squares_handles_redundant_noisy_points() {
        // Generate from a known model, add ±0.5 s alternating noise.
        let truth = PerfModel {
            t_sim_ref: 600.0,
            iter_ref: 8640,
            alpha: 6.0,
            beta: 1.0,
        };
        let mut pts = Vec::new();
        for (i, &(s, n)) in [
            (0.1, 60.0),
            (0.6, 540.0),
            (80.0, 180.0),
            (230.0, 540.0),
            (26.6, 60.0),
            (0.2, 180.0),
        ]
        .iter()
        .enumerate()
        {
            let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
            pts.push(CalibrationPoint::new(
                truth.predict_seconds(8640, s, n) + noise,
                s,
                n,
            ));
        }
        let fit = calibrate_least_squares(&pts, 8640).unwrap();
        assert!((fit.t_sim_ref - 600.0).abs() < 2.0);
        assert!((fit.alpha - 6.0).abs() < 0.05);
        assert!((fit.beta - 1.0).abs() < 0.05);
    }

    #[test]
    fn degenerate_points_rejected() {
        // Three identical rows are singular.
        let p = CalibrationPoint::new(100.0, 1.0, 1.0);
        assert!(calibrate_exact(&[p, p, p], 8640).is_err());
    }
}
