//! # ivis-model — the paper's performance/energy/storage model
//!
//! Section VI of the paper builds an application-aware, architecture-
//! specific model:
//!
//! ```text
//! E = P · t                                        (Eq. 1)
//! t = t_sim + t_i/o + t_viz                        (Eq. 2)
//! t = t_sim + α·S_io + β·N_viz                     (Eq. 3)
//! t = (iter_any/iter_ref)·t_sim.ref + α·S + β·N    (Eq. 4)
//! S_any = S_ref · rate_any / rate_ref              (Eq. 6)
//! N_any = N_ref · rate_any / rate_ref              (Eq. 7)
//! ```
//!
//! α and β come from a 3×3 linear solve over three measured configurations
//! (Eq. 5) or a least-squares fit over more. Section VII then uses the model
//! for what-if analysis: storage vs sampling rate (Fig. 9) and energy vs
//! sampling rate (Fig. 10) for a 100-simulated-year run.
//!
//! * [`adaptive`] — Eq. 6/7 fed by the *measured* effective rate of an
//!   adaptive-trigger campaign, plus the candidate sweep's render cost.
//! * [`linalg`] — the small dense solver (Gaussian elimination, least
//!   squares via normal equations).
//! * [`perf`] — Eq. 1–4 as a [`perf::PerfModel`].
//! * [`calibrate`] — exact and least-squares calibration from measured runs.
//! * [`scaling`] — Eq. 6/7 rate scaling.
//! * [`staging`] — the in-transit transport's provisioning sweep (staging
//!   nodes × queue depth × compression ratio), measured and predicted.
//! * [`validate`] — model-vs-measurement error reporting (Fig. 8).
//! * [`whatif`] — the §VII scenario engine (Figs. 9 & 10, budget solvers).
//! * [`query`] — canonical, memoizable what-if keys and the pure
//!   evaluator behind the `ivis-serve` query service.

pub mod adaptive;
pub mod calibrate;
pub mod linalg;
pub mod perf;
pub mod query;
pub mod scaling;
pub mod sensitivity;
pub mod staging;
pub mod tradeoff;
pub mod uncertainty;
pub mod validate;
pub mod whatif;

pub use adaptive::{AdaptivePlan, MeasuredRate};
pub use calibrate::{calibrate_exact, calibrate_least_squares};
pub use perf::PerfModel;
pub use query::{CurvePoint, SpecId, WhatIfAnswer, WhatIfRequest};
pub use staging::{predict_staged_seconds, StagingPoint, StagingSweep};
pub use whatif::WhatIfAnalyzer;
