//! Canonical what-if queries: a hashable key plus a pure evaluator.
//!
//! The serving layer (`ivis-serve`) memoizes Eq. 4/6/7 evaluations, which
//! is only sound if (a) two requests that mean the same thing compare
//! equal and (b) evaluation is a pure function of the key. This module
//! provides both halves: [`WhatIfRequest`] canonicalizes the free-form
//! query surface (f64 sampling rates quantized to a fixed grid, the
//! problem spec reduced to a closed enum) into a `Hash + Eq + Ord` tuple,
//! and [`WhatIfAnalyzer::answer`] maps a key to a [`WhatIfAnswer`] using
//! nothing but the analyzer's calibrated constants.

use ivis_core::PipelineKind;
use ivis_ocean::{ProblemSpec, SamplingRate};

use crate::whatif::WhatIfAnalyzer;

/// Sampling-rate quantum: one millionth of a simulated hour (3.6 ms).
/// Rates closer together than this are the same query.
pub const RATE_QUANTUM_PER_HOUR: f64 = 1e6;

/// The closed set of problem specifications the query surface exposes.
///
/// Serving arbitrary `ProblemSpec` structs would make the memo key
/// unbounded (and float-field hashing fragile); the paper's analyses only
/// ever use these two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpecId {
    /// Six simulated months on the 60 km mesh (the measured runs).
    Paper60km,
    /// One hundred simulated years (the Figs. 9/10 extrapolation).
    Paper100yr,
}

impl SpecId {
    /// The spec this id names.
    pub fn spec(self) -> ProblemSpec {
        match self {
            SpecId::Paper60km => ProblemSpec::paper_60km(),
            SpecId::Paper100yr => ProblemSpec::paper_100yr(),
        }
    }

    /// Stable label used in URLs and reports.
    pub fn label(self) -> &'static str {
        match self {
            SpecId::Paper60km => "60km",
            SpecId::Paper100yr => "100yr",
        }
    }

    /// Parse a label produced by [`SpecId::label`].
    pub fn parse(s: &str) -> Option<SpecId> {
        match s {
            "60km" => Some(SpecId::Paper60km),
            "100yr" => Some(SpecId::Paper100yr),
            _ => None,
        }
    }
}

/// A canonicalized what-if query — the memoization key.
///
/// Construction quantizes the sampling interval onto a micro-hour grid,
/// so any two f64 rates within [`RATE_QUANTUM_PER_HOUR`] of each other
/// produce identical keys and the derived [`SamplingRate`] is recovered
/// exactly (`rate_hours` is a pure function of the integer field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WhatIfRequest {
    /// Which problem the query is about.
    pub spec: SpecId,
    /// Which pipeline the query evaluates.
    pub kind: PipelineKind,
    /// Sampling interval in micro-hours (canonical integer form).
    pub rate_micro_hours: u64,
    /// Number of points in the rate-sweep curve attached to the answer.
    pub curve_points: u16,
}

impl WhatIfRequest {
    /// Canonicalize a query. Returns `None` for non-finite or
    /// non-positive rates (there is nothing meaningful to evaluate).
    pub fn new(
        spec: SpecId,
        kind: PipelineKind,
        rate_hours: f64,
        curve_points: u16,
    ) -> Option<Self> {
        if !rate_hours.is_finite() || rate_hours <= 0.0 {
            return None;
        }
        let q = (rate_hours * RATE_QUANTUM_PER_HOUR).round();
        if !(1.0..=1e15).contains(&q) {
            return None;
        }
        Some(WhatIfRequest {
            spec,
            kind,
            rate_micro_hours: q as u64,
            curve_points,
        })
    }

    /// The canonical sampling interval, hours.
    pub fn rate_hours(&self) -> f64 {
        self.rate_micro_hours as f64 / RATE_QUANTUM_PER_HOUR
    }

    /// The canonical sampling rate.
    pub fn rate(&self) -> SamplingRate {
        SamplingRate::every_hours(self.rate_hours())
    }

    /// The sweep grid attached to the answer: `curve_points` intervals
    /// spaced geometrically over one decade starting at the query rate.
    /// A pure function of the key, so memoized and cold evaluations see
    /// the same grid.
    pub fn curve_hours(&self) -> Vec<f64> {
        let n = self.curve_points as usize;
        let h0 = self.rate_hours();
        (0..n)
            .map(|i| h0 * 10f64.powf(i as f64 / n.max(1) as f64))
            .collect()
    }
}

/// One point of the rate-sweep curve in a [`WhatIfAnswer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Sampling interval, hours.
    pub hours: f64,
    /// Predicted campaign energy at that interval, joules.
    pub energy_joules: f64,
    /// Predicted storage footprint at that interval, bytes.
    pub storage_bytes: u64,
}

/// The evaluated answer to a [`WhatIfRequest`] — Eqs. 4, 6 and 7 at the
/// query point plus the one-decade sweep curve.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfAnswer {
    /// The key this answer was computed from.
    pub request: WhatIfRequest,
    /// Eq. 6: storage footprint, bytes.
    pub storage_bytes: u64,
    /// Eq. 4: predicted execution time, seconds.
    pub exec_seconds: f64,
    /// Eq. 7: predicted campaign energy, joules.
    pub energy_joules: f64,
    /// In-situ saving over post-processing at this rate, percent.
    pub saving_pct: f64,
    /// The sweep curve over [`WhatIfRequest::curve_hours`].
    pub curve: Vec<CurvePoint>,
}

impl WhatIfAnalyzer {
    /// Evaluate a canonical what-if query.
    ///
    /// This is a pure function of `(self, req)`: same analyzer constants
    /// and same key produce a bit-identical answer, which is what lets
    /// the serving layer cache answers and batch duplicate keys. The
    /// curve evaluates through the same parallel iterators as the Fig.
    /// 9/10 sweeps, whose results are bit-identical at any thread count.
    pub fn answer(&self, req: &WhatIfRequest) -> WhatIfAnswer {
        let spec = req.spec.spec();
        let rate = req.rate();
        let hours = req.curve_hours();
        let energy_curve = self.energy_curve(req.kind, &spec, &hours);
        let storage_curve = self.storage_curve(req.kind, &spec, &hours);
        let curve = energy_curve
            .iter()
            .zip(storage_curve.iter())
            .map(|(&(h, e), &(_, s))| CurvePoint {
                hours: h,
                energy_joules: e.joules(),
                storage_bytes: s,
            })
            .collect();
        WhatIfAnswer {
            request: *req,
            storage_bytes: self.storage_bytes(req.kind, &spec, rate),
            exec_seconds: self.execution_seconds(req.kind, &spec, rate),
            energy_joules: self.energy(req.kind, &spec, rate).joules(),
            saving_pct: self.energy_saving_pct(&spec, rate),
            curve,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearby_rates_canonicalize_to_one_key() {
        let a = WhatIfRequest::new(SpecId::Paper100yr, PipelineKind::InSitu, 24.0, 8).unwrap();
        let b =
            WhatIfRequest::new(SpecId::Paper100yr, PipelineKind::InSitu, 24.0 + 1e-9, 8).unwrap();
        assert_eq!(a, b);
        // ... but a full quantum apart is a different query.
        let c =
            WhatIfRequest::new(SpecId::Paper100yr, PipelineKind::InSitu, 24.0 + 2e-6, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_rates_are_rejected() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, 1e-12] {
            assert!(
                WhatIfRequest::new(SpecId::Paper60km, PipelineKind::InSitu, bad, 4).is_none(),
                "rate {bad} should not canonicalize"
            );
        }
    }

    #[test]
    fn answer_is_pure_and_matches_direct_evaluation() {
        let a = WhatIfAnalyzer::paper();
        let req =
            WhatIfRequest::new(SpecId::Paper100yr, PipelineKind::PostProcessing, 24.0, 16).unwrap();
        let x = a.answer(&req);
        let y = a.answer(&req);
        assert_eq!(x, y, "same key must produce a bit-identical answer");
        let spec = ProblemSpec::paper_100yr();
        let rate = SamplingRate::every_hours(24.0);
        assert_eq!(
            x.storage_bytes,
            a.storage_bytes(PipelineKind::PostProcessing, &spec, rate)
        );
        assert_eq!(
            x.energy_joules.to_bits(),
            a.energy(PipelineKind::PostProcessing, &spec, rate)
                .joules()
                .to_bits()
        );
        assert_eq!(x.curve.len(), 16);
        assert_eq!(x.curve[0].hours, 24.0);
    }

    #[test]
    fn curve_grid_is_a_pure_function_of_the_key() {
        let req = WhatIfRequest::new(SpecId::Paper60km, PipelineKind::InSitu, 8.0, 33).unwrap();
        assert_eq!(req.curve_hours(), req.curve_hours());
        assert_eq!(req.curve_hours().len(), 33);
        // Geometric over one decade: last point just below 10x the rate.
        let hs = req.curve_hours();
        assert!(hs[32] < 80.0 && hs[32] > 70.0);
    }

    #[test]
    fn rate_round_trips_through_the_integer_form() {
        for h in [0.5, 8.0, 24.0, 72.0, 8760.0] {
            let req = WhatIfRequest::new(SpecId::Paper60km, PipelineKind::InSitu, h, 1).unwrap();
            assert_eq!(req.rate_hours(), h, "exact grid rates survive");
        }
    }
}
